"""Shared helpers for the benchmark harness.

Every benchmark regenerates one published artifact, stores the
paper-vs-ours numbers in ``benchmark.extra_info`` (visible in the
pytest-benchmark JSON/report) and prints the rendered table/figure so a
``pytest benchmarks/ --benchmark-only -s`` run reads like the paper's
evaluation section.
"""

from __future__ import annotations

import pytest


def record(benchmark, **info: object) -> None:
    """Attach paper-vs-ours context to a benchmark result."""
    for key, value in info.items():
        benchmark.extra_info[key] = value
