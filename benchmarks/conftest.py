"""Shared helpers for the benchmark harness.

Every benchmark regenerates one published artifact, stores the
paper-vs-ours numbers in ``benchmark.extra_info`` (visible in the
pytest-benchmark JSON/report) and prints the rendered table/figure so a
``pytest benchmarks/ --benchmark-only -s`` run reads like the paper's
evaluation section.
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser) -> None:
    """Opt-in throughput artifacts: ``--bench-json DIR``.

    When given, throughput benchmarks (currently the service bench)
    write machine-readable summaries — e.g. ``BENCH_service.json`` with
    requests/sec, DES events/sec and serial-vs-workers wall times —
    into DIR.  Without the flag they only record ``extra_info``.
    """
    parser.addoption(
        "--bench-json", action="store", default="", metavar="DIR",
        help="directory to write BENCH_*.json throughput summaries into",
    )


@pytest.fixture
def bench_json_dir(request) -> str:
    """The ``--bench-json`` directory, or ``""`` when not opted in."""
    return request.config.getoption("--bench-json")


def write_bench_json(directory: str, name: str, payload: dict) -> None:
    """Write one ``BENCH_<name>.json`` summary (no-op without a dir).

    Delegates to :func:`repro.runtime.benchtrack.write_bench_json`:
    atomic write-temp-then-rename, so a benchmark run killed mid-write
    never leaves a torn JSON for the trajectory collector.
    """
    from repro.runtime.benchtrack import write_bench_json as _atomic_write

    _atomic_write(directory, name, payload)


def record(benchmark, **info: object) -> None:
    """Attach paper-vs-ours context to a benchmark result."""
    for key, value in info.items():
        benchmark.extra_info[key] = value
