"""Benchmark: PRR-granularity ablation (Section 5's design rule).

Sweeps the number of uniform PRRs on the XC2VP50 and checks the paper's
recommendation quantitatively: the speedup-maximizing granularity is the
one whose ``X_PRTR`` sits closest to (at or just below) the task's
``X_task``; for tasks longer than any achievable ``X_PRTR``, granularity
is irrelevant.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import render_table
from repro.experiments.ablations import granularity_ablation

from conftest import record

TASK_TIMES = (0.002, 0.02, 0.2, 2.0)


def test_bench_ablation_granularity(benchmark) -> None:
    points = benchmark(granularity_ablation, TASK_TIMES)
    assert len(points) >= 4

    # Finer PRRs -> strictly smaller bitstreams and partial config times.
    sizes = [p.bitstream_bytes for p in points]
    assert sizes == sorted(sizes, reverse=True)

    # For the smallest task the finest granularity must win...
    finest = max(points, key=lambda p: p.n_prrs)
    best_small = max(points, key=lambda p: p.speedups[0])
    assert best_small.n_prrs == finest.n_prrs
    # ...and for the largest task granularity is moot (all equal).
    big = [p.speedups[-1] for p in points]
    assert np.allclose(big, big[0], rtol=1e-6)

    print()
    rows = []
    for p in points:
        row: dict[str, object] = {
            "PRRs": p.n_prrs,
            "cols": p.columns_each,
            "bytes": p.bitstream_bytes,
            "T_PRTR_ms": p.t_prtr * 1e3,
            "X_PRTR": p.x_prtr,
        }
        for t, s in zip(TASK_TIMES, p.speedups):
            row[f"S@{t * 1e3:g}ms"] = s
        rows.append(row)
    print(render_table(rows, title="Granularity ablation"))
    record(
        benchmark,
        artifact="Ablation B (granularity)",
        points=len(points),
        finest_x_prtr=finest.x_prtr,
    )
