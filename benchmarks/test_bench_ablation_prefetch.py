"""Benchmark: prefetch-policy ablation (the paper's deferred study).

Replays locality-bearing traces through every (policy x prefetcher)
combination and reports achieved hit ratios plus the Eq. (7) speedup each
would deliver on the Cray XD1.  Ordering sanity: oracle >= learned
prefetchers >= none, and Belady's hit ratio tops every online policy
without prefetching.
"""

from __future__ import annotations

from repro.analysis import render_table
from repro.experiments.ablations import prefetch_ablation

from conftest import record


def test_bench_ablation_prefetch(benchmark) -> None:
    cells = benchmark(prefetch_ablation, 2, 2000)
    by_key = {(c.trace, c.policy, c.prefetcher): c for c in cells}

    for trace in ("zipf", "markov", "phased"):
        for policy in ("lru", "lfu", "fifo"):
            none = by_key[(trace, policy, "none")].hit_ratio
            oracle = by_key[(trace, policy, "oracle")].hit_ratio
            markov = by_key[(trace, policy, "markov")].hit_ratio
            assert oracle >= markov >= 0.0
            assert oracle >= none
        # Belady (no prefetch) beats every online policy (no prefetch).
        belady = by_key[(trace, "belady", "none")].hit_ratio
        for policy in ("lru", "lfu", "fifo"):
            online = by_key[(trace, policy, "none")].hit_ratio
            assert belady >= online - 1e-12, (
                f"Belady lost to {policy} on {trace}: {belady} < {online}"
            )

    print()
    rows = [
        {
            "trace": c.trace,
            "policy": c.policy,
            "prefetcher": c.prefetcher,
            "H": c.hit_ratio,
            "accuracy": c.prefetch_accuracy,
            "S_inf": c.predicted_speedup,
        }
        for c in cells
    ]
    print(render_table(rows, title="Prefetch ablation (X_task < X_PRTR)"))
    best = max(cells, key=lambda c: c.predicted_speedup)
    record(
        benchmark,
        artifact="Ablation A (prefetch)",
        cells=len(cells),
        best=f"{best.trace}/{best.policy}/{best.prefetcher}",
        best_speedup=best.predicted_speedup,
    )
