"""Benchmark: whole-application speedup (software tasks included).

The paper's conclusions defer "inclusion of software tasks" to future
work; this bench runs it as a reconfiguration-aware Amdahl sweep on the
published Cray XD1 platform: application speedup vs kernel grain size
under no-RTR / FRTR / PRTR, plus the break-even kernel sizes.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import render_table
from repro.model import (
    ApplicationProfile,
    Kernel,
    amdahl_limit,
    application_speedup,
    breakeven_kernel_time,
)

from conftest import record

XD1 = dict(t_frtr=1.67804, t_prtr=0.01977, t_control=1e-5)
HW_SPEEDUP = 20.0


def sweep() -> list[dict[str, float]]:
    rows = []
    for t_sw in np.logspace(-3, 2, 6):
        p = ApplicationProfile(
            "app",
            t_serial=10.0,
            kernels=(
                Kernel("k", calls=max(int(100.0 / t_sw), 1),
                       t_sw=float(t_sw), t_hw=float(t_sw) / HW_SPEEDUP),
            ),
        )
        rows.append({
            "kernel_ms": float(t_sw) * 1e3,
            "amdahl_limit": amdahl_limit(p),
            "S_none": application_speedup(p, "none", **XD1),
            "S_frtr": application_speedup(p, "frtr", **XD1),
            "S_prtr(H=0)": application_speedup(p, "prtr", **XD1),
            "S_prtr(H=.99)": application_speedup(
                p, "prtr", hit_ratio=0.99, **XD1
            ),
        })
    return rows


def test_bench_application(benchmark) -> None:
    rows = benchmark(sweep)
    print()
    print(render_table(
        rows,
        title=f"Application speedup vs kernel grain "
        f"(hardware {HW_SPEEDUP:g}x per kernel, ~100 s of kernel work)",
    ))
    be_frtr = breakeven_kernel_time("frtr", HW_SPEEDUP, **XD1)
    be_prtr = breakeven_kernel_time("prtr", HW_SPEEDUP, **XD1)
    print(f"\nbreak-even kernel size: FRTR {be_frtr * 1e3:.1f} ms, "
          f"PRTR {be_prtr * 1e3:.3f} ms "
          f"({be_frtr / be_prtr:.0f}x finer granularity viable)")

    mid = rows[2]       # 100 ms kernels (above PRTR's, below FRTR's bound)
    fine = rows[0]      # 1 ms kernels: only prefetched PRTR survives
    coarse = rows[-1]   # 100 s kernels
    assert mid["S_frtr"] < 1.0 < mid["S_prtr(H=0)"], (
        "100 ms kernels: FRTR must lose while PRTR wins"
    )
    assert fine["S_prtr(H=0)"] < 1.0 < fine["S_prtr(H=.99)"], (
        "1 ms kernels: H=0 PRTR loses (break-even = T_PRTR); "
        "prefetching rescues it"
    )
    assert (
        abs(coarse["S_frtr"] - coarse["S_prtr(H=0)"])
        / coarse["S_prtr(H=0)"] < 0.05
    )
    assert all(r["S_prtr(H=0)"] < r["amdahl_limit"] for r in rows)
    record(
        benchmark,
        artifact="Ablation I (application-level / software tasks)",
        breakeven_frtr_ms=be_frtr * 1e3,
        breakeven_prtr_ms=be_prtr * 1e3,
    )
