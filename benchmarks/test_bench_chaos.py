"""Benchmark: chaos-mode overhead and goodput under the compound scenario.

Not a published figure — this measures the resilience harness itself:
how many DES events per wall-clock second the service sustains while
the ``compound`` scenario injects blade loss, ICAP flapping and a late
PRR loss, and how much goodput the migration + breaker + brownout
machinery retains versus the fault-free twin that ``run_chaos`` pairs
with every realization.  With ``--bench-json DIR`` the numbers land in
``DIR/BENCH_chaos.json`` for trend tracking.
"""

from __future__ import annotations

import shutil
import tempfile
import time

from repro.chaos import build_scenario, crash_safe_chaos, run_chaos
from repro.runtime.parallel import fork_available
from repro.service import ServiceConfig, default_tenants, run_service

from conftest import record, write_bench_json

HORIZON = 8.0
SEED = 11
SCENARIO = "compound"
PRRS = 4
REPLICATIONS = 4
WORKERS = 2


def _chaos_config() -> ServiceConfig:
    spec = build_scenario(SCENARIO, seed=SEED, horizon=HORIZON, prrs=PRRS)
    return ServiceConfig(horizon=HORIZON, prrs=PRRS, chaos=spec)


def _chaos_walltime(workers: int) -> float:
    """Wall seconds for one multi-replication chaos run."""
    run_dir = tempfile.mkdtemp(prefix="bench-chaos-")
    try:
        t0 = time.perf_counter()
        crash_safe_chaos(
            f"{run_dir}/run",
            default_tenants(),
            _chaos_config(),
            scenario=SCENARIO,
            seed=SEED,
            replications=REPLICATIONS,
            workers=workers,
        )
        return time.perf_counter() - t0
    finally:
        shutil.rmtree(run_dir, ignore_errors=True)


def test_bench_chaos(benchmark, bench_json_dir) -> None:
    tenants = default_tenants()
    config = _chaos_config()

    t0 = time.perf_counter()
    result = benchmark(run_service, tenants, config, seed=SEED)
    single_wall = time.perf_counter() - t0

    wall = benchmark.stats.stats.mean if benchmark.stats else single_wall
    resilience = run_chaos(tenants, config, seed=SEED)["resilience"]
    events = result.notes["events"]
    serial_wall = _chaos_walltime(1)
    parallel_wall = _chaos_walltime(WORKERS) if fork_available() else None

    summary = {
        "horizon_s": HORIZON,
        "seed": SEED,
        "scenario": SCENARIO,
        "des_events": events,
        "events_per_sec": events / wall if wall else None,
        "goodput_retention_pct": 100.0 * resilience["goodput_retention"],
        "completed": resilience["completed"],
        "baseline_completed": resilience["baseline_completed"],
        "outages": resilience["outages"],
        "migrations": resilience["migrations"],
        "breaker_transitions": resilience["breaker_transitions"],
        "replications": REPLICATIONS,
        "chaos_serial_wall_s": serial_wall,
        "chaos_workers": WORKERS,
        "chaos_parallel_wall_s": parallel_wall,
    }
    record(benchmark, **summary)
    write_bench_json(bench_json_dir, "chaos", summary)
    assert resilience["outages"] > 0
    assert resilience["completed"] > 0
    assert 0.0 < resilience["goodput_retention"] <= 1.5
