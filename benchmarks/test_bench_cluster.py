"""Benchmark: cluster configuration storm (extension — scale-out study).

Sweeps the blade count with every blade fetching bitstreams from one
shared 100 MB/s management server: FRTR saturates the server and its
parallel efficiency collapses; PRTR's advantage grows with machine size
toward the bitstream-size ratio.
"""

from __future__ import annotations

from repro.analysis import render_table
from repro.hardware import PUBLISHED_TABLE2
from repro.rtr.cluster import compare_cluster
from repro.workloads import CallTrace, HardwareTask

from conftest import record

DUAL_BYTES = PUBLISHED_TABLE2["dual_prr"].bitstream_bytes


def blade_trace() -> CallTrace:
    lib = {f"m{i}": HardwareTask(f"m{i}", 0.02) for i in range(3)}
    return CallTrace([lib[f"m{i % 3}"] for i in range(24)], name="blade")


def sweep(blade_counts=(1, 2, 6, 12, 24)) -> list[dict[str, float]]:
    rows = []
    f1 = p1 = None
    for n in blade_counts:
        traces = [blade_trace()] * n
        frtr, prtr = compare_cluster(
            traces,
            estimated=True,
            server_bandwidth=100e6,
            force_miss=True,
            bitstream_bytes=DUAL_BYTES,
            control_time=1e-5,
        )
        if f1 is None:
            f1, p1 = frtr.makespan, prtr.makespan
        rows.append(
            {
                "blades": n,
                "frtr_makespan": frtr.makespan,
                "prtr_makespan": prtr.makespan,
                "speedup": frtr.makespan / prtr.makespan,
                "frtr_efficiency": frtr.parallel_efficiency(f1),
                "prtr_efficiency": prtr.parallel_efficiency(p1),
                "frtr_server_util": frtr.server_utilization,
                "prtr_server_util": prtr.server_utilization,
            }
        )
    return rows


def test_bench_cluster_storm(benchmark) -> None:
    rows = benchmark(sweep)
    print()
    print(render_table(
        rows,
        title="Configuration storm: shared 100 MB/s bitstream server, "
        "wire-limited configs",
    ))
    first, last = rows[0], rows[-1]
    assert last["frtr_efficiency"] < 0.3, "FRTR must collapse at scale"
    assert last["speedup"] > first["speedup"], (
        "PRTR's advantage must grow with machine size"
    )
    assert last["frtr_server_util"] > 0.95
    record(
        benchmark,
        artifact="Ablation F (cluster configuration storm)",
        speedup_at_1=first["speedup"],
        speedup_at_max=last["speedup"],
        frtr_efficiency_at_max=last["frtr_efficiency"],
    )
