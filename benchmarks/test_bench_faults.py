"""Benchmark: effective speedup under faults (extension — robustness study).

Sweeps the ICAP chunk-abort rate against target hit ratios with the
graceful-degradation recovery policy (retry with backoff, then fall back
to a full reconfiguration).  The fault domain is asymmetric by design:
only the custom ICAP path pays the swept rate, because the vendor
SelectMap path validates its writes end-to-end.  PRTR's fault-free
advantage therefore erodes as the rate climbs until it crosses below the
FRTR baseline — the PRTR->FRTR crossover the recovery subsystem exists
to survive.
"""

from __future__ import annotations

from repro.analysis import render_table
from repro.analysis.reliability import (
    find_crossover,
    sweep_fault_hit_grid,
)

from conftest import record

RATES = (0.0, 1e-3, 0.01, 0.03, 0.1, 0.2)
HIT_RATIOS = (0.0, 0.9)


def sweep():
    return sweep_fault_hit_grid(
        RATES, HIT_RATIOS, n_calls=20, task_time=0.1, seed=0
    )


def test_bench_fault_sweep(benchmark) -> None:
    points = benchmark(sweep)
    print()
    print(render_table(
        [p.as_row() for p in points],
        title="Effective speedup vs chunk-abort rate x hit ratio "
        "(fallback-full recovery)",
    ))

    by_h = {
        h: [p for p in points if p.target_hit_ratio == h]
        for h in HIT_RATIOS
    }
    fault_free = [p for p in points if p.fault_rate == 0.0]

    # Fault-free PRTR must win at every hit ratio (the paper's regime).
    assert all(p.speedup > 1.0 for p in fault_free)
    # Speedup must degrade monotonically-ish: the highest swept rate is
    # strictly worse than fault-free at the same hit ratio.
    for h, row in by_h.items():
        assert row[-1].speedup < row[0].speedup, (
            f"faults must cost speedup at H={h}"
        )
    # The headline: at low hit ratio the sweep crosses S_eff = 1 — PRTR
    # under heavy ICAP faults loses to the unaffected FRTR baseline.
    crossover = find_crossover(points, min(HIT_RATIOS))
    assert crossover is not None, "sweep must show the PRTR->FRTR crossover"
    assert by_h[min(HIT_RATIOS)][-1].speedup <= 1.0
    # High hit ratios shield PRTR: fewer configurations, fewer faults, so
    # the crossover moves to higher rates (or out of the sweep entirely).
    high_cross = find_crossover(points, max(HIT_RATIOS))
    assert high_cross is None or high_cross >= crossover
    # Recovery must actually have fired where the curve bent.
    stressed = by_h[min(HIT_RATIOS)][-1]
    assert stressed.prtr_retries > 0 and stressed.prtr_fallbacks > 0
    assert not stressed.prtr_degraded, "fallback keeps the blade alive"
    assert 0.0 < stressed.availability < 1.0

    record(
        benchmark,
        artifact="Ablation J (effective speedup under faults)",
        crossover_rate=crossover,
        fault_free_speedup=by_h[min(HIT_RATIOS)][0].speedup,
        stressed_speedup=stressed.speedup,
        stressed_availability=stressed.availability,
    )
