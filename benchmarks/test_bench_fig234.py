"""Benchmark: regenerate the Figure 2-4 execution profiles.

The timelines must show the structural facts the schematics assert: FRTR
serializes configuration and execution; PRTR overlaps the ICAP lane with
the PRR lane on misses; steady-state hits leave the ICAP lane idle.
"""

from __future__ import annotations

from repro.experiments import fig234_profiles as profiles
from repro.sim.trace import Phase

from conftest import record


def test_bench_fig234_profiles(benchmark) -> None:
    text = benchmark(profiles.render_all)
    assert "FRTR execution profile" in text

    # Structural assertions behind the pictures.
    frtr = profiles.frtr_profile()
    frtr.assert_lane_exclusive("main")  # strictly serial

    missed = profiles.prtr_profile_missed()
    config_spans = [
        s for s in missed.by_lane("icap") if s.note == "partial"
    ]
    task_spans = missed.by_phase(Phase.TASK)
    assert config_spans, "missed-task profile shows no partial configs"
    overlaps = sum(
        1 for c in config_spans for t in task_spans if c.overlaps(t)
    )
    assert overlaps > 0, "partial configuration never overlapped execution"

    hit = profiles.prtr_profile_hit()
    partials = [s for s in hit.by_lane("icap") if s.note == "partial"]
    assert len(partials) <= 1, "steady-state hits still reconfigure"

    print()
    print(text)
    record(
        benchmark,
        artifact="Figures 2-4 (profiles)",
        missed_overlapping_configs=overlaps,
        hit_partials=len(partials),
    )
