"""Benchmark: regenerate Figure 5 (asymptotic PRTR performance).

Evaluates the full Eq. (7) grid (241 task times x 5 X_PRTR x 5 H) and
checks every prose claim the paper makes about the figure's shape.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import fig5

from conftest import record


def test_bench_fig5_grid(benchmark) -> None:
    result = benchmark(fig5.run)
    assert result.values.shape == (241, 5, 5)
    assert np.all(np.isfinite(result.values))
    claims = fig5.shape_claims()
    assert all(claims.values()), f"figure 5 shape claims failed: {claims}"
    print()
    print(fig5.render(x_prtr=0.17))
    print()
    for name, ok in claims.items():
        print(f"  claim {name}: {'PASS' if ok else 'FAIL'}")
    record(benchmark, artifact="Figure 5", grid_points=result.values.size,
           **claims)
