"""Benchmark: regenerate Figure 9 (experimental PRTR speedup, both panels).

For each panel (estimated / measured configuration times) the harness
runs the discrete-event experiment across the task-time sweep, overlays
the Eq. (6)/(7) curves, and checks the paper's quantitative prose:
2x plateau, ~7x estimated peak, ~87x measured peak, and sim-vs-model
agreement at every point.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import fig9
from repro.model import ModelParameters, speedup

from conftest import record


def _sim_vs_model(which: str, n_calls: int = 90) -> float:
    p = fig9.panel(which)
    x, s_sim = fig9.simulate_points(p, n_calls=n_calls)
    params = ModelParameters(
        x_task=x, x_prtr=p.x_prtr, hit_ratio=0.0, x_control=p.x_control
    )
    s_model = speedup(params, n_calls)
    return float(np.max(np.abs(s_sim - s_model) / s_model))


@pytest.mark.parametrize("which", ["estimated", "measured"])
def test_bench_fig9_panel(benchmark, which: str) -> None:
    p = fig9.panel(which)
    x_sim, s_sim = benchmark(fig9.simulate_points, p, None, 90)
    assert np.all(s_sim > 0)

    # Eq. (6) agreement is asymptotic: the trace boundary contributes at
    # most one stage's worth of configuration overlap, i.e. O(1/n).
    # Float-exact agreement against the pipeline formula is asserted in
    # test_bench_validation.py.
    err = _sim_vs_model(which)
    assert err < 2.0 / 90, f"sim diverged from Eq. (6) by {err:.2%}"

    print()
    print(fig9.render(which, n_calls=90))
    claims = fig9.shape_claims()
    for name, ok in claims.items():
        if name.startswith(which):
            print(f"  claim {name}: {'PASS' if ok else 'FAIL'}")
            assert ok
    record(
        benchmark,
        artifact=f"Figure 9 ({which})",
        x_prtr=p.x_prtr,
        max_sim_model_rel_err=err,
        peak_speedup=float(np.max(s_sim)),
    )
