"""Benchmark: heterogeneity study (extension — model-limits experiment).

Sweeps task-time variance at the Fig. 9(b) peak and reports how far the
paper's average-based Eq. (7) drifts from the true mixed-workload
speedup, cross-validated by a DES run on a literal sampled trace.
"""

from __future__ import annotations

from repro.analysis import render_table
from repro.experiments.heterogeneity import run, simulate_point

from conftest import record


def test_bench_heterogeneity(benchmark) -> None:
    points = benchmark(run, ("uniform", "lognormal", "bimodal"),
                       (0.0, 0.1, 0.25, 0.5), 60_000)
    print()
    rows = [
        {
            "distribution": p.distribution,
            "cv": p.cv,
            "S_true": p.true_speedup,
            "S_mean_based": p.mean_based_speedup,
            "overestimate_%": p.overestimate_pct,
        }
        for p in points
    ]
    print(render_table(
        rows, title="Task-time heterogeneity at the Fig. 9(b) peak"
    ))
    worst = max(p.overestimate_pct for p in points)
    assert worst > 15.0

    check = simulate_point(n_calls=90)
    print(
        f"\nDES cross-check (bimodal cv=0.5, n=90): simulated "
        f"{check['simulated']:.2f} vs stochastic prediction "
        f"{check['predicted_finite']:.2f} "
        f"({check['rel_error']:.2%})"
    )
    assert check["rel_error"] < 2.0 / 90
    record(
        benchmark,
        artifact="Ablation D (heterogeneity / model limits)",
        worst_overestimate_pct=worst,
        des_rel_error=check["rel_error"],
    )
