"""Benchmark: hybrid sweep engine throughput (grid-points/sec).

Not a published figure — this measures the harness itself: how many
reliability grid points per wall-clock second the sweep engine
sustains serially and under ``--workers 4``, and how much faster the
calibrated hybrid fast path (``--hybrid=on``) answers an
exactness-proven grid than the pure DES (``--hybrid=off``) — with the
byte-identity of the two point lists asserted, because a speedup that
changes answers is a bug, not a result.  With ``--bench-json DIR`` the
numbers land in ``DIR/BENCH_hybrid.json``; the ``bench-trajectory`` CI
job folds them into ``BENCH_trajectory.json`` (docs/PERFORMANCE.md).
"""

from __future__ import annotations

import time

from repro.analysis.reliability import sweep_fault_hit_grid
from repro.runtime.parallel import fork_available

from conftest import record, write_bench_json

#: a fault-free grid — every cell satisfies the exactness predicates,
#: so ``hybrid="on"`` answers all of it analytically
RATES = (0.0,)
HIT_RATIOS = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 1.0)
N_CALLS = 40
SEED = 0


def _grid_walltime(hybrid: str, workers: int) -> tuple[float, list]:
    """Wall seconds (and points) for one full grid evaluation."""
    t0 = time.perf_counter()
    points = sweep_fault_hit_grid(
        RATES, HIT_RATIOS, n_calls=N_CALLS, seed=SEED,
        workers=workers, hybrid=hybrid,
    )
    return time.perf_counter() - t0, points


def test_bench_hybrid(benchmark, bench_json_dir) -> None:
    n_points = len(RATES) * len(HIT_RATIOS)

    des_wall, des_points = _grid_walltime("off", workers=1)
    hyb_wall, hyb_points = _grid_walltime("on", workers=1)
    assert des_points == hyb_points, "hybrid changed the answers"

    parallel_wall = (
        _grid_walltime("on", workers=4)[0] if fork_available() else None
    )

    # The benchmark fixture times the hybrid serial walk (the mode the
    # trajectory tracks); the one-shot walls above feed the ratio.
    benchmark(
        sweep_fault_hit_grid,
        RATES, HIT_RATIOS, n_calls=N_CALLS, seed=SEED, hybrid="on",
    )
    wall = benchmark.stats.stats.mean if benchmark.stats else hyb_wall

    summary = {
        "grid_points": n_points,
        "n_calls": N_CALLS,
        "seed": SEED,
        "des_wall_s": des_wall,
        "hybrid_wall_s": hyb_wall,
        "hybrid_speedup": des_wall / hyb_wall if hyb_wall else None,
        "grid_points_per_sec_serial": n_points / wall if wall else None,
        "grid_points_per_sec_workers4": (
            n_points / parallel_wall if parallel_wall else None
        ),
        "workers": 4 if parallel_wall is not None else 1,
    }
    record(benchmark, **summary)
    write_bench_json(bench_json_dir, "hybrid", summary)
    assert summary["hybrid_speedup"] is not None
    assert len(des_points) == n_points
