"""Benchmark: hybrid sweep engine throughput (grid-points/sec).

Not a published figure — this measures the harness itself: how many
reliability grid points per wall-clock second the sweep engine
sustains serially and under ``--workers 4``, and how much faster the
calibrated hybrid fast path (``--hybrid=on``) answers an
exactness-proven grid than the pure DES (``--hybrid=off``) — with the
byte-identity of the two point lists asserted, because a speedup that
changes answers is a bug, not a result.  With ``--bench-json DIR`` the
numbers land in ``DIR/BENCH_hybrid.json``; the ``bench-trajectory`` CI
job folds them into ``BENCH_trajectory.json`` (docs/PERFORMANCE.md).
"""

from __future__ import annotations

import os
import time

from repro.analysis.reliability import sweep_fault_hit_grid
from repro.runtime.parallel import fork_available

from conftest import record, write_bench_json

#: a fault-free grid — every cell satisfies the exactness predicates,
#: so ``hybrid="on"`` answers all of it analytically
RATES = (0.0,)
HIT_RATIOS = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 1.0)
#: the workers-4 measurement instead runs a DES-forced grid: nonzero
#: fault rates defeat the closed form, so every point costs real event
#: processing and the grid is big enough for that work to dominate the
#: one-time fork startup.  Timing workers on the analytically-answered
#: grid above measures nothing but process spawn — the
#: ``grid_points_per_sec_workers4`` trajectory entry for pr8 did
#: exactly that, which is why it sat at ~1/6 of the *serial* rate.
PAR_RATES = (0.0, 1e-3, 0.01)
N_CALLS = 40
SEED = 0


def _grid_walltime(
    hybrid: str, workers: int, rates: tuple = RATES
) -> tuple[float, list]:
    """Wall seconds (and points) for one full grid evaluation."""
    t0 = time.perf_counter()
    points = sweep_fault_hit_grid(
        rates, HIT_RATIOS, n_calls=N_CALLS, seed=SEED,
        workers=workers, hybrid=hybrid,
    )
    return time.perf_counter() - t0, points


def test_bench_hybrid(benchmark, bench_json_dir) -> None:
    n_points = len(RATES) * len(HIT_RATIOS)

    des_wall, des_points = _grid_walltime("off", workers=1)
    hyb_wall, hyb_points = _grid_walltime("on", workers=1)
    assert des_points == hyb_points, "hybrid changed the answers"

    # Serial-vs-parallel on the DES-forced grid: same work both sides,
    # so the ratio reflects sharding, not fork startup.  On a box with
    # one schedulable core the four forks time-slice it, so parallel
    # can only be bounded (small overhead), not faster.
    par_points = len(PAR_RATES) * len(HIT_RATIOS)
    parallel_wall = serial_des_wall = None
    if fork_available():
        serial_des_wall, serial_pts = _grid_walltime(
            "off", workers=1, rates=PAR_RATES
        )
        parallel_wall, parallel_pts = _grid_walltime(
            "off", workers=4, rates=PAR_RATES
        )
        assert parallel_pts == serial_pts, "workers changed the answers"
        cores = len(os.sched_getaffinity(0))
        bound = serial_des_wall * (1.5 if cores < 2 else 1.0)
        assert parallel_wall <= bound, (
            f"4 workers took {parallel_wall:.3f}s vs {serial_des_wall:.3f}s "
            f"serial on {par_points} DES points ({cores} core(s)) — the "
            f"grid no longer amortizes fork startup"
        )

    # The benchmark fixture times the hybrid serial walk (the mode the
    # trajectory tracks); the one-shot walls above feed the ratio.
    benchmark(
        sweep_fault_hit_grid,
        RATES, HIT_RATIOS, n_calls=N_CALLS, seed=SEED, hybrid="on",
    )
    wall = benchmark.stats.stats.mean if benchmark.stats else hyb_wall

    summary = {
        "grid_points": n_points,
        "n_calls": N_CALLS,
        "seed": SEED,
        "des_wall_s": des_wall,
        "hybrid_wall_s": hyb_wall,
        "hybrid_speedup": des_wall / hyb_wall if hyb_wall else None,
        "grid_points_per_sec_serial": n_points / wall if wall else None,
        # The workers-4 rate is reported on its own DES basis (points of
        # *simulated* work per second, serial alongside for the same
        # grid) — the retired grid_points_per_sec_workers4 metric mixed
        # bases: an analytically-answered grid against fork startup.
        "des_grid_points": par_points,
        "des_points_per_sec_serial": (
            par_points / serial_des_wall if serial_des_wall else None
        ),
        "des_points_per_sec_workers4": (
            par_points / parallel_wall if parallel_wall else None
        ),
        "workers": 4 if parallel_wall is not None else 1,
    }
    record(benchmark, **summary)
    write_bench_json(bench_json_dir, "hybrid", summary)
    assert summary["hybrid_speedup"] is not None
    assert len(des_points) == n_points
