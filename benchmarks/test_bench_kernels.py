"""Microbenchmarks: the computational kernels behind the experiments.

Not a paper artifact — throughput numbers for the building blocks, so
regressions in the vectorized model evaluation, the DES engine, or the
image kernels are visible across commits.
"""

from __future__ import annotations

import numpy as np

from repro.model import ModelParameters, asymptotic_speedup
from repro.sim import Delay, Simulator
from repro.workloads import median_filter, sobel_filter, synthetic_image

from conftest import record


def test_bench_model_eval_throughput(benchmark) -> None:
    """Vectorized Eq. (7) over a 100k-point grid."""
    x = np.logspace(-3, 2, 100_000)
    params = ModelParameters(x_task=x, x_prtr=0.17, hit_ratio=0.3,
                             x_control=1e-5)
    out = benchmark(asymptotic_speedup, params)
    assert out.shape == x.shape
    record(benchmark, points=x.size)


def test_bench_des_event_throughput(benchmark) -> None:
    """Raw DES event-processing rate (10k-delay chain)."""

    def run_chain() -> float:
        sim = Simulator()

        def proc():
            for _ in range(10_000):
                yield Delay(1.0)

        sim.spawn(proc(), name="chain")
        return sim.run()

    final = benchmark(run_chain)
    assert final == 10_000.0
    record(benchmark, events=10_000)


def test_bench_median_filter(benchmark) -> None:
    img = synthetic_image(512, 512)
    out = benchmark(median_filter, img)
    assert out.shape == img.shape
    record(benchmark, pixels=img.size)


def test_bench_sobel_filter(benchmark) -> None:
    img = synthetic_image(512, 512)
    out = benchmark(sobel_filter, img)
    assert out.shape == img.shape
    record(benchmark, pixels=img.size)
