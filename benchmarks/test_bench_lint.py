"""Analyzer throughput: reprolint cold vs warm over the live tree.

Not a paper artifact — the whole-program pass (symbol table, call
graph, taint) runs on every CI push, so its cost is tracked like any
other kernel.  The warm benchmark also *asserts* the incremental
cache's contract: zero files re-parsed, identical findings, and a
measurably smaller wall than the cold pass.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

from conftest import record, write_bench_json

REPO = Path(__file__).resolve().parent.parent
TOOLS = REPO / "tools"
if str(TOOLS) not in sys.path:
    sys.path.insert(0, str(TOOLS))

from reprolint import run_lint  # noqa: E402

SRC = REPO / "src" / "repro"


def test_bench_lint_cold(benchmark) -> None:
    """Full two-pass analysis, no cache: every file through ast.parse."""
    result = benchmark.pedantic(
        run_lint, args=(SRC, REPO), rounds=3, iterations=1
    )
    assert result.parsed == result.files > 0
    assert not result.errors
    record(benchmark, files=result.files, parsed=result.parsed)


def test_bench_lint_warm(benchmark, tmp_path, bench_json_dir) -> None:
    """Warm-cache run: re-parse zero files, and beat the cold wall."""
    cache = tmp_path / "reprolint-cache.json"
    run_lint(SRC, REPO, cache_path=cache)  # prime

    t0 = time.perf_counter()
    cold = run_lint(SRC, REPO)
    cold_wall = time.perf_counter() - t0

    result = benchmark.pedantic(
        run_lint, args=(SRC, REPO),
        kwargs={"cache_path": cache}, rounds=5, iterations=1,
    )
    assert result.parsed == 0
    assert result.findings == cold.findings
    assert result.suppressed == cold.suppressed

    warm_wall = benchmark.stats.stats.mean
    assert warm_wall < cold_wall, (
        f"warm lint ({warm_wall:.3f}s) not faster than cold "
        f"({cold_wall:.3f}s): the cache is not paying for itself"
    )
    files_per_sec = result.files / warm_wall
    record(
        benchmark, files=result.files, cold_wall_s=cold_wall,
        lint_files_per_sec=files_per_sec,
    )
    write_bench_json(bench_json_dir, "lint", {
        "files": result.files,
        "cold_wall_s": cold_wall,
        "warm_wall_s": warm_wall,
        "lint_files_per_sec": files_per_sec,
    })
