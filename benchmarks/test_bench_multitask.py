"""Benchmark: multi-tasking / hardware virtualization (Section 5 thesis).

Not a published figure — the paper *argues* PRTR's real payoff is
multi-tasking and hardware virtualization and defers the experiment; this
bench runs it.  Three applications share the FPGA; PRTR's shared-PRR
cache plus concurrent execution is measured against monolithic FRTR.
"""

from __future__ import annotations

from repro.analysis import render_table
from repro.hardware import PUBLISHED_TABLE2, uniform_prr_floorplan
from repro.rtr import AppSpec, compare_multitask
from repro.workloads import CallTrace, HardwareTask

from conftest import record


def build_apps() -> list[AppSpec]:
    lib = {f"m{i}": HardwareTask(f"m{i}", 0.03) for i in range(6)}

    def app(name, mods, n, arrival=0.0):
        return AppSpec(
            name, CallTrace([lib[m] for m in mods * n], name=name),
            arrival_time=arrival,
        )

    return [
        app("A", ["m0", "m1"], 20),
        app("B", ["m1", "m2"], 20),          # shares m1 with A
        app("C", ["m3", "m4", "m5"], 15),
        app("D", ["m0", "m2"], 10, arrival=1.0),  # late, all-shared
    ]


def test_bench_multitask(benchmark) -> None:
    apps = build_apps()
    frtr, prtr = benchmark(
        compare_multitask,
        apps,
        floorplan=uniform_prr_floorplan(4, 6),
        bitstream_bytes=PUBLISHED_TABLE2["dual_prr"].bitstream_bytes,
        control_time=1e-5,
    )
    speedup = frtr.makespan / prtr.makespan
    assert speedup > 20, "multi-tasking PRTR should dominate FRTR"
    assert prtr.total_configs < prtr.total_calls / 2, (
        "module sharing should eliminate most reconfigurations"
    )
    # The late-arriving all-shared app must ride the warm cache.
    late = next(a for a in prtr.apps if a.name == "D")
    assert late.n_configs <= 2

    print()
    rows = [
        {
            "app": f.name,
            "FRTR turnaround": f.turnaround,
            "PRTR turnaround": p.turnaround,
            "PRTR configs": p.n_configs,
        }
        for f, p in zip(frtr.apps, prtr.apps)
    ]
    print(render_table(rows, title="Multi-tasking: FRTR vs PRTR"))
    print(f"\nmakespan speedup: {speedup:.1f}x   "
          f"shared-cache H: {prtr.notes['hit_ratio']:.2f}")
    record(
        benchmark,
        artifact="Ablation C (multi-tasking / virtualization)",
        makespan_speedup=speedup,
        prtr_hit_ratio=prtr.notes["hit_ratio"],
        prtr_configs=prtr.total_configs,
        total_calls=prtr.total_calls,
    )
