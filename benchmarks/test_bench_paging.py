"""Benchmark: hardware-page grouping quality (Section 2.1's paging model).

Mines function affinity from a training trace, groups functions into
pages, and measures the hit ratio (and the Eq. 7 speedup it buys) on a
held-out test trace — affinity grouping vs sequential vs random vs no
paging.
"""

from __future__ import annotations

from repro.analysis import render_table
from repro.caching.paging import (
    group_by_affinity,
    group_random,
    group_sequential,
    paged_hit_ratio,
)
from repro.hardware import PUBLISHED_TABLE2
from repro.model import ModelParameters, asymptotic_speedup
from repro.workloads import HardwareTask, markov_trace

from conftest import record


def _speedup_at(h: float) -> float:
    full = PUBLISHED_TABLE2["full"].measured_time_s
    dual = PUBLISHED_TABLE2["dual_prr"].measured_time_s
    return float(asymptotic_speedup(ModelParameters(
        x_task=0.005 / full,
        x_prtr=dual / full,
        hit_ratio=h,
        x_control=10e-6 / full,
    )))


def run_study() -> list[dict[str, object]]:
    library = {f"f{i:02d}": HardwareTask(f"f{i:02d}", 0.005)
               for i in range(12)}
    fns = sorted(library)
    train = markov_trace(library, 3000, self_loop=0.05, follow=0.75,
                         seed=1)
    test = markov_trace(library, 3000, self_loop=0.05, follow=0.75,
                        seed=2)
    tables = {
        "no paging (size 1)": group_sequential(fns, 1),
        "sequential pages": group_sequential(fns, 3),
        "random pages": group_random(fns, 3, seed=5),
        "affinity pages": group_by_affinity(train, 3, functions=fns),
    }
    rows = []
    for name, table in tables.items():
        h = paged_hit_ratio(test, table, slots=2)
        rows.append({
            "grouping": name,
            "pages": table.n_pages,
            "hit_ratio": h,
            "S_inf": _speedup_at(h),
        })
    return rows


def test_bench_paging(benchmark) -> None:
    rows = benchmark(run_study)
    print()
    print(render_table(
        rows, title="Hardware-page grouping on a Markov-structured trace"
    ))
    by = {str(r["grouping"]): float(r["hit_ratio"]) for r in rows}
    assert by["affinity pages"] > by["random pages"] + 0.1
    assert by["affinity pages"] > by["no paging (size 1)"]
    record(
        benchmark,
        artifact="Ablation G (hardware paging / grouping)",
        affinity_h=by["affinity pages"],
        random_h=by["random pages"],
    )
