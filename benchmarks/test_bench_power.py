"""Benchmark: power sweep throughput (energy grid points/sec).

Measures the time-vs-energy sweep harness (``repro power``): how many
``(n_prrs, hit_ratio)`` power points per wall-clock second the engine
sustains with the pure DES and with the closed-form energy replay
(``hybrid="on"``) — byte-identity of the two point lists asserted,
since an energy number that depends on the evaluation path would be a
bug, not a speedup.  With ``--bench-json DIR`` the numbers land in
``DIR/BENCH_power.json`` for the ``bench-trajectory`` CI job.
"""

from __future__ import annotations

import time

from repro.power.pareto import (
    DEFAULT_POWER_HIT_RATIOS,
    DEFAULT_PRR_COUNTS,
    measure_power_point,
)

from conftest import record, write_bench_json

N_CALLS = 30
SEED = 0


def _grid(hybrid: str) -> list:
    return [
        measure_power_point(
            n, h, n_calls=N_CALLS, seed=SEED, hybrid=hybrid
        )
        for n in DEFAULT_PRR_COUNTS
        for h in DEFAULT_POWER_HIT_RATIOS
    ]


def test_bench_power(benchmark, bench_json_dir) -> None:
    n_points = len(DEFAULT_PRR_COUNTS) * len(DEFAULT_POWER_HIT_RATIOS)

    t0 = time.perf_counter()
    des_points = _grid("off")
    des_wall = time.perf_counter() - t0
    t0 = time.perf_counter()
    hyb_points = _grid("on")
    hyb_wall = time.perf_counter() - t0
    assert des_points == hyb_points, "hybrid changed the energy answers"

    benchmark(_grid, "on")
    wall = benchmark.stats.stats.mean if benchmark.stats else hyb_wall

    summary = {
        "grid_points": n_points,
        "n_calls": N_CALLS,
        "seed": SEED,
        "des_wall_s": des_wall,
        "hybrid_wall_s": hyb_wall,
        "power_hybrid_speedup": des_wall / hyb_wall if hyb_wall else None,
        "power_points_per_sec": n_points / wall if wall else None,
    }
    record(benchmark, **summary)
    write_bench_json(bench_json_dir, "power", summary)
    assert len(des_points) == n_points
