"""Benchmark: relocation/defragmentation study (ref [24]'s model).

Variable-width modules streamed through the XC2VP50's reconfigurable
column space: how often does external fragmentation block a placement,
what does defragmentation cost in relocation traffic, and how does the
allocation strategy matter?
"""

from __future__ import annotations

import numpy as np

from repro.analysis import render_table
from repro.caching.relocation import AllocationError, ColumnAllocator
from repro.hardware import XC2VP50

from conftest import record

RECONFIG_COLUMNS = 48  # the dual-layout share of the device
N_EVENTS = 2000


def churn(strategy: str, defrag: bool, seed: int = 0) -> dict[str, float]:
    """Random allocate/free churn of 2-8 column modules."""
    rng = np.random.default_rng(seed)
    alloc = ColumnAllocator(RECONFIG_COLUMNS, strategy=strategy)
    next_id = 0
    frag_failures = 0
    placements = 0
    relocation_traffic = 0
    for _ in range(N_EVENTS):
        if alloc.residents and rng.random() < 0.45:
            victim = alloc.residents[
                int(rng.integers(0, len(alloc.residents)))
            ]
            alloc.free(victim)
            continue
        width = int(rng.integers(2, 9))
        name = f"m{next_id}"
        next_id += 1
        try:
            if defrag:
                _, traffic = alloc.allocate_with_defrag(name, width)
                relocation_traffic += traffic
            else:
                alloc.allocate(name, width)
            placements += 1
        except AllocationError as exc:
            if exc.reason == "fragmentation":
                frag_failures += 1
            # capacity failures are inherent; drop the request either way
    return {
        "strategy": strategy,
        "defrag": defrag,
        "placements": placements,
        "frag_failures": frag_failures,
        "relocated_columns": relocation_traffic,
        "relocation_ms": relocation_traffic
        * XC2VP50.column_bytes / 66e6 * 1e3,
    }


def run_study() -> list[dict[str, float]]:
    return [
        churn("first_fit", defrag=False),
        churn("best_fit", defrag=False),
        churn("first_fit", defrag=True),
        churn("best_fit", defrag=True),
    ]


def test_bench_relocation(benchmark) -> None:
    rows = benchmark(run_study)
    print()
    print(render_table(
        rows,
        title="Relocation & defragmentation churn "
        f"({RECONFIG_COLUMNS}-column space, {N_EVENTS} events)",
    ))
    by = {(str(r["strategy"]), bool(r["defrag"])): r for r in rows}
    # Defragmentation must eliminate fragmentation failures entirely...
    assert by[("first_fit", True)]["frag_failures"] == 0
    assert by[("best_fit", True)]["frag_failures"] == 0
    # ...at a measurable relocation-traffic cost.
    assert by[("first_fit", True)]["relocated_columns"] > 0
    # Without defrag, fragmentation failures happen.
    assert by[("first_fit", False)]["frag_failures"] > 0
    record(
        benchmark,
        artifact="Ablation H (relocation / defragmentation)",
        ff_frag_failures=by[("first_fit", False)]["frag_failures"],
        defrag_relocation_ms=by[("first_fit", True)]["relocation_ms"],
    )
