"""Benchmark: technology-scaling study (extension of Section 5).

Sweeps the Virtex-II Pro family plus Virtex-4/5 port generations and
reports where the PRTR bounds land on each device under port-limited
("wire") and XD1-API-limited overhead scenarios.
"""

from __future__ import annotations

from repro.analysis import render_table
from repro.experiments.scaling import run

from conftest import record


def test_bench_scaling(benchmark) -> None:
    points = benchmark(run)
    print()
    rows = [
        {
            "device": p.device,
            "family": p.family,
            "scenario": p.scenario,
            "full_MB": p.full_bitstream_bytes / 1e6,
            "T_FRTR_ms": p.t_frtr * 1e3,
            "T_PRTR_ms": p.t_prtr * 1e3,
            "X_PRTR": p.x_prtr,
            "peak_S": p.peak_speedup,
        }
        for p in points
    ]
    print(render_table(rows, title="Technology scaling of the PRTR bounds"))

    wire = [p for p in points if p.scenario == "wire"]
    assert all(6.0 < p.peak_speedup < 7.5 for p in wire), (
        "the wire-limited peak is the floorplan-share bound everywhere"
    )
    by = {(p.device, p.scenario): p for p in points}
    v2, v4 = by[("XC2VP50", "wire")], by[("V4LX60", "wire")]
    assert v4.t_frtr < v2.t_frtr / 4
    record(
        benchmark,
        artifact="Ablation E (technology scaling)",
        devices=len({p.device for p in points}),
        v2_to_v4_frtr_speedup=v2.t_frtr / v4.t_frtr,
    )
