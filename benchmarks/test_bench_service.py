"""Benchmark: multi-tenant service throughput (requests/sec, events/sec).

Not a published figure — this measures the harness itself: how many
service requests and DES events per wall-clock second the open-arrival
scheduler sustains, and how multi-replication serve runs scale from a
serial walk to forked workers.  With ``--bench-json DIR`` the numbers
land in ``DIR/BENCH_service.json`` for trend tracking.
"""

from __future__ import annotations

import shutil
import tempfile
import time

from repro.runtime.parallel import fork_available
from repro.service import (
    ServiceConfig,
    crash_safe_serve,
    default_tenants,
    run_service,
)

from conftest import record, write_bench_json

HORIZON = 8.0
SEED = 11
REPLICATIONS = 4
WORKERS = 2


def _serve_walltime(workers: int) -> float:
    """Wall seconds for one multi-replication serve run."""
    run_dir = tempfile.mkdtemp(prefix="bench-serve-")
    try:
        t0 = time.perf_counter()
        crash_safe_serve(
            f"{run_dir}/run",
            default_tenants(),
            ServiceConfig(horizon=HORIZON),
            seed=SEED,
            replications=REPLICATIONS,
            workers=workers,
        )
        return time.perf_counter() - t0
    finally:
        shutil.rmtree(run_dir, ignore_errors=True)


def test_bench_service(benchmark, bench_json_dir) -> None:
    tenants = default_tenants()
    config = ServiceConfig(horizon=HORIZON)

    t0 = time.perf_counter()
    result = benchmark(run_service, tenants, config, seed=SEED)
    single_wall = time.perf_counter() - t0

    wall = benchmark.stats.stats.mean if benchmark.stats else single_wall
    requests = result.total_completed
    events = result.notes["events"]
    serial_wall = _serve_walltime(1)
    parallel_wall = _serve_walltime(WORKERS) if fork_available() else None

    summary = {
        "horizon_s": HORIZON,
        "seed": SEED,
        "requests_completed": requests,
        "requests_per_sec": requests / wall if wall else None,
        "des_events": events,
        "events_per_sec": events / wall if wall else None,
        "replications": REPLICATIONS,
        "serve_serial_wall_s": serial_wall,
        "serve_workers": WORKERS,
        "serve_parallel_wall_s": parallel_wall,
    }
    record(benchmark, **summary)
    write_bench_json(bench_json_dir, "service", summary)
    assert requests > 0
    assert events > 0
