"""Benchmark: regenerate Table 1 (hardware-function resource table).

The regenerated cells must match the published table *exactly* — the
percentages are deterministic floor arithmetic on the XC2VP50 totals.
"""

from __future__ import annotations

from repro.experiments import table1

from conftest import record


def test_bench_table1(benchmark) -> None:
    rows = benchmark(table1.table1_rows)
    assert len(rows) == 5
    mismatches = table1.verify_against_published()
    assert mismatches == [], f"Table 1 cells diverged: {mismatches}"
    print()
    print(table1.render())
    record(
        benchmark,
        artifact="Table 1",
        rows=len(rows),
        exact_match=True,
    )
