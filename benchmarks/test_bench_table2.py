"""Benchmark: regenerate Table 2 (bitstream sizes + configuration times).

Geometry reproduces the byte counts to <=1.5%; the calibrated timing
models reproduce every published time to <=1% — with the dual-PRR
measured time a genuine out-of-sample prediction (the handshake constant
is fitted on the single-PRR row only).
"""

from __future__ import annotations

from repro.analysis import cross_validate
from repro.experiments import table2
from repro.hardware import PUBLISHED_TABLE2

from conftest import record


def test_bench_table2(benchmark) -> None:
    rows = benchmark(table2.table2_rows)
    assert len(rows) == 3
    failures = table2.verify_against_published()
    assert failures == [], f"Table 2 cells out of tolerance: {failures}"
    print()
    print(table2.render())

    checks = cross_validate()
    for c in checks:
        print(
            f"out-of-sample: {c.layout} predicted "
            f"{c.predicted_s * 1e3:.2f} ms vs published "
            f"{c.published_s * 1e3:.2f} ms ({c.rel_error:.2%})"
        )
        assert c.rel_error < 0.01
    record(
        benchmark,
        artifact="Table 2",
        dual_prr_prediction_rel_err=checks[0].rel_error,
        published_full_ms=PUBLISHED_TABLE2["full"].measured_time_s * 1e3,
    )
