"""Benchmark: model-vs-simulation validation over the Figure 9 grid.

"The results are in good agreement with what is predicted by the model"
(Section 5) — quantified: across a task-time sweep in both panels, the
DES totals match the exact pipeline formula to float precision and the
averaged Eq. (3) model to well under 1%.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import validate_frtr, validate_prtr
from repro.experiments import fig9
from repro.hardware import PUBLISHED_TABLE2, US
from repro.rtr import FrtrExecutor, PrtrExecutor, make_node
from repro.workloads import CallTrace, HardwareTask

from conftest import record


def _run_grid(n_calls: int = 60) -> dict[str, float]:
    dual = PUBLISHED_TABLE2["dual_prr"]
    out = {"max_pipeline_err": 0.0, "max_model_err": 0.0,
           "max_frtr_err": 0.0}
    for which in ("estimated", "measured"):
        p = fig9.panel(which)
        for x_task in np.logspace(-2, 0.5, 6):
            t_task = x_task * p.t_frtr
            lib = {n: HardwareTask(n, t_task)
                   for n in ("median", "sobel", "smoothing")}
            trace = CallTrace(
                [lib[n] for n in ("median", "sobel", "smoothing")
                 * (n_calls // 3)],
                name="val",
            )
            frtr = FrtrExecutor(
                make_node(), estimated=p.estimated, control_time=p.t_control
            ).run(trace)
            # Validate against the executor's *actual* platform times (the
            # run notes); published Table 2 values carry ~0.05%
            # calibration residuals that are not the simulator's error.
            rep_f = validate_frtr(
                frtr,
                t_frtr=frtr.notes["t_config_full"],
                t_control=p.t_control,
                t_task=t_task,
            )
            out["max_frtr_err"] = max(
                out["max_frtr_err"], rep_f.model_rel_error
            )
            prtr = PrtrExecutor(
                make_node(),
                estimated=p.estimated,
                control_time=p.t_control,
                force_miss=True,
                bitstream_bytes=dual.bitstream_bytes,
            ).run(trace)
            rep_p = validate_prtr(
                prtr,
                t_frtr=prtr.notes["t_config_full"],
                t_prtr=prtr.notes["t_config_partial"],
                t_control=p.t_control,
            )
            out["max_pipeline_err"] = max(
                out["max_pipeline_err"], rep_p.pipeline_rel_error or 0.0
            )
            out["max_model_err"] = max(
                out["max_model_err"], rep_p.model_rel_error
            )
    return out


def test_bench_validation(benchmark) -> None:
    n_calls = 60
    errs = benchmark(_run_grid, n_calls)
    print()
    print(f"max FRTR vs Eq.(1) rel error     : {errs['max_frtr_err']:.3e}")
    print(f"max PRTR vs pipeline rel error   : "
          f"{errs['max_pipeline_err']:.3e}")
    print(f"max PRTR vs Eq.(3) rel error     : {errs['max_model_err']:.3e}")
    assert errs["max_frtr_err"] < 1e-9
    assert errs["max_pipeline_err"] < 1e-9
    # Eq. (3) is the averaged model; the trace boundary contributes an
    # O(1/n) discrepancy (one stage's configuration overlap).
    assert errs["max_model_err"] < 2.0 / n_calls
    record(benchmark, artifact="Validation (Sec. 5 agreement claim)", **errs)
