#!/usr/bin/env python3
"""Capacity planning: how many PRRs does a workload need?

A system-designer workflow built entirely on the library's analytical
pieces — no simulation in the loop:

1. characterize the workload's locality with stack-distance analysis
   (the LRU inclusion property: a k-slot cache hits exactly the reuses
   at distance < k);
2. read off the hit ratio every PRR count would achieve;
3. push each (slots, H) point through Eq. (7) **together with** the PRR
   count's effect on the partial bitstream size (more PRRs -> narrower
   regions -> faster reconfiguration) to find the speedup-optimal
   design;
4. verify the chosen point with a discrete-event run.

Run:  python examples/capacity_planning.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import render_table
from repro.caching import ConfigCache, LruPolicy, lru_hit_ratios
from repro.experiments.ablations import granularity_ablation
from repro.hardware import PUBLISHED_TABLE2
from repro.model import ModelParameters, asymptotic_speedup
from repro.rtr import PrtrExecutor, make_node
from repro.hardware import uniform_prr_floorplan
from repro.workloads import HardwareTask, zipf_trace

T_TASK = 0.004  # 4 ms tasks: short enough that H matters
FULL = PUBLISHED_TABLE2["full"].measured_time_s


def main() -> None:
    library = {f"core{i}": HardwareTask(f"core{i}", T_TASK)
               for i in range(8)}
    trace = zipf_trace(library, 4000, s=1.3, seed=3)

    # 1-2: the whole hit-ratio curve from one pass over the trace.
    curve = lru_hit_ratios(trace, max_slots=8)
    print("== Stack-distance analysis (no cache simulated) ==")
    print("PRRs -> predicted LRU hit ratio:",
          {k + 1: round(float(h), 3) for k, h in enumerate(curve)})

    # 3: combine with the granularity model: more PRRs -> smaller
    # bitstreams -> lower X_PRTR, but the static region bounds the count.
    points = granularity_ablation(
        task_times=(T_TASK,), prr_counts=(1, 2, 3, 4, 6, 8)
    )
    rows = []
    for p in points:
        h = float(curve[p.n_prrs - 1])
        s = float(asymptotic_speedup(ModelParameters(
            x_task=T_TASK / FULL,
            x_prtr=p.x_prtr,
            hit_ratio=h,
            x_control=10e-6 / FULL,
        )))
        rows.append({
            "PRRs": p.n_prrs,
            "T_PRTR_ms": p.t_prtr * 1e3,
            "predicted_H": h,
            "S_inf": s,
        })
    print()
    print(render_table(rows, title="Design points (analytic only)"))
    best = max(rows, key=lambda r: float(r["S_inf"]))
    print(f"\nRecommended design: {best['PRRs']} PRRs "
          f"(predicted H={best['predicted_H']:.2f}, "
          f"S={best['S_inf']:.0f}x)")

    # 4: verify with the discrete-event executor at the chosen design.
    n_prrs = int(best["PRRs"])
    plan = uniform_prr_floorplan(
        n_prrs, (70 - 22) // n_prrs,
        static_columns=70 - n_prrs * ((70 - 22) // n_prrs),
    )
    node = make_node(plan)
    executor = PrtrExecutor(
        node,
        cache=ConfigCache(slots=n_prrs, policy=LruPolicy()),
        control_time=10e-6,
    )
    result = executor.run(trace)
    print(f"\nDES verification at {n_prrs} PRRs: achieved "
          f"H = {result.hit_ratio:.3f} "
          f"(prediction {best['predicted_H']:.3f})")
    drift = abs(result.hit_ratio - float(best["predicted_H"]))
    # The executor decides residency one call ahead (lookahead-1), so the
    # achieved H can deviate slightly from the pure-LRU prediction.
    assert drift < 0.05, f"prediction drifted by {drift:.3f}"
    print("OK - the analytic capacity plan holds in simulation.")


if __name__ == "__main__":
    main()
