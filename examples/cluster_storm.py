#!/usr/bin/env python3
"""The configuration storm: PRTR as a scalability feature.

HPRC machines are clusters: the Cray XD1 packs six FPGA blades per
chassis, and at job launch *every* blade pulls bitstreams from the same
management server.  This example sweeps the machine size with a shared
100 MB/s bitstream server and shows a result the single-node analysis
cannot: FRTR's full-bitstream traffic saturates the server and wrecks
parallel efficiency, while PRTR's ~6x smaller partial bitstreams keep
scaling — the speedup between them *grows* with the machine.

Run:  python examples/cluster_storm.py
"""

from __future__ import annotations

from repro.analysis import ascii_plot, render_table
from repro.hardware import PUBLISHED_TABLE2
from repro.rtr import compare_cluster
from repro.workloads import CallTrace, HardwareTask

DUAL_BYTES = PUBLISHED_TABLE2["dual_prr"].bitstream_bytes
FULL_BYTES = PUBLISHED_TABLE2["full"].bitstream_bytes


def blade_trace() -> CallTrace:
    lib = {f"m{i}": HardwareTask(f"m{i}", 0.02) for i in range(3)}
    return CallTrace([lib[f"m{i % 3}"] for i in range(30)], name="blade")


def main() -> None:
    print("== Scale-out with one shared 100 MB/s bitstream server ==")
    print(f"(full bitstream {FULL_BYTES / 1e6:.2f} MB, "
          f"partial {DUAL_BYTES / 1e6:.2f} MB, wire-limited configs)\n")

    rows = []
    f1 = p1 = None
    for n in (1, 2, 4, 6, 12, 24):
        frtr, prtr = compare_cluster(
            [blade_trace()] * n,
            estimated=True,
            server_bandwidth=100e6,
            force_miss=True,
            bitstream_bytes=DUAL_BYTES,
            control_time=1e-5,
        )
        if f1 is None:
            f1, p1 = frtr.makespan, prtr.makespan
        rows.append({
            "blades": n,
            "FRTR (s)": frtr.makespan,
            "PRTR (s)": prtr.makespan,
            "speedup": frtr.makespan / prtr.makespan,
            "FRTR eff": frtr.parallel_efficiency(f1),
            "PRTR eff": prtr.parallel_efficiency(p1),
            "FRTR srv util": frtr.server_utilization,
        })
    print(render_table(rows, title="Configuration storm"))

    blades = [float(r["blades"]) for r in rows]
    print()
    print(ascii_plot(
        {
            "FRTR efficiency": (blades, [float(r["FRTR eff"]) for r in rows]),
            "PRTR efficiency": (blades, [float(r["PRTR eff"]) for r in rows]),
        },
        title="Parallel efficiency vs machine size",
        xlabel="blades", ylabel="T(1)/T(n)",
        logx=True, logy=False, height=12,
    ))

    first, last = rows[0], rows[-1]
    print(
        f"\nAt 1 blade PRTR wins {float(first['speedup']):.1f}x; at "
        f"{last['blades']} blades it wins {float(last['speedup']):.1f}x "
        f"while FRTR efficiency has fallen to "
        f"{float(last['FRTR eff']):.0%}."
    )
    assert float(last["speedup"]) > float(first["speedup"])


if __name__ == "__main__":
    main()
