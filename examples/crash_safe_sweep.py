#!/usr/bin/env python3
"""Crash-safe sweep: kill a run mid-grid, resume it, lose nothing.

Demonstrates the :mod:`repro.runtime` execution layer end to end:

1. run the reliability fault sweep with every grid point journaled to
   ``journal.jsonl`` (one O(1) append+fsync per point);
2. simulate a crash by truncating the journal mid-run — including a
   torn, half-written final line;
3. resume: completed points replay from the journal, the rest are
   recomputed, and the merged result is **bit-identical** to an
   uninterrupted run (every point re-seeds its own simulators);
4. show the invariant auditor's report for the finished sweep;
5. rerun the whole grid with ``workers=4`` — sharded across fork
   workers, one segment journal each — and check the merged journal is
   byte-identical to the serial one.

Run:  python examples/crash_safe_sweep.py
"""

from __future__ import annotations

import json
import os
import tempfile

from repro.runtime import crash_safe_fault_sweep, fork_available
from repro.runtime.journal import JOURNAL_NAME, RunJournal

RATES = (0.0, 0.01, 0.05)
HITS = (0.0, 0.9)
KW = dict(n_calls=8, task_time=0.05, seed=3)


def main() -> None:
    print("== Crash-safe sweep: journal, kill, resume ==\n")
    with tempfile.TemporaryDirectory() as tmp:
        ref_dir = os.path.join(tmp, "reference")
        run_dir = os.path.join(tmp, "crashed")

        # 1. The uninterrupted reference run.
        reference = crash_safe_fault_sweep(ref_dir, RATES, HITS, **KW)
        print(f"reference run : {reference.computed_points} points "
              f"computed, audit {'OK' if reference.audit.ok else 'BAD'}")

        # 2. A second run, then a simulated crash: keep the header and
        #    two completed points, and tear the third mid-write.
        crash_safe_fault_sweep(run_dir, RATES, HITS, **KW)
        path = os.path.join(run_dir, JOURNAL_NAME)
        with open(path, encoding="utf-8") as fh:
            lines = fh.read().splitlines()
        torn = lines[3][: len(lines[3]) // 2]
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("\n".join(lines[:3] + [torn]) + "\n")
        journal = RunJournal.load(run_dir)
        print(f"after 'crash' : {journal.n_points} points survive, "
              f"{journal.dropped_lines} torn line dropped")

        # 3. Resume: replay what survived, recompute the rest.
        resumed = crash_safe_fault_sweep(
            run_dir, RATES, HITS, resume=True, **KW
        )
        print(f"resumed run   : replayed {resumed.resumed_points}, "
              f"recomputed {resumed.computed_points}")
        identical = resumed.points == reference.points
        print(f"merged output : "
              f"{'bit-identical' if identical else 'DIVERGED'} "
              f"vs the uninterrupted run")

        # 4. The invariant auditor's verdict, as persisted on disk.
        with open(os.path.join(run_dir, "invariants.json")) as fh:
            report = json.load(fh)
        print(f"\ninvariant report ({len(report['checked'])} checks):")
        for name in report["checked"]:
            print(f"  {name:24s} OK")
        assert identical and report["ok"]
        print("\ncrash-safe resume verified: nothing lost, nothing "
              "recomputed twice, nothing different.")

        # 5. The same grid, sharded across 4 fork workers: the merged
        #    journal must be the exact bytes the serial walk wrote.
        if fork_available():
            par_dir = os.path.join(tmp, "parallel")
            parallel = crash_safe_fault_sweep(
                par_dir, RATES, HITS, workers=4, **KW
            )
            with open(os.path.join(ref_dir, JOURNAL_NAME), "rb") as fh:
                serial_bytes = fh.read()
            with open(os.path.join(par_dir, JOURNAL_NAME), "rb") as fh:
                parallel_bytes = fh.read()
            same = (parallel.points == reference.points
                    and serial_bytes == parallel_bytes)
            print(f"\nworkers=4     : "
                  f"{'bit-identical journal' if same else 'DIVERGED'} "
                  f"({parallel.computed_points} points across 4 shards)")
            assert same and parallel.merge_audit.ok


if __name__ == "__main__":
    main()
