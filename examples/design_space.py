#!/usr/bin/env python3
"""Design-space exploration: how fine-grained should the PRRs be?

Section 5's recommendation: "the partitions (PRRs) must be so fine
grained to match the task time requirements, i.e. X_PRTR = X_task".  This
example makes that actionable for a system designer:

1. sweep PRR granularity on the XC2VP50, deriving each layout's partial
   bitstream size and ICAP configuration time from geometry;
2. show, per task time, which granularity maximizes Eq. (7);
3. check the sensitivity analysis agrees (d S / d X_PRTR < 0 only below
   the kink);
4. emit the Figure 5 family as CSV for external plotting.

Run:  python examples/design_space.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import ascii_plot, render_table
from repro.experiments.ablations import granularity_ablation
from repro.experiments.fig5 import to_csv
from repro.model import ModelParameters, dS_dx_prtr, peak_speedup


def main() -> None:
    task_times = (0.002, 0.02, 0.2, 2.0)
    points = granularity_ablation(task_times=task_times)

    print("== PRR granularity sweep (XC2VP50, measured ICAP model) ==\n")
    rows = []
    for p in points:
        row: dict[str, object] = {
            "PRRs": p.n_prrs,
            "cols": p.columns_each,
            "bitstream_B": p.bitstream_bytes,
            "T_PRTR_ms": p.t_prtr * 1e3,
            "X_PRTR": p.x_prtr,
        }
        for t, s in zip(task_times, p.speedups):
            row[f"S@{t * 1e3:g}ms"] = s
        rows.append(row)
    print(render_table(rows, title="Granularity ablation"))

    print("\nBest granularity per task time:")
    for i, t in enumerate(task_times):
        best = max(points, key=lambda p: p.speedups[i])
        print(f"  T_task = {t * 1e3:7g} ms -> {best.n_prrs} PRRs "
              f"(X_PRTR = {best.x_prtr:.4f}, S = {best.speedups[i]:.1f}x)")

    # Sensitivity cross-check: shrinking X_PRTR helps iff X_task < X_PRTR.
    print("\n== Sensitivity check: d S_inf / d X_PRTR ==")
    x_prtr = points[1].x_prtr
    for t in task_times:
        params = ModelParameters(
            x_task=t / 1.67804, x_prtr=x_prtr, hit_ratio=0.0)
        g = float(dS_dx_prtr(params))
        regime = "left branch (shrink PRRs!)" if g < 0 else \
            "right branch (granularity moot)"
        print(f"  T_task = {t * 1e3:7g} ms: dS/dX_PRTR = {g:10.1f}  {regime}")

    # ASCII view of speedup vs granularity for the smallest task.
    xs = [float(p.x_prtr) for p in points]
    ys = [p.speedups[0] for p in points]
    print()
    print(ascii_plot(
        {"S(T_task=2ms)": (xs, ys)},
        title="Speedup vs X_PRTR at T_task = 2 ms (finer PRRs ->)",
        xlabel="X_PRTR", ylabel="S_inf", logx=True, logy=False,
        height=12,
    ))

    # Export the Figure 5 family for external tooling.
    csv_text = to_csv(x_prtr=0.17)
    path = "fig5_xprtr0.17.csv"
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(csv_text)
    print(f"\nWrote the Figure 5 series (X_PRTR=0.17) to ./{path} "
          f"({len(csv_text.splitlines()) - 1} rows)")


if __name__ == "__main__":
    main()
