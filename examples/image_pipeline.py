#!/usr/bin/env python3
"""An image-processing pipeline on the simulated Cray XD1.

The scenario that motivates the paper: a satellite/remote-sensing style
application applies smoothing -> Sobel -> median to a stream of frames.
Three hardware cores but only two PRRs, so modules must be swapped at run
time.  We:

1. actually process frames with the NumPy reference kernels (so the
   pipeline computes something real);
2. derive each core's task time from the frame size using the XD1
   throughput model (1400 MB/s I/O, 200 MHz cores);
3. execute the call trace under FRTR and PRTR and report who wins as the
   frame size (and hence ``X_task``) grows — the crossover the paper's
   Section 5 discusses.

Run:  python examples/image_pipeline.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import render_table
from repro.hardware import PUBLISHED_TABLE2, US
from repro.workloads import (
    CallTrace,
    apply_core,
    pipeline_trace,
    synthetic_image,
    task_for_data_size,
)
from repro.rtr import compare

STAGES = ("smoothing", "sobel", "median")


def process_frames(n_frames: int, size: int) -> dict[str, float]:
    """Run the actual kernels; return simple output statistics."""
    stats = {"frames": float(n_frames)}
    edges_total = 0.0
    for i in range(n_frames):
        frame = synthetic_image(size, size, seed=i)
        for stage in STAGES:
            frame = apply_core(stage, frame)
        edges_total += float((frame > 128).mean())
    stats["mean_edge_fraction"] = edges_total / n_frames
    return stats


def run_at_frame_size(size: int, n_frames: int) -> dict[str, object]:
    """Build the trace for one frame size and measure FRTR vs PRTR."""
    data_bytes = float(size * size)  # 8-bit grayscale
    library = {
        name: task_for_data_size(name, data_bytes) for name in STAGES
    }
    trace: CallTrace = pipeline_trace(library, list(STAGES), n_frames)
    result = compare(
        trace,
        force_miss=False,  # residency-driven hits (3 cores on 2 PRRs)
        bitstream_bytes=PUBLISHED_TABLE2["dual_prr"].bitstream_bytes,
        control_time=10 * US,
    )
    t_task = trace.mean_task_time()
    return {
        "frame": f"{size}x{size}",
        "t_task_ms": t_task * 1e3,
        "x_task": t_task / PUBLISHED_TABLE2["full"].measured_time_s,
        "hit_ratio": result.prtr.hit_ratio,
        "frtr_s": result.frtr.total_time,
        "prtr_s": result.prtr.total_time,
        "speedup": result.speedup,
    }


def main() -> None:
    print("== Functional check: the pipeline really filters frames ==")
    stats = process_frames(n_frames=3, size=128)
    print(f"processed {stats['frames']:.0f} frames; "
          f"mean edge fraction {stats['mean_edge_fraction']:.3f}")

    print("\n== FRTR vs PRTR across frame sizes (20 frames each) ==")
    rows = []
    for size in (64, 256, 1024, 4096, 16384):
        rows.append(run_at_frame_size(size, n_frames=20))
    print(render_table(
        rows,
        ["frame", "t_task_ms", "x_task", "hit_ratio",
         "frtr_s", "prtr_s", "speedup"],
        title="Dual-PRR Cray XD1 (measured configuration times)",
    ))

    speedups = [float(r["speedup"]) for r in rows]
    print(
        "\nReading: tiny frames ride the partial-vs-full configuration "
        "ratio\n(speedups near the bound), huge frames amortize any "
        "configuration\n(speedup -> 1-2x) - the paper's central "
        "observation."
    )
    assert speedups[0] > speedups[-1] > 1.0


if __name__ == "__main__":
    main()
