#!/usr/bin/env python3
"""Multi-tasking and hardware virtualization: Section 5's thesis, measured.

The paper closes: "we see PRTR as compared to FRTR [as] far more
beneficial for versatility purposes, multi-tasking applications, and
hardware virtualization than it is for plain performance."

This example quantifies that.  Three applications share one FPGA:

* ``imaging``   — the Table 1 filter pipeline, frame after frame;
* ``crypto``    — alternating two cores with heavy reuse;
* ``telemetry`` — a bursty late-arriving job reusing the imaging cores
  (hardware virtualization: its modules are often already on chip).

Under FRTR the chip context-switches by full reconfiguration — every call
from every app pays 1.68 s.  Under PRTR the four PRRs act as a shared
module cache and execute concurrently.

Run:  python examples/multitasking.py
"""

from __future__ import annotations

from repro.analysis import render_table
from repro.hardware import PUBLISHED_TABLE2, uniform_prr_floorplan
from repro.rtr import AppSpec, compare_multitask
from repro.workloads import CallTrace, HardwareTask

DUAL_BYTES = PUBLISHED_TABLE2["dual_prr"].bitstream_bytes


def build_apps() -> list[AppSpec]:
    mk = lambda n, t: HardwareTask(n, t)  # noqa: E731
    imaging_lib = {
        "smoothing": mk("smoothing", 0.045),
        "sobel": mk("sobel", 0.045),
        "median": mk("median", 0.045),
    }
    crypto_lib = {
        "aes": mk("aes", 0.030),
        "sha": mk("sha", 0.015),
    }
    imaging = AppSpec(
        "imaging",
        CallTrace(
            [imaging_lib[n] for n in ("smoothing", "sobel", "median") * 25],
            name="imaging",
        ),
    )
    crypto = AppSpec(
        "crypto",
        CallTrace(
            [crypto_lib[n] for n in ("aes", "sha") * 40], name="crypto"
        ),
    )
    telemetry = AppSpec(
        "telemetry",
        CallTrace(
            [imaging_lib[n] for n in ("median", "sobel") * 15],
            name="telemetry",
        ),
        arrival_time=2.0,
    )
    return [imaging, crypto, telemetry]


def main() -> None:
    apps = build_apps()
    frtr, prtr = compare_multitask(
        apps,
        floorplan=uniform_prr_floorplan(4, 6),
        bitstream_bytes=DUAL_BYTES,
        control_time=1e-5,
    )

    print("== Three applications sharing one Cray XD1 FPGA (4 PRRs) ==\n")
    rows = []
    for f, p in zip(frtr.apps, prtr.apps):
        rows.append(
            {
                "app": f.name,
                "calls": f.n_calls,
                "FRTR turnaround (s)": f.turnaround,
                "PRTR turnaround (s)": p.turnaround,
                "gain": f.turnaround / p.turnaround,
                "PRTR configs": p.n_configs,
            }
        )
    print(render_table(rows, title="Per-application turnaround"))

    print()
    print(render_table(
        [
            {
                "metric": "makespan (s)",
                "FRTR": frtr.makespan,
                "PRTR": prtr.makespan,
            },
            {
                "metric": "throughput (calls/s)",
                "FRTR": frtr.throughput,
                "PRTR": prtr.throughput,
            },
            {
                "metric": "reconfigurations",
                "FRTR": frtr.total_configs,
                "PRTR": prtr.total_configs,
            },
            {
                "metric": "unfairness (max/min)",
                "FRTR": frtr.unfairness(),
                "PRTR": prtr.unfairness(),
            },
        ],
        title="System metrics",
    ))

    speedup = frtr.makespan / prtr.makespan
    hit = prtr.notes["hit_ratio"]
    print(
        f"\nPRTR multi-tasking speedup: {speedup:.1f}x "
        f"(shared-cache hit ratio {hit:.0%})."
    )
    print(
        "Telemetry arrives late and finds its modules already resident -\n"
        "hardware virtualization in action: "
        f"{prtr.apps[2].n_configs} configs for "
        f"{prtr.apps[2].n_calls} calls."
    )
    assert speedup > 10


if __name__ == "__main__":
    main()
