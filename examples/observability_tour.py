#!/usr/bin/env python3
"""Observability tour: metrics, traces, profiling, rollups.

Instruments one FRTR-vs-PRTR comparison end to end:

1. run under ``metrics.observed()`` and read the counters back — the
   cache hits/misses are the model's hit ratio ``H``, the ICAP byte
   and busy-time counters are the Table 1/2 bandwidths;
2. audit the cross-metric conservation laws
   (hits + misses == PRTR calls);
3. export the run as Chrome trace-event JSON (open it in Perfetto);
4. profile the DES hot path through the watchdog hook;
5. print the utilization rollup: ICAP occupancy, cumulative
   hit-ratio timeline, configuration-bandwidth histogram.

Run:  python examples/observability_tour.py
"""

from __future__ import annotations

import json
import os
import tempfile

from repro.obs import metrics
from repro.obs.profile import profiled
from repro.obs.report import render_utilization
from repro.obs.tracing import comparison_to_chrome, trace_document
from repro.rtr import PrtrExecutor, compare, make_node
from repro.runtime.invariants import audit_metrics
from repro.workloads import CallTrace, HardwareTask


def tour_trace(n_calls: int = 30) -> CallTrace:
    """A small rotating image-pipeline workload."""
    library = [
        HardwareTask(name, 0.05)
        for name in ("median", "sobel", "smoothing")
    ]
    calls = [library[i % len(library)] for i in range(n_calls)]
    return CallTrace(calls, name="tour")


def main() -> None:
    """Run the tour; prints every stage's headline numbers."""
    trace = tour_trace()

    # 1. metrics: counters/gauges/histograms, recorded only inside the
    #    observed() block — disabled runs are bit-identical.
    with metrics.observed():
        comparison = compare(trace)
        snapshot = metrics.snapshot()
        audit = audit_metrics(snapshot)

    cache = snapshot["repro_cache_events_total"]["series"]
    hits = cache.get("result=hit", 0.0)
    total = sum(cache.values())
    print("== metrics")
    print(f"speedup          : {comparison.speedup:.2f}x")
    print(f"cache events     : {cache}")
    print(f"hit ratio H      : {hits / total:.3f} "
          f"(result: {comparison.prtr.hit_ratio:.3f})")

    # 2. conservation audit: the counters must agree with each other.
    print(f"audit            : {audit.summary_line()}")

    # 3. Chrome trace export — load the file at https://ui.perfetto.dev
    events = comparison_to_chrome(comparison)
    out = os.path.join(tempfile.mkdtemp(prefix="repro-tour-"), "trace.json")
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(trace_document(events), fh)
    print("== trace")
    print(f"{len(events)} events -> {out}")

    # 4. DES hot-path profile, riding the watchdog hook.
    node = make_node()
    with profiled(node.sim) as profiler:
        PrtrExecutor(node).run(trace)
    print("== profile")
    print(profiler.render(5))

    # 5. utilization rollups: occupancy, hit-ratio timeline, bandwidth.
    print("== utilization")
    print(render_utilization(comparison.prtr))


if __name__ == "__main__":
    main()
