#!/usr/bin/env python3
"""Prefetching study: the paper's "future investigations", executed.

The published experiment runs with the hypothetical always-missing
prefetcher (``H = 0``).  Here we attach *real* cache policies and
prefetchers to locality-bearing workloads, measure the hit ratio each
combination achieves, and show what Eq. (7) says that buys on the Cray
XD1 — including the regime boundary the paper proves: for tasks longer
than the partial configuration time, no prefetcher helps at all.

Run:  python examples/prefetch_study.py
"""

from __future__ import annotations

from repro.analysis import render_table
from repro.experiments.ablations import prefetch_ablation
from repro.hardware import PUBLISHED_TABLE2
from repro.model import ModelParameters, asymptotic_speedup


def main() -> None:
    print("== Achieved hit ratio and predicted speedup per combination ==")
    print("(2 PRR slots, 8-core library, 2000 calls, X_task < X_PRTR)\n")
    cells = prefetch_ablation(n_calls=2000)
    rows = [
        {
            "trace": c.trace,
            "policy": c.policy,
            "prefetcher": c.prefetcher,
            "hit_ratio": c.hit_ratio,
            "accuracy": c.prefetch_accuracy,
            "S_inf": c.predicted_speedup,
        }
        for c in cells
    ]
    print(render_table(rows, title="Prefetch ablation"))

    # Highlight the headline comparisons on the markov trace with LRU.
    by_key = {(c.trace, c.policy, c.prefetcher): c for c in cells}
    base = by_key[("markov", "lru", "none")]
    markov = by_key[("markov", "lru", "markov")]
    oracle = by_key[("markov", "lru", "oracle")]
    print(
        f"\nOn the markov trace (LRU): no prefetch H={base.hit_ratio:.2f} "
        f"-> S={base.predicted_speedup:.0f}x;"
        f"  markov prefetcher H={markov.hit_ratio:.2f} "
        f"-> S={markov.predicted_speedup:.0f}x;"
        f"  oracle H={oracle.hit_ratio:.2f} "
        f"-> S={oracle.predicted_speedup:.0f}x"
    )

    # The regime boundary: H is worthless once X_task >= X_PRTR.
    print("\n== Where prefetching stops mattering (the paper's bound) ==")
    full = PUBLISHED_TABLE2["full"].measured_time_s
    dual = PUBLISHED_TABLE2["dual_prr"].measured_time_s
    x_prtr = dual / full
    rows = []
    for x_task in (x_prtr / 4, x_prtr, 4 * x_prtr, 1.0, 10.0):
        s0 = float(asymptotic_speedup(ModelParameters(
            x_task=x_task, x_prtr=x_prtr, hit_ratio=0.0)))
        s1 = float(asymptotic_speedup(ModelParameters(
            x_task=x_task, x_prtr=x_prtr, hit_ratio=1.0)))
        rows.append({
            "x_task": x_task,
            "S (H=0)": s0,
            "S (H=1)": s1,
            "prefetch gain": s1 / s0,
        })
    print(render_table(rows))
    print(
        "\nReading: below X_PRTR a perfect prefetcher multiplies the "
        "speedup;\nat and above X_PRTR the two columns coincide - "
        "configuration is\nalready fully hidden behind execution, exactly "
        "as Eq. (7) predicts."
    )


if __name__ == "__main__":
    main()
