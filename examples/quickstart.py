#!/usr/bin/env python3
"""Quickstart: the PRTR performance model in five minutes.

Walks the public API end to end:

1. evaluate the analytical model (Eqs. 6-7) at the paper's published
   Cray XD1 operating points;
2. find the performance bounds (the 2x plateau, the ~87x peak);
3. run the discrete-event simulator and check it lands on the model.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.hardware import PUBLISHED_TABLE2, US
from repro.model import (
    ModelParameters,
    asymptotic_speedup,
    min_calls_for_speedup,
    peak_speedup,
    peak_x_task,
    speedup,
)
from repro.rtr import compare
from repro.workloads import CallTrace, HardwareTask


def main() -> None:
    full = PUBLISHED_TABLE2["full"]
    dual = PUBLISHED_TABLE2["dual_prr"]

    # ------------------------------------------------------------------
    # 1. The model at the paper's measured operating point (Fig. 9b).
    # ------------------------------------------------------------------
    x_prtr = dual.measured_time_s / full.measured_time_s
    x_control = 10 * US / full.measured_time_s
    print("== Cray XD1, dual PRR, measured configuration times ==")
    print(f"T_FRTR = {full.measured_time_s * 1e3:8.2f} ms")
    print(f"T_PRTR = {dual.measured_time_s * 1e3:8.2f} ms  "
          f"(X_PRTR = {x_prtr:.4f})")

    for t_task_ms in (1.0, 19.78, 100.0, 2000.0):
        p = ModelParameters(
            x_task=t_task_ms * 1e-3 / full.measured_time_s,
            x_prtr=x_prtr,
            hit_ratio=0.0,        # the paper's no-prefetch experiment
            x_control=x_control,
        )
        s_inf = float(asymptotic_speedup(p))
        s_100 = float(speedup(p, 100))
        print(f"  T_task = {t_task_ms:8.2f} ms ->  "
              f"S(100 calls) = {s_100:6.2f},  S_inf = {s_inf:6.2f}")

    # ------------------------------------------------------------------
    # 2. Bounds: where is the peak, and how many calls amortize startup?
    # ------------------------------------------------------------------
    p = ModelParameters(x_task=x_prtr, x_prtr=x_prtr, hit_ratio=0.0,
                        x_control=x_control)
    print("\n== Bounds ==")
    print(f"peak task time  X_task* = {float(peak_x_task(p)):.4f} "
          f"(= X_PRTR: tasks matching the partial config time)")
    print(f"peak speedup    S*      = {float(peak_speedup(p)):.1f}  "
          f"(the paper's '87x')")
    n_needed = float(min_calls_for_speedup(p, 50.0))
    print(f"calls needed for 50x    = {n_needed:.0f} "
          f"(amortizing the initial full configuration)")

    # ------------------------------------------------------------------
    # 3. Simulate and compare: the DES lands on Eq. (6).
    # ------------------------------------------------------------------
    t_task = dual.measured_time_s  # peak of the curve
    lib = {n: HardwareTask(n, t_task)
           for n in ("median", "sobel", "smoothing")}
    trace = CallTrace(
        [lib[n] for n in ("median", "sobel", "smoothing") * 50],
        name="quickstart",
    )
    result = compare(
        trace,
        force_miss=True,
        bitstream_bytes=dual.bitstream_bytes,
        control_time=10 * US,
    )
    p = ModelParameters(
        x_task=t_task / full.measured_time_s,
        x_prtr=x_prtr, hit_ratio=0.0, x_control=x_control,
    )
    predicted = float(speedup(p, len(trace)))
    print("\n== Simulation vs model ==")
    print(f"simulated speedup over {len(trace)} calls : {result.speedup:8.3f}")
    print(f"Eq. (6) prediction                 : {predicted:8.3f}")
    err = abs(result.speedup - predicted) / predicted
    print(f"relative error                     : {err:.2e}")
    assert err < 1e-3, "simulator drifted from the model!"
    print("\nOK - simulator agrees with the analytical model.")


if __name__ == "__main__":
    main()
