#!/usr/bin/env python3
"""Multi-tenant service mode: overload, shedding and graceful degradation.

The paper's closing argument is that PRTR's real payoff is "versatility
purposes, multi-tasking applications, and hardware virtualization".
``examples/multitasking.py`` measures that closed-loop; this tour runs
the node *open-loop* as a shared service under arrival streams it does
not control:

1. a baseline run — the built-in gold/silver/bronze mix near capacity,
   where the token buckets clip silver's bursts and bronze's diurnal
   peaks but the mean load is absorbed;
2. an overload run — offered load ~2x capacity *and* one PRR retired
   mid-run — showing admission control shedding the lowest-priority
   traffic first while gold's SLO holds and nothing deadlocks.

Run:  python examples/service_tour.py
"""

from __future__ import annotations

from repro.runtime import audit_service
from repro.service import (
    ServiceConfig,
    TaskMix,
    TenantSpec,
    default_tenants,
    render_report,
    run_service,
    slo_report,
)

SEED = 7
TASK_TIME = 0.05  # dual-PRR capacity ~ 2 / 0.05 = 40 req/s


def overload_tenants() -> list[TenantSpec]:
    """Gold/silver/bronze offering ~80 req/s against ~40 req/s capacity."""
    mix = (
        TaskMix("median", TASK_TIME, 2.0),
        TaskMix("sobel", TASK_TIME, 1.0),
        TaskMix("smoothing", TASK_TIME, 1.0),
    )
    return [
        TenantSpec(
            name="gold", priority=2, arrival="poisson", rate=15.0,
            tasks=mix, slo_latency=0.5, queue_capacity=64,
        ),
        TenantSpec(
            name="silver", priority=1, arrival="bursty", rate=25.0,
            tasks=mix, slo_latency=1.0, queue_capacity=48,
        ),
        TenantSpec(
            name="bronze", priority=0, arrival="diurnal", rate=40.0,
            tasks=mix, slo_latency=2.0, queue_capacity=32,
        ),
    ]


def main() -> None:
    print("Multi-tenant service mode: hardware virtualization as a service")
    print("=" * 70)

    print("\n--- 1. Baseline: default mix near dual-PRR capacity ---")
    baseline = run_service(
        default_tenants(TASK_TIME),
        ServiceConfig(horizon=20.0),
        seed=SEED,
    )
    print(render_report(slo_report(baseline)))
    print(f"admission audit: {audit_service(baseline).summary_line()}")

    print("\n--- 2. Overload at ~2x capacity, PRR 1 retired at t=5 ---")
    overloaded = run_service(
        overload_tenants(),
        ServiceConfig(
            horizon=20.0,
            overload_backlog=32,
            degrade_at=((5.0, 1),),
        ),
        seed=SEED,
    )
    report = slo_report(overloaded)
    print(render_report(report))
    print(f"admission audit: {audit_service(overloaded).summary_line()}")

    tenants = report["tenants"]
    shed = {name: t["shed_rate"] for name, t in tenants.items()}
    assert shed["gold"] <= shed["silver"] <= shed["bronze"]
    assert not overloaded.interrupted
    print(
        "\nGraceful degradation: shed lowest-priority first "
        f"(gold {100 * shed['gold']:.1f}% <= "
        f"silver {100 * shed['silver']:.1f}% <= "
        f"bronze {100 * shed['bronze']:.1f}%), "
        "no deadlock with half the fabric retired."
    )


if __name__ == "__main__":
    main()
