"""Legacy setup shim: lets ``pip install -e .`` work without the ``wheel``
package (offline environment).  All metadata lives in pyproject.toml."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.7.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10"],
)
