"""repro — reproduction of "Performance Bounds of Partial Run-Time
Reconfiguration in High-Performance Reconfigurable Computing"
(El-Araby, Gonzalez & El-Ghazawi, HPRCTA'07 / SC 2007).

Package map
-----------
:mod:`repro.model`
    The paper's analytical execution model (Eqs. 1-7), bounds and sweeps.
:mod:`repro.sim`
    Deterministic discrete-event simulation kernel.
:mod:`repro.hardware`
    The Cray XD1 blade model: FPGA, PRR floorplans, bitstreams,
    configuration ports, ICAP controller, link, memory.
:mod:`repro.workloads`
    Hardware-function library (Table 1), call-trace generators, image
    kernels.
:mod:`repro.caching`
    Configuration cache policies and prefetchers (the ``H`` machinery).
:mod:`repro.rtr`
    FRTR and PRTR executors plus the compare and cluster runners.
:mod:`repro.faults`
    Fault injection, CRC/readback detection, recovery policies.
:mod:`repro.runtime`
    Crash-safe journaling, watchdog cancellation, invariant audits.
:mod:`repro.obs`
    Opt-in observability: metrics, Chrome-trace export, profiling,
    utilization rollups (see ``docs/OBSERVABILITY.md``).
:mod:`repro.analysis`
    Model-vs-simulation validation, Table 2 calibration, tables/plots.
:mod:`repro.experiments`
    One module per published table/figure, plus ablations.

Quickstart::

    >>> from repro.model import ModelParameters, asymptotic_speedup
    >>> p = ModelParameters(x_task=0.17, x_prtr=0.17, hit_ratio=0.0)
    >>> round(float(asymptotic_speedup(p)), 2)
    6.88
"""

__version__ = "1.7.0"

from .model import (
    ModelParameters,
    RawParameters,
    asymptotic_speedup,
    peak_speedup,
    speedup,
)
from .rtr import compare, run_frtr, run_prtr

__all__ = [
    "ModelParameters",
    "RawParameters",
    "__version__",
    "asymptotic_speedup",
    "compare",
    "peak_speedup",
    "run_frtr",
    "run_prtr",
    "speedup",
]
