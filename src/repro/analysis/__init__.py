"""Analysis utilities: validation, calibration, tables and ASCII figures."""

from .calibration import (
    CalibrationCheck,
    cross_validate,
    fit_icap_handshake,
    fit_vendor_api,
)
from .plotting import ascii_plot, series_to_csv, write_csv
from .reliability import (
    FaultSweepPoint,
    availability,
    effective_speedup_under_faults,
    find_crossover,
    mean_time_to_repair,
    sweep_fault_hit_grid,
    trace_with_hit_ratio,
)
from .report import generate_report
from .tables import format_value, render_comparison, render_table
from .validate import (
    ValidationReport,
    expected_frtr_total,
    expected_prtr_pipeline_total,
    relative_error,
    validate_frtr,
    validate_prtr,
)

__all__ = [
    "CalibrationCheck",
    "FaultSweepPoint",
    "ValidationReport",
    "ascii_plot",
    "availability",
    "cross_validate",
    "effective_speedup_under_faults",
    "expected_frtr_total",
    "expected_prtr_pipeline_total",
    "find_crossover",
    "fit_icap_handshake",
    "fit_vendor_api",
    "format_value",
    "generate_report",
    "mean_time_to_repair",
    "relative_error",
    "render_comparison",
    "render_table",
    "series_to_csv",
    "sweep_fault_hit_grid",
    "trace_with_hit_ratio",
    "validate_frtr",
    "validate_prtr",
    "write_csv",
]
