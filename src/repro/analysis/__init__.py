"""Analysis utilities: validation, calibration, tables and ASCII figures."""

from .calibration import (
    CalibrationCheck,
    cross_validate,
    fit_icap_handshake,
    fit_vendor_api,
)
from .plotting import ascii_plot, series_to_csv, write_csv
from .report import generate_report
from .tables import format_value, render_comparison, render_table
from .validate import (
    ValidationReport,
    expected_frtr_total,
    expected_prtr_pipeline_total,
    relative_error,
    validate_frtr,
    validate_prtr,
)

__all__ = [
    "CalibrationCheck",
    "ValidationReport",
    "ascii_plot",
    "cross_validate",
    "expected_frtr_total",
    "expected_prtr_pipeline_total",
    "fit_icap_handshake",
    "fit_vendor_api",
    "format_value",
    "generate_report",
    "relative_error",
    "render_comparison",
    "render_table",
    "series_to_csv",
    "validate_frtr",
    "validate_prtr",
    "write_csv",
]
