"""Calibration of overhead models against the paper's published Table 2.

Two free parameters connect the idealized wire-time models to the paper's
measured configuration times:

* the **vendor-API per-byte overhead** of the Cray full-configuration
  call (:func:`fit_vendor_api`), solved from the full-configuration row;
* the **per-chunk handshake** of the BRAM-buffered ICAP controller
  (:func:`fit_icap_handshake`), solved from the single-PRR row.

Each fit uses exactly one published measurement, leaving the remaining
rows as genuine out-of-sample checks — :func:`cross_validate` reports the
prediction error on those (the dual-PRR row is predicted to ~0.05%).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..hardware.catalog import MB, PUBLISHED_TABLE2, Table2Row
from ..hardware.config_port import VendorApiOverhead
from ..hardware.icap_controller import IcapTimings

__all__ = [
    "fit_vendor_api",
    "fit_icap_handshake",
    "CalibrationCheck",
    "cross_validate",
]


def fit_vendor_api(
    row: Table2Row | None = None, selectmap_bandwidth: float = 66 * MB
) -> VendorApiOverhead:
    """Solve the per-byte API overhead from a full-configuration row.

    ``measured = wire + per_byte * nbytes`` with
    ``wire = nbytes / bandwidth``.
    """
    row = row or PUBLISHED_TABLE2["full"]
    wire = row.bitstream_bytes / selectmap_bandwidth
    if row.measured_time_s < wire:
        raise ValueError(
            "measured full-configuration time is below the wire time; "
            "cannot attribute a non-negative API overhead"
        )
    per_byte = (row.measured_time_s - wire) / row.bitstream_bytes
    return VendorApiOverhead(fixed=0.0, per_byte=per_byte)


def fit_icap_handshake(
    row: Table2Row | None = None,
    *,
    icap_bandwidth: float = 66 * MB,
    chunk_bytes: int = 16 * 1024,
    link_bandwidth: float = 1600 * MB,
) -> IcapTimings:
    """Solve the per-chunk handshake from a partial-configuration row.

    The chunked double-buffered pipeline gives
    ``measured = first_chunk_fill + n_chunks * handshake + bytes / icap``.
    """
    row = row or PUBLISHED_TABLE2["single_prr"]
    n_chunks = max(1, math.ceil(row.bitstream_bytes / chunk_bytes))
    wire = row.bitstream_bytes / icap_bandwidth
    first_fill = min(chunk_bytes, row.bitstream_bytes) / link_bandwidth
    handshake = (row.measured_time_s - wire - first_fill) / n_chunks
    if handshake < 0:
        raise ValueError(
            "measured partial time is below the wire time; the chunked "
            "model cannot explain it with a non-negative handshake"
        )
    return IcapTimings(
        icap_bandwidth=icap_bandwidth,
        chunk_bytes=chunk_bytes,
        chunk_handshake=handshake,
    )


@dataclass(frozen=True)
class CalibrationCheck:
    """One out-of-sample prediction versus its published measurement."""

    layout: str
    predicted_s: float
    published_s: float

    @property
    def rel_error(self) -> float:
        return abs(self.predicted_s - self.published_s) / self.published_s


def cross_validate(
    timings: IcapTimings | None = None,
    *,
    link_bandwidth: float = 1600 * MB,
) -> list[CalibrationCheck]:
    """Predict every partial row NOT used for fitting and compare.

    With the default fit (single-PRR row), the only out-of-sample partial
    row is dual-PRR; the check passes at well under 1% error, which is the
    evidence that the chunked-controller mechanism (not merely a fitted
    constant) explains the paper's measurements.
    """
    timings = timings or fit_icap_handshake()
    checks = []
    for key in ("dual_prr",):
        row = PUBLISHED_TABLE2[key]
        first_fill = min(timings.chunk_bytes, row.bitstream_bytes) / link_bandwidth
        predicted = first_fill + timings.drain_time(row.bitstream_bytes)
        checks.append(
            CalibrationCheck(
                layout=row.layout,
                predicted_s=predicted,
                published_s=row.measured_time_s,
            )
        )
    return checks
