"""Pareto-dominance utilities for multi-objective sweeps.

The power sweep (:mod:`repro.power.pareto`) trades completion time
against energy; this module holds the generic, objective-agnostic
non-dominated filter so other sweeps (latency vs availability, speedup
vs recovery cost) can reuse it.  All comparisons are strict orderings
(``<`` / ``<=``) — no float equality is involved, so ties survive as
co-frontier points instead of being collapsed arbitrarily.
"""

from __future__ import annotations

from typing import Callable, Sequence, TypeVar

T = TypeVar("T")

__all__ = ["dominates", "pareto_front"]


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True iff objective vector ``a`` dominates ``b`` (minimization).

    ``a`` dominates ``b`` when it is no worse in every objective and
    strictly better in at least one.  Vectors must be equal length.
    """
    if len(a) != len(b):
        raise ValueError(
            f"objective vectors differ in length: {len(a)} vs {len(b)}"
        )
    no_worse = all(x <= y for x, y in zip(a, b))
    better = any(x < y for x, y in zip(a, b))
    return no_worse and better


def pareto_front(
    points: Sequence[T],
    objectives: Callable[[T], Sequence[float]],
) -> list[T]:
    """The non-dominated subset of ``points`` (minimizing objectives).

    Preserves input order, so the frontier of a deterministic sweep is
    itself deterministic.  Duplicate objective vectors all survive —
    dominance requires strict improvement in at least one coordinate.
    """
    vectors = [tuple(objectives(p)) for p in points]
    front: list[T] = []
    for i, point in enumerate(points):
        if any(
            dominates(vectors[j], vectors[i])
            for j in range(len(points))
            if j != i
        ):
            continue
        front.append(point)
    return front
