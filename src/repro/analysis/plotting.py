"""Figure output without matplotlib: ASCII plots and CSV series export.

The environment has no plotting backend, so "regenerating a figure" means
(1) emitting the exact data series behind it as CSV, and (2) rendering a
log-log ASCII chart good enough to eyeball the curve shapes (the 2x
plateau, the peak at ``X_task = X_PRTR``).
"""

from __future__ import annotations

import csv
import io
import math
from typing import Mapping, Sequence

import numpy as np

__all__ = ["ascii_plot", "series_to_csv", "write_csv"]


def _ticks(lo: float, hi: float, log: bool, n: int = 5) -> list[float]:
    if log:
        lo_e, hi_e = math.floor(math.log10(lo)), math.ceil(math.log10(hi))
        return [10.0**e for e in range(lo_e, hi_e + 1)]
    return list(np.linspace(lo, hi, n))


def ascii_plot(
    series: Mapping[str, tuple[Sequence[float], Sequence[float]]],
    *,
    width: int = 72,
    height: int = 20,
    logx: bool = True,
    logy: bool = False,
    title: str = "",
    xlabel: str = "x",
    ylabel: str = "y",
) -> str:
    """Render named (x, y) series on a character grid.

    Each series gets a distinct glyph; overlapping points show the last
    series plotted.  Axes are annotated with min/max (and decade ticks on
    log axes).
    """
    if not series:
        return "(no series)"
    glyphs = "*o+x#@%&$~"
    all_x = np.concatenate([np.asarray(x, float) for x, _ in series.values()])
    all_y = np.concatenate([np.asarray(y, float) for _, y in series.values()])
    finite = np.isfinite(all_x) & np.isfinite(all_y)
    if logx:
        finite &= all_x > 0
    if logy:
        finite &= all_y > 0
    if not finite.any():
        return "(no finite data)"
    x_lo, x_hi = all_x[finite].min(), all_x[finite].max()
    y_lo, y_hi = all_y[finite].min(), all_y[finite].max()

    def fx(x: np.ndarray) -> np.ndarray:
        return np.log10(x) if logx else x

    def fy(y: np.ndarray) -> np.ndarray:
        return np.log10(y) if logy else y

    x0, x1 = fx(np.array([x_lo, x_hi]))
    y0, y1 = fy(np.array([y_lo, y_hi]))
    x_span = max(x1 - x0, 1e-12)
    y_span = max(y1 - y0, 1e-12)
    grid = [[" "] * width for _ in range(height)]
    for (name, (xs, ys)), glyph in zip(series.items(), glyphs):
        xs = np.asarray(xs, float)
        ys = np.asarray(ys, float)
        ok = np.isfinite(xs) & np.isfinite(ys)
        if logx:
            ok &= xs > 0
        if logy:
            ok &= ys > 0
        cols = ((fx(xs[ok]) - x0) / x_span * (width - 1)).round().astype(int)
        rows = ((fy(ys[ok]) - y0) / y_span * (height - 1)).round().astype(int)
        for c, r in zip(cols, rows):
            grid[height - 1 - r][c] = glyph
    lines = []
    if title:
        lines.append(title)
    y_hi_label = f"{y_hi:.3g}"
    y_lo_label = f"{y_lo:.3g}"
    label_w = max(len(y_hi_label), len(y_lo_label))
    for i, row in enumerate(grid):
        if i == 0:
            prefix = y_hi_label.rjust(label_w)
        elif i == height - 1:
            prefix = y_lo_label.rjust(label_w)
        else:
            prefix = " " * label_w
        lines.append(f"{prefix} |{''.join(row)}")
    lines.append(" " * label_w + " +" + "-" * width)
    lines.append(
        " " * label_w
        + f"  {x_lo:.3g}{' ' * max(width - 16, 1)}{x_hi:.3g}"
    )
    lines.append(f"x: {xlabel}{' (log)' if logx else ''}   y: {ylabel}"
                 f"{' (log)' if logy else ''}")
    legend = "   ".join(
        f"{glyph}={name}" for (name, _), glyph in zip(series.items(), glyphs)
    )
    lines.append(f"legend: {legend}")
    return "\n".join(lines)


def series_to_csv(
    series: Mapping[str, tuple[Sequence[float], Sequence[float]]],
    x_name: str = "x",
) -> str:
    """Long-format CSV text: columns ``series, x, y``."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(["series", x_name, "y"])
    for name, (xs, ys) in series.items():
        if len(xs) != len(ys):
            raise ValueError(f"series {name!r}: len(x) != len(y)")
        for x, y in zip(xs, ys):
            writer.writerow([name, repr(float(x)), repr(float(y))])
    return buf.getvalue()


def write_csv(path: str, text: str) -> None:
    """Write CSV text to ``path`` (tiny wrapper for symmetry in examples)."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)
