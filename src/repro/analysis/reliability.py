"""Reliability analysis: effective speedup under injected faults.

The paper's speedup bounds (Eqs. 1-3) assume every configuration
succeeds.  The custom ICAP-controller path that makes PRTR fast is also
the path that bypasses the vendor API's end-to-end validation — so the
honest comparison charges PRTR for the recovery work its faults induce.
This module quantifies that trade:

* :func:`effective_speedup_under_faults` — one (fault rate, hit ratio)
  cell: the same workload under FRTR and PRTR with a shared fault
  process, returning achieved times, recovery counters and the
  *effective* speedup ``T_FRTR / T_PRTR``;
* :func:`sweep_fault_hit_grid` — the full fault-rate x hit-ratio grid
  behind the ``repro faults`` figure;
* :func:`find_crossover` — the fault rate where PRTR stops winning
  (effective speedup drops through 1.0) for a fixed hit ratio;
* :func:`mean_time_to_repair` / :func:`availability` — MTTR and the
  productive-time fraction of a run.

Fault-domain asymmetry is deliberate: the swept rate is the *ICAP chunk
abort* rate, which only the partial path pays (the vendor SelectMap path
is validated by DONE-pin polling, so its abort rate stays at the
``FaultConfig`` default of zero).  That is exactly why a crossover
exists: at high rates PRTR burns its advantage on retries and
fallback-full reconfigurations while FRTR is unaffected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..faults.injector import FaultConfig, FaultInjector
from ..faults.recovery import FallbackPolicy, RecoveryPolicy
from ..model.hybrid import (
    HybridMode,
    HybridSample,
    closed_form_exact,
    fault_point_verdicts,
    parse_hybrid_mode,
    replay_fault_point,
    verification_sample,
)
from ..rtr.events import RunResult
from ..rtr.frtr import FrtrExecutor
from ..rtr.prtr import PrtrExecutor
from ..rtr.runner import make_node
from ..workloads.task import CallTrace, HardwareTask

__all__ = [
    "DEFAULT_FAULT_RATES",
    "DEFAULT_HIT_RATIOS",
    "FaultSweepPoint",
    "availability",
    "effective_speedup_under_faults",
    "find_crossover",
    "hybrid_cell_modes",
    "mean_time_to_repair",
    "sweep_fault_hit_grid",
    "trace_with_hit_ratio",
]


def mean_time_to_repair(result: RunResult) -> float:
    """Mean simulated seconds to recover one failed attempt (0 if none).

    Every retry/refetch is one repair; the numerator is the total time
    burned on failed attempts and backoff (``RunResult.recovery_time``).
    """
    repairs = result.n_retries + int(
        result.notes.get("startup_retries", 0.0)
    )
    if repairs <= 0:
        return 0.0
    return result.recovery_time / repairs


def availability(result: RunResult) -> float:
    """Fraction of the run spent on productive (non-recovery) work."""
    if result.total_time <= 0:
        return 1.0
    return 1.0 - result.recovery_time / result.total_time


def trace_with_hit_ratio(
    hit_ratio: float,
    n_calls: int,
    task_time: float,
    name: str | None = None,
) -> CallTrace:
    """A deterministic trace achieving ``~hit_ratio`` on a dual-PRR LRU.

    Hits are self-repeats (the previous module is always resident);
    misses rotate through a three-module pool, which with two PRR slots
    guarantees the chosen module was evicted.  A Bresenham-style
    accumulator spreads hits evenly, so the achieved ratio tracks the
    target to within ``1/n_calls``.
    """
    if not 0.0 <= hit_ratio <= 1.0:
        raise ValueError(f"hit_ratio must be in [0,1]: {hit_ratio}")
    if n_calls <= 0:
        raise ValueError("n_calls must be >= 1")
    pool = ["mod_a", "mod_b", "mod_c"]
    library = {m: HardwareTask(m, task_time) for m in pool}
    names = [pool[0]]
    pool_pos = 0
    acc = 0.0
    for _ in range(n_calls - 1):
        acc += hit_ratio
        if acc >= 1.0:
            acc -= 1.0
            names.append(names[-1])  # guaranteed hit
        else:
            pool_pos = (pool_pos + 1) % len(pool)
            if pool[pool_pos] == names[-1]:
                pool_pos = (pool_pos + 1) % len(pool)
            names.append(pool[pool_pos])  # guaranteed miss
    label = name or f"h{hit_ratio:g}_{n_calls}"
    return CallTrace((library[n] for n in names), name=label)


@dataclass(frozen=True)
class FaultSweepPoint:
    """One cell of the fault-rate x hit-ratio grid."""

    fault_rate: float
    target_hit_ratio: float
    #: hit ratio the PRTR run actually achieved
    hit_ratio: float
    frtr_time: float
    prtr_time: float
    #: effective speedup ``T_FRTR / T_PRTR`` under the shared fault process
    speedup: float
    prtr_retries: int
    prtr_fallbacks: int
    prtr_degraded: bool
    mttr: float
    availability: float
    #: platform ratios for the invariant auditor's bound checks
    #: (``X_PRTR = T_PRTR/T_FRTR``, ``X_task = T_task/T_FRTR``); NaN on
    #: hand-built points that never ran a simulation
    x_prtr: float = float("nan")
    x_task: float = float("nan")

    def as_row(self) -> dict[str, object]:
        return {
            "rate": self.fault_rate,
            "H_target": self.target_hit_ratio,
            "H": self.hit_ratio,
            "T_frtr_s": self.frtr_time,
            "T_prtr_s": self.prtr_time,
            "speedup": self.speedup,
            "retries": self.prtr_retries,
            "fallbacks": self.prtr_fallbacks,
            "MTTR_ms": self.mttr * 1e3,
            "avail": self.availability,
        }


def effective_speedup_under_faults(
    fault_rate: float,
    hit_ratio: float = 0.0,
    *,
    n_calls: int = 30,
    task_time: float = 0.1,
    seed: int = 0,
    recovery: RecoveryPolicy | None = None,
    hybrid: str = HybridMode.OFF,
) -> FaultSweepPoint:
    """Measure one grid cell: same trace, FRTR vs PRTR, shared fault law.

    The swept ``fault_rate`` is the per-chunk ICAP abort probability.
    ``recovery`` defaults to :class:`~repro.faults.recovery
    .FallbackPolicy` with a 50 ms initial backoff (three partial
    attempts, then a full reconfiguration) — the graceful-degradation
    setting the crossover analysis assumes.  The non-trivial backoff
    matters: failed partial attempts hide behind the overlapped task
    until their cost exceeds the task time, and only then does the
    pipeline stage stretch and the effective speedup drop *below* 1.

    ``hybrid="on"`` answers the cell by closed-form replay when the
    exactness predicates prove the DES result is reproducible without
    simulation (here: the ``fault_rate == 0`` cells); ``"verify"``
    additionally shadow-runs the DES on this cell and asserts the two
    answers are identical (raising
    :class:`~repro.runtime.invariants.InvariantError` otherwise).
    """
    mode = parse_hybrid_mode(hybrid)
    if recovery is None:
        recovery = FallbackPolicy(max_attempts=3, backoff=0.05, cap=0.2)
    if mode != HybridMode.OFF and closed_form_exact(
        fault_point_verdicts(fault_rate, seed)
    ):
        point = replay_fault_point(
            fault_rate,
            hit_ratio,
            n_calls=n_calls,
            task_time=task_time,
            seed=seed,
            recovery=recovery,
        )
        if mode == HybridMode.VERIFY:
            from ..runtime.invariants import audit_hybrid

            simulated = _simulated_fault_point(
                fault_rate, hit_ratio, n_calls=n_calls,
                task_time=task_time, seed=seed, recovery=recovery,
            )
            label = f"faults:rate={fault_rate!r},H={hit_ratio!r}"
            audit_hybrid(
                [HybridSample(label, point, simulated)]
            ).raise_if_strict(strict=True)
        return point
    return _simulated_fault_point(
        fault_rate, hit_ratio, n_calls=n_calls,
        task_time=task_time, seed=seed, recovery=recovery,
    )


def _simulated_fault_point(
    fault_rate: float,
    hit_ratio: float,
    *,
    n_calls: int,
    task_time: float,
    seed: int,
    recovery: RecoveryPolicy | None,
) -> FaultSweepPoint:
    """The pure-DES cell measurement (the ``hybrid=off`` path)."""
    trace = trace_with_hit_ratio(hit_ratio, n_calls, task_time)
    config = FaultConfig(chunk_abort_rate=fault_rate, seed=seed)

    frtr_node = make_node(fault_injector=FaultInjector(config))
    frtr = FrtrExecutor(frtr_node, recovery=recovery).run(trace)

    prtr_node = make_node(fault_injector=FaultInjector(config))
    prtr = PrtrExecutor(prtr_node, recovery=recovery).run(trace)

    speedup = (
        frtr.total_time / prtr.total_time if prtr.total_time > 0 else 0.0
    )
    t_full = prtr.notes["t_config_full"]
    t_part = prtr.notes.get("t_config_partial", float("nan"))
    return FaultSweepPoint(
        fault_rate=fault_rate,
        target_hit_ratio=hit_ratio,
        hit_ratio=prtr.hit_ratio,
        frtr_time=frtr.total_time,
        prtr_time=prtr.total_time,
        speedup=speedup,
        prtr_retries=prtr.n_retries,
        prtr_fallbacks=prtr.n_fallbacks,
        prtr_degraded=prtr.degraded,
        mttr=mean_time_to_repair(prtr),
        availability=availability(prtr),
        x_prtr=t_part / t_full,
        x_task=task_time / t_full,
    )


#: default swept chunk-abort rates: 25-chunk partial writes put the
#: attempt failure probability at ~2% (rate 1e-3) up to ~99.7% (rate 0.2)
DEFAULT_FAULT_RATES = (0.0, 1e-4, 1e-3, 3e-3, 0.01, 0.03, 0.1, 0.2)
DEFAULT_HIT_RATIOS = (0.0, 0.5, 0.9)


def hybrid_cell_modes(
    grid: Sequence[tuple[float, float]],
    hybrid: str,
    seed: int = 0,
) -> list[str]:
    """The per-cell hybrid mode for a ``(hit_ratio, rate)`` grid.

    ``"verify"`` does not shadow-run *every* analytic cell — that would
    cost more than ``off`` — but a seeded sample of them
    (:func:`repro.model.hybrid.verification_sample`); the rest run
    ``"on"``.  The result is a pure function of ``(grid, hybrid,
    seed)``, so sharded and resumed walks pick identical samples.
    """
    mode = parse_hybrid_mode(hybrid)
    if mode != HybridMode.VERIFY:
        return [mode] * len(grid)
    exact = [
        i
        for i, cell in enumerate(grid)
        if closed_form_exact(fault_point_verdicts(cell[1], seed))
    ]
    sampled = {exact[j] for j in verification_sample(len(exact), seed=seed)}
    return [
        HybridMode.VERIFY if i in sampled else HybridMode.ON
        for i in range(len(grid))
    ]


def sweep_fault_hit_grid(
    fault_rates: Sequence[float] = DEFAULT_FAULT_RATES,
    hit_ratios: Sequence[float] = DEFAULT_HIT_RATIOS,
    *,
    n_calls: int = 30,
    task_time: float = 0.1,
    seed: int = 0,
    recovery: RecoveryPolicy | None = None,
    workers: int = 1,
    hybrid: str = HybridMode.OFF,
) -> list[FaultSweepPoint]:
    """The full grid, row-major over hit ratios then fault rates.

    Every point is independently seeded, so ``workers > 1`` evaluates
    the grid across fork workers with bit-identical results
    (:func:`repro.runtime.parallel.parallel_map`).  ``hybrid`` selects
    the analytic fast path per cell (see
    :func:`effective_speedup_under_faults`); the returned points are
    byte-identical across every mode and worker count.
    """
    from ..runtime.parallel import parallel_map

    grid = [(h, rate) for h in hit_ratios for rate in fault_rates]
    modes = hybrid_cell_modes(grid, hybrid, seed)
    return parallel_map(
        lambda item: effective_speedup_under_faults(
            item[0][1],
            item[0][0],
            n_calls=n_calls,
            task_time=task_time,
            seed=seed,
            recovery=recovery,
            hybrid=item[1],
        ),
        list(zip(grid, modes)),
        workers=workers,
    )


def find_crossover(
    points: Sequence[FaultSweepPoint],
    hit_ratio: float | None = None,
) -> float | None:
    """Lowest swept fault rate where PRTR stops winning (speedup <= 1).

    ``hit_ratio`` filters the grid to one row (``None`` uses every
    point).  Returns ``None`` when PRTR wins across the whole sweep.
    """
    rows = [
        p
        for p in points
        if hit_ratio is None or p.target_hit_ratio == hit_ratio
    ]
    crossed = [p.fault_rate for p in rows if p.speedup <= 1.0]
    return min(crossed) if crossed else None
