"""One-shot reproduction report: every artifact, one markdown document.

:func:`generate_report` regenerates Tables 1-2, checks every Figure 5/9
shape claim, runs the sim-vs-model validation, and summarizes the
ablations into a single markdown string (``python -m repro report`` writes
it to disk).  The report is *evidence*, not prose: every number in it was
computed by the call that produced the document.
"""

from __future__ import annotations

import io
from typing import Callable

__all__ = ["generate_report"]


def _section(buf: io.StringIO, title: str) -> None:
    buf.write(f"\n## {title}\n\n")


def _code(buf: io.StringIO, text: str) -> None:
    buf.write("```\n")
    buf.write(text.rstrip("\n"))
    buf.write("\n```\n")


def _claims(buf: io.StringIO, claims: dict[str, bool]) -> bool:
    ok = True
    for name, passed in claims.items():
        buf.write(f"- `{name}`: {'PASS' if passed else '**FAIL**'}\n")
        ok &= passed
    return ok


def generate_report(
    *,
    n_calls: int = 90,
    ablation_calls: int = 1000,
    progress: Callable[[str], None] | None = None,
) -> tuple[str, bool]:
    """Build the report; returns ``(markdown, all_checks_passed)``."""
    from ..experiments import fig5, fig9, table1, table2
    from ..experiments.ablations import (
        granularity_ablation,
        prefetch_ablation,
    )
    from ..experiments.heterogeneity import run as hetero_run
    from ..experiments.scaling import run as scaling_run
    from . import cross_validate
    from .tables import render_table

    note = progress or (lambda _msg: None)
    buf = io.StringIO()
    all_ok = True

    buf.write("# Reproduction report\n\n")
    buf.write(
        "Regenerated from the `repro` library in one pass; every number "
        "below\nwas computed by the run that wrote this file.\n"
    )

    note("table 1")
    _section(buf, "Table 1 — resource usage")
    _code(buf, table1.render())
    mism = table1.verify_against_published()
    buf.write(
        f"\nMismatches vs published: **{len(mism)}** "
        f"{'(cell-exact)' if not mism else mism}\n"
    )
    all_ok &= not mism

    note("table 2")
    _section(buf, "Table 2 — configuration times")
    _code(buf, table2.render())
    failures = table2.verify_against_published()
    checks = cross_validate()
    buf.write(f"\nCells out of tolerance: **{len(failures)}**\n")
    for c in checks:
        buf.write(
            f"\nOut-of-sample prediction: {c.layout} "
            f"{c.predicted_s * 1e3:.2f} ms vs published "
            f"{c.published_s * 1e3:.2f} ms ({c.rel_error:.2%})\n"
        )
        all_ok &= c.rel_error < 0.01
    all_ok &= not failures

    note("figure 5")
    _section(buf, "Figure 5 — asymptotic bounds")
    _code(buf, fig5.render(x_prtr=0.17))
    buf.write("\n")
    all_ok &= _claims(buf, fig5.shape_claims())

    note("figure 9")
    _section(buf, "Figure 9 — the Cray XD1 experiment")
    for which in ("estimated", "measured"):
        _code(buf, fig9.render(which, n_calls=n_calls))
        buf.write("\n")
    all_ok &= _claims(buf, fig9.shape_claims())

    note("prefetch ablation")
    _section(buf, "Ablation A — prefetching (the paper's future work)")
    cells = prefetch_ablation(n_calls=ablation_calls)
    rows = [
        {
            "trace": c.trace, "policy": c.policy,
            "prefetcher": c.prefetcher, "H": c.hit_ratio,
            "S_inf": c.predicted_speedup,
        }
        for c in cells
    ]
    _code(buf, render_table(rows))

    note("granularity ablation")
    _section(buf, "Ablation B — PRR granularity")
    g_rows = []
    for p in granularity_ablation():
        g_rows.append({
            "PRRs": p.n_prrs, "bytes": p.bitstream_bytes,
            "T_PRTR_ms": p.t_prtr * 1e3, "X_PRTR": p.x_prtr,
            "S@2ms": p.speedups[0], "S@2s": p.speedups[-1],
        })
    _code(buf, render_table(g_rows))

    note("heterogeneity")
    _section(buf, "Ablation D — task-time heterogeneity (model limits)")
    h_rows = [
        {
            "distribution": p.distribution, "cv": p.cv,
            "S_true": p.true_speedup,
            "S_mean_based": p.mean_based_speedup,
            "overestimate_%": p.overestimate_pct,
        }
        for p in hetero_run(n_samples=30_000)
    ]
    _code(buf, render_table(h_rows))

    note("scaling")
    _section(buf, "Ablation E — technology scaling")
    s_rows = [
        {
            "device": p.device, "scenario": p.scenario,
            "T_FRTR_ms": p.t_frtr * 1e3, "X_PRTR": p.x_prtr,
            "peak_S": p.peak_speedup,
        }
        for p in scaling_run()
    ]
    _code(buf, render_table(s_rows))

    _section(buf, "Verdict")
    buf.write(
        "All published-artifact checks "
        f"{'**PASS**' if all_ok else '**FAIL**'}.\n"
    )
    return buf.getvalue(), all_ok
