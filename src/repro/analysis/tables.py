"""Plain-text table rendering for experiment output.

The benchmark harness prints the same rows the paper's tables report;
:func:`render_table` formats them with aligned columns, optional float
formats, and a title — nothing fancier than a careful monospace layout.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

__all__ = ["render_table", "format_value", "render_comparison"]


def format_value(value: Any, floatfmt: str = ".4g") -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return format(value, floatfmt)
    return str(value)


def render_table(
    rows: Sequence[Mapping[str, Any]],
    columns: Sequence[str] | None = None,
    *,
    title: str = "",
    floatfmt: str = ".4g",
) -> str:
    """Render dict-rows as an aligned text table.

    ``columns`` selects and orders the columns; defaults to the keys of
    the first row.  Missing cells render empty.
    """
    if not rows:
        return f"{title}\n(empty)" if title else "(empty)"
    cols = list(columns) if columns is not None else list(rows[0])
    cells = [
        [format_value(row.get(c, ""), floatfmt) for c in cols] for row in rows
    ]
    widths = [
        max(len(c), *(len(r[i]) for r in cells)) for i, c in enumerate(cols)
    ]
    sep = "-+-".join("-" * w for w in widths)
    header = " | ".join(c.ljust(w) for c, w in zip(cols, widths))
    body = [
        " | ".join(v.rjust(w) for v, w in zip(r, widths)) for r in cells
    ]
    lines = ([title] if title else []) + [header, sep] + body
    return "\n".join(lines)


def render_comparison(
    rows: Sequence[Mapping[str, Any]],
    *,
    paper_col: str = "paper",
    ours_col: str = "ours",
    label_col: str = "quantity",
    title: str = "",
    floatfmt: str = ".4g",
) -> str:
    """Paper-vs-ours table with a relative-error column appended."""
    out = []
    for row in rows:
        row = dict(row)
        paper = row.get(paper_col)
        ours = row.get(ours_col)
        if (
            isinstance(paper, (int, float))
            and isinstance(ours, (int, float))
            and paper
        ):
            row["rel_err_%"] = 100.0 * (float(ours) - float(paper)) / float(paper)
        else:
            row["rel_err_%"] = ""
        out.append(row)
    cols = [label_col, paper_col, ours_col, "rel_err_%"]
    extra = [c for c in (out[0] if out else {}) if c not in cols]
    return render_table(out, cols + extra, title=title, floatfmt=floatfmt)
