"""Simulation-versus-model validation.

The paper's Figure 9 claim is that the measured points agree with the
analytical curves.  This module formalizes "agree": given a
:class:`~repro.rtr.events.RunResult` and the platform times, compute the
model's prediction (finite-``n`` Eq. 6 and the exact pipeline total) and
report relative errors.

Two reference totals are provided:

* :func:`expected_prtr_pipeline_total` — the *exact* expectation for the
  executor's pipeline given the per-call hit sequence; the simulator must
  match this to float precision (asserted in tests);
* Eq. (3)/(5) via :mod:`repro.model.prtr` — the paper's averaged model;
  agreement is asymptotic in ``n`` (the two differ by at most one stage's
  worth of configuration overlap at the trace boundary).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..model.frtr import frtr_total_time
from ..model.parameters import RawParameters
from ..model.prtr import prtr_total_time
from ..rtr.events import RunResult

__all__ = [
    "ValidationReport",
    "expected_frtr_total",
    "expected_prtr_pipeline_total",
    "validate_frtr",
    "validate_prtr",
    "relative_error",
]


def relative_error(measured: float, expected: float) -> float:
    """``|measured - expected| / |expected|`` (0 when both are 0)."""
    if expected == 0:
        return 0.0 if measured == 0 else np.inf
    return abs(measured - expected) / abs(expected)


def expected_frtr_total(
    result: RunResult, t_frtr: float, t_control: float
) -> float:
    """Eq. (1) evaluated with the run's own per-call task times."""
    task_total = sum(
        r.stage_time - t_frtr - t_control for r in result.records
    )
    # Equivalent closed form, kept explicit for clarity:
    n = result.n_calls
    return n * (t_frtr + t_control) + task_total


def expected_prtr_pipeline_total(
    task_times: list[float],
    hits: list[bool],
    *,
    t_frtr: float,
    t_prtr: float,
    t_control: float = 0.0,
    t_decision: float = 0.0,
) -> float:
    """Exact total of the lookahead-1 pipeline the executor implements.

    Startup (decision + full configuration), then per stage ``i``:
    ``t_control`` plus ``max(task_i + t_decision, t_prtr)`` when call
    ``i+1`` is a miss needing overlap, else ``task_i + t_decision``.
    The *first* call's configuration ships with the initial full
    bitstream; the *last* stage has no successor to configure.
    """
    n = len(task_times)
    if n != len(hits):
        raise ValueError("task_times and hits must have equal length")
    if n == 0:
        raise ValueError("empty trace")
    total = t_decision + t_frtr  # startup
    for i in range(n):
        total += t_control
        serial = task_times[i] + t_decision
        next_missed = (i + 1 < n) and not hits[i + 1]
        total += max(serial, t_prtr) if next_missed else serial
    return total


@dataclass(frozen=True)
class ValidationReport:
    """Measured vs expected totals with relative errors."""

    mode: str
    measured_total: float
    pipeline_total: float | None
    model_total: float
    pipeline_rel_error: float | None
    model_rel_error: float

    def ok(self, pipeline_tol: float = 1e-9, model_tol: float = 0.05) -> bool:
        """Tight agreement with the pipeline, loose with the averaged model."""
        pipe_ok = (
            self.pipeline_rel_error is None
            or self.pipeline_rel_error <= pipeline_tol
        )
        return pipe_ok and self.model_rel_error <= model_tol


def validate_frtr(
    result: RunResult, *, t_frtr: float, t_control: float, t_task: float
) -> ValidationReport:
    """Compare an FRTR run against Eq. (1)."""
    raw = RawParameters(
        t_task=t_task, t_frtr=t_frtr, t_prtr=t_frtr, t_control=t_control
    )
    model = float(frtr_total_time(raw, result.n_calls))
    return ValidationReport(
        mode="frtr",
        measured_total=result.total_time,
        pipeline_total=model,  # Eq. (1) *is* the exact serial pipeline
        model_total=model,
        pipeline_rel_error=relative_error(result.total_time, model),
        model_rel_error=relative_error(result.total_time, model),
    )


def validate_prtr(
    result: RunResult,
    *,
    t_frtr: float,
    t_prtr: float,
    t_control: float = 0.0,
    t_decision: float = 0.0,
) -> ValidationReport:
    """Compare a PRTR run against the pipeline formula and Eq. (3).

    Eq. (3) uses the run's *measured* hit ratio, closing the loop the
    paper draws between experiment and model.
    """
    # Stage times include overlap effects; recover pure task times from
    # the timeline's TASK spans (one per call for opaque-task runs).
    task_spans = result.timeline.by_phase("task")
    if len(task_spans) == result.n_calls:
        task_times = [s.duration for s in task_spans]
    else:  # detailed-io runs: reconstruct from data/compute spans
        task_times = [
            r.stage_time - t_control for r in result.records
        ]
    hits = [r.hit for r in result.records]
    pipeline = expected_prtr_pipeline_total(
        task_times,
        hits,
        t_frtr=t_frtr,
        t_prtr=t_prtr,
        t_control=t_control,
        t_decision=t_decision,
    )
    raw = RawParameters(
        t_task=float(np.mean(task_times)),
        t_frtr=t_frtr,
        t_prtr=t_prtr,
        t_control=t_control,
        t_decision=t_decision,
        hit_ratio=result.hit_ratio,
    )
    model = float(prtr_total_time(raw, result.n_calls))
    return ValidationReport(
        mode="prtr",
        measured_total=result.total_time,
        pipeline_total=pipeline,
        model_total=model,
        pipeline_rel_error=relative_error(result.total_time, pipeline),
        model_rel_error=relative_error(result.total_time, model),
    )
