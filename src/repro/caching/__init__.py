"""Configuration caching and prefetching substrate.

Replacement policies over PRR slots (:mod:`repro.caching.policies`),
prefetch predictors (:mod:`repro.caching.prefetch`, including the
association-rule miner of :mod:`repro.caching.arm`), and trace replay
measuring the achieved hit ratio (:mod:`repro.caching.replay`).
"""

from .arm import ArmPrefetcher, AssociationRule
from .base import CacheStats, ConfigCache, ReplacementPolicy
from .paging import (
    PagedCache,
    PageTable,
    cooccurrence_counts,
    group_by_affinity,
    group_random,
    group_sequential,
    paged_hit_ratio,
)
from .policies import (
    BeladyPolicy,
    FifoPolicy,
    LfuPolicy,
    LruPolicy,
    RandomPolicy,
    make_policy,
)
from .prefetch import (
    MarkovPrefetcher,
    NonePrefetcher,
    OraclePrefetcher,
    Prefetcher,
    SequentialPrefetcher,
    make_prefetcher,
)
from .relocation import AllocationError, ColumnAllocator, Span
from .replay import ReplayResult, replay
from .stackdist import (
    capacity_for_hit_ratio,
    lru_hit_ratio,
    lru_hit_ratios,
    miss_curve,
)

__all__ = [
    "AllocationError",
    "ArmPrefetcher",
    "AssociationRule",
    "BeladyPolicy",
    "CacheStats",
    "ColumnAllocator",
    "ConfigCache",
    "FifoPolicy",
    "LfuPolicy",
    "LruPolicy",
    "MarkovPrefetcher",
    "NonePrefetcher",
    "OraclePrefetcher",
    "PagedCache",
    "PageTable",
    "Prefetcher",
    "RandomPolicy",
    "ReplacementPolicy",
    "ReplayResult",
    "SequentialPrefetcher",
    "Span",
    "capacity_for_hit_ratio",
    "cooccurrence_counts",
    "group_by_affinity",
    "group_random",
    "group_sequential",
    "lru_hit_ratio",
    "lru_hit_ratios",
    "make_policy",
    "make_prefetcher",
    "miss_curve",
    "paged_hit_ratio",
    "replay",
]
