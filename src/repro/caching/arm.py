"""Association-rule-mining (ARM) prefetcher.

Reference [26] of the paper (Taher & El-Ghazawi, DRS 2005) proposes mining
association rules over the recent call history to drive configuration
caching: functions that co-occur within a window are "related", and a call
to one prefetches the others — the hardware-page idea of Section 2.1
("grouping only related functions that are typically requested together,
processing spatial locality can be exploited").

This is an online Apriori-lite over a sliding window:

* maintain the last ``window`` calls;
* count singleton and pair *support* (windows containing the items);
* a rule ``a -> b`` qualifies when ``support(a, b) >= min_support`` and
  confidence ``support(a, b) / support(a) >= min_confidence``;
* prediction for the current module returns the top-confidence
  consequents.
"""

from __future__ import annotations

from collections import deque

from .prefetch import Prefetcher

__all__ = ["ArmPrefetcher", "AssociationRule"]


from dataclasses import dataclass


@dataclass(frozen=True)
class AssociationRule:
    """``antecedent -> consequent`` with its mined statistics."""

    antecedent: str
    consequent: str
    support: int
    confidence: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.confidence <= 1.0:
            raise ValueError(f"confidence out of range: {self.confidence}")
        if self.support < 0:
            raise ValueError(f"negative support: {self.support}")


class ArmPrefetcher(Prefetcher):
    """Online sliding-window association-rule miner.

    Parameters
    ----------
    window:
        History window length (in calls) over which co-occurrence counts.
    min_support:
        Minimum number of co-occurrence windows for a rule to qualify.
    min_confidence:
        Minimum ``P(b in window | a called)`` for the rule ``a -> b``.
    """

    name = "arm"

    def __init__(
        self,
        window: int = 8,
        min_support: int = 2,
        min_confidence: float = 0.3,
    ) -> None:
        if window < 2:
            raise ValueError("window must be >= 2")
        if min_support < 1:
            raise ValueError("min_support must be >= 1")
        if not 0.0 < min_confidence <= 1.0:
            raise ValueError("min_confidence must be in (0, 1]")
        self.window = window
        self.min_support = min_support
        self.min_confidence = min_confidence
        self._history: deque[str] = deque(maxlen=window)
        self._single: dict[str, int] = {}
        self._pair: dict[tuple[str, str], int] = {}
        self._order: dict[str, int] = {}  # deterministic tie-break
        self._last: str | None = None

    # -- mining ------------------------------------------------------------

    def observe(self, module: str) -> None:
        """Count directed co-occurrences from window members to ``module``."""
        self._order.setdefault(module, len(self._order))
        self._single[module] = self._single.get(module, 0) + 1
        for prior in set(self._history):
            if prior != module:
                key = (prior, module)
                self._pair[key] = self._pair.get(key, 0) + 1
        self._history.append(module)
        self._last = module

    def rules_for(self, antecedent: str) -> list[AssociationRule]:
        """All qualifying rules with the given antecedent, best first."""
        base = self._single.get(antecedent, 0)
        if base == 0:
            return []
        rules = []
        for (a, b), support in self._pair.items():
            if a != antecedent or support < self.min_support:
                continue
            confidence = support / base
            if confidence >= self.min_confidence:
                rules.append(
                    AssociationRule(a, b, support, min(confidence, 1.0))
                )
        rules.sort(
            key=lambda r: (
                -r.confidence,
                -r.support,
                self._order.get(r.consequent, 0),
            )
        )
        return rules

    def all_rules(self) -> list[AssociationRule]:
        """Every qualifying rule in the mined set (inspection/testing)."""
        out = []
        for a in self._single:
            out.extend(self.rules_for(a))
        return out

    # -- prediction ---------------------------------------------------------

    def predict(self, width: int = 1) -> list[str]:
        if self._last is None:
            return []
        return [r.consequent for r in self.rules_for(self._last)[:width]]

    def reset(self) -> None:
        self._history.clear()
        self._single.clear()
        self._pair.clear()
        self._order.clear()
        self._last = None
