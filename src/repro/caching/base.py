"""Configuration-cache abstractions and hit/miss accounting.

The paper characterizes a configuration caching/prefetching subsystem by
two numbers — the decision latency ``T_decision`` and the hit ratio ``H``
(Section 3).  This package provides the concrete machinery those numbers
abstract: replacement policies over a fixed number of PRR slots
(:mod:`repro.caching.policies`) and prefetchers that predict the next
module (:mod:`repro.caching.prefetch`).

A :class:`ConfigCache` is the composition the executors use: ``slots``
PRRs, a replacement policy choosing the victim, and statistics tracking
the achieved ``H`` that feeds back into the analytical model.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional, Sequence

__all__ = ["ReplacementPolicy", "CacheStats", "ConfigCache"]


class ReplacementPolicy(ABC):
    """Chooses which resident module to evict when all slots are full.

    Policies see the access stream through :meth:`on_access` /
    :meth:`on_insert` and must answer :meth:`victim` from the *current
    residents*.  They never see slot indices — slot assignment belongs to
    the cache.
    """

    name = "abstract"

    @abstractmethod
    def on_access(self, module: str) -> None:
        """A resident module was referenced (hit)."""

    @abstractmethod
    def on_insert(self, module: str) -> None:
        """A module became resident (after a miss fill)."""

    @abstractmethod
    def on_evict(self, module: str) -> None:
        """A module left the cache."""

    @abstractmethod
    def victim(self, residents: Sequence[str]) -> str:
        """Pick the resident to evict.  ``residents`` is non-empty."""

    def reset(self) -> None:
        """Forget all history (optional override)."""


@dataclass
class CacheStats:
    """Hit/miss counters with derived ratios."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: misses that occurred while at least one slot was still empty
    cold_misses: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        """The achieved ``H``; 0.0 for an untouched cache."""
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def miss_ratio(self) -> float:
        return 1.0 - self.hit_ratio if self.accesses else 0.0


class ConfigCache:
    """A fixed number of PRR slots managed by a replacement policy.

    The minimal operation set the executors need:

    * :meth:`lookup` — is the module resident?  (counts hit/miss)
    * :meth:`fill` — make it resident, evicting if necessary; returns the
      evicted module (or ``None``).
    * :meth:`contains` — residency test *without* touching statistics
      (for prefetchers peeking ahead).
    """

    def __init__(self, slots: int, policy: ReplacementPolicy) -> None:
        if slots <= 0:
            raise ValueError("cache needs at least one slot")
        self.slots = slots
        self.policy = policy
        self._residents: dict[str, int] = {}  # module -> slot index
        self._free: list[int] = list(range(slots))
        self.stats = CacheStats()

    # -- queries ---------------------------------------------------------

    def contains(self, module: str) -> bool:
        return module in self._residents

    @property
    def residents(self) -> list[str]:
        return list(self._residents)

    def slot_of(self, module: str) -> int:
        try:
            return self._residents[module]
        except KeyError:
            raise KeyError(f"{module!r} is not resident") from None

    @property
    def is_full(self) -> bool:
        return not self._free

    # -- operations --------------------------------------------------------

    def lookup(self, module: str) -> bool:
        """Reference ``module``; update stats and policy. True on hit."""
        if module in self._residents:
            self.stats.hits += 1
            self.policy.on_access(module)
            return True
        self.stats.misses += 1
        if self._free:
            self.stats.cold_misses += 1
        return False

    def fill(
        self,
        module: str,
        pinned: set[str] | frozenset[str] = frozenset(),
        blocked: set[int] | frozenset[int] = frozenset(),
    ) -> Optional[str]:
        """Insert ``module`` (idempotent); returns the evicted module.

        ``pinned`` modules may not be evicted (e.g. the module whose PRR
        is currently executing).  ``blocked`` slots may not receive the
        fill nor donate a victim — a failed PRR must not be handed new
        work while its domain is down.  Raises if every usable resident
        is pinned or every free slot is blocked.  With ``blocked`` empty
        the slot choice is byte-identical to the historical behaviour
        (lowest free slot first).
        """
        if module in self._residents:
            return None
        evicted: Optional[str] = None
        usable_free = (
            [s for s in self._free if s not in blocked]
            if blocked
            else self._free
        )
        if usable_free:
            slot = usable_free[0]
            self._free.remove(slot)
        else:
            candidates = [
                m
                for m in self.residents
                if m not in pinned and self._residents[m] not in blocked
            ]
            if not candidates:
                raise RuntimeError(
                    f"cannot fill {module!r}: all {self.slots} residents "
                    f"are pinned ({sorted(pinned)}) or on blocked slots "
                    f"({sorted(blocked)})"
                )
            evicted = self.policy.victim(candidates)
            if evicted not in self._residents:
                raise RuntimeError(
                    f"policy {self.policy.name!r} chose non-resident "
                    f"victim {evicted!r}"
                )
            slot = self._residents.pop(evicted)
            self.policy.on_evict(evicted)
            self.stats.evictions += 1
        self._residents[module] = slot
        self.policy.on_insert(module)
        return evicted

    def place(self, module: str, slot: int) -> None:
        """Install ``module`` into a specific *free* slot.

        The fault/retirement path: a degraded PRR is taken out of
        rotation by placing a pinned sentinel into exactly that slot
        (ordinary :meth:`fill` picks the lowest free slot, which is not
        necessarily the one that died).  Raises if the slot is occupied
        or out of range, or if ``module`` is already resident.
        """
        if module in self._residents:
            raise ValueError(f"{module!r} is already resident")
        if not 0 <= slot < self.slots:
            raise ValueError(f"slot {slot} out of range 0..{self.slots - 1}")
        if slot not in self._free:
            raise ValueError(f"slot {slot} is occupied")
        self._free.remove(slot)
        self._residents[module] = slot
        self.policy.on_insert(module)

    def access(self, module: str) -> bool:
        """lookup + fill in one step; returns the hit flag."""
        hit = self.lookup(module)
        if not hit:
            self.fill(module)
        return hit

    def evict(self, module: str) -> None:
        """Remove ``module`` explicitly (a failed or wiped configuration).

        Unlike capacity evictions this does not count in
        ``stats.evictions`` — the slot was lost to a fault, not to the
        replacement policy.
        """
        try:
            slot = self._residents.pop(module)
        except KeyError:
            raise KeyError(f"{module!r} is not resident") from None
        self._free.append(slot)
        self._free.sort()
        self.policy.on_evict(module)

    def reset(self) -> None:
        self._residents.clear()
        self._free = list(range(self.slots))
        self.stats = CacheStats()
        self.policy.reset()
