"""Hardware paging: fixed-size reconfiguration blocks (Section 2.1).

Ref. [27] of the paper (Taher) proposes grouping hardware functions into
fixed-size *pages* — "hardware reconfiguration blocks" — so one partial
reconfiguration loads several related functions at once: "by grouping
only related functions that are typically requested together, processing
spatial locality can be exploited."

This module implements that model:

* a :class:`PageTable` maps functions to pages of ``page_size`` functions;
* a :class:`PagedCache` caches *pages* in the PRR slots: a call hits when
  its function's page is resident, and a miss loads the whole page
  (bringing the function's page-mates along — the prefetch effect);
* grouping strategies: :func:`group_sequential` (library order — the
  naive baseline), :func:`group_random` (adversarial control) and
  :func:`group_by_affinity`, which greedily packs functions by their
  co-occurrence counts mined from a training trace — the ARM-style
  grouping the paper's Section 2.1 sketches.

The quality of a grouping is its achieved hit ratio on a test trace
(:func:`paged_hit_ratio`), which plugs into Eq. (7) exactly like any
other ``H``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..workloads.task import CallTrace
from .base import CacheStats, ConfigCache, ReplacementPolicy
from .policies import LruPolicy

__all__ = [
    "PageTable",
    "PagedCache",
    "group_sequential",
    "group_random",
    "group_by_affinity",
    "cooccurrence_counts",
    "paged_hit_ratio",
]


@dataclass(frozen=True)
class PageTable:
    """An immutable function -> page mapping with uniform page size."""

    pages: tuple[tuple[str, ...], ...]

    def __post_init__(self) -> None:
        seen: set[str] = set()
        for page in self.pages:
            if not page:
                raise ValueError("empty page")
            for fn in page:
                if fn in seen:
                    raise ValueError(f"function {fn!r} mapped twice")
                seen.add(fn)
        if not self.pages:
            raise ValueError("page table must have at least one page")

    @property
    def n_pages(self) -> int:
        return len(self.pages)

    @property
    def functions(self) -> tuple[str, ...]:
        return tuple(fn for page in self.pages for fn in page)

    def page_of(self, function: str) -> int:
        for i, page in enumerate(self.pages):
            if function in page:
                return i
        raise KeyError(f"function {function!r} not in any page")

    def mates(self, function: str) -> tuple[str, ...]:
        """The functions sharing a page with ``function`` (inclusive)."""
        return self.pages[self.page_of(function)]


class PagedCache:
    """Page-granular configuration cache over the PRR slots.

    Wraps a :class:`ConfigCache` keyed by page id; function-level lookups
    translate through the page table.
    """

    def __init__(
        self,
        table: PageTable,
        slots: int,
        policy: ReplacementPolicy | None = None,
    ) -> None:
        self.table = table
        self._cache = ConfigCache(slots=slots, policy=policy or LruPolicy())

    @property
    def stats(self) -> CacheStats:
        return self._cache.stats

    def access(self, function: str) -> bool:
        """Reference a function; load its whole page on a miss."""
        page = f"page{self.table.page_of(function)}"
        return self._cache.access(page)

    def resident_functions(self) -> list[str]:
        out: list[str] = []
        for resident in self._cache.residents:
            idx = int(resident.removeprefix("page"))
            out.extend(self.table.pages[idx])
        return out

    def reset(self) -> None:
        self._cache.reset()


# -- grouping strategies -----------------------------------------------------


def _chunk(names: Sequence[str], page_size: int) -> tuple[tuple[str, ...], ...]:
    return tuple(
        tuple(names[i : i + page_size])
        for i in range(0, len(names), page_size)
    )


def group_sequential(
    functions: Sequence[str], page_size: int
) -> PageTable:
    """Pages in library order — the no-information baseline."""
    if page_size <= 0:
        raise ValueError("page_size must be >= 1")
    if not functions:
        raise ValueError("no functions to group")
    return PageTable(_chunk(list(functions), page_size))


def group_random(
    functions: Sequence[str],
    page_size: int,
    seed: int = 0,
) -> PageTable:
    """Uniformly shuffled pages — the adversarial control."""
    if page_size <= 0:
        raise ValueError("page_size must be >= 1")
    rng = np.random.default_rng(seed)
    names = list(functions)
    rng.shuffle(names)
    return PageTable(_chunk(names, page_size))


def cooccurrence_counts(
    trace: CallTrace, window: int = 4
) -> dict[tuple[str, str], int]:
    """Symmetric co-occurrence counts within a sliding window."""
    if window < 2:
        raise ValueError("window must be >= 2")
    counts: dict[tuple[str, str], int] = {}
    names = [c.name for c in trace]
    for i, a in enumerate(names):
        for b in names[max(0, i - window + 1) : i]:
            if a == b:
                continue
            key = (min(a, b), max(a, b))
            counts[key] = counts.get(key, 0) + 1
    return counts


def group_by_affinity(
    trace: CallTrace,
    page_size: int,
    window: int = 4,
    functions: Iterable[str] | None = None,
) -> PageTable:
    """Greedy affinity packing: repeatedly seed a page with the most-
    connected ungrouped function and fill it with its strongest
    co-occurring partners (mined from ``trace``).

    Functions absent from the trace (or passed explicitly) fill trailing
    pages in name order.
    """
    if page_size <= 0:
        raise ValueError("page_size must be >= 1")
    counts = cooccurrence_counts(trace, window=window)
    universe = list(dict.fromkeys(
        list(trace.task_names()) + (list(functions) if functions else [])
    ))
    degree: dict[str, int] = {f: 0 for f in universe}
    for (a, b), c in counts.items():
        degree[a] = degree.get(a, 0) + c
        degree[b] = degree.get(b, 0) + c
    ungrouped = set(universe)
    pages: list[tuple[str, ...]] = []
    while ungrouped:
        seed_fn = max(
            sorted(ungrouped), key=lambda f: degree.get(f, 0)
        )
        page = [seed_fn]
        ungrouped.discard(seed_fn)
        while len(page) < page_size and ungrouped:

            def affinity(candidate: str) -> int:
                return sum(
                    counts.get((min(candidate, m), max(candidate, m)), 0)
                    for m in page
                )

            best = max(sorted(ungrouped), key=affinity)
            if affinity(best) == 0 and len(page) >= 1:
                # No related function left; keep the page short rather
                # than polluting it (short pages waste no locality).
                break
            page.append(best)
            ungrouped.discard(best)
        pages.append(tuple(page))
    return PageTable(tuple(pages))


def paged_hit_ratio(
    trace: CallTrace,
    table: PageTable,
    slots: int,
    policy: ReplacementPolicy | None = None,
) -> float:
    """Replay a trace through a paged cache; the achieved ``H``."""
    cache = PagedCache(table, slots=slots, policy=policy)
    for call in trace:
        cache.access(call.name)
    return cache.stats.hit_ratio
