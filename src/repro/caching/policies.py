"""Replacement policies for the configuration cache.

Online policies (LRU, LFU, FIFO, random) plus the offline-optimal Belady
policy used as the upper-bound baseline in the prefetch ablation.  All are
deliberately simple, heavily asserted implementations: the experiments
depend on their *correctness*, not their speed (caches hold a handful of
PRR slots).
"""

from __future__ import annotations

import itertools
from typing import Sequence

import numpy as np

from .base import ReplacementPolicy

__all__ = [
    "LruPolicy",
    "LfuPolicy",
    "FifoPolicy",
    "RandomPolicy",
    "BeladyPolicy",
    "make_policy",
]


class LruPolicy(ReplacementPolicy):
    """Evict the least recently used resident."""

    name = "lru"

    def __init__(self) -> None:
        self._clock = itertools.count()
        self._last_use: dict[str, int] = {}

    def on_access(self, module: str) -> None:
        self._last_use[module] = next(self._clock)

    def on_insert(self, module: str) -> None:
        self._last_use[module] = next(self._clock)

    def on_evict(self, module: str) -> None:
        self._last_use.pop(module, None)

    def victim(self, residents: Sequence[str]) -> str:
        return min(residents, key=lambda m: self._last_use.get(m, -1))

    def reset(self) -> None:
        self._clock = itertools.count()
        self._last_use.clear()


class LfuPolicy(ReplacementPolicy):
    """Evict the least frequently used resident (FIFO tie-break)."""

    name = "lfu"

    def __init__(self) -> None:
        self._clock = itertools.count()
        self._count: dict[str, int] = {}
        self._inserted: dict[str, int] = {}

    def on_access(self, module: str) -> None:
        self._count[module] = self._count.get(module, 0) + 1

    def on_insert(self, module: str) -> None:
        self._count[module] = self._count.get(module, 0) + 1
        self._inserted[module] = next(self._clock)

    def on_evict(self, module: str) -> None:
        # Frequency history survives eviction (classic LFU-with-history
        # would decay it; we keep it simple and deterministic).
        self._inserted.pop(module, None)

    def victim(self, residents: Sequence[str]) -> str:
        return min(
            residents,
            key=lambda m: (
                self._count.get(m, 0),
                self._inserted.get(m, -1),
            ),
        )

    def reset(self) -> None:
        self._clock = itertools.count()
        self._count.clear()
        self._inserted.clear()


class FifoPolicy(ReplacementPolicy):
    """Evict the oldest-inserted resident; accesses don't refresh age."""

    name = "fifo"

    def __init__(self) -> None:
        self._clock = itertools.count()
        self._inserted: dict[str, int] = {}

    def on_access(self, module: str) -> None:
        pass

    def on_insert(self, module: str) -> None:
        self._inserted[module] = next(self._clock)

    def on_evict(self, module: str) -> None:
        self._inserted.pop(module, None)

    def victim(self, residents: Sequence[str]) -> str:
        return min(residents, key=lambda m: self._inserted.get(m, -1))

    def reset(self) -> None:
        self._clock = itertools.count()
        self._inserted.clear()


class RandomPolicy(ReplacementPolicy):
    """Evict a uniformly random resident (seeded: runs are reproducible)."""

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._rng = np.random.default_rng(seed)

    def on_access(self, module: str) -> None:
        pass

    def on_insert(self, module: str) -> None:
        pass

    def on_evict(self, module: str) -> None:
        pass

    def victim(self, residents: Sequence[str]) -> str:
        return residents[int(self._rng.integers(0, len(residents)))]

    def reset(self) -> None:
        self._rng = np.random.default_rng(self._seed)


class BeladyPolicy(ReplacementPolicy):
    """Belady's MIN: evict the resident used farthest in the future.

    Offline-optimal for uniform-cost caches; serves as the unbeatable
    baseline in the ablations.  Construct with the full future reference
    string; the policy tracks its own position via :meth:`on_access` /
    :meth:`on_insert` (exactly one of which fires per trace reference).
    """

    name = "belady"

    def __init__(self, future: Sequence[str]) -> None:
        self._future = list(future)
        self._pos = 0
        # Precompute, for every position, the next use index of the module
        # referenced there... we need "next use after pos" per module, so
        # store sorted occurrence lists.
        self._occurrences: dict[str, list[int]] = {}
        for i, m in enumerate(self._future):
            self._occurrences.setdefault(m, []).append(i)

    def _advance(self, module: str) -> None:
        if self._pos < len(self._future) and self._future[self._pos] != module:
            raise RuntimeError(
                f"Belady trace desync at {self._pos}: expected "
                f"{self._future[self._pos]!r}, saw {module!r}"
            )
        self._pos += 1

    def on_access(self, module: str) -> None:
        self._advance(module)

    def on_insert(self, module: str) -> None:
        self._advance(module)

    def on_evict(self, module: str) -> None:
        pass

    def next_use(self, module: str) -> int:
        """Index of the next reference to ``module`` at/after the cursor."""
        occ = self._occurrences.get(module, [])
        # Binary search for first occurrence >= self._pos.
        lo, hi = 0, len(occ)
        while lo < hi:
            mid = (lo + hi) // 2
            if occ[mid] < self._pos:
                lo = mid + 1
            else:
                hi = mid
        return occ[lo] if lo < len(occ) else len(self._future)

    def victim(self, residents: Sequence[str]) -> str:
        return max(residents, key=self.next_use)

    def reset(self) -> None:
        self._pos = 0


def make_policy(name: str, **kwargs: object) -> ReplacementPolicy:
    """Factory by name: ``lru``/``lfu``/``fifo``/``random``/``belady``."""
    table = {
        "lru": LruPolicy,
        "lfu": LfuPolicy,
        "fifo": FifoPolicy,
        "random": RandomPolicy,
        "belady": BeladyPolicy,
    }
    try:
        cls = table[name]
    except KeyError:
        raise KeyError(f"unknown policy {name!r}; have {sorted(table)}") from None
    return cls(**kwargs)  # type: ignore[arg-type]
