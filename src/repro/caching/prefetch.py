"""Configuration prefetchers.

The paper's model abstracts prefetching into a hit ratio ``H`` and a
decision latency ``T_decision``; these classes are concrete predictors
whose *achieved* ``H`` (measured by :mod:`repro.caching.replay`) plugs
back into the model — the paper's deferred "future investigations",
implemented as the prefetch ablation.

Interface: after each completed call, :meth:`Prefetcher.observe` sees the
module name, then :meth:`Prefetcher.predict` proposes up to ``width``
modules to stage into idle PRRs before the next call.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

__all__ = [
    "Prefetcher",
    "NonePrefetcher",
    "OraclePrefetcher",
    "SequentialPrefetcher",
    "MarkovPrefetcher",
    "make_prefetcher",
]


class Prefetcher(ABC):
    """Predicts the module(s) needed next."""

    name = "abstract"
    #: decision latency this predictor charges per call (``T_decision``)
    decision_time: float = 0.0

    @abstractmethod
    def observe(self, module: str) -> None:
        """Record that ``module`` was just called."""

    @abstractmethod
    def predict(self, width: int = 1) -> list[str]:
        """Up to ``width`` module names to stage next (may be empty)."""

    def reset(self) -> None:
        """Forget all learned state (optional override)."""


class NonePrefetcher(Prefetcher):
    """Never prefetches: the paper's experimental configuration
    (``H = 0, M = 1`` modulo repeated back-to-back calls)."""

    name = "none"

    def observe(self, module: str) -> None:
        pass

    def predict(self, width: int = 1) -> list[str]:
        return []


class OraclePrefetcher(Prefetcher):
    """Perfect lookahead over a known trace (the ``H -> 1`` bound).

    Construct with the full reference string; prediction returns the next
    ``width`` *distinct* upcoming modules.
    """

    name = "oracle"

    def __init__(self, future: Sequence[str]) -> None:
        self._future = list(future)
        self._pos = 0

    def observe(self, module: str) -> None:
        if (
            self._pos < len(self._future)
            and self._future[self._pos] != module
        ):
            raise RuntimeError(
                f"oracle trace desync at {self._pos}: expected "
                f"{self._future[self._pos]!r}, saw {module!r}"
            )
        self._pos += 1

    def predict(self, width: int = 1) -> list[str]:
        out: list[str] = []
        for m in self._future[self._pos :]:
            if m not in out:
                out.append(m)
            if len(out) >= width:
                break
        return out

    def reset(self) -> None:
        self._pos = 0


class SequentialPrefetcher(Prefetcher):
    """Predicts the lexicographic successor within a known library.

    A stand-in for static schedule-based prefetching: effective exactly
    when the workload walks the library in order (pipeline traces), and
    useless on random traces — a useful contrast in the ablation.
    """

    name = "sequential"

    def __init__(self, library_order: Sequence[str]) -> None:
        if not library_order:
            raise ValueError("library order must be non-empty")
        self._order = list(library_order)
        self._index = {m: i for i, m in enumerate(self._order)}
        self._last: str | None = None

    def observe(self, module: str) -> None:
        self._last = module

    def predict(self, width: int = 1) -> list[str]:
        if self._last is None or self._last not in self._index:
            return []
        start = self._index[self._last]
        k = len(self._order)
        return [self._order[(start + 1 + j) % k] for j in range(min(width, k - 1))]

    def reset(self) -> None:
        self._last = None


class MarkovPrefetcher(Prefetcher):
    """First-order Markov predictor with online transition counts.

    Predicts the ``width`` most frequent successors of the current module
    (ties broken by first observation, deterministically).  This is the
    classic configuration-prefetching baseline the caching literature
    ([24, 25]) builds on.
    """

    name = "markov"

    def __init__(self) -> None:
        self._counts: dict[str, dict[str, int]] = {}
        self._first_seen: dict[tuple[str, str], int] = {}
        self._clock = 0
        self._last: str | None = None

    def observe(self, module: str) -> None:
        if self._last is not None:
            row = self._counts.setdefault(self._last, {})
            row[module] = row.get(module, 0) + 1
            self._first_seen.setdefault((self._last, module), self._clock)
            self._clock += 1
        self._last = module

    def predict(self, width: int = 1) -> list[str]:
        if self._last is None:
            return []
        row = self._counts.get(self._last, {})
        ranked = sorted(
            row,
            key=lambda m: (
                -row[m],
                self._first_seen.get((self._last, m), 0),
            ),
        )
        return ranked[:width]

    def reset(self) -> None:
        self._counts.clear()
        self._first_seen.clear()
        self._clock = 0
        self._last = None


def make_prefetcher(name: str, **kwargs: object) -> Prefetcher:
    """Factory: ``none``/``oracle``/``sequential``/``markov``/``arm``."""
    if name == "arm":
        from .arm import ArmPrefetcher

        return ArmPrefetcher(**kwargs)  # type: ignore[arg-type]
    table = {
        "none": NonePrefetcher,
        "oracle": OraclePrefetcher,
        "sequential": SequentialPrefetcher,
        "markov": MarkovPrefetcher,
    }
    try:
        cls = table[name]
    except KeyError:
        raise KeyError(
            f"unknown prefetcher {name!r}; have {sorted(table) + ['arm']}"
        ) from None
    return cls(**kwargs)  # type: ignore[arg-type]
