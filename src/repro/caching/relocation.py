"""Module relocation and defragmentation over the column space (ref [24]).

The fixed-PRR model of the paper's experiments wastes fabric whenever
module sizes differ: a 2-column Sobel core occupies a 12-column PRR.
Li & Hauck's relocation/defragmentation work ([24] in the paper) treats
the reconfigurable area as a contiguous column space instead: modules of
*heterogeneous widths* are placed anywhere, relocated (by rewriting their
frames at a new frame address) and the free space compacted when external
fragmentation blocks an allocation.

:class:`ColumnAllocator` implements that model:

* first-fit / best-fit placement of width-``w`` modules in a
  ``total_columns`` space;
* eviction frees a span; allocation failure distinguishes *capacity*
  (not enough total free columns) from *fragmentation* (enough columns,
  no contiguous hole);
* :meth:`defragment` slides residents left to coalesce the free space,
  reporting which modules moved and the relocation traffic in columns
  (each moved column is one column's worth of reconfiguration data —
  time = columns x column_bytes / port rate, chargeable through the
  usual ICAP model).

The payoff metric — how often defragmentation turns a fragmentation
failure into a successful placement, and what the relocation traffic
costs — feeds the Eq. (7) machinery like any other configuration
overhead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

__all__ = ["Span", "AllocationError", "ColumnAllocator"]


@dataclass(frozen=True)
class Span:
    """A placed module's column interval ``[start, start + width)``."""

    module: str
    start: int
    width: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.width <= 0:
            raise ValueError(f"bad span: {self!r}")

    @property
    def end(self) -> int:
        return self.start + self.width


class AllocationError(RuntimeError):
    """Placement failed; ``reason`` is 'capacity' or 'fragmentation'."""

    def __init__(self, message: str, reason: str) -> None:
        super().__init__(message)
        self.reason = reason


class ColumnAllocator:
    """Contiguous-column placement with relocation support."""

    def __init__(
        self,
        total_columns: int,
        strategy: Literal["first_fit", "best_fit"] = "first_fit",
    ) -> None:
        if total_columns <= 0:
            raise ValueError("total_columns must be >= 1")
        if strategy not in ("first_fit", "best_fit"):
            raise ValueError(f"unknown strategy {strategy!r}")
        self.total_columns = total_columns
        self.strategy = strategy
        self._spans: dict[str, Span] = {}
        #: cumulative relocation traffic, in columns rewritten
        self.relocated_columns = 0
        self.defrag_count = 0

    # -- queries ---------------------------------------------------------

    @property
    def residents(self) -> list[str]:
        return list(self._spans)

    def span_of(self, module: str) -> Span:
        try:
            return self._spans[module]
        except KeyError:
            raise KeyError(f"{module!r} is not placed") from None

    @property
    def used_columns(self) -> int:
        return sum(s.width for s in self._spans.values())

    @property
    def free_columns(self) -> int:
        return self.total_columns - self.used_columns

    def holes(self) -> list[tuple[int, int]]:
        """Free intervals as (start, width), left to right."""
        spans = sorted(self._spans.values(), key=lambda s: s.start)
        holes = []
        cursor = 0
        for s in spans:
            if s.start > cursor:
                holes.append((cursor, s.start - cursor))
            cursor = s.end
        if cursor < self.total_columns:
            holes.append((cursor, self.total_columns - cursor))
        return holes

    def largest_hole(self) -> int:
        return max((w for _, w in self.holes()), default=0)

    def external_fragmentation(self) -> float:
        """``1 - largest_hole / free`` (0 when free space is contiguous)."""
        free = self.free_columns
        if free == 0:
            return 0.0
        return 1.0 - self.largest_hole() / free

    # -- placement ---------------------------------------------------------

    def _find_hole(self, width: int) -> int | None:
        candidates = [(start, w) for start, w in self.holes() if w >= width]
        if not candidates:
            return None
        if self.strategy == "first_fit":
            return candidates[0][0]
        # best-fit: tightest hole, leftmost on ties
        return min(candidates, key=lambda c: (c[1], c[0]))[0]

    def allocate(self, module: str, width: int) -> Span:
        """Place a module; raises :class:`AllocationError` on failure."""
        if module in self._spans:
            raise ValueError(f"{module!r} is already placed")
        if width <= 0:
            raise ValueError("width must be >= 1")
        if width > self.total_columns:
            raise AllocationError(
                f"{module!r} ({width} cols) exceeds the device "
                f"({self.total_columns} cols)",
                reason="capacity",
            )
        start = self._find_hole(width)
        if start is None:
            reason = (
                "fragmentation" if self.free_columns >= width else "capacity"
            )
            raise AllocationError(
                f"no hole of {width} columns for {module!r} "
                f"(free={self.free_columns}, "
                f"largest hole={self.largest_hole()})",
                reason=reason,
            )
        span = Span(module, start, width)
        self._spans[module] = span
        return span

    def free(self, module: str) -> Span:
        span = self.span_of(module)
        del self._spans[module]
        return span

    def allocate_with_defrag(self, module: str, width: int) -> tuple[Span, int]:
        """Allocate, defragmenting first if fragmentation blocks it.

        Returns ``(span, relocation_columns)`` where the second element
        is the traffic the defragmentation cost (0 when none was needed).
        """
        try:
            return self.allocate(module, width), 0
        except AllocationError as exc:
            if exc.reason != "fragmentation":
                raise
        moved = self.defragment()
        traffic = sum(w for _, w in moved)
        return self.allocate(module, width), traffic

    # -- defragmentation ---------------------------------------------------

    def defragment(self) -> list[tuple[str, int]]:
        """Slide every resident left; returns ``(module, width)`` for
        each module that actually moved (its frames were rewritten)."""
        moved = []
        cursor = 0
        for span in sorted(self._spans.values(), key=lambda s: s.start):
            if span.start != cursor:
                self._spans[span.module] = Span(
                    span.module, cursor, span.width
                )
                moved.append((span.module, span.width))
                self.relocated_columns += span.width
            cursor += span.width
        if moved:
            self.defrag_count += 1
        return moved
