"""Trace replay: measure the hit ratio a (cache, prefetcher) pair achieves.

This is the bridge between the concrete caching substrate and the
analytical model: replay a :class:`~repro.workloads.task.CallTrace`
through a :class:`~repro.caching.base.ConfigCache` driven by a
:class:`~repro.caching.prefetch.Prefetcher`, read off the achieved ``H``,
and feed it to Eq. (7).

Replay semantics (matching the paper's execution model):

1. the call references its module — hit or miss is decided *now*;
2. on a miss the module is configured into a slot (the demand fill);
3. while the task runs, the prefetcher stages up to ``prefetch_width``
   predicted modules into other slots (prefetch fills are not references:
   they touch no hit/miss statistics).

Note on Belady: the offline-optimal policy tracks the reference string
through policy callbacks, so it must be replayed with the
``none`` prefetcher (prefetch fills would desynchronize it).  The replay
function enforces this.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..workloads.task import CallTrace
from .base import CacheStats, ConfigCache
from .policies import BeladyPolicy
from .prefetch import NonePrefetcher, Prefetcher

__all__ = ["ReplayResult", "replay"]


@dataclass(frozen=True)
class ReplayResult:
    """Outcome of a trace replay."""

    trace_name: str
    policy: str
    prefetcher: str
    slots: int
    stats: CacheStats
    #: number of prefetch fills issued (useful vs wasted is workload truth)
    prefetches: int
    #: prefetch fills that were later referenced before eviction
    useful_prefetches: int

    @property
    def hit_ratio(self) -> float:
        return self.stats.hit_ratio

    @property
    def prefetch_accuracy(self) -> float:
        return (
            self.useful_prefetches / self.prefetches if self.prefetches else 0.0
        )


def replay(
    trace: CallTrace,
    cache: ConfigCache,
    prefetcher: Prefetcher | None = None,
    prefetch_width: int = 1,
) -> ReplayResult:
    """Replay ``trace`` and return achieved statistics.

    The cache and prefetcher are reset first; pass freshly constructed
    objects or expect their history to be cleared.
    """
    if prefetch_width < 0:
        raise ValueError("prefetch_width must be >= 0")
    prefetcher = prefetcher or NonePrefetcher()
    if isinstance(cache.policy, BeladyPolicy) and not isinstance(
        prefetcher, NonePrefetcher
    ):
        raise ValueError(
            "BeladyPolicy replays require the 'none' prefetcher "
            "(prefetch fills desynchronize the offline reference string)"
        )
    cache.reset()
    prefetcher.reset()

    prefetched: set[str] = set()
    prefetches = 0
    useful = 0
    for call in trace:
        hit = cache.lookup(call.name)
        if hit and call.name in prefetched:
            useful += 1
            prefetched.discard(call.name)
        if not hit:
            prefetched.discard(call.name)
            cache.fill(call.name)
        prefetcher.observe(call.name)
        if prefetch_width:
            for module in prefetcher.predict(prefetch_width):
                if not cache.contains(module):
                    cache.fill(module)
                    prefetched.add(module)
                    prefetches += 1
    # Anything evicted stops being attributable; drop stale markers.
    prefetched &= set(cache.residents)
    return ReplayResult(
        trace_name=trace.name,
        policy=cache.policy.name,
        prefetcher=prefetcher.name,
        slots=cache.slots,
        stats=cache.stats,
        prefetches=prefetches,
        useful_prefetches=useful,
    )
