"""Stack-distance analysis: predict the LRU hit ratio without replay.

The classic inclusion-property result: an LRU cache of capacity ``k``
hits a reference exactly when its *stack reuse distance* (the number of
distinct items referenced since the previous reference to the same item)
is strictly below ``k``.  One pass over the trace therefore yields the
hit ratio of **every** capacity at once — the analytical bridge from a
workload to the model's ``H`` without running a cache at all.

:func:`lru_hit_ratios` returns the whole curve; property tests pin it
against actual :class:`~repro.caching.base.ConfigCache` replays.
"""

from __future__ import annotations

import numpy as np

from ..workloads.task import CallTrace

__all__ = [
    "lru_hit_ratios",
    "lru_hit_ratio",
    "capacity_for_hit_ratio",
    "miss_curve",
]


def lru_hit_ratios(trace: CallTrace, max_slots: int) -> np.ndarray:
    """Hit ratio of an LRU cache for every capacity ``1..max_slots``.

    ``out[k-1]`` is the hit ratio at ``k`` slots.  Computed from the
    trace's reuse-distance histogram in one pass.
    """
    if max_slots <= 0:
        raise ValueError("max_slots must be >= 1")
    hist = trace.reuse_distance_histogram()
    n = trace.n_calls
    hits = np.zeros(max_slots, dtype=np.float64)
    for distance, count in hist.items():
        # A reuse at stack distance d hits every capacity k > d.
        if distance < max_slots:
            hits[distance:] += count
    return hits / n


def lru_hit_ratio(trace: CallTrace, slots: int) -> float:
    """The LRU hit ratio at one capacity (no cache simulation)."""
    if slots <= 0:
        raise ValueError("slots must be >= 1")
    return float(lru_hit_ratios(trace, slots)[slots - 1])


def miss_curve(trace: CallTrace, max_slots: int) -> np.ndarray:
    """Miss ratio per capacity (``1 - hit``); monotone non-increasing."""
    return 1.0 - lru_hit_ratios(trace, max_slots)


def capacity_for_hit_ratio(
    trace: CallTrace, target: float, max_slots: int = 64
) -> int | None:
    """Smallest PRR count achieving ``target`` hit ratio under LRU.

    Returns ``None`` when even ``max_slots`` falls short (compulsory
    misses bound the achievable ``H`` at ``1 - distinct/n``).
    """
    if not 0.0 <= target <= 1.0:
        raise ValueError("target must be in [0, 1]")
    curve = lru_hit_ratios(trace, max_slots)
    meets = np.nonzero(curve >= target - 1e-12)[0]
    return int(meets[0]) + 1 if len(meets) else None
