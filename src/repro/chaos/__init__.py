"""Chaos engineering for the multi-tenant service mode.

The paper's bounds assume a fabric that never fails; this package makes
failure a first-class, *deterministic* input to the service layer:

* :mod:`repro.chaos.spec` — the frozen :class:`ChaosSpec` experiment
  description (scripted domain outages + resilience-policy knobs);
* :mod:`repro.chaos.breakers` — per-failure-domain circuit breakers
  (closed/open/half-open on consecutive configuration failures, seeded
  probe jitter);
* :mod:`repro.chaos.brownout` — the hysteretic SLO-aware brownout
  controller (shed low tiers, stretch quanta, restore with hold-time);
* :mod:`repro.chaos.scenarios` — the named seeded scenario library
  behind ``repro chaos --scenario``;
* :mod:`repro.chaos.harness` — runs a scenario against its fault-free
  baseline and reports availability, MTTR, tail-latency-under-failure
  and goodput retention.

The failure-domain topology itself lives with the hardware model in
:mod:`repro.hardware.domains`.  A spec that is inert (no events, no
reactive policies) never arms the runtime, so rate-0 chaos is
bit-identical to plain ``repro serve``.
"""

from .breakers import CircuitBreaker
from .brownout import BrownoutController
from .scenarios import SCENARIOS, build_scenario, scenario_names
from .spec import ChaosEvent, ChaosSpec, chaos_from_dict

#: harness symbols resolved lazily via ``__getattr__`` — the harness
#: imports the service layer, whose scheduler imports this package, so
#: an eager import here would be a cycle.
_HARNESS_EXPORTS = ("ChaosOutcome", "crash_safe_chaos", "run_chaos")


def __getattr__(name: str):
    """Lazily expose :mod:`repro.chaos.harness` symbols (PEP 562)."""
    if name in _HARNESS_EXPORTS:
        from . import harness

        return getattr(harness, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )

__all__ = [
    "BrownoutController",
    "ChaosEvent",
    "ChaosOutcome",
    "ChaosSpec",
    "CircuitBreaker",
    "SCENARIOS",
    "build_scenario",
    "chaos_from_dict",
    "crash_safe_chaos",
    "run_chaos",
    "scenario_names",
]
