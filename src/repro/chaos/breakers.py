"""Per-failure-domain circuit breakers.

A breaker shields the single configuration path from a domain that keeps
failing configuration attempts: after ``threshold`` *consecutive*
failures the breaker opens and requests against the domain fail fast
(the scheduler backs off instead of hammering a dead ICAP).  After a
cooldown — jittered by the chaos runtime's seeded RNG so probes from
different domains do not synchronize — the next caller is admitted as a
half-open probe; its success closes the breaker, its failure reopens it.

The FSM is pure and event-free: it owns no simulator processes and only
changes state inside :meth:`CircuitBreaker.allow`,
:meth:`CircuitBreaker.record_failure`,
:meth:`CircuitBreaker.record_success` and the forced transitions used by
scripted outages (:meth:`CircuitBreaker.force_open` /
:meth:`CircuitBreaker.force_release`).  That keeps it trivially
deterministic and trivially resumable.

While half-open the breaker admits every caller until one fails — the
simulated node has a single serialized ICAP path, so "one probe at a
time" falls out of the mutex structure upstream rather than being
re-enforced here.
"""

from __future__ import annotations

from ..obs import metrics as obsm

__all__ = ["CircuitBreaker", "BREAKER_STATES"]

#: legal breaker states, in lifecycle order
BREAKER_STATES = ("closed", "open", "half_open")


class CircuitBreaker:
    """Consecutive-failure circuit breaker for one failure domain."""

    def __init__(
        self,
        domain: str,
        *,
        threshold: int = 3,
        cooldown: float = 0.5,
        probe_jitter: float = 0.25,
        rng=None,
    ) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1: {threshold}")
        if cooldown < 0:
            raise ValueError(f"cooldown must be >= 0: {cooldown}")
        if probe_jitter < 0:
            raise ValueError(f"probe_jitter must be >= 0: {probe_jitter}")
        self.domain = domain
        self.threshold = threshold
        self.cooldown = cooldown
        self.probe_jitter = probe_jitter
        self._rng = rng
        self.state = "closed"
        self.consecutive_failures = 0
        self.retry_at = 0.0
        #: ``(time, from_state, to_state)`` tuples, append-only
        self.transitions: list[tuple[float, str, str]] = []
        #: True while a scripted outage holds the breaker open — the
        #: cooldown clock must not half-open it before the domain is back
        self.held = False

    def _transition(self, now: float, to: str) -> None:
        """Record and emit one state change (no-op if already there)."""
        if self.state == to:
            return
        self.transitions.append((now, self.state, to))
        self.state = to
        obsm.counter("repro_chaos_breaker_transitions_total").inc(
            domain=self.domain, to=to
        )

    def _probe_delay(self) -> float:
        """Cooldown plus seeded jitter for the next half-open probe."""
        jitter = 0.0
        if self._rng is not None and self.probe_jitter > 0:
            jitter = self.probe_jitter * self._rng.random()
        return self.cooldown * (1.0 + jitter)

    def allow(self, now: float) -> bool:
        """Whether a configuration attempt may proceed at ``now``.

        An open breaker whose cooldown has elapsed (and that is not held
        open by a live scripted outage) flips to half-open; the call that
        flipped it is the probe and is admitted.
        """
        if self.state == "open":
            if not self.held and now >= self.retry_at:
                self._transition(now, "half_open")
                return True
            return False
        return True

    def record_failure(self, now: float) -> None:
        """Account one failed configuration attempt against the domain."""
        if self.state == "half_open":
            self.retry_at = now + self._probe_delay()
            self._transition(now, "open")
            self.consecutive_failures = 0
            return
        self.consecutive_failures += 1
        if (
            self.state == "closed"
            and self.consecutive_failures >= self.threshold
        ):
            self.retry_at = now + self._probe_delay()
            self._transition(now, "open")
            self.consecutive_failures = 0

    def record_success(self, now: float) -> None:
        """Account one successful attempt; closes a half-open breaker."""
        self.consecutive_failures = 0
        if self.state == "half_open":
            self._transition(now, "closed")

    def force_open(self, now: float) -> None:
        """Scripted outage start: open and hold until explicit release."""
        self.held = True
        self.consecutive_failures = 0
        self._transition(now, "open")

    def force_release(self, now: float) -> None:
        """Scripted outage end: start the cooldown clock toward a probe."""
        if not self.held:
            return
        self.held = False
        if self.state == "open":
            self.retry_at = now + self._probe_delay()

    def as_dict(self) -> dict:
        """JSON-safe summary for the chaos payload."""
        return {
            "domain": self.domain,
            "state": self.state,
            "transitions": [
                {"time": t, "from": a, "to": b}
                for t, a, b in self.transitions
            ],
        }
