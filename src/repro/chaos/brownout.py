"""SLO-aware brownout controller.

When injected failures shrink capacity, the service can either let every
tenant's tail latency blow up together or deliberately *brown out*: shed
the lowest tiers and stretch scheduling quanta (fewer preemption
checkpoints, less reconfiguration churn) until the tail recovers.  This
controller makes that call from two sliding-window signals —

* windowed p99 of completed-request latency, and
* windowed shed rate (terminal sheds / terminal outcomes);

it *enters* brownout when either crosses its enter threshold (with at
least ``min_samples`` outcomes observed) and *exits* only after both
have stayed below their exit thresholds continuously for ``hold`` sim
seconds — classic hysteresis, so a single good completion cannot flap
the service back to full admission mid-outage.

Like the circuit breaker, the controller is pure: it owns no simulator
processes and changes state only inside the ``observe_*`` calls the
scheduler already makes on completion/shed, so determinism and resume
come for free.
"""

from __future__ import annotations

import math
from collections import deque

from ..obs import metrics as obsm

__all__ = ["BrownoutController"]


def _nearest_rank_p99(values: list[float]) -> float:
    """Nearest-rank p99 (same method as :mod:`repro.service.slo`).

    Re-implemented locally because :mod:`repro.service.slo` imports the
    scheduler, which imports this module — a lazy import would hide the
    cycle, three lines of arithmetic remove it.
    """
    if not values:
        return math.nan
    ordered = sorted(values)
    rank = max(1, math.ceil(0.99 * len(ordered)))
    return ordered[rank - 1]


class BrownoutController:
    """Hysteretic load-shedding controller driven by observed outcomes."""

    def __init__(
        self,
        *,
        enter_p99: float = 0.5,
        exit_p99: float = 0.25,
        enter_shed: float = 0.25,
        exit_shed: float = 0.05,
        window: int = 64,
        min_samples: int = 16,
        hold: float = 1.0,
        max_shed_priority: int = 0,
        quantum_stretch: float = 2.0,
    ) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1: {window}")
        if min_samples < 1:
            raise ValueError(f"min_samples must be >= 1: {min_samples}")
        if hold < 0:
            raise ValueError(f"hold must be >= 0: {hold}")
        if quantum_stretch < 1.0:
            raise ValueError(
                f"quantum_stretch must be >= 1: {quantum_stretch}"
            )
        self.enter_p99 = enter_p99
        self.exit_p99 = exit_p99
        self.enter_shed = enter_shed
        self.exit_shed = exit_shed
        self.min_samples = min_samples
        self.hold = hold
        self.max_shed_priority = max_shed_priority
        self.quantum_stretch = quantum_stretch
        self.active = False
        self._latencies: deque[float] = deque(maxlen=window)
        #: recent terminal outcomes: True = shed, False = completed
        self._sheds: deque[bool] = deque(maxlen=window)
        self._below_since: float | None = None
        #: ``(time, state)`` with state in {"entered", "exited"}
        self.epochs: list[tuple[float, str]] = []

    def _windowed_p99(self) -> float:
        """p99 over the latency window (nan while empty)."""
        return _nearest_rank_p99(list(self._latencies))

    def _shed_rate(self) -> float:
        """Shed fraction over the terminal-outcome window."""
        if not self._sheds:
            return 0.0
        return sum(self._sheds) / len(self._sheds)

    def _signals_high(self) -> bool:
        """Either signal above its *enter* threshold."""
        p99 = self._windowed_p99()
        return (
            p99 == p99 and p99 > self.enter_p99
        ) or self._shed_rate() > self.enter_shed

    def _signals_low(self) -> bool:
        """Both signals below their *exit* thresholds."""
        p99 = self._windowed_p99()
        p99_ok = not (p99 == p99) or p99 < self.exit_p99
        return p99_ok and self._shed_rate() < self.exit_shed

    def _update(self, now: float) -> None:
        """Re-evaluate the FSM after one observation at ``now``."""
        if not self.active:
            if (
                len(self._sheds) >= self.min_samples
                and self._signals_high()
            ):
                self.active = True
                self._below_since = None
                self.epochs.append((now, "entered"))
                obsm.counter(
                    "repro_chaos_brownout_epochs_total"
                ).inc(state="entered")
            return
        if self._signals_low():
            if self._below_since is None:
                self._below_since = now
            if now - self._below_since >= self.hold:
                self.active = False
                self._below_since = None
                self.epochs.append((now, "exited"))
                obsm.counter(
                    "repro_chaos_brownout_epochs_total"
                ).inc(state="exited")
        else:
            self._below_since = None

    def observe_completion(self, now: float, latency: float) -> None:
        """Feed one completed request's latency into the window."""
        self._latencies.append(latency)
        self._sheds.append(False)
        self._update(now)

    def observe_shed(self, now: float) -> None:
        """Feed one terminal shed into the window."""
        self._sheds.append(True)
        self._update(now)

    def should_shed(self, priority: int) -> bool:
        """Whether an arrival of ``priority`` is browned out right now."""
        return self.active and priority <= self.max_shed_priority

    def stretch(self) -> float:
        """Current quantum multiplier (1.0 outside brownout)."""
        return self.quantum_stretch if self.active else 1.0

    def as_dict(self) -> dict:
        """JSON-safe epoch log for the chaos payload."""
        return {
            "active": self.active,
            "epochs": [
                {"time": t, "state": s} for t, s in self.epochs
            ],
        }
