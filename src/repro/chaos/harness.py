"""The ``repro chaos`` harness: scenarios vs their fault-free baseline.

One chaos realization is a *pair* of service runs sharing a seed: the
fault-free baseline (the same :class:`~repro.service.tenants.ServiceConfig`
with ``chaos=None``) and the chaotic run.  The pair makes the resilience
metrics well-defined:

* **availability** — per tenant, the fraction of arrivals that were not
  shed (completed / (completed + shed));
* **goodput retention** — chaotic completions over baseline completions,
  the headline "how much service survived the scenario" number;
* **MTTR** — mean time to repair per failure domain, straight from the
  chaos runtime's outage log;
* **latency under failure** — the chaotic run's p50/p99/p999 next to the
  baseline's, so tail inflation is read off directly.

:func:`crash_safe_chaos` journals realizations exactly like
:func:`~repro.service.runner.crash_safe_serve` (kill + ``--resume`` is
byte-identical), and the ``none`` scenario — a ``None`` spec — delegates
to ``crash_safe_serve`` itself, so a rate-0 chaos run produces the *same
journal bytes* as plain ``repro serve``.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, replace
from typing import Any, Callable, Sequence

from ..runtime.crashsafe import run_checkpointed
from ..runtime.invariants import AuditReport, audit_chaos
from ..runtime.journal import atomic_write_text
from ..runtime.watchdog import Watchdog
from ..service.runner import ServeOutcome, _audit_from_payload, crash_safe_serve
from ..service.scheduler import ServiceResult, run_service
from ..service.slo import percentile, slo_report
from ..service.tenants import ServiceConfig, TenantSpec

__all__ = ["ChaosOutcome", "chaos_payload", "crash_safe_chaos", "run_chaos"]


def _availability(report_tenants: dict[str, Any]) -> dict[str, float]:
    """Per-tenant served fraction: completed / (completed + shed)."""
    out = {}
    for name, t in sorted(report_tenants.items()):
        offered = t["completed"] + t["shed_total"]
        out[name] = (t["completed"] / offered) if offered else 1.0
    return out


def _mttr(outages: Sequence[dict[str, Any]]) -> dict[str, float]:
    """Mean time to repair per failure domain (recovered outages only)."""
    spans: dict[str, list[float]] = {}
    for outage in outages:
        recovered = outage.get("recovered_at")
        if recovered is None:
            continue
        spans.setdefault(outage["domain"], []).append(
            recovered - outage["failed_at"]
        )
    return {
        domain: sum(values) / len(values)
        for domain, values in sorted(spans.items())
    }


def _latency_quantiles(result: ServiceResult) -> dict[str, float]:
    """Service-wide p50/p99/p999 over every completed request."""
    lat = [v for t in result.tenants for v in t.latencies]
    return {
        "p50": percentile(lat, 50.0),
        "p99": percentile(lat, 99.0),
        "p999": percentile(lat, 99.9),
    }


def chaos_payload(
    result: ServiceResult, baseline: ServiceResult
) -> dict[str, Any]:
    """Journal payload for one realization: report, chaos log, metrics.

    ``result`` is the chaotic run, ``baseline`` its fault-free twin
    (same tenants, same seed, ``chaos=None``).  The payload embeds the
    ``chaos-containment`` audit so a resumed run replays the original
    verdicts instead of re-auditing.
    """
    chaos = result.chaos or {}
    outages = chaos.get("outages", [])
    per_domain = _mttr(outages)
    breaker_transitions = sum(
        len(b["transitions"])
        for b in chaos.get("breakers", {}).values()
    )
    retention = (
        result.total_completed / baseline.total_completed
        if baseline.total_completed
        else 1.0
    )
    report = slo_report(result)
    return {
        "report": report,
        "epochs": result.decision_epochs,
        "audit": audit_chaos(result).as_dict(),
        "chaos": chaos,
        "resilience": {
            "availability": _availability(report["tenants"]),
            "goodput_retention": retention,
            "baseline_completed": baseline.total_completed,
            "completed": result.total_completed,
            "mttr": per_domain,
            "mttr_overall": (
                sum(per_domain.values()) / len(per_domain)
                if per_domain
                else math.nan
            ),
            "outages": len(outages),
            "migrations": sum(t.migrations for t in result.tenants),
            "breaker_transitions": breaker_transitions,
            "brownout_epochs": len((chaos.get("brownout") or {}).get(
                "epochs", []
            )),
            "latency_under_failure": _latency_quantiles(result),
            "latency_baseline": _latency_quantiles(baseline),
        },
    }


def run_chaos(
    tenants: Sequence[TenantSpec], config: ServiceConfig, *, seed: int = 0
) -> dict[str, Any]:
    """Run one chaos realization and its fault-free baseline.

    ``config.chaos`` holds the armed :class:`~repro.chaos.spec.ChaosSpec`;
    the baseline strips it and reruns the identical service under the
    identical seed, so every difference in the payload's resilience
    section is attributable to the injected failures alone.
    """
    baseline = run_service(
        tenants, replace(config, chaos=None), seed=seed
    )
    result = run_service(tenants, config, seed=seed)
    return chaos_payload(result, baseline)


@dataclass
class ChaosOutcome(ServeOutcome):
    """A checkpointed chaos run; payloads carry resilience sections."""

    @property
    def resilience(self) -> list[dict[str, Any]]:
        """The per-replication resilience summaries, in order."""
        return [p["resilience"] for p in self.results]


def crash_safe_chaos(
    run_dir: str,
    tenants: Sequence[TenantSpec],
    config: ServiceConfig,
    *,
    scenario: str,
    seed: int = 0,
    replications: int = 1,
    resume: bool = False,
    deadline_s: float | None = None,
    strict: bool | None = None,
    progress: Callable[[str], None] | None = None,
    workers: int = 1,
) -> ServeOutcome:
    """Run (or resume) a journaled chaos scenario, baseline included.

    Mirrors :func:`~repro.service.runner.crash_safe_serve` — replication
    ``i`` seeds from ``seed + i``, kill + ``resume`` is byte-identical —
    with a ``kind: "chaos"`` journal whose meta additionally pins the
    scenario name.  A ``None`` ``config.chaos`` (the ``none`` scenario)
    delegates wholesale to ``crash_safe_serve``: the journal is then
    bit-identical to a plain ``repro serve`` run of the same parameters.
    """
    if config.chaos is None:
        return crash_safe_serve(
            run_dir, tenants, config,
            seed=seed, replications=replications, resume=resume,
            deadline_s=deadline_s, strict=strict, progress=progress,
            workers=workers,
        )
    if replications < 1:
        raise ValueError(f"replications must be >= 1: {replications}")
    meta = {
        "kind": "chaos",
        "scenario": str(scenario),
        "tenants": [t.as_dict() for t in tenants],
        "config": config.as_dict(),
        "seed": int(seed),
        "replications": int(replications),
    }
    if resume:
        from ..service.runner import verify_resume_meta

        verify_resume_meta(run_dir, meta)
    watchdog = (
        Watchdog(max_wall_s=deadline_s) if deadline_s is not None else None
    )
    outcome = run_checkpointed(
        run_dir,
        list(range(replications)),
        lambda rep: run_chaos(tenants, config, seed=seed + rep),
        key_of=lambda rep: f"rep={rep}",
        meta=meta,
        resume=resume,
        watchdog=watchdog,
        progress=progress,
        workers=workers,
    )
    audit = AuditReport()
    for payload in outcome.results:
        audit.merge(_audit_from_payload(payload))
    atomic_write_text(
        os.path.join(run_dir, "invariants.json"),
        json.dumps(audit.as_dict(), indent=2) + "\n",
    )
    chaos = ChaosOutcome(
        results=outcome.results,
        interrupted=outcome.interrupted,
        resumed_points=outcome.resumed_points,
        computed_points=outcome.computed_points,
        journal=outcome.journal,
        merge_audit=outcome.merge_audit,
        audit=audit,
    )
    audit.raise_if_strict(strict)
    return chaos
