"""Named, seeded chaos scenarios.

Every scenario is a pure function ``(rng, horizon, prrs, blades) ->
ChaosSpec`` registered under a stable name: the same ``(name, seed,
horizon, prrs, blades)`` tuple always yields the same event schedule, so
a scenario run is exactly as reproducible as the service run underneath
it.  The library covers the failure shapes the resilience layer is built
for:

================  =====================================================
``none``          no chaos at all — builds to ``None`` so the harness
                  runs the plain serve path (the rate-0 identity anchor)
``single-prr-loss``  one PRR slot drops out mid-run and comes back
``rolling-blades``   every blade power-cycles in turn, never two at once
``icap-flap``        the configuration port flaps through short outages
``seu-storm``        a burst of very short single-PRR upsets
                     (scrub-and-recover timescale)
``compound``         blade loss + ICAP flapping + a late PRR loss under
                     sustained tenant load, brownout armed — the
                     overload-plus-failure stress case
================  =====================================================

Use :func:`build_scenario` to resolve a name; :data:`SCENARIOS` maps
names to descriptions for ``repro chaos --list-scenarios`` and for the
docs-pinning test that keeps ``docs/RESILIENCE.md`` honest.
"""

from __future__ import annotations

from ..model.stochastic import resolve_rng
from .spec import ChaosEvent, ChaosSpec

__all__ = ["SCENARIOS", "build_scenario", "scenario_names"]


def _single_prr_loss(rng, horizon, prrs, blades):
    """One random PRR slot fails once for ~25% of the horizon."""
    slot = int(rng.integers(0, prrs))
    start = float(rng.uniform(0.2, 0.45)) * horizon
    duration = float(rng.uniform(0.2, 0.3)) * horizon
    return ChaosSpec(
        events=(ChaosEvent(start, f"prr{slot}", duration),),
        blades=blades,
        seed=int(rng.integers(0, 2**31)),
    )


def _rolling_blades(rng, horizon, prrs, blades):
    """Each blade power-cycles in turn; windows never overlap."""
    events = []
    window = 0.6 * horizon / max(blades, 1)
    start = 0.15 * horizon
    for b in range(blades):
        duration = float(rng.uniform(0.4, 0.6)) * window
        events.append(ChaosEvent(start, f"blade{b}", duration))
        start += window
    return ChaosSpec(
        events=tuple(events),
        blades=blades,
        seed=int(rng.integers(0, 2**31)),
    )


def _icap_flap(rng, horizon, prrs, blades):
    """The first ICAP port flaps: four short outages with gaps."""
    events = []
    t = 0.15 * horizon
    for _ in range(4):
        duration = float(rng.uniform(0.02, 0.05)) * horizon
        events.append(ChaosEvent(t, "icap0", duration))
        t += duration + float(rng.uniform(0.08, 0.15)) * horizon
    return ChaosSpec(
        events=tuple(events),
        blades=blades,
        breaker_cooldown=0.02 * horizon,
        seed=int(rng.integers(0, 2**31)),
    )


def _seu_storm(rng, horizon, prrs, blades):
    """Twelve very short single-PRR upsets scattered over the middle.

    Each outage models an SEU detected by scrubbing: the slot is gone
    only for the scrub-and-reconfigure window, but the resident module's
    state is lost, so the task restarts from its checkpoint elsewhere.
    """
    events = []
    for _ in range(12):
        slot = int(rng.integers(0, prrs))
        start = float(rng.uniform(0.1, 0.85)) * horizon
        duration = float(rng.uniform(0.005, 0.02)) * horizon
        events.append(ChaosEvent(start, f"prr{slot}", duration))
    events.sort(key=lambda e: (e.time, e.domain))
    return ChaosSpec(
        events=tuple(events),
        blades=blades,
        seed=int(rng.integers(0, 2**31)),
    )


def _compound(rng, horizon, prrs, blades):
    """Blade loss + ICAP flaps + late PRR loss, brownout armed.

    Overload emerges from the capacity loss itself: the tenants keep
    arriving at full rate while half the slots are dark, which is what
    drives the brownout controller through a full enter/exit epoch.
    """
    events = [
        ChaosEvent(
            0.2 * horizon,
            "blade0" if blades > 1 else "prr0",
            float(rng.uniform(0.2, 0.3)) * horizon,
        )
    ]
    t = 0.55 * horizon
    for _ in range(3):
        duration = float(rng.uniform(0.01, 0.03)) * horizon
        events.append(
            ChaosEvent(t, f"icap{min(1, blades - 1)}", duration)
        )
        t += duration + float(rng.uniform(0.04, 0.08)) * horizon
    events.append(
        ChaosEvent(
            0.8 * horizon,
            f"prr{prrs - 1}",
            float(rng.uniform(0.1, 0.15)) * horizon,
        )
    )
    return ChaosSpec(
        events=tuple(events),
        blades=blades,
        breaker_cooldown=0.02 * horizon,
        brownout_enabled=True,
        brownout_enter_p99=0.08 * horizon,
        brownout_exit_p99=0.04 * horizon,
        brownout_hold=0.03 * horizon,
        seed=int(rng.integers(0, 2**31)),
    )


#: scenario name -> (description, builder); ``None`` builder = no chaos
SCENARIOS: dict = {
    "none": (
        "no injected failures — identical to plain `repro serve`",
        None,
    ),
    "single-prr-loss": (
        "one PRR slot fails mid-run and recovers",
        _single_prr_loss,
    ),
    "rolling-blades": (
        "every blade power-cycles in turn (correlated PRR+ICAP loss)",
        _rolling_blades,
    ),
    "icap-flap": (
        "the configuration port flaps through short repeated outages",
        _icap_flap,
    ),
    "seu-storm": (
        "a burst of very short single-PRR upsets (scrub timescale)",
        _seu_storm,
    ),
    "compound": (
        "blade loss + ICAP flapping + late PRR loss under full load",
        _compound,
    ),
}


def scenario_names() -> list[str]:
    """Registry names in deterministic (sorted) order."""
    return sorted(SCENARIOS)


def build_scenario(
    name: str,
    *,
    seed: int = 0,
    horizon: float = 30.0,
    prrs: int = 4,
    blades: int = 2,
) -> ChaosSpec | None:
    """Resolve ``name`` into a seeded :class:`ChaosSpec`.

    Returns ``None`` for the ``"none"`` scenario so callers can fall
    through to the plain serve path.  Unknown names raise with the
    available registry listed.
    """
    if name not in SCENARIOS:
        raise ValueError(
            f"unknown chaos scenario {name!r}; available: "
            f"{', '.join(scenario_names())}"
        )
    if prrs < 1:
        raise ValueError(f"prrs must be >= 1: {prrs}")
    if not 1 <= blades <= prrs:
        raise ValueError(
            f"blades must be in 1..{prrs}: {blades}"
        )
    if horizon <= 0:
        raise ValueError(f"horizon must be > 0: {horizon}")
    _, builder = SCENARIOS[name]
    if builder is None:
        return None
    rng = resolve_rng(seed)
    return builder(rng, horizon, prrs, blades)
