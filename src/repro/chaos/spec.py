"""Declarative description of one chaos experiment.

A :class:`ChaosSpec` is pure data: the scripted domain outages to inject,
the failure-domain layout (blade count), and the resilience-policy knobs
(circuit breakers, brownout controller, config-retry backoff).  It is
frozen and JSON-serializable (:meth:`ChaosSpec.as_dict`) so it can ride
inside the crash-safe journal meta and gate resume compatibility exactly
like :class:`repro.service.tenants.ServiceConfig` does.

A spec with no events and all reactive policies disabled is *inert*
(:attr:`ChaosSpec.inert`): the service executor refuses to arm the chaos
runtime for it, which is what makes rate-0 chaos bit-identical to plain
``repro serve`` by construction rather than by luck.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ChaosEvent", "ChaosSpec", "chaos_from_dict"]


@dataclass(frozen=True)
class ChaosEvent:
    """One scripted domain outage.

    Attributes
    ----------
    time:
        Sim time at which the domain fails (after service boot).
    domain:
        Failure-domain name in the run's
        :class:`repro.hardware.domains.DomainTopology`.
    duration:
        How long the domain stays down before recovering.
    kind:
        Event class; only ``"outage"`` today, kept explicit so the
        journal meta stays forward-compatible.
    """

    time: float
    domain: str
    duration: float
    kind: str = "outage"

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"event time must be >= 0: {self.time}")
        if self.duration <= 0:
            raise ValueError(
                f"event duration must be > 0: {self.duration}"
            )
        if self.kind != "outage":
            raise ValueError(f"unknown chaos event kind {self.kind!r}")
        if not self.domain:
            raise ValueError("event domain must be non-empty")

    def as_dict(self) -> dict:
        """JSON-safe form, field order fixed for journal meta."""
        return {
            "time": self.time,
            "domain": self.domain,
            "duration": self.duration,
            "kind": self.kind,
        }


@dataclass(frozen=True)
class ChaosSpec:
    """Full chaos-experiment configuration (events + policy knobs).

    Breaker knobs drive the per-domain
    :class:`repro.chaos.breakers.CircuitBreaker` instances; brownout
    knobs drive the :class:`repro.chaos.brownout.BrownoutController`.
    ``seed`` feeds only the chaos runtime's private RNG (breaker probe
    jitter) and never touches the tenant arrival streams.
    """

    events: tuple[ChaosEvent, ...] = ()
    blades: int = 1
    breakers_enabled: bool = True
    breaker_threshold: int = 3
    breaker_cooldown: float = 0.5
    breaker_probe_jitter: float = 0.25
    brownout_enabled: bool = False
    brownout_enter_p99: float = 0.5
    brownout_exit_p99: float = 0.25
    brownout_enter_shed: float = 0.25
    brownout_exit_shed: float = 0.05
    brownout_window: int = 64
    brownout_min_samples: int = 16
    brownout_hold: float = 1.0
    brownout_max_shed_priority: int = 0
    brownout_quantum_stretch: float = 2.0
    config_retry_backoff: float = 0.01
    seed: int = 0

    def __post_init__(self) -> None:
        if not isinstance(self.events, tuple):
            object.__setattr__(self, "events", tuple(self.events))
        if self.blades < 1:
            raise ValueError(f"blades must be >= 1: {self.blades}")
        if self.breaker_threshold < 1:
            raise ValueError(
                f"breaker_threshold must be >= 1: {self.breaker_threshold}"
            )
        if self.breaker_cooldown < 0:
            raise ValueError(
                f"breaker_cooldown must be >= 0: {self.breaker_cooldown}"
            )
        if self.breaker_probe_jitter < 0:
            raise ValueError(
                "breaker_probe_jitter must be >= 0: "
                f"{self.breaker_probe_jitter}"
            )
        if self.brownout_window < 1:
            raise ValueError(
                f"brownout_window must be >= 1: {self.brownout_window}"
            )
        if self.brownout_min_samples < 1:
            raise ValueError(
                "brownout_min_samples must be >= 1: "
                f"{self.brownout_min_samples}"
            )
        if self.brownout_hold < 0:
            raise ValueError(
                f"brownout_hold must be >= 0: {self.brownout_hold}"
            )
        if self.brownout_quantum_stretch < 1.0:
            raise ValueError(
                "brownout_quantum_stretch must be >= 1 (brownout never "
                f"shrinks quanta): {self.brownout_quantum_stretch}"
            )
        if self.config_retry_backoff < 0:
            raise ValueError(
                "config_retry_backoff must be >= 0: "
                f"{self.config_retry_backoff}"
            )

    @property
    def inert(self) -> bool:
        """True when arming the runtime could not change the run.

        No scripted events, breakers off, brownout off: every chaos hook
        in the executor would be a no-op, so the executor leaves
        ``self._chaos`` unset and the run stays on the exact plain-serve
        code path.
        """
        return (
            not self.events
            and not self.breakers_enabled
            and not self.brownout_enabled
        )

    def as_dict(self) -> dict:
        """JSON-safe fingerprint for journal meta / resume guards."""
        return {
            "events": [e.as_dict() for e in self.events],
            "blades": self.blades,
            "breakers_enabled": self.breakers_enabled,
            "breaker_threshold": self.breaker_threshold,
            "breaker_cooldown": self.breaker_cooldown,
            "breaker_probe_jitter": self.breaker_probe_jitter,
            "brownout_enabled": self.brownout_enabled,
            "brownout_enter_p99": self.brownout_enter_p99,
            "brownout_exit_p99": self.brownout_exit_p99,
            "brownout_enter_shed": self.brownout_enter_shed,
            "brownout_exit_shed": self.brownout_exit_shed,
            "brownout_window": self.brownout_window,
            "brownout_min_samples": self.brownout_min_samples,
            "brownout_hold": self.brownout_hold,
            "brownout_max_shed_priority": self.brownout_max_shed_priority,
            "brownout_quantum_stretch": self.brownout_quantum_stretch,
            "config_retry_backoff": self.config_retry_backoff,
            "seed": self.seed,
        }


def chaos_from_dict(data: dict) -> ChaosSpec:
    """Rebuild a :class:`ChaosSpec` from :meth:`ChaosSpec.as_dict` output.

    Unknown keys raise so a stale journal meta cannot silently drop a
    policy knob on resume.
    """
    payload = dict(data)
    raw_events = payload.pop("events", [])
    known = {f.name for f in ChaosSpec.__dataclass_fields__.values()}
    unknown = set(payload) - known
    if unknown:
        raise ValueError(
            f"unknown chaos spec keys: {sorted(unknown)}"
        )
    events = tuple(ChaosEvent(**e) for e in raw_events)
    return ChaosSpec(events=events, **payload)
