"""Command-line interface: regenerate any paper artifact from a shell.

    python -m repro table1
    python -m repro table2
    python -m repro fig5 --x-prtr 0.17 --csv fig5.csv
    python -m repro fig9 --panel measured --calls 120
    python -m repro profiles
    python -m repro ablation-prefetch --calls 2000
    python -m repro ablation-granularity
    python -m repro faults --rates 0,0.01,0.1,0.3
    python -m repro sweep --run-dir runs/night --deadline 3600
    python -m repro sweep --run-dir runs/night --resume
    python -m repro power --run-dir runs/pareto --contract-deadline 6
    python -m repro trace --out trace.json
    python -m repro metrics --profile
    python -m repro validate
    python -m repro lint --json
    python -m repro all

Every subcommand prints the same text tables/plots the benchmark harness
shows, and optionally writes the figure's data series as CSV.

Exit codes: 0 success, 1 a claim or invariant check failed, 2 usage
error (bad arguments, missing or already-existing run directory — one
line on stderr, no traceback), 3 a watchdog deadline interrupted the
run (resume it with ``--resume``).
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Sequence

from .analysis import render_table, write_csv
from .runtime.invariants import InvariantError

__all__ = ["main", "build_parser"]


def _parse_floats(text: str, what: str) -> list[float]:
    """Parse ``"0,0.5,0.9"`` with a one-line-friendly error message."""
    try:
        return [float(part) for part in text.split(",")]
    except ValueError:
        raise ValueError(
            f"--{what} expects comma-separated numbers, got {text!r}"
        ) from None


def _cmd_table1(args: argparse.Namespace) -> int:
    from .experiments import table1

    print(table1.render())
    mismatches = table1.verify_against_published()
    if mismatches:
        print(f"\nMISMATCHES vs published: {mismatches}")
        return 1
    print("\nAll cells match the published Table 1 exactly.")
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    from .analysis import cross_validate
    from .experiments import table2

    print(table2.render())
    failures = table2.verify_against_published()
    for check in cross_validate():
        print(
            f"\nOut-of-sample check: {check.layout} predicted "
            f"{check.predicted_s * 1e3:.2f} ms vs published "
            f"{check.published_s * 1e3:.2f} ms "
            f"({check.rel_error:.2%} error)"
        )
    if failures:
        print(f"\nCELLS OUT OF TOLERANCE: {failures}")
        return 1
    return 0


def _cmd_fig5(args: argparse.Namespace) -> int:
    from .experiments import fig5
    from .model.hybrid import HybridMode, parse_hybrid_mode

    mode = parse_hybrid_mode(args.hybrid)
    # Eq. (7) is already closed form, so the hybrid fast path here is
    # evaluation sharing: compute the panel grid once and reuse it for
    # the plot and the CSV instead of recomputing per artifact.  The
    # rendered bytes are identical either way.
    result = (
        fig5.run((args.x_prtr,), fig5.DEFAULT_HIT_RATIOS)
        if mode != HybridMode.OFF
        else None
    )
    print(fig5.render(x_prtr=args.x_prtr, result=result))
    claims = fig5.shape_claims(x_prtr=args.x_prtr)
    print()
    for name, ok in claims.items():
        print(f"  claim {name}: {'PASS' if ok else 'FAIL'}")
    if args.csv:
        write_csv(args.csv, fig5.to_csv(x_prtr=args.x_prtr, result=result))
        print(f"\nwrote {args.csv}")
    return 0 if all(claims.values()) else 1


def _cmd_fig9(args: argparse.Namespace) -> int:
    from .experiments import fig9

    panels = (
        ["estimated", "measured"] if args.panel == "both" else [args.panel]
    )
    ok = True
    for which in panels:
        print(fig9.render(
            which, n_calls=args.calls, workers=args.workers,
            hybrid=args.hybrid,
        ))
        print()
        if args.csv:
            path = args.csv.replace(".csv", f"_{which}.csv")
            write_csv(
                path,
                fig9.to_csv(
                    which, n_calls=args.calls, workers=args.workers,
                    hybrid=args.hybrid,
                ),
            )
            print(f"wrote {path}\n")
    claims = fig9.shape_claims()
    for name, passed in claims.items():
        print(f"  claim {name}: {'PASS' if passed else 'FAIL'}")
        ok &= passed
    return 0 if ok else 1


def _cmd_profiles(args: argparse.Namespace) -> int:
    from .experiments import fig234_profiles

    print(fig234_profiles.render_all(width=args.width))
    return 0


def _cmd_ablation_prefetch(args: argparse.Namespace) -> int:
    from .experiments.ablations import prefetch_ablation

    cells = prefetch_ablation(slots=args.slots, n_calls=args.calls)
    rows = [
        {
            "trace": c.trace,
            "policy": c.policy,
            "prefetcher": c.prefetcher,
            "H": c.hit_ratio,
            "accuracy": c.prefetch_accuracy,
            "S_inf": c.predicted_speedup,
        }
        for c in cells
    ]
    print(render_table(rows, title="Prefetch ablation"))
    return 0


def _cmd_ablation_granularity(args: argparse.Namespace) -> int:
    from .experiments.ablations import granularity_ablation

    points = granularity_ablation()
    rows = []
    for p in points:
        row: dict[str, object] = {
            "PRRs": p.n_prrs,
            "cols": p.columns_each,
            "bytes": p.bitstream_bytes,
            "T_PRTR_ms": p.t_prtr * 1e3,
            "X_PRTR": p.x_prtr,
        }
        for i, s in enumerate(p.speedups):
            row[f"S[{i}]"] = s
        rows.append(row)
    print(render_table(rows, title="PRR granularity ablation"))
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    from .analysis import ascii_plot, series_to_csv
    from .analysis.reliability import (
        DEFAULT_FAULT_RATES,
        DEFAULT_HIT_RATIOS,
        find_crossover,
        sweep_fault_hit_grid,
    )

    rates = (
        _parse_floats(args.rates, "rates")
        if args.rates
        else list(DEFAULT_FAULT_RATES)
    )
    hit_ratios = (
        _parse_floats(args.hit_ratios, "hit-ratios")
        if args.hit_ratios
        else list(DEFAULT_HIT_RATIOS)
    )
    points = sweep_fault_hit_grid(
        rates, hit_ratios,
        n_calls=args.calls, task_time=args.task_time, seed=args.seed,
        workers=args.workers, hybrid=args.hybrid,
    )
    print(render_table(
        [p.as_row() for p in points],
        title="Effective speedup under ICAP chunk-abort faults",
    ))
    series = {
        f"H={h:g}": (
            [p.fault_rate for p in points if p.target_hit_ratio == h],
            [p.speedup for p in points if p.target_hit_ratio == h],
        )
        for h in hit_ratios
    }
    print()
    print(ascii_plot(
        series,
        title="effective speedup vs chunk-abort rate",
        xlabel="chunk abort rate", ylabel="S_eff", logx=True,
    ))
    print()
    claims = {}
    h_lo, h_hi = min(hit_ratios), max(hit_ratios)
    zero_rate = [p for p in points if p.fault_rate == 0.0]
    claims["fault_free_prtr_wins"] = all(p.speedup > 1.0 for p in zero_rate)
    cross_lo = find_crossover(points, h_lo)
    claims["crossover_at_low_hit_ratio"] = cross_lo is not None
    cross_hi = find_crossover(points, h_hi)
    claims["high_hit_ratio_more_robust"] = cross_hi is None or (
        cross_lo is not None and cross_hi >= cross_lo
    )
    for h in hit_ratios:
        c = find_crossover(points, h)
        print(f"  H={h:g}: PRTR->FRTR crossover at rate "
              f"{'(none in sweep)' if c is None else format(c, 'g')}")
    print()
    for name, ok in claims.items():
        print(f"  claim {name}: {'PASS' if ok else 'FAIL'}")
    if args.csv:
        write_csv(args.csv, series_to_csv(series, x_name="chunk_abort_rate"))
        print(f"\nwrote {args.csv}")
    return 0 if all(claims.values()) else 1


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .analysis import series_to_csv
    from .analysis.reliability import (
        DEFAULT_FAULT_RATES,
        DEFAULT_HIT_RATIOS,
    )
    from .runtime import crash_safe_fault_sweep
    from .runtime.invariants import set_strict

    rates = (
        _parse_floats(args.rates, "rates")
        if args.rates
        else list(DEFAULT_FAULT_RATES)
    )
    hit_ratios = (
        _parse_floats(args.hit_ratios, "hit-ratios")
        if args.hit_ratios
        else list(DEFAULT_HIT_RATIOS)
    )
    # --strict-invariants also arms the per-run audits inside every
    # executor, not just the final sweep-level report.
    previous = set_strict(args.strict_invariants)
    try:
        outcome = crash_safe_fault_sweep(
            args.run_dir,
            rates,
            hit_ratios,
            n_calls=args.calls,
            task_time=args.task_time,
            seed=args.seed,
            resume=args.resume,
            deadline_s=args.deadline,
            workers=args.workers,
            hybrid=args.hybrid,
            progress=(
                None if args.quiet else (lambda m: print(f"... {m}"))
            ),
        )
    finally:
        set_strict(previous)
    print(render_table(
        [p.as_row() for p in outcome.points],
        title="Crash-safe fault sweep (journaled)",
    ))
    print()
    print(
        f"  run dir          : {args.run_dir}\n"
        f"  journaled points : {outcome.journal.n_points}"
        f" (replayed {outcome.resumed_points},"
        f" computed {outcome.computed_points})\n"
        f"  {outcome.audit.summary_line()}"
    )
    if args.csv:
        series = {
            f"H={h:g}": (
                [p.fault_rate for p in outcome.points
                 if p.target_hit_ratio == h],
                [p.speedup for p in outcome.points
                 if p.target_hit_ratio == h],
            )
            for h in hit_ratios
        }
        write_csv(args.csv, series_to_csv(series, x_name="chunk_abort_rate"))
        print(f"\nwrote {args.csv}")
    if outcome.interrupted is not None:
        print(
            f"repro: sweep interrupted ({outcome.interrupted}); "
            f"completed work is journaled — rerun with --resume",
            file=sys.stderr,
        )
        return 3
    return 0 if outcome.audit.ok else 1


def _cmd_power(args: argparse.Namespace) -> int:
    from .analysis import series_to_csv
    from .power.contracts import (
        max_throughput_under_cap,
        min_energy_under_deadline,
    )
    from .power.pareto import (
        DEFAULT_POWER_HIT_RATIOS,
        DEFAULT_PRR_COUNTS,
        crash_safe_power_sweep,
        power_pareto_front,
    )
    from .runtime.invariants import set_strict

    prr_counts = (
        [int(p) for p in _parse_floats(args.prrs, "prrs")]
        if args.prrs
        else list(DEFAULT_PRR_COUNTS)
    )
    hit_ratios = (
        _parse_floats(args.hit_ratios, "hit-ratios")
        if args.hit_ratios
        else list(DEFAULT_POWER_HIT_RATIOS)
    )
    previous = set_strict(args.strict_invariants)
    try:
        outcome = crash_safe_power_sweep(
            args.run_dir,
            prr_counts,
            hit_ratios,
            n_calls=args.calls,
            task_time=args.task_time,
            seed=args.seed,
            resume=args.resume,
            deadline_s=args.deadline,
            workers=args.workers,
            hybrid=args.hybrid,
            progress=(
                None if args.quiet else (lambda m: print(f"... {m}"))
            ),
        )
    finally:
        set_strict(previous)
    print(render_table(
        [p.as_row() for p in outcome.points],
        title="Time-vs-energy sweep (journaled)",
    ))
    front = power_pareto_front(outcome.points)
    print()
    print(render_table(
        [p.as_row() for p in front],
        title="Pareto frontier (PRTR time vs energy)",
    ))
    contracts = []
    if args.contract_deadline is not None:
        contracts.append(min_energy_under_deadline(
            outcome.points, args.contract_deadline
        ))
    if args.power_cap is not None:
        contracts.append(max_throughput_under_cap(
            outcome.points, args.power_cap
        ))
    if contracts:
        print()
        for c in contracts:
            print(f"  {c.summary_line()}")
    print()
    print(
        f"  run dir          : {args.run_dir}\n"
        f"  journaled points : {outcome.journal.n_points}"
        f" (replayed {outcome.resumed_points},"
        f" computed {outcome.computed_points})\n"
        f"  {outcome.audit.summary_line()}"
    )
    if args.csv:
        series = {
            f"H={h:g}": (
                [float(p.n_prrs) for p in outcome.points
                 if p.target_hit_ratio == h],
                [p.prtr_energy_j for p in outcome.points
                 if p.target_hit_ratio == h],
            )
            for h in hit_ratios
        }
        write_csv(args.csv, series_to_csv(series, x_name="n_prrs"))
        print(f"\nwrote {args.csv}")
    if outcome.interrupted is not None:
        print(
            f"repro: power sweep interrupted ({outcome.interrupted}); "
            f"completed work is journaled — rerun with --resume",
            file=sys.stderr,
        )
        return 3
    return 0 if outcome.audit.ok else 1


def _parse_degrade(text: str) -> tuple[tuple[float, int], ...]:
    """Parse ``"5:1,20:0"`` into ``((5.0, 1), (20.0, 0))``."""
    if not text:
        return ()
    out = []
    for part in text.split(","):
        try:
            t, slot = part.split(":")
            out.append((float(t), int(slot)))
        except ValueError:
            raise ValueError(
                f"--degrade-at expects comma-separated time:slot pairs "
                f"(e.g. 5:1,20:0), got {text!r}"
            ) from None
    return tuple(out)


def _cmd_serve(args: argparse.Namespace) -> int:
    import json

    from .runtime.invariants import set_strict
    from .service import (
        ServiceConfig,
        crash_safe_serve,
        default_tenants,
        load_tenants,
        run_service,
        serve_payload,
    )
    from .service.slo import render_report, report_json

    tenants = (
        load_tenants(args.tenants) if args.tenants else default_tenants()
    )
    config = ServiceConfig(
        horizon=args.ticks,
        admission=not args.no_admission,
        preemption=not args.no_preempt,
        degrade_at=_parse_degrade(args.degrade_at),
        prrs=args.prrs,
        power_cap_w=args.power_cap,
    )
    previous = set_strict(args.strict_invariants)
    try:
        if args.run_dir:
            outcome = crash_safe_serve(
                args.run_dir,
                tenants,
                config,
                seed=args.seed,
                replications=args.replications,
                resume=args.resume,
                deadline_s=args.deadline,
                workers=args.workers,
                progress=(
                    None if args.quiet else (lambda m: print(f"... {m}"))
                ),
            )
            if args.json:
                print(json.dumps(outcome.reports, sort_keys=True, indent=2))
            else:
                for rep, report in enumerate(outcome.reports):
                    print(f"-- replication {rep} " + "-" * 50)
                    print(render_report(report))
            print(
                f"\n  run dir               : {args.run_dir}\n"
                f"  journaled replications: {outcome.journal.n_points}"
                f" (replayed {outcome.resumed_points},"
                f" computed {outcome.computed_points})\n"
                f"  {outcome.audit.summary_line()}"
            )
            if outcome.interrupted is not None:
                print(
                    f"repro: serve interrupted ({outcome.interrupted}); "
                    f"completed replications are journaled — rerun with "
                    f"--resume",
                    file=sys.stderr,
                )
                return 3
            return 0 if outcome.audit.ok else 1
        payload = serve_payload(
            run_service(tenants, config, seed=args.seed)
        )
        if args.json:
            print(report_json(payload["report"]))
        else:
            print(render_report(payload["report"]))
        if payload["report"]["interrupted"]:
            print(
                f"repro: serve interrupted "
                f"({payload['report']['interrupted']})",
                file=sys.stderr,
            )
            return 3
        return 0 if payload["audit"]["ok"] else 1
    finally:
        set_strict(previous)


def _render_resilience(resilience: dict) -> str:
    """Human summary lines for one chaos realization's resilience."""
    import math

    lines = [
        f"resilience: goodput retention "
        f"{100.0 * resilience['goodput_retention']:.2f}% "
        f"({resilience['completed']}/{resilience['baseline_completed']} "
        f"vs fault-free), {resilience['outages']} outage(s), "
        f"{resilience['migrations']} migration(s), "
        f"{resilience['breaker_transitions']} breaker transition(s), "
        f"{resilience['brownout_epochs']} brownout epoch(s)",
    ]
    if resilience["mttr"]:
        mttr = ", ".join(
            f"{domain}={value:.4f}s"
            for domain, value in resilience["mttr"].items()
        )
        lines.append(f"mttr: {mttr}")
    under = resilience["latency_under_failure"]
    base = resilience["latency_baseline"]

    def _cell(v: float | None) -> str:
        if v is None or (isinstance(v, float) and math.isnan(v)):
            return "-"
        return f"{v:.4f}"

    lines.append(
        f"latency p50/p99/p999: {_cell(under['p50'])}/"
        f"{_cell(under['p99'])}/{_cell(under['p999'])} under failure, "
        f"{_cell(base['p50'])}/{_cell(base['p99'])}/{_cell(base['p999'])} "
        f"fault-free"
    )
    avail = ", ".join(
        f"{name}={100.0 * value:.2f}%"
        for name, value in resilience["availability"].items()
    )
    lines.append(f"availability: {avail}")
    return "\n".join(lines)


def _cmd_chaos(args: argparse.Namespace) -> int:
    import json

    from .chaos import build_scenario, scenario_names
    from .chaos.harness import crash_safe_chaos, run_chaos
    from .chaos.scenarios import SCENARIOS
    from .runtime.invariants import set_strict
    from .service import ServiceConfig, default_tenants, load_tenants
    from .service.slo import render_report

    if args.list_scenarios:
        width = max(len(name) for name in scenario_names())
        for name in scenario_names():
            print(f"{name:<{width}}  {SCENARIOS[name][0]}")
        return 0
    spec = build_scenario(
        args.scenario,
        seed=args.seed,
        horizon=args.ticks,
        prrs=args.prrs,
        blades=args.blades,
    )
    tenants = (
        load_tenants(args.tenants) if args.tenants else default_tenants()
    )
    config = ServiceConfig(
        horizon=args.ticks, prrs=args.prrs, chaos=spec
    )
    previous = set_strict(args.strict_invariants)
    try:
        if args.run_dir:
            outcome = crash_safe_chaos(
                args.run_dir,
                tenants,
                config,
                scenario=args.scenario,
                seed=args.seed,
                replications=args.replications,
                resume=args.resume,
                deadline_s=args.deadline,
                workers=args.workers,
                progress=(
                    None if args.quiet else (lambda m: print(f"... {m}"))
                ),
            )
            if args.json:
                print(json.dumps(
                    outcome.results, sort_keys=True, indent=2
                ))
            else:
                for rep, payload in enumerate(outcome.results):
                    print(f"-- replication {rep} " + "-" * 50)
                    print(render_report(payload["report"]))
                    if "resilience" in payload:
                        print(_render_resilience(payload["resilience"]))
            print(
                f"\n  scenario              : {args.scenario}\n"
                f"  run dir               : {args.run_dir}\n"
                f"  journaled replications: {outcome.journal.n_points}"
                f" (replayed {outcome.resumed_points},"
                f" computed {outcome.computed_points})\n"
                f"  {outcome.audit.summary_line()}"
            )
            if outcome.interrupted is not None:
                print(
                    f"repro: chaos interrupted ({outcome.interrupted}); "
                    f"completed replications are journaled — rerun with "
                    f"--resume",
                    file=sys.stderr,
                )
                return 3
            return 0 if outcome.audit.ok else 1
        if spec is None:
            # The "none" scenario without a run dir is exactly one plain
            # service realization — same code path as `repro serve`.
            from .service import run_service, serve_payload

            payload = serve_payload(
                run_service(tenants, config, seed=args.seed)
            )
        else:
            payload = run_chaos(tenants, config, seed=args.seed)
        if args.json:
            print(json.dumps(payload, sort_keys=True, indent=2))
        else:
            print(render_report(payload["report"]))
            if "resilience" in payload:
                print(_render_resilience(payload["resilience"]))
        if payload["report"]["interrupted"]:
            print(
                f"repro: chaos interrupted "
                f"({payload['report']['interrupted']})",
                file=sys.stderr,
            )
            return 3
        return 0 if payload["audit"]["ok"] else 1
    finally:
        set_strict(previous)


def _observability_workload(n_calls: int):
    """The quickstart workload both observability verbs instrument."""
    from .workloads import CallTrace, HardwareTask

    names = ("median", "sobel", "smoothing")
    lib = {name: HardwareTask(name, 0.05) for name in names}
    return CallTrace(
        [lib[names[i % len(names)]] for i in range(n_calls)],
        name="quickstart",
    )


def _cmd_trace(args: argparse.Namespace) -> int:
    import json

    from .obs import metrics as obsm
    from .obs.tracing import (
        comparison_to_chrome,
        trace_document,
        validate_chrome_trace,
        write_chrome_trace,
    )
    from .rtr.runner import compare

    with obsm.observed():
        comparison = compare(_observability_workload(args.calls))
    events = comparison_to_chrome(comparison)
    problems = validate_chrome_trace(trace_document(events))
    if problems:
        for problem in problems:
            print(f"repro: trace schema: {problem}", file=sys.stderr)
        return 1
    write_chrome_trace(args.out, events)
    n_spans = sum(1 for ev in events if ev["ph"] == "X")
    print(
        f"wrote {args.out}: {n_spans} spans across 2 runs "
        f"(FRTR {comparison.frtr.total_time:.4g} s, "
        f"PRTR {comparison.prtr.total_time:.4g} s, "
        f"speedup {comparison.speedup:.2f}x)"
    )
    print("open it at https://ui.perfetto.dev or chrome://tracing")
    if args.json:
        print(json.dumps(obsm.get_registry().snapshot(), indent=2))
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    import json

    from .obs import metrics as obsm
    from .obs.profile import profiled
    from .obs.report import render_utilization
    from .rtr.runner import ComparisonResult, make_node
    from .rtr.frtr import FrtrExecutor
    from .rtr.prtr import PrtrExecutor
    from .runtime.invariants import audit_metrics

    trace = _observability_workload(args.calls)
    with obsm.observed():
        frtr = FrtrExecutor(make_node()).run(trace)
        prtr_node = make_node()
        if args.profile:
            with profiled(prtr_node.sim) as profiler:
                prtr = PrtrExecutor(prtr_node).run(trace)
        else:
            prtr = PrtrExecutor(prtr_node).run(trace)
        comparison = ComparisonResult(frtr=frtr, prtr=prtr)
        snapshot = obsm.snapshot()
        audit = audit_metrics(snapshot)
    if args.json:
        print(json.dumps(snapshot, indent=2))
        return 0 if audit.ok else 1
    print(obsm.render())
    print()
    print(render_utilization(prtr))
    print()
    print(f"measured speedup      : {comparison.speedup:.2f}x")
    if args.profile:
        print()
        print("DES hot-path profile (PRTR run, wall clock):")
        print(profiler.render(args.top))
    print(f"\n{audit.summary_line()}")
    return 0 if audit.ok else 1


def _cmd_validate(args: argparse.Namespace) -> int:
    import numpy as np

    from .analysis import validate_frtr, validate_prtr
    from .experiments import fig9
    from .hardware import PUBLISHED_TABLE2
    from .rtr import FrtrExecutor, PrtrExecutor, make_node
    from .workloads import CallTrace, HardwareTask

    worst_pipe = worst_model = worst_frtr = 0.0
    for which in ("estimated", "measured"):
        p = fig9.panel(which)
        for x_task in np.logspace(-2, 0.5, 5):
            t_task = float(x_task) * p.t_frtr
            lib = {
                n: HardwareTask(n, t_task)
                for n in ("median", "sobel", "smoothing")
            }
            trace = CallTrace(
                [lib[n] for n in ("median", "sobel", "smoothing") * 20],
                name="val",
            )
            frtr = FrtrExecutor(
                make_node(), estimated=p.estimated,
                control_time=p.t_control,
            ).run(trace)
            rep = validate_frtr(
                frtr, t_frtr=frtr.notes["t_config_full"],
                t_control=p.t_control, t_task=t_task,
            )
            worst_frtr = max(worst_frtr, rep.model_rel_error)
            prtr = PrtrExecutor(
                make_node(), estimated=p.estimated,
                control_time=p.t_control, force_miss=True,
                bitstream_bytes=PUBLISHED_TABLE2["dual_prr"].bitstream_bytes,
            ).run(trace)
            rep = validate_prtr(
                prtr, t_frtr=prtr.notes["t_config_full"],
                t_prtr=prtr.notes["t_config_partial"],
                t_control=p.t_control,
            )
            worst_pipe = max(worst_pipe, rep.pipeline_rel_error or 0.0)
            worst_model = max(worst_model, rep.model_rel_error)
    print(f"max FRTR vs Eq.(1) rel error   : {worst_frtr:.3e}")
    print(f"max PRTR vs pipeline rel error : {worst_pipe:.3e}")
    print(f"max PRTR vs Eq.(3) rel error   : {worst_model:.3e}")
    ok = worst_frtr < 1e-9 and worst_pipe < 1e-9 and worst_model < 0.05
    print("VALIDATION", "PASS" if ok else "FAIL")
    return 0 if ok else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    import sys as _sys
    from pathlib import Path

    repo_root = Path(__file__).resolve().parents[2]
    tools = repo_root / "tools"
    if not (tools / "reprolint" / "engine.py").exists():
        raise OSError(
            "repro lint needs a repository checkout "
            f"(no tools/reprolint under {repo_root})"
        )
    if str(tools) not in _sys.path:
        _sys.path.insert(0, str(tools))
    import reprolint

    argv = ["--repo-root", str(repo_root)]
    if args.json:
        argv.append("--json")
    if args.baseline:
        argv += ["--baseline", args.baseline]
    if args.no_baseline:
        argv.append("--no-baseline")
    if args.write_baseline:
        argv.append("--write-baseline")
    if args.select:
        argv += ["--select", args.select]
    if args.ignore:
        argv += ["--ignore", args.ignore]
    if args.list_rules:
        argv.append("--list-rules")
    if args.sarif:
        argv += ["--sarif", args.sarif]
    if args.no_cache:
        argv.append("--no-cache")
    return reprolint.main(argv)


def _cmd_report(args: argparse.Namespace) -> int:
    from .analysis.report import generate_report

    text, ok = generate_report(
        n_calls=args.calls, progress=lambda m: print(f"... {m}")
    )
    with open(args.output, "w", encoding="utf-8") as fh:
        fh.write(text)
    print(f"wrote {args.output} ({len(text.splitlines())} lines); "
          f"checks {'PASS' if ok else 'FAIL'}")
    return 0 if ok else 1


def _cmd_all(args: argparse.Namespace) -> int:
    rc = 0
    for name, fn in _COMMANDS.items():
        # "sweep" and "power" need a --run-dir; "report" and "trace"
        # write files; "lint" needs a source checkout; "serve" and
        # "chaos" run long service horizons; none belongs in the
        # zero-argument smoke pass.
        if name in (
            "all", "report", "sweep", "power", "serve", "chaos",
            "trace", "lint",
        ):
            continue
        print("=" * 72)
        print(f"== {name}")
        print("=" * 72)
        ns = build_parser().parse_args([name])
        rc |= fn(ns)
        print()
    return rc


_COMMANDS: dict[str, Callable[[argparse.Namespace], int]] = {
    "table1": _cmd_table1,
    "table2": _cmd_table2,
    "fig5": _cmd_fig5,
    "fig9": _cmd_fig9,
    "profiles": _cmd_profiles,
    "ablation-prefetch": _cmd_ablation_prefetch,
    "ablation-granularity": _cmd_ablation_granularity,
    "faults": _cmd_faults,
    "sweep": _cmd_sweep,
    "power": _cmd_power,
    "serve": _cmd_serve,
    "chaos": _cmd_chaos,
    "trace": _cmd_trace,
    "metrics": _cmd_metrics,
    "validate": _cmd_validate,
    "lint": _cmd_lint,
    "report": _cmd_report,
    "all": _cmd_all,
}


def build_parser() -> argparse.ArgumentParser:
    from . import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="Table 1: resource usage")
    sub.add_parser("table2", help="Table 2: configuration times")

    from .model.hybrid import HybridMode

    hybrid_help = (
        "analytic fast path: 'on' answers exactness-proven points by "
        "closed-form replay (bit-identical, no event loop), 'verify' "
        "additionally shadow-runs a seeded sample on the DES and fails "
        "on any mismatch (docs/PERFORMANCE.md)"
    )

    p5 = sub.add_parser("fig5", help="Figure 5: asymptotic bounds")
    p5.add_argument("--x-prtr", type=float, default=0.17)
    p5.add_argument("--csv", type=str, default="")
    p5.add_argument(
        "--hybrid", choices=list(HybridMode.ALL), default=HybridMode.OFF,
        help=hybrid_help,
    )

    p9 = sub.add_parser("fig9", help="Figure 9: the XD1 experiment")
    p9.add_argument(
        "--panel", choices=["estimated", "measured", "both"],
        default="both",
    )
    p9.add_argument("--calls", type=int, default=90)
    p9.add_argument("--csv", type=str, default="")
    p9.add_argument(
        "--workers", type=int, default=1,
        help="fork workers for the DES points (bit-identical results)",
    )
    p9.add_argument(
        "--hybrid", choices=list(HybridMode.ALL), default=HybridMode.OFF,
        help=hybrid_help,
    )

    pp = sub.add_parser("profiles", help="Figures 2-4: execution profiles")
    pp.add_argument("--width", type=int, default=72)

    pa = sub.add_parser(
        "ablation-prefetch", help="prefetch policy ablation"
    )
    pa.add_argument("--slots", type=int, default=2)
    pa.add_argument("--calls", type=int, default=2000)

    sub.add_parser(
        "ablation-granularity", help="PRR granularity ablation"
    )
    pf = sub.add_parser(
        "faults", help="effective speedup under injected faults"
    )
    pf.add_argument(
        "--rates", type=str, default="",
        help="comma-separated chunk-abort rates (default: built-in sweep)",
    )
    pf.add_argument(
        "--hit-ratios", type=str, default="",
        help="comma-separated target hit ratios (default: 0,0.5,0.9)",
    )
    pf.add_argument("--calls", type=int, default=30)
    pf.add_argument("--task-time", type=float, default=0.1)
    pf.add_argument("--seed", type=int, default=0)
    pf.add_argument("--csv", type=str, default="")
    pf.add_argument(
        "--workers", type=int, default=1,
        help="fork workers for the grid (bit-identical results)",
    )
    pf.add_argument(
        "--hybrid", choices=list(HybridMode.ALL), default=HybridMode.OFF,
        help=hybrid_help,
    )

    ps = sub.add_parser(
        "sweep",
        help="crash-safe fault sweep: journaled, resumable, audited",
    )
    ps.add_argument(
        "--run-dir", type=str, required=True,
        help="directory holding the run journal (journal.jsonl)",
    )
    ps.add_argument(
        "--resume", action="store_true",
        help="replay completed points from an existing journal",
    )
    ps.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget; on expiry the sweep checkpoints and "
             "exits with code 3",
    )
    ps.add_argument(
        "--strict-invariants", action="store_true",
        help="raise on any invariant violation instead of recording it",
    )
    ps.add_argument("--rates", type=str, default="",
                    help="comma-separated chunk-abort rates")
    ps.add_argument("--hit-ratios", type=str, default="",
                    help="comma-separated target hit ratios")
    ps.add_argument("--calls", type=int, default=30)
    ps.add_argument("--task-time", type=float, default=0.1)
    ps.add_argument("--seed", type=int, default=0)
    ps.add_argument("--csv", type=str, default="")
    ps.add_argument(
        "--workers", type=int, default=1,
        help="shard the grid across fork workers, one segment journal "
             "each; results and merged journal are bit-identical to "
             "--workers 1, and kill/--resume works mid-shard",
    )
    ps.add_argument(
        "--hybrid", choices=list(HybridMode.ALL), default=HybridMode.OFF,
        help=hybrid_help,
    )
    ps.add_argument("--quiet", action="store_true",
                    help="suppress per-point progress lines")

    pw = sub.add_parser(
        "power",
        help="time-vs-energy Pareto sweep over PRR counts and hit "
             "ratios: journaled, resumable, energy-conservation audited",
    )
    pw.add_argument(
        "--run-dir", type=str, required=True,
        help="directory holding the run journal (journal.jsonl)",
    )
    pw.add_argument(
        "--resume", action="store_true",
        help="replay completed points from an existing journal",
    )
    pw.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget; on expiry the sweep checkpoints and "
             "exits with code 3",
    )
    pw.add_argument(
        "--contract-deadline", type=float, default=None,
        metavar="SIM_SECONDS",
        help="minimize-energy contract: cheapest configuration whose "
             "PRTR makespan meets this simulated-time deadline",
    )
    pw.add_argument(
        "--power-cap", type=float, default=None, metavar="WATTS",
        help="maximize-throughput contract: fastest configuration whose "
             "mean PRTR draw stays under this power budget",
    )
    pw.add_argument("--prrs", type=str, default="",
                    help="comma-separated PRR counts (default: 1,2,3,4)")
    pw.add_argument("--hit-ratios", type=str, default="",
                    help="comma-separated target hit ratios "
                         "(default: 0,0.5,0.9)")
    pw.add_argument("--calls", type=int, default=30)
    pw.add_argument("--task-time", type=float, default=0.1)
    pw.add_argument("--seed", type=int, default=0)
    pw.add_argument("--csv", type=str, default="")
    pw.add_argument(
        "--strict-invariants", action="store_true",
        help="raise on any invariant violation instead of recording it",
    )
    pw.add_argument(
        "--workers", type=int, default=1,
        help="shard the grid across fork workers, one segment journal "
             "each; results and merged journal are bit-identical to "
             "--workers 1, and kill/--resume works mid-shard",
    )
    pw.add_argument(
        "--hybrid", choices=list(HybridMode.ALL), default=HybridMode.OFF,
        help=hybrid_help,
    )
    pw.add_argument("--quiet", action="store_true",
                    help="suppress per-point progress lines")

    pv = sub.add_parser(
        "serve",
        help="multi-tenant service mode: open arrivals, admission "
             "control, preemptive PRR scheduling, per-tenant SLO report",
    )
    pv.add_argument(
        "--ticks", type=float, default=30.0, metavar="SECONDS",
        help="simulated arrival horizon, measured from service boot",
    )
    pv.add_argument(
        "--tenants", type=str, default="",
        help="tenant spec JSON (default: built-in gold/silver/bronze)",
    )
    pv.add_argument("--seed", type=int, default=0)
    pv.add_argument(
        "--run-dir", type=str, default="",
        help="journal directory: enables crash-safe replications "
             "(kill + --resume is byte-identical to an unbroken run)",
    )
    pv.add_argument(
        "--resume", action="store_true",
        help="replay completed replications from an existing journal",
    )
    pv.add_argument(
        "--replications", type=int, default=1,
        help="independent realizations (replication i seeds from "
             "seed + i); needs --run-dir for more than one",
    )
    pv.add_argument(
        "--workers", type=int, default=1,
        help="shard replications across fork workers (bit-identical)",
    )
    pv.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget; on expiry exits 3 with completed "
             "replications journaled",
    )
    pv.add_argument(
        "--no-admission", action="store_true",
        help="disable the admission controller (admit everything)",
    )
    pv.add_argument(
        "--no-preempt", action="store_true",
        help="disable preemptive time-sharing (run-to-completion)",
    )
    pv.add_argument(
        "--degrade-at", type=str, default="", metavar="T:SLOT,...",
        help="retire PRR slots mid-run, e.g. 5:1 retires slot 1 at t=5",
    )
    pv.add_argument(
        "--prrs", type=int, default=0,
        help="PRR count (0 = the paper's dual-PRR floorplan)",
    )
    pv.add_argument(
        "--power-cap", type=float, default=None, metavar="WATTS",
        help="node power budget; arrivals whose grant would push the "
             "projected draw above it are shed with reason power_cap",
    )
    pv.add_argument(
        "--strict-invariants", action="store_true",
        help="raise on any invariant violation instead of recording it",
    )
    pv.add_argument(
        "--json", action="store_true",
        help="print the canonical SLO report JSON instead of tables",
    )
    pv.add_argument("--quiet", action="store_true",
                    help="suppress per-replication progress lines")

    pc = sub.add_parser(
        "chaos",
        help="chaos-resilient service mode: named seeded failure "
             "scenarios vs a fault-free baseline (availability, MTTR, "
             "goodput retention, tail latency under failure)",
    )
    pc.add_argument(
        "--scenario", type=str, default="compound",
        help="scenario name (see --list-scenarios; 'none' is bit-"
             "identical to plain serve)",
    )
    pc.add_argument(
        "--list-scenarios", action="store_true",
        help="print the scenario library and exit",
    )
    pc.add_argument(
        "--ticks", type=float, default=30.0, metavar="SECONDS",
        help="simulated arrival horizon (scenario events scale to it)",
    )
    pc.add_argument(
        "--tenants", type=str, default="",
        help="tenant spec JSON (default: built-in gold/silver/bronze)",
    )
    pc.add_argument("--seed", type=int, default=0)
    pc.add_argument(
        "--prrs", type=int, default=4,
        help="PRR count (chaos needs an explicit floorplan, >= 1)",
    )
    pc.add_argument(
        "--blades", type=int, default=2,
        help="blades the PRRs spread over (failure-domain topology)",
    )
    pc.add_argument(
        "--run-dir", type=str, default="",
        help="journal directory: enables crash-safe replications "
             "(kill + --resume is byte-identical to an unbroken run)",
    )
    pc.add_argument(
        "--resume", action="store_true",
        help="replay completed replications from an existing journal",
    )
    pc.add_argument(
        "--replications", type=int, default=1,
        help="independent realizations (replication i seeds from "
             "seed + i); needs --run-dir for more than one",
    )
    pc.add_argument(
        "--workers", type=int, default=1,
        help="shard replications across fork workers (bit-identical)",
    )
    pc.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget; on expiry exits 3 with completed "
             "replications journaled",
    )
    pc.add_argument(
        "--strict-invariants", action="store_true",
        help="raise on any invariant violation instead of recording it",
    )
    pc.add_argument(
        "--json", action="store_true",
        help="print the canonical realization payload JSON",
    )
    pc.add_argument("--quiet", action="store_true",
                    help="suppress per-replication progress lines")

    pt = sub.add_parser(
        "trace",
        help="export an instrumented FRTR/PRTR run as Chrome trace JSON",
    )
    pt.add_argument(
        "--out", type=str, default="trace.json",
        help="output path (load it in Perfetto / chrome://tracing)",
    )
    pt.add_argument("--calls", type=int, default=30)
    pt.add_argument(
        "--json", action="store_true",
        help="also print the metrics snapshot as JSON",
    )

    pm = sub.add_parser(
        "metrics",
        help="run the quickstart workload instrumented; print counters "
             "and the utilization rollup",
    )
    pm.add_argument("--calls", type=int, default=30)
    pm.add_argument(
        "--json", action="store_true",
        help="print the raw metrics snapshot as JSON instead of tables",
    )
    pm.add_argument(
        "--profile", action="store_true",
        help="profile the DES hot path (wall clock per event type)",
    )
    pm.add_argument("--top", type=int, default=10,
                    help="profile rows to show")

    sub.add_parser("validate", help="model-vs-simulation validation")
    pl = sub.add_parser(
        "lint",
        help="run reprolint, the AST-based domain linter "
             "(docs/STATIC_ANALYSIS.md)",
    )
    pl.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    pl.add_argument(
        "--baseline", type=str, default="",
        help="baseline file (default: tools/reprolint/baseline.json)",
    )
    pl.add_argument(
        "--no-baseline", action="store_true",
        help="report baselined findings too",
    )
    pl.add_argument(
        "--write-baseline", action="store_true",
        help="accept current findings into the baseline (justify them!)",
    )
    pl.add_argument(
        "--select", type=str, default="",
        help="comma-separated rule ids to run (e.g. RL001,RL003)",
    )
    pl.add_argument(
        "--ignore", type=str, default="",
        help="comma-separated rule ids to skip",
    )
    pl.add_argument(
        "--list-rules", action="store_true",
        help="print the rule registry and exit",
    )
    pl.add_argument(
        "--sarif", type=str, default="",
        help="also write findings as SARIF 2.1.0 to this path",
    )
    pl.add_argument(
        "--no-cache", action="store_true",
        help="ignore and do not write the incremental fact cache",
    )
    pr = sub.add_parser("report", help="write the full REPORT.md")
    pr.add_argument("--output", type=str, default="REPORT.md")
    pr.add_argument("--calls", type=int, default=90)
    sub.add_parser("all", help="run everything")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except InvariantError as exc:
        print(f"repro: invariant violation: {exc}", file=sys.stderr)
        return 1
    except (ValueError, KeyError, OSError) as exc:
        # Usage-level failures (bad argument values, missing or
        # pre-existing run directories) get one line, not a traceback.
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
