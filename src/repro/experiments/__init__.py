"""Per-table / per-figure experiment modules.

Each module regenerates one artifact of the paper's evaluation:
:mod:`~repro.experiments.table1`, :mod:`~repro.experiments.table2`,
:mod:`~repro.experiments.fig5`, :mod:`~repro.experiments.fig9`,
:mod:`~repro.experiments.fig234_profiles`, plus the extension studies in
:mod:`~repro.experiments.ablations`.  The benchmark harness under
``benchmarks/`` drives these and prints the paper-vs-ours rows.
"""

from . import (
    ablations,
    fig234_profiles,
    fig5,
    fig9,
    heterogeneity,
    scaling,
    table1,
    table2,
)

__all__ = [
    "ablations",
    "fig234_profiles",
    "fig5",
    "fig9",
    "heterogeneity",
    "scaling",
    "table1",
    "table2",
]
