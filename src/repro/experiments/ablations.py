"""Ablation studies — the paper's deferred "future investigations".

Two studies extend the published experiment along the axes the paper's
Section 5 identifies:

* :func:`prefetch_ablation` — the paper excluded real prefetching
  ("we preserve this inclusion for future investigations") and ran at
  ``H = 0``.  We replay locality-bearing traces through every
  (policy x prefetcher) pair, measure the achieved ``H``, and evaluate
  the speedup Eq. (7) predicts at that ``H`` — quantifying exactly how
  much a real prefetcher buys on this platform.

* :func:`granularity_ablation` — the paper's optimality condition is
  ``X_PRTR = X_task`` ("the partitions must be so fine grained to match
  the task time requirements").  We sweep the number of uniform PRRs,
  derive each layout's partial bitstream size and ICAP time from
  geometry, and locate the speedup-maximizing granularity per task time.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.calibration import fit_icap_handshake
from ..caching.base import ConfigCache
from ..caching.policies import BeladyPolicy, make_policy
from ..caching.prefetch import OraclePrefetcher, Prefetcher, make_prefetcher
from ..caching.replay import ReplayResult, replay
from ..hardware.catalog import MB, PUBLISHED_TABLE2, XC2VP50
from ..hardware.prr import uniform_prr_floorplan
from ..model.parameters import ModelParameters
from ..model.speedup import asymptotic_speedup
from ..workloads.generators import markov_trace, phased_trace, zipf_trace
from ..workloads.task import CallTrace, HardwareTask

__all__ = [
    "PrefetchCell",
    "prefetch_ablation",
    "GranularityPoint",
    "granularity_ablation",
    "default_ablation_library",
]


def default_ablation_library(
    n_tasks: int = 8, task_time: float = 0.02
) -> dict[str, HardwareTask]:
    """A synthetic module library larger than the PRR count."""
    if n_tasks <= 0:
        raise ValueError("n_tasks must be >= 1")
    return {
        f"core{i}": HardwareTask(f"core{i}", task_time)
        for i in range(n_tasks)
    }


@dataclass(frozen=True)
class PrefetchCell:
    """One (trace, policy, prefetcher) measurement."""

    trace: str
    policy: str
    prefetcher: str
    hit_ratio: float
    prefetch_accuracy: float
    #: Eq. (7) speedup at this H with the Fig. 9(b) platform constants
    predicted_speedup: float


def _platform_params(hit_ratio: float, task_time: float) -> ModelParameters:
    full = PUBLISHED_TABLE2["full"]
    dual = PUBLISHED_TABLE2["dual_prr"]
    return ModelParameters(
        x_task=task_time / full.measured_time_s,
        x_prtr=dual.measured_time_s / full.measured_time_s,
        hit_ratio=hit_ratio,
        x_control=10e-6 / full.measured_time_s,
    )


def _make_prefetcher_for(
    name: str, trace: CallTrace
) -> Prefetcher:
    if name == "oracle":
        return OraclePrefetcher([c.name for c in trace])
    if name == "sequential":
        return make_prefetcher(name, library_order=trace.task_names())
    return make_prefetcher(name)


def prefetch_ablation(
    slots: int = 2,
    n_calls: int = 2000,
    task_time: float = 0.005,
    seed: int = 7,
    policies: tuple[str, ...] = ("lru", "lfu", "fifo", "belady"),
    prefetchers: tuple[str, ...] = ("none", "markov", "arm", "oracle"),
) -> list[PrefetchCell]:
    """The full (trace x policy x prefetcher) ablation grid.

    Belady pairs only with the ``none`` prefetcher (offline reference
    string bookkeeping); other combinations are skipped, not faked.

    The default ``task_time`` puts ``X_task`` *below* ``X_PRTR`` — the
    left branch of Eq. (7), the only regime where the hit ratio has any
    leverage (on the right branch the paper proves ``H`` is irrelevant;
    tests pin that too).
    """
    library = default_ablation_library(task_time=task_time)
    traces = {
        "zipf": zipf_trace(library, n_calls, s=1.2, seed=seed),
        "markov": markov_trace(library, n_calls, seed=seed),
        "phased": phased_trace(
            library,
            n_phases=max(n_calls // 100, 1),
            phase_length=100,
            working_set=min(slots, len(library)),
            seed=seed,
        ),
    }
    cells = []
    for trace_name, trace in traces.items():
        for policy_name in policies:
            for prefetcher_name in prefetchers:
                if policy_name == "belady" and prefetcher_name != "none":
                    continue
                if policy_name == "belady":
                    policy = BeladyPolicy([c.name for c in trace])
                else:
                    policy = make_policy(policy_name)
                cache = ConfigCache(slots=slots, policy=policy)
                prefetcher = _make_prefetcher_for(prefetcher_name, trace)
                result: ReplayResult = replay(trace, cache, prefetcher)
                params = _platform_params(result.hit_ratio, task_time)
                cells.append(
                    PrefetchCell(
                        trace=trace_name,
                        policy=policy_name,
                        prefetcher=prefetcher_name,
                        hit_ratio=result.hit_ratio,
                        prefetch_accuracy=result.prefetch_accuracy,
                        predicted_speedup=float(asymptotic_speedup(params)),
                    )
                )
    return cells


@dataclass(frozen=True)
class GranularityPoint:
    """One PRR-granularity design point."""

    n_prrs: int
    columns_each: int
    bitstream_bytes: int
    t_prtr: float
    x_prtr: float
    #: Eq. (7) speedup at each requested task time (parallel array)
    speedups: tuple[float, ...]


def granularity_ablation(
    task_times: tuple[float, ...] = (0.002, 0.02, 0.2, 2.0),
    prr_counts: tuple[int, ...] = (1, 2, 3, 4, 6, 8),
    reserved_static_columns: int = 22,
) -> list[GranularityPoint]:
    """Sweep PRR granularity; finer PRRs -> smaller bitstreams -> lower
    ``X_PRTR`` -> higher peak speedup, peaking where ``X_PRTR = X_task``.

    Layout rule: the device keeps ``reserved_static_columns`` for the
    static region (the paper's dual layout uses 46, but the controller +
    RT core footprint justifies ~22 as the floor); remaining columns are
    split uniformly across the PRRs.
    """
    device = XC2VP50
    timings = fit_icap_handshake()
    full = PUBLISHED_TABLE2["full"]
    points = []
    for n in prr_counts:
        columns_each = (device.clb_columns - reserved_static_columns) // n
        if columns_each < 1:
            continue
        plan = uniform_prr_floorplan(
            n, columns_each, device=device,
            static_columns=device.clb_columns - n * columns_each,
        )
        nbytes = plan.partial_bitstream_bytes(0)
        first_fill = min(timings.chunk_bytes, nbytes) / (1600 * MB)
        t_prtr = first_fill + timings.drain_time(nbytes)
        x_prtr = t_prtr / full.measured_time_s
        speeds = tuple(
            float(
                asymptotic_speedup(
                    ModelParameters(
                        x_task=t / full.measured_time_s,
                        x_prtr=x_prtr,
                        hit_ratio=0.0,
                        x_control=10e-6 / full.measured_time_s,
                    )
                )
            )
            for t in task_times
        )
        points.append(
            GranularityPoint(
                n_prrs=n,
                columns_each=columns_each,
                bitstream_bytes=nbytes,
                t_prtr=t_prtr,
                x_prtr=x_prtr,
                speedups=speeds,
            )
        )
    if not points:
        raise ValueError("no feasible granularity points")
    return points
