"""Figures 2-4 — execution profiles (conceptual timelines), regenerated.

The paper's Figures 2-4 are schematic Gantt charts of the execution
cycle: task phases on an HPRC (Fig. 2), the serial FRTR profile (Fig. 3)
and the overlapped PRTR profiles for missed and hit tasks (Fig. 4).  We
regenerate them as *measured* timelines from tiny executor runs — the
simulated system draws its own textbook figures.
"""

from __future__ import annotations

from ..hardware.catalog import PUBLISHED_TABLE2
from ..rtr.frtr import FrtrExecutor
from ..rtr.prtr import PrtrExecutor
from ..rtr.runner import make_node
from ..sim.trace import Timeline
from ..workloads.task import CallTrace, HardwareTask

__all__ = ["frtr_profile", "prtr_profile_missed", "prtr_profile_hit",
           "render_all"]

_T_TASK = 0.05  # 50 ms tasks: comparable to the partial config time scale


def _trace(names: list[str], task_time: float = _T_TASK) -> CallTrace:
    lib = {n: HardwareTask(n, task_time) for n in set(names)}
    return CallTrace([lib[n] for n in names], name="profile")


def frtr_profile(n_calls: int = 3) -> Timeline:
    """Fig. 3: config / control / task strictly serialized, per call."""
    node = make_node()
    trace = _trace(["median", "sobel", "smoothing"][:n_calls])
    return FrtrExecutor(node, estimated=True).run(trace).timeline


def prtr_profile_missed(n_calls: int = 4) -> Timeline:
    """Fig. 4(a): every call misses; partial configs overlap execution."""
    node = make_node()
    names = [("median", "sobel", "smoothing")[i % 3] for i in range(n_calls)]
    executor = PrtrExecutor(
        node,
        estimated=True,
        force_miss=True,
        bitstream_bytes=PUBLISHED_TABLE2["dual_prr"].bitstream_bytes,
    )
    return executor.run(_trace(names)).timeline


def prtr_profile_hit(n_calls: int = 4) -> Timeline:
    """Fig. 4(b): alternating two modules on two PRRs -> steady-state hits."""
    node = make_node()
    names = [("median", "sobel")[i % 2] for i in range(n_calls)]
    executor = PrtrExecutor(
        node,
        estimated=True,
        bitstream_bytes=PUBLISHED_TABLE2["dual_prr"].bitstream_bytes,
    )
    return executor.run(_trace(names)).timeline


def render_all(width: int = 72) -> str:
    """All three profiles as ASCII Gantt charts."""
    parts = [
        "Figure 3 analogue - FRTR execution profile "
        "(C=config, T=task, lanes serialize):",
        frtr_profile().gantt(width=width),
        "",
        "Figure 4(a) analogue - PRTR, all misses "
        "(icap lane overlaps prr lane):",
        prtr_profile_missed().gantt(width=width),
        "",
        "Figure 4(b) analogue - PRTR, steady-state hits "
        "(no icap activity after warm-up):",
        prtr_profile_hit().gantt(width=width),
    ]
    return "\n".join(parts)
