"""Figure 5 — asymptotic performance of PRTR.

The paper's Figure 5 plots Eq. (7) with ``X_decision = X_control = 0``:
``S_inf`` against ``X_task`` (log axis) for several hit ratios and partial
configuration times.  The prose claims it illustrates are checked by
:func:`shape_claims`:

1. for ``X_task > 1`` the speedup never reaches 2, for any ``H``/``X_PRTR``;
2. for ``H = 1`` the curve decreases monotonically and is independent of
   ``X_PRTR``;
3. for ``H = 0`` the curve peaks exactly at ``X_task = X_PRTR`` with value
   ``(1 + X_PRTR) / X_PRTR``.
"""

from __future__ import annotations

import numpy as np

from ..analysis.plotting import ascii_plot, series_to_csv
from ..model.parameters import ModelParameters, as_array
from ..model.speedup import asymptotic_speedup
from ..model.sweep import SweepResult, figure5_grid, log_task_axis
from ..runtime.parallel import parallel_map

__all__ = ["run", "render", "to_csv", "shape_claims", "DEFAULT_X_PRTR",
           "DEFAULT_HIT_RATIOS"]

DEFAULT_X_PRTR: tuple[float, ...] = (0.012, 0.05, 0.17, 0.37, 0.7)
DEFAULT_HIT_RATIOS: tuple[float, ...] = (0.0, 0.25, 0.5, 0.75, 1.0)


def run(
    x_prtr_values: tuple[float, ...] = DEFAULT_X_PRTR,
    hit_ratios: tuple[float, ...] = DEFAULT_HIT_RATIOS,
    workers: int = 1,
) -> SweepResult:
    """Evaluate the Figure 5 grid (Eq. 7, ideal overheads).

    ``workers > 1`` evaluates one ``(X_PRTR, H)`` curve per work item
    across fork workers and stitches the curves back into the same
    grid.  Eq. (7) is elementwise, so the stitched values are
    bit-identical to the vectorized single-process evaluation.
    """
    if workers <= 1:
        return figure5_grid(x_prtr_values, hit_ratios)
    axis = log_task_axis()
    cells = [(p, h) for p in x_prtr_values for h in hit_ratios]
    curves = parallel_map(
        lambda cell: figure5_grid(
            (cell[0],), (cell[1],), x_task=axis
        ).values[:, 0, 0],
        cells,
        workers=workers,
    )
    values = np.empty((len(axis), len(x_prtr_values), len(hit_ratios)))
    for idx, curve in enumerate(curves):
        values[:, idx // len(hit_ratios), idx % len(hit_ratios)] = curve
    return SweepResult(
        axes={
            "x_task": as_array(list(axis)),
            "x_prtr": as_array(list(x_prtr_values)),
            "hit_ratio": as_array(list(hit_ratios)),
        },
        values=values,
        name="asymptotic_speedup",
    )


def _series_for(
    result: SweepResult, x_prtr: float, hit_ratios: tuple[float, ...]
) -> dict[str, tuple[np.ndarray, np.ndarray]]:
    series = {}
    for h in hit_ratios:
        x, y = result.series(x_prtr=x_prtr, hit_ratio=h)
        series[f"H={h:g}"] = (x, y)
    return series


def render(
    x_prtr: float = 0.17,
    hit_ratios: tuple[float, ...] = DEFAULT_HIT_RATIOS,
    result: SweepResult | None = None,
) -> str:
    """ASCII Figure 5 panel at one ``X_PRTR``.

    ``result`` lets a caller that already evaluated the panel's grid
    (e.g. the CLI under ``--hybrid=on``, which shares one evaluation
    across render/claims/CSV) pass it in instead of recomputing; it
    must be ``run((x_prtr,), hit_ratios)`` for the same arguments.
    """
    if result is None:
        result = run((x_prtr,), hit_ratios)
    return ascii_plot(
        _series_for(result, x_prtr, hit_ratios),
        title=f"Figure 5. Asymptotic performance of PRTR (X_PRTR={x_prtr:g})",
        xlabel="X_task = T_task / T_FRTR",
        ylabel="S_inf",
        logx=True,
        logy=False,
    )


def to_csv(
    x_prtr: float = 0.17,
    hit_ratios: tuple[float, ...] = DEFAULT_HIT_RATIOS,
    result: SweepResult | None = None,
) -> str:
    """The panel's data series as CSV (``result`` as in :func:`render`)."""
    if result is None:
        result = run((x_prtr,), hit_ratios)
    return series_to_csv(
        _series_for(result, x_prtr, hit_ratios), x_name="x_task"
    )


def shape_claims(x_prtr: float = 0.17) -> dict[str, bool]:
    """Machine-checkable versions of the paper's Figure 5 prose."""
    x = log_task_axis()
    claims: dict[str, bool] = {}

    # Claim 1: X_task > 1 bounds S below 2 regardless of H and X_PRTR.
    big = x[x > 1.0]
    ok = True
    for h in DEFAULT_HIT_RATIOS:
        for p in DEFAULT_X_PRTR:
            s = asymptotic_speedup(
                ModelParameters(x_task=big, x_prtr=p, hit_ratio=h)
            )
            ok &= bool(np.all(s < 2.0))
    claims["s_below_2_for_large_tasks"] = ok

    # Claim 2: H=1 curve decreases monotonically, independent of X_PRTR.
    s_ref = asymptotic_speedup(
        ModelParameters(x_task=x, x_prtr=DEFAULT_X_PRTR[0], hit_ratio=1.0)
    )
    mono = bool(np.all(np.diff(s_ref) < 0))
    indep = all(
        np.allclose(
            s_ref,
            asymptotic_speedup(
                ModelParameters(x_task=x, x_prtr=p, hit_ratio=1.0)
            ),
        )
        for p in DEFAULT_X_PRTR[1:]
    )
    claims["h1_monotone_decreasing"] = mono
    claims["h1_independent_of_x_prtr"] = indep

    # Claim 3: H=0 peaks at X_task = X_PRTR with value (1+P)/P.
    grid = np.unique(np.concatenate([x, [x_prtr]]))
    s0 = asymptotic_speedup(
        ModelParameters(x_task=grid, x_prtr=x_prtr, hit_ratio=0.0)
    )
    peak_at = grid[int(np.argmax(s0))]
    claims["h0_peak_at_x_prtr"] = bool(np.isclose(peak_at, x_prtr))
    claims["h0_peak_value"] = bool(
        np.isclose(float(np.max(s0)), (1.0 + x_prtr) / x_prtr)
    )
    return claims
