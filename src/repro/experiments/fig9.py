"""Figure 9 — experimental PRTR speedup on the (simulated) Cray XD1.

The paper's experiment: dual-PRR layout, no prefetching (every call
reconfigures: ``H = 0, M = 1``), ``T_decision = 0``,
``T_control ~ 10 us``, task time swept by varying the data volume each
image core processes.  Figure 9(a) uses the *estimated* configuration
times, 9(b) the *measured* ones.

We regenerate both panels two ways and overlay them:

* the **model curve** — Eq. (7) (and finite-``n`` Eq. 6) at the panel's
  ``X_PRTR`` and ``X_control``;
* the **simulated points** — full discrete-event runs of the FRTR and
  PRTR executors over a cyclic three-filter trace (the paper's cores),
  at a handful of task sizes per decade.

Shape criteria from the paper's Section 5 prose, checked by
:func:`shape_claims`: the estimated panel is bounded by ~7x with a 2x
plateau for data-intensive tasks; the measured panel peaks near 87x.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.plotting import ascii_plot, series_to_csv
from ..hardware.catalog import PUBLISHED_TABLE2, US
from ..model.hybrid import (
    HybridMode,
    HybridSample,
    closed_form_exact,
    comparison_verdicts,
    parse_hybrid_mode,
    replay_comparison_speedup,
    verification_sample,
)
from ..model.parameters import ModelParameters
from ..model.speedup import asymptotic_speedup, speedup
from ..model.sweep import log_task_axis
from ..rtr.runner import compare
from ..runtime.parallel import parallel_map
from ..workloads.task import CallTrace, HardwareTask

__all__ = ["Fig9Panel", "panel", "simulate_points", "render", "to_csv",
           "shape_claims", "CYCLE_CORES"]

#: The paper's three image cores, called cyclically so that the dual-PRR
#: lookahead always finds the next module absent (a natural M = 1 even
#: without force_miss; we force it anyway to pin the regime).
CYCLE_CORES: tuple[str, ...] = ("median", "sobel", "smoothing")


@dataclass(frozen=True)
class Fig9Panel:
    """One panel's platform constants."""

    name: str
    t_frtr: float
    t_prtr: float
    t_control: float
    estimated: bool

    @property
    def x_prtr(self) -> float:
        return self.t_prtr / self.t_frtr

    @property
    def x_control(self) -> float:
        return self.t_control / self.t_frtr


def panel(which: str) -> Fig9Panel:
    """``"estimated"`` -> Fig. 9(a), ``"measured"`` -> Fig. 9(b)."""
    full = PUBLISHED_TABLE2["full"]
    dual = PUBLISHED_TABLE2["dual_prr"]
    if which == "estimated":
        return Fig9Panel(
            name="Fig 9(a) estimated",
            t_frtr=full.estimated_time_s,
            t_prtr=dual.estimated_time_s,
            t_control=10 * US,
            estimated=True,
        )
    if which == "measured":
        return Fig9Panel(
            name="Fig 9(b) measured",
            t_frtr=full.measured_time_s,
            t_prtr=dual.measured_time_s,
            t_control=10 * US,
            estimated=False,
        )
    raise ValueError(f"which must be 'estimated' or 'measured': {which!r}")


def model_curve(
    p: Fig9Panel, x_task: np.ndarray | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Eq. (7) speedup over the panel's normalized task-time axis."""
    x = log_task_axis() if x_task is None else x_task
    params = ModelParameters(
        x_task=x,
        x_prtr=p.x_prtr,
        hit_ratio=0.0,
        x_control=p.x_control,
        x_decision=0.0,
    )
    return x, asymptotic_speedup(params)


def model_curve_finite(
    p: Fig9Panel, n_calls: int, x_task: np.ndarray | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Eq. (6) at the experiment's actual call count."""
    x = log_task_axis() if x_task is None else x_task
    params = ModelParameters(
        x_task=x,
        x_prtr=p.x_prtr,
        hit_ratio=0.0,
        x_control=p.x_control,
        x_decision=0.0,
    )
    return x, speedup(params, n_calls)


def _cyclic_trace(task_time: float, n_calls: int) -> CallTrace:
    lib = {name: HardwareTask(name, task_time) for name in CYCLE_CORES}
    names = [CYCLE_CORES[i % len(CYCLE_CORES)] for i in range(n_calls)]
    return CallTrace([lib[n] for n in names], name=f"fig9cycle{n_calls}")


def simulate_points(
    p: Fig9Panel,
    x_task_points: np.ndarray | None = None,
    n_calls: int = 120,
    workers: int = 1,
    hybrid: str = HybridMode.OFF,
) -> tuple[np.ndarray, np.ndarray]:
    """Discrete-event measurements at a handful of task sizes.

    Returns ``(x_task, measured_speedup)``.  Uses the published dual-PRR
    bitstream bytes so the ICAP path lands on the panel's ``T_PRTR``.
    Every task size is an independent DES run, so ``workers > 1`` fans
    them out across fork workers with bit-identical speedups.

    The Figure 9 configuration (fault-free, dual-PRR, uniform I/O,
    local bitstreams) satisfies every hybrid exactness predicate, so
    ``hybrid="on"`` answers all points by closed-form replay —
    bit-identical speedups, no event loop.  ``"verify"`` additionally
    re-runs a seeded sample of points on the DES and raises
    :class:`~repro.runtime.invariants.InvariantError` on any mismatch.
    """
    mode = parse_hybrid_mode(hybrid)
    if x_task_points is None:
        x_task_points = np.logspace(-2.5, 1.0, 8)
    x_values = np.asarray(x_task_points, dtype=float)
    bitstream_bytes = PUBLISHED_TABLE2["dual_prr"].bitstream_bytes

    def one_point(x: float) -> float:
        trace = _cyclic_trace(task_time=x * p.t_frtr, n_calls=n_calls)
        result = compare(
            trace,
            estimated=p.estimated,
            control_time=p.t_control,
            force_miss=True,
            bitstream_bytes=bitstream_bytes,
        )
        return result.speedup

    def one_point_fast(x: float) -> float:
        trace = _cyclic_trace(task_time=x * p.t_frtr, n_calls=n_calls)
        return replay_comparison_speedup(
            trace,
            estimated=p.estimated,
            control_time=p.t_control,
            force_miss=True,
            bitstream_bytes=bitstream_bytes,
        )

    use_fast = mode != HybridMode.OFF and closed_form_exact(
        comparison_verdicts()
    )
    fn = one_point_fast if use_fast else one_point
    speedups = parallel_map(fn, list(x_values), workers=workers)
    if use_fast and mode == HybridMode.VERIFY:
        from ..runtime.invariants import audit_hybrid

        samples = [
            HybridSample(
                label=f"fig9:{p.name}:x_task={float(x_values[i])!r}",
                analytic=speedups[i],
                simulated=one_point(float(x_values[i])),
            )
            for i in verification_sample(len(x_values))
        ]
        audit_hybrid(samples).raise_if_strict(strict=True)
    return x_values, np.asarray(speedups)


def render(
    which: str = "measured",
    n_calls: int = 120,
    workers: int = 1,
    hybrid: str = HybridMode.OFF,
) -> str:
    """ASCII overlay: model curve (asymptotic + finite-n) vs sim points."""
    p = panel(which)
    x_model, s_model = model_curve(p)
    _, s_finite = model_curve_finite(p, n_calls)
    x_sim, s_sim = simulate_points(
        p, n_calls=n_calls, workers=workers, hybrid=hybrid
    )
    return ascii_plot(
        {
            "Eq7 (n->inf)": (x_model, s_model),
            f"Eq6 (n={n_calls})": (x_model, s_finite),
            "DES sim": (x_sim, s_sim),
        },
        title=f"Figure 9 [{p.name}]  X_PRTR={p.x_prtr:.4g}",
        xlabel="X_task",
        ylabel="speedup S",
        logx=True,
        logy=True,
    )


def to_csv(
    which: str = "measured",
    n_calls: int = 120,
    workers: int = 1,
    hybrid: str = HybridMode.OFF,
) -> str:
    p = panel(which)
    x_model, s_model = model_curve(p)
    _, s_finite = model_curve_finite(p, n_calls)
    x_sim, s_sim = simulate_points(
        p, n_calls=n_calls, workers=workers, hybrid=hybrid
    )
    return series_to_csv(
        {
            "model_asymptotic": (x_model, s_model),
            f"model_n{n_calls}": (x_model, s_finite),
            "simulated": (x_sim, s_sim),
        },
        x_name="x_task",
    )


def shape_claims() -> dict[str, bool]:
    """The paper's Section 5 quantitative prose, machine-checked."""
    claims: dict[str, bool] = {}
    x = log_task_axis()

    a = panel("estimated")
    _, s_a = model_curve(a, x)
    # "PRTR performance is bounded to twice the performance of FRTR" for
    # data-intensive tasks (X_task > 1)...
    claims["estimated_2x_plateau"] = bool(np.all(s_a[x > 1.0] < 2.0))
    # ... and "can not exceed 7 times" overall.
    claims["estimated_peak_below_7"] = bool(np.max(s_a) < 7.0)
    claims["estimated_peak_above_6"] = bool(np.max(s_a) > 6.0)

    b = panel("measured")
    _, s_b = model_curve(b, x)
    # "The peak performance ... can reach up to 87x" — the exact value
    # depends on the grid hitting the peak; the analytic peak is
    # (1 + X_control + X_PRTR)/(X_control + X_PRTR) ~ 85.9.
    peak = float(np.max(s_b))
    claims["measured_peak_in_80_90"] = bool(80.0 < peak < 90.0)
    claims["measured_2x_plateau"] = bool(np.all(s_b[x > 1.0] < 2.0))
    return claims
