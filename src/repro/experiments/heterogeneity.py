"""Heterogeneity study: how task-time variance erodes the PRTR peak.

An extension experiment (no counterpart figure in the paper): the
average-based model of Section 3.1 is exact only for homogeneous task
times.  We sweep the coefficient of variation of several task-time
distributions centered on the Fig. 9(b) peak (``X_task = X_PRTR``) and
measure

* the **true** long-run speedup (expectations over the mix),
* the paper's **mean-based** Eq. (7) value, and
* the **Jensen gap** between them,

both analytically (uniform closed form) and by discrete-event simulation
of a literal sampled trace, which validates the whole chain end to end.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..hardware.catalog import PUBLISHED_TABLE2, US
from ..model.parameters import ModelParameters
from ..model.speedup import asymptotic_speedup
from ..model.stochastic import (
    heterogeneous_speedup,
    heterogeneous_speedup_finite,
    sample_task_times,
)
from ..rtr.runner import compare
from ..workloads.task import CallTrace, HardwareTask

__all__ = ["HeterogeneityPoint", "run", "simulate_point"]


@dataclass(frozen=True)
class HeterogeneityPoint:
    """One (distribution, cv) design point."""

    distribution: str
    cv: float
    true_speedup: float
    mean_based_speedup: float

    @property
    def jensen_gap(self) -> float:
        return self.mean_based_speedup - self.true_speedup

    @property
    def overestimate_pct(self) -> float:
        return 100.0 * self.jensen_gap / self.true_speedup


def _platform() -> tuple[float, ModelParameters]:
    full = PUBLISHED_TABLE2["full"].measured_time_s
    dual = PUBLISHED_TABLE2["dual_prr"].measured_time_s
    params = ModelParameters(
        x_task=1.0,  # placeholder; samples carry the task times
        x_prtr=dual / full,
        hit_ratio=0.0,
        x_control=10 * US / full,
    )
    return full, params


def run(
    distributions: tuple[str, ...] = ("uniform", "lognormal", "bimodal"),
    cvs: tuple[float, ...] = (0.0, 0.1, 0.25, 0.5),
    n_samples: int = 100_000,
    seed: int = 11,
) -> list[HeterogeneityPoint]:
    """Sweep (distribution x cv) at the Fig. 9(b) peak operating point."""
    full, params = _platform()
    mean_x = float(np.asarray(params.x_prtr))  # the peak: X_task = X_PRTR
    points = []
    for dist in distributions:
        for cv in cvs:
            if dist == "uniform" and cv >= 1 / np.sqrt(3):
                continue
            if dist == "bimodal" and cv >= 1.0:
                continue
            samples = sample_task_times(
                dist, mean_x, cv, n_samples, rng=seed
            )
            true = heterogeneous_speedup(samples, params)
            mean_based = float(
                asymptotic_speedup(params.with_(x_task=mean_x))
            )
            points.append(
                HeterogeneityPoint(
                    distribution=dist,
                    cv=cv,
                    true_speedup=true,
                    mean_based_speedup=mean_based,
                )
            )
    return points


def simulate_point(
    distribution: str = "bimodal",
    cv: float = 0.5,
    n_calls: int = 120,
    seed: int = 13,
) -> dict[str, float]:
    """End-to-end check of one point: DES on a literal sampled trace.

    Returns the simulated speedup alongside the finite-``n`` stochastic
    prediction for the *same* sample sequence; they agree to the O(1/n)
    pipeline-boundary term.
    """
    full, params = _platform()
    mean_x = float(np.asarray(params.x_prtr))
    samples = sample_task_times(distribution, mean_x, cv, n_calls, rng=seed)
    names = [f"m{i % 3}" for i in range(n_calls)]
    tasks = [
        HardwareTask(n, float(x) * full) for n, x in zip(names, samples)
    ]
    trace = CallTrace(tasks, name=f"hetero_{distribution}_{cv:g}")
    result = compare(
        trace,
        force_miss=True,
        bitstream_bytes=PUBLISHED_TABLE2["dual_prr"].bitstream_bytes,
        control_time=10 * US,
    )
    predicted = heterogeneous_speedup_finite(samples, params)
    return {
        "simulated": result.speedup,
        "predicted_finite": predicted,
        "rel_error": abs(result.speedup - predicted) / predicted,
    }
