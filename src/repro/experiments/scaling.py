"""Technology-scaling study: how the PRTR bounds move across devices.

An extension of Section 5's discussion.  For each catalog device we lay
out a dual-PRR floorplan (the same 12/70 column share as the paper's
XD1 layout), evaluate the configuration-time models with the device's
*own* port generation, and locate the performance bounds:

* **within a family** (Virtex-II Pro XC2VP20 -> XC2VP100), the full
  bitstream grows with the device while the PRR share stays fixed, so
  ``X_PRTR`` barely moves — the *ratio* bound is set by the floorplan
  share, not the device size;
* **across generations** (Virtex-4/5's 32-bit @ 100 MHz ports), both
  absolute times collapse ~6x; the speedup *ratio* is preserved, but the
  task-time *range* over which PRTR pays (``T_task < T_FRTR``) shrinks
  proportionally — the formal version of the paper's observation that
  faster configuration makes FRTR tolerable for ever more workloads.

Two overhead scenarios are reported: ``wire`` (estimated; port-limited)
and ``xd1_api`` (the calibrated Cray software overhead applied to every
device — "what if the vendor API never improves").
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.calibration import fit_icap_handshake, fit_vendor_api
from ..hardware.catalog import MB
from ..hardware.devices import DEVICES, CatalogEntry
from ..hardware.prr import Floorplan
from ..model.parameters import ModelParameters
from ..model.speedup import asymptotic_speedup

__all__ = ["ScalingPoint", "run", "dual_share_floorplan"]

#: the paper's dual-PRR column share on the XC2VP50 (12 of 70 columns)
DUAL_PRR_SHARE = 12.0 / 70.0


@dataclass(frozen=True)
class ScalingPoint:
    """One device's operating point under a given overhead scenario."""

    device: str
    family: str
    scenario: str  # "wire" | "xd1_api"
    full_bitstream_bytes: int
    partial_bitstream_bytes: int
    t_frtr: float
    t_prtr: float

    @property
    def x_prtr(self) -> float:
        return self.t_prtr / self.t_frtr

    @property
    def peak_speedup(self) -> float:
        return float(
            asymptotic_speedup(
                ModelParameters(
                    x_task=self.x_prtr, x_prtr=self.x_prtr, hit_ratio=0.0
                )
            )
        )

    @property
    def payoff_range_s(self) -> float:
        """Task times below ``T_FRTR`` get >= ~2x from PRTR; this is the
        absolute width of that regime (seconds)."""
        return self.t_frtr


def dual_share_floorplan(entry: CatalogEntry) -> Floorplan:
    """A dual-PRR layout with the paper's column share on any device."""
    device = entry.device
    columns = max(1, round(DUAL_PRR_SHARE * device.clb_columns))
    static = device.clb_columns - 2 * columns
    if static < 1:
        raise ValueError(f"device {device.name} too narrow for dual PRRs")
    return Floorplan(
        name=f"dual_{device.name}",
        device=device,
        static_columns=static,
        prr_columns=[columns, columns],
    )


def run(
    device_names: tuple[str, ...] = (
        "XC2VP20", "XC2VP30", "XC2VP50", "XC2VP70", "XC2VP100",
        "V4LX60", "V5LX110",
    ),
    scenarios: tuple[str, ...] = ("wire", "xd1_api"),
) -> list[ScalingPoint]:
    """Evaluate every (device, scenario) operating point."""
    api = fit_vendor_api()
    points = []
    for name in device_names:
        entry = DEVICES[name]
        device = entry.device
        plan = dual_share_floorplan(entry)
        partial_bytes = plan.partial_bitstream_bytes(0)
        wire_full = device.full_bitstream_bytes / entry.ports.selectmap_bandwidth
        # ICAP-controller model at the device's own ICAP rate; the BRAM
        # handshake is fabric logic, assumed constant per chunk.
        timings = fit_icap_handshake()
        drain = (
            timings.n_chunks(partial_bytes) * timings.chunk_handshake
            + partial_bytes / entry.ports.icap_bandwidth
        )
        first_fill = min(timings.chunk_bytes, partial_bytes) / (1600 * MB)
        t_prtr = first_fill + drain
        for scenario in scenarios:
            if scenario == "wire":
                t_frtr = wire_full
                t_partial = partial_bytes / entry.ports.icap_bandwidth
            elif scenario == "xd1_api":
                t_frtr = wire_full + api.time(device.full_bitstream_bytes)
                t_partial = t_prtr
            else:
                raise ValueError(f"unknown scenario {scenario!r}")
            points.append(
                ScalingPoint(
                    device=name,
                    family=entry.ports.family,
                    scenario=scenario,
                    full_bitstream_bytes=device.full_bitstream_bytes,
                    partial_bitstream_bytes=partial_bytes,
                    t_frtr=t_frtr,
                    t_prtr=t_partial,
                )
            )
    return points
