"""Table 1 — hardware functions and their resource requirements.

Regenerates the paper's resource table from the core catalog and the
XC2VP50 device description: LUT/FF/BRAM counts with floor-percentages, and
the clock frequency of each block.  The published percentages are exactly
``floor(100 * used / total)`` against the device totals; a mismatch in any
cell is a test failure, not a tolerance.
"""

from __future__ import annotations

from ..analysis.tables import render_table
from ..hardware.catalog import XC2VP50, FpgaDevice
from ..runtime.parallel import parallel_map
from ..workloads.library import STATIC_BLOCKS, TABLE1_CORES, CoreSpec

__all__ = ["PUBLISHED_TABLE1", "table1_rows", "render", "row_for"]

#: The table exactly as published: (LUTs, pct, FFs, pct, BRAM, pct, MHz).
#: ``None`` BRAM is the paper's "NA".
PUBLISHED_TABLE1: dict[str, dict[str, object]] = {
    "static_region": {
        "luts": 3372, "luts_pct": 7, "ffs": 5503, "ffs_pct": 11,
        "brams": 25, "brams_pct": 10, "freq_mhz": 200,
    },
    "pr_controller": {
        "luts": 418, "luts_pct": 0, "ffs": 432, "ffs_pct": 0,
        "brams": 8, "brams_pct": 3, "freq_mhz": 66,
    },
    "median": {
        "luts": 3141, "luts_pct": 6, "ffs": 3270, "ffs_pct": 6,
        "brams": None, "brams_pct": None, "freq_mhz": 200,
    },
    "sobel": {
        "luts": 1159, "luts_pct": 2, "ffs": 1060, "ffs_pct": 2,
        "brams": None, "brams_pct": None, "freq_mhz": 200,
    },
    "smoothing": {
        "luts": 2053, "luts_pct": 4, "ffs": 1601, "ffs_pct": 3,
        "brams": None, "brams_pct": None, "freq_mhz": 200,
    },
}

_DISPLAY_NAMES = {
    "static_region": "Static Region",
    "pr_controller": "PR Controller",
    "median": "Median Filter",
    "sobel": "Sobel Filter",
    "smoothing": "Smoothing Filter",
}


def row_for(spec: CoreSpec, device: FpgaDevice = XC2VP50) -> dict[str, object]:
    """One regenerated Table 1 row for a core/static block."""
    row: dict[str, object] = {
        "name": spec.name,
        "display": _DISPLAY_NAMES.get(spec.name, spec.name),
        "luts": spec.luts,
        "luts_pct": device.utilization_pct(spec.luts, device.luts),
        "ffs": spec.ffs,
        "ffs_pct": device.utilization_pct(spec.ffs, device.ffs),
        "freq_mhz": round(spec.freq_hz / 1e6),
    }
    if spec.brams:
        row["brams"] = spec.brams
        row["brams_pct"] = device.utilization_pct(spec.brams, device.brams)
    else:
        row["brams"] = None
        row["brams_pct"] = None
    return row


def table1_rows(
    device: FpgaDevice = XC2VP50, workers: int = 1
) -> list[dict[str, object]]:
    """All regenerated rows, in the paper's ordering.

    Rows are independent, so ``workers > 1`` regenerates them across
    fork workers (:func:`repro.runtime.parallel.parallel_map`) —
    identical output, in the same order.
    """
    order = ["static_region", "pr_controller", "median", "sobel", "smoothing"]
    catalog = {**STATIC_BLOCKS, **TABLE1_CORES}
    return parallel_map(
        lambda name: row_for(catalog[name], device), order, workers=workers
    )


def render(device: FpgaDevice = XC2VP50) -> str:
    """The Table 1 text table, formatted like the paper's."""
    rows = []
    for r in table1_rows(device):
        rows.append(
            {
                "Hardware Function": r["display"],
                "LUTs": f"{r['luts']:,} ({r['luts_pct']}%)",
                "FFs": f"{r['ffs']:,} ({r['ffs_pct']}%)",
                "BRAM": (
                    f"{r['brams']} ({r['brams_pct']}%)"
                    if r["brams"] is not None
                    else "NA"
                ),
                "Freq (MHz)": r["freq_mhz"],
            }
        )
    return render_table(
        rows,
        title="Table 1. Hardware functions and their resource requirements "
        f"({device.name})",
    )


def verify_against_published(
    device: FpgaDevice = XC2VP50,
) -> list[tuple[str, str, object, object]]:
    """All (row, field, ours, published) mismatches — empty means exact."""
    mismatches = []
    for row in table1_rows(device):
        name = str(row["name"])
        published = PUBLISHED_TABLE1[name]
        for fieldname in (
            "luts", "luts_pct", "ffs", "ffs_pct", "brams", "brams_pct",
            "freq_mhz",
        ):
            if row[fieldname] != published[fieldname]:
                mismatches.append(
                    (name, fieldname, row[fieldname], published[fieldname])
                )
    return mismatches
