"""Table 2 — bitstream sizes and configuration times per layout.

Regenerates every cell of the paper's Table 2:

* **bitstream size** — from the floorplan geometry (full-device, single
  PRR at 26 columns, dual PRR at 12 columns);
* **estimated time** — bytes / 66 MB/s (the paper's lower bound);
* **measured time** — the calibrated overhead models: vendor API for the
  full configuration, BRAM-buffered ICAP controller for the partials;
* **normalized X_PRTR** — each time over its column's full-configuration
  time.

The single-PRR measured time and full measured time are calibration
inputs; the dual-PRR measured time and all estimated times are genuine
model outputs, compared against the published values.
"""

from __future__ import annotations

from ..analysis.calibration import fit_icap_handshake, fit_vendor_api
from ..analysis.tables import render_table
from ..hardware.catalog import MB, PUBLISHED_TABLE2, XC2VP50, FpgaDevice
from ..hardware.prr import dual_prr_floorplan, single_prr_floorplan
from ..runtime.parallel import parallel_map

__all__ = ["table2_rows", "render", "verify_against_published"]


def _predicted_partial_measured(nbytes: int) -> float:
    timings = fit_icap_handshake()
    first_fill = min(timings.chunk_bytes, nbytes) / (1600 * MB)
    return first_fill + timings.drain_time(nbytes)


def table2_rows(
    device: FpgaDevice = XC2VP50,
    use_published_sizes: bool = False,
    workers: int = 1,
) -> list[dict[str, object]]:
    """Regenerated Table 2 rows.

    ``use_published_sizes=True`` evaluates the time models on the paper's
    exact byte counts (isolating the timing models from the integer-column
    geometry approximation); the default derives sizes from geometry.
    After the shared calibration prelude, rows are independent —
    ``workers > 1`` evaluates them via fork workers, identical output.
    """
    selectmap_bw = 66 * MB
    api = fit_vendor_api()
    single = single_prr_floorplan(device)
    dual = dual_prr_floorplan(device)

    if use_published_sizes:
        sizes = {
            "full": PUBLISHED_TABLE2["full"].bitstream_bytes,
            "single_prr": PUBLISHED_TABLE2["single_prr"].bitstream_bytes,
            "dual_prr": PUBLISHED_TABLE2["dual_prr"].bitstream_bytes,
        }
    else:
        sizes = {
            "full": device.full_bitstream_bytes,
            "single_prr": single.partial_bitstream_bytes(0),
            "dual_prr": dual.partial_bitstream_bytes(0),
        }

    full_est = sizes["full"] / selectmap_bw
    full_meas = full_est + api.time(sizes["full"])

    def one_row(cell: tuple[str, str]) -> dict[str, object]:
        key, layout = cell
        nbytes = sizes[key]
        est = nbytes / selectmap_bw
        meas = full_meas if key == "full" else _predicted_partial_measured(nbytes)
        return {
            "key": key,
            "layout": layout,
            "bitstream_bytes": nbytes,
            "estimated_s": est,
            "measured_s": meas,
            "x_prtr_estimated": est / full_est,
            "x_prtr_measured": meas / full_meas,
        }

    return parallel_map(
        one_row,
        [
            ("full", "Full Configuration"),
            ("single_prr", "Single PRR"),
            ("dual_prr", "Dual PRR"),
        ],
        workers=workers,
    )


def render(device: FpgaDevice = XC2VP50) -> str:
    """Table 2 as text, paper values alongside the regenerated ones."""
    rows = []
    for r in table2_rows(device):
        pub = PUBLISHED_TABLE2[str(r["key"])]
        rows.append(
            {
                "Layout": r["layout"],
                "Bytes (ours)": r["bitstream_bytes"],
                "Bytes (paper)": pub.bitstream_bytes,
                "Est ms (ours)": float(r["estimated_s"]) * 1e3,
                "Est ms (paper)": pub.estimated_time_s * 1e3,
                "Meas ms (ours)": float(r["measured_s"]) * 1e3,
                "Meas ms (paper)": pub.measured_time_s * 1e3,
                "X est (ours)": float(r["x_prtr_estimated"]),
                "X est (paper)": pub.estimated_x_prtr,
                "X meas (ours)": float(r["x_prtr_measured"]),
                "X meas (paper)": pub.measured_x_prtr,
            }
        )
    return render_table(
        rows,
        title="Table 2. Experimental values for model parameters "
        "(ours vs published)",
        floatfmt=".4g",
    )


def verify_against_published(
    *, size_tol: float = 0.015, time_tol: float = 0.01
) -> list[tuple[str, str, float, float, float]]:
    """All cells whose relative error exceeds tolerance.

    Returns (row, field, ours, published, rel_error) tuples; geometry
    (integer columns) limits sizes to ~1.5%, timing models to ~1%.
    """
    failures = []
    for r in table2_rows():
        key = str(r["key"])
        pub = PUBLISHED_TABLE2[key]
        checks = [
            ("bitstream_bytes", float(r["bitstream_bytes"]),
             float(pub.bitstream_bytes), size_tol),
        ]
        # Time checks on the published byte counts, isolating timing models.
        for rp in table2_rows(use_published_sizes=True):
            if rp["key"] != key:
                continue
            checks.append(
                ("estimated_s", float(rp["estimated_s"]),
                 pub.estimated_time_s, time_tol)
            )
            checks.append(
                ("measured_s", float(rp["measured_s"]),
                 pub.measured_time_s, time_tol)
            )
        for fieldname, ours, published, tol in checks:
            rel = abs(ours - published) / published
            if rel > tol:
                failures.append((key, fieldname, ours, published, rel))
    return failures
