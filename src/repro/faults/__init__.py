"""Fault injection, detection and recovery for the reconfiguration stack.

The paper's ICAP-controller path sneaks partial bitstreams past a vendor
API that refuses them — exactly where real deployments see transfer
corruption, write aborts and configuration-memory SEUs.  This package
makes those failure modes first-class and *deterministic*:

* :mod:`repro.faults.injector` — seeded fault processes (corrupt
  transfers, abort ICAP/port writes, flip configuration frames);
* :mod:`repro.faults.detection` — per-chunk CRC checking and periodic
  readback scrubbing;
* :mod:`repro.faults.recovery` — pluggable policies: retry with capped
  exponential backoff, re-fetch from the bitstream server, fall back to a
  full (FRTR) reconfiguration, or degrade the blade so the cluster
  redistributes its trace;
* :mod:`repro.faults.errors` — the fault exception hierarchy.

With every rate at zero the whole subsystem is inert: runs are
bit-identical to the fault-free baseline (a test pins this).
"""

from .detection import CrcChecker, ScrubCycle, Scrubber
from .errors import (
    BladeDegraded,
    ConfigMemoryUpset,
    DomainOutage,
    ReconfigurationFault,
    TransferCorruption,
    WriteAbort,
)
from .injector import FaultConfig, FaultInjector, FaultStats
from .recovery import (
    DegradePolicy,
    FallbackPolicy,
    RecoveryAction,
    RecoveryPolicy,
    RefetchPolicy,
    RetryPolicy,
)

__all__ = [
    "BladeDegraded",
    "ConfigMemoryUpset",
    "CrcChecker",
    "DegradePolicy",
    "DomainOutage",
    "FallbackPolicy",
    "FaultConfig",
    "FaultInjector",
    "FaultStats",
    "ReconfigurationFault",
    "RecoveryAction",
    "RecoveryPolicy",
    "RefetchPolicy",
    "RetryPolicy",
    "ScrubCycle",
    "Scrubber",
    "TransferCorruption",
    "WriteAbort",
]
