"""Fault *detection*: per-chunk CRC checks and configuration scrubbing.

Two mechanisms cover the two fault domains:

* **CRC** — every :class:`~repro.hardware.bitstream.Bitstream` carries a
  deterministic CRC-32 per BRAM chunk (see ``Bitstream.chunk_crcs``).
  :class:`CrcChecker` models the *cost* and *coverage* of verifying it:
  checking is free by default (the Fig. 7 state machine can fold a CRC
  into the drain at wire speed), and coverage below 1.0 models checksum
  escapes — corrupted chunks that slip through and become silent data
  corruption.

* **Scrubbing** — configuration-memory SEUs are invisible to transfer
  CRCs; they strike frames *after* configuration.  :class:`Scrubber` is a
  DES process that periodically reads back every configured region,
  counts the upsets the injector accumulated since the last cycle, and
  repairs them with a partial reconfiguration per upset.  Its log yields
  MTTR/availability statistics for :mod:`repro.analysis.reliability`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator

from ..sim.engine import Delay, Process, Simulator
from .injector import FaultInjector

__all__ = ["CrcChecker", "Scrubber", "ScrubCycle"]


@dataclass(frozen=True)
class CrcChecker:
    """Cost/coverage model of a per-chunk CRC verification stage.

    Parameters
    ----------
    bandwidth:
        Bytes/second the checker can hash; ``0`` means the check is free
        (pipelined into the chunk drain) — the default, which keeps
        fault-free runs bit-identical to the pre-fault baseline.
    coverage:
        Probability a corrupted chunk is actually flagged.  Below 1.0 the
        checker can miss, turning an injected corruption into silent data
        corruption (counted by the caller, not retried).
    """

    bandwidth: float = 0.0
    coverage: float = 1.0

    def __post_init__(self) -> None:
        if self.bandwidth < 0:
            raise ValueError(f"bandwidth must be >= 0: {self.bandwidth}")
        if not 0.0 <= self.coverage <= 1.0:
            raise ValueError(f"coverage must be in [0,1]: {self.coverage}")

    def check_time(self, nbytes: float) -> float:
        """Seconds to verify ``nbytes`` (0 when the check is pipelined)."""
        if nbytes < 0:
            raise ValueError(f"negative size: {nbytes}")
        if self.bandwidth <= 0:
            return 0.0
        return nbytes / self.bandwidth

    def detects(self, injector: FaultInjector | None) -> bool:
        """Does the checker flag a (known-corrupted) chunk?

        Full coverage never consumes a draw; partial coverage draws from
        the injector's stream (falling back to certain detection when no
        stream is available, to stay deterministic).
        """
        if self.coverage >= 1.0 or injector is None:
            return True
        return bool(injector.rng.random() < self.coverage)


@dataclass(frozen=True)
class ScrubCycle:
    """One completed readback/scrub pass."""

    start: float
    end: float
    upsets_found: int
    repair_time: float

    @property
    def duration(self) -> float:
        return self.end - self.start


class Scrubber:
    """Periodic configuration readback + repair over a set of regions.

    The scrubber wakes every ``interval`` seconds, reads back all
    ``n_regions`` configured regions (``readback_time`` each), asks the
    injector how many SEUs accumulated since the previous pass, and
    repairs each upset with one partial reconfiguration
    (``repair_time``).  Upsets are therefore *detected* with a latency
    uniform over the scrub interval (mean ``interval / 2``) and
    *repaired* immediately after detection — the classic blind-scrub
    organization.
    """

    def __init__(
        self,
        sim: Simulator,
        injector: FaultInjector,
        n_regions: int,
        *,
        interval: float,
        readback_time: float = 0.0,
        repair_time: float = 0.0,
        name: str = "scrubber",
    ) -> None:
        if n_regions <= 0:
            raise ValueError("need at least one region to scrub")
        if interval <= 0:
            raise ValueError(f"scrub interval must be positive: {interval}")
        if readback_time < 0 or repair_time < 0:
            raise ValueError("readback/repair times must be >= 0")
        self.sim = sim
        self.injector = injector
        self.n_regions = n_regions
        self.interval = interval
        self.readback_time = readback_time
        self.repair_time = repair_time
        self.name = name
        self.cycles: list[ScrubCycle] = []
        self.upsets_repaired = 0
        self._stopped = False

    def stop(self) -> None:
        """Stop after the current cycle (lets the event queue drain)."""
        self._stopped = True

    def start(self, n_cycles: int | None = None) -> Process:
        """Spawn the scrub loop; bounded by ``n_cycles`` or :meth:`stop`."""
        return self.sim.spawn(self._run(n_cycles), name=self.name)

    def _run(self, n_cycles: int | None) -> Generator[Any, Any, int]:
        done = 0
        while not self._stopped and (n_cycles is None or done < n_cycles):
            yield Delay(self.interval)
            start = self.sim.now
            # Readback of every configured region (the detection pass).
            readback = self.readback_time * self.n_regions
            if readback:
                yield Delay(readback)
            upsets = self.injector.seu_count(self.interval, self.n_regions)
            repair = upsets * self.repair_time
            if repair:
                yield Delay(repair)
            self.upsets_repaired += upsets
            self.cycles.append(
                ScrubCycle(start, self.sim.now, upsets, repair)
            )
            done += 1
        return self.upsets_repaired

    # -- reliability accounting ------------------------------------------

    @property
    def busy_time(self) -> float:
        """Total seconds spent reading back and repairing."""
        return sum(c.duration for c in self.cycles)

    def availability(self, horizon: float | None = None) -> float:
        """Fraction of time the fabric was *not* held by scrub/repair."""
        horizon = self.sim.now if horizon is None else horizon
        if horizon <= 0:
            return 1.0
        return max(0.0, 1.0 - self.busy_time / horizon)

    def mean_time_to_repair(self) -> float:
        """Mean detection latency + repair service time per upset.

        Detection latency for a blind scrubber is uniform over the scrub
        interval (mean ``interval / 2``); the repair itself adds the
        readback of the dirty pass plus one partial reconfiguration.
        """
        if self.upsets_repaired == 0:
            return 0.0
        service = (
            sum(c.repair_time for c in self.cycles) / self.upsets_repaired
        )
        return self.interval / 2.0 + self.readback_time + service
