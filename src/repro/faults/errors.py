"""Fault exception hierarchy.

Every injected failure surfaces as a :class:`ReconfigurationFault`
subclass raised *inside* the DES process that suffered it.  Because the
engine delegates through plain ``yield from`` chains, a fault raised deep
in the hardware model (a chunk write abort inside the ICAP controller)
propagates to the executor frame that wrapped the configuration attempt,
where a :mod:`repro.faults.recovery` policy decides what happens next.
With no recovery policy installed the fault escapes
:meth:`repro.sim.Simulator.run` — fail-fast is the default.
"""

from __future__ import annotations

__all__ = [
    "ReconfigurationFault",
    "TransferCorruption",
    "WriteAbort",
    "ConfigMemoryUpset",
    "BladeDegraded",
    "DomainOutage",
]


class ReconfigurationFault(RuntimeError):
    """Base class for every injected (re)configuration failure."""


class TransferCorruption(ReconfigurationFault):
    """A bitstream transfer failed its CRC check (link or server fetch)."""


class WriteAbort(ReconfigurationFault):
    """A configuration write aborted mid-chunk (ICAP or vendor port)."""


class ConfigMemoryUpset(ReconfigurationFault):
    """A single-event upset flipped frames of a configured region."""


class DomainOutage(ReconfigurationFault):
    """A failure domain is down and cannot service the request.

    Raised by the chaos runtime when a configuration is attempted while
    the domain's circuit breaker is open, so callers fail fast instead of
    queueing work against hardware that is known to be dead.
    """

    def __init__(self, domain: str, reason: str = "") -> None:
        self.domain = domain
        self.reason = reason
        super().__init__(
            f"failure domain {domain!r} unavailable"
            + (f": {reason}" if reason else "")
        )


class BladeDegraded(ReconfigurationFault):
    """A blade exhausted its recovery budget and left the cluster.

    Carries enough context for the cluster runner to redistribute the
    blade's unfinished calls across the surviving blades.
    """

    def __init__(self, lane: str, call_index: int, reason: str = "") -> None:
        self.lane = lane
        self.call_index = call_index
        self.reason = reason
        super().__init__(
            f"blade {lane!r} degraded at call {call_index}"
            + (f": {reason}" if reason else "")
        )
