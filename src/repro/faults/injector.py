"""Deterministic, seeded fault processes.

The injector is the single source of randomness for the whole fault
subsystem.  It owns one :class:`numpy.random.Generator` (resolved through
:func:`repro.model.stochastic.resolve_rng`, so ``seed=None`` means seed 0,
never OS entropy) and is consulted by the hardware models at well-defined
points:

* :meth:`FaultInjector.transfer_corrupted` — once per
  :class:`~repro.sim.resources.BandwidthChannel` transfer carrying a
  bitstream (per-byte Bernoulli error rate, aggregated in closed form);
* :meth:`FaultInjector.chunk_aborted` — once per BRAM chunk the ICAP
  controller drains (state-machine write abort);
* :meth:`FaultInjector.port_aborted` — once per full-device write through
  a vendor :class:`~repro.hardware.config_port.ConfigPort`;
* :meth:`FaultInjector.seu_count` — Poisson upset counts for a scrub
  interval over the configured regions.

Determinism contract: the DES engine is single-threaded and its event
order is fully deterministic, so the *call order* into the injector is
deterministic too; same seed + same workload → bit-identical fault
realizations.  Rates that are exactly zero never consume a draw, so a
zero-rate injector leaves the stream untouched and any run with it is
bit-identical to a run with no injector at all.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

import numpy as np

from ..model.stochastic import resolve_rng

__all__ = ["FaultConfig", "FaultStats", "FaultInjector"]


@dataclass(frozen=True)
class FaultConfig:
    """Rates of the modeled fault processes (all default to 0 = fault-free).

    Attributes
    ----------
    transfer_ber:
        Per-byte corruption probability on bitstream-carrying transfers
        (host link into the BRAM buffer, cluster bitstream-server fetches).
        A transfer of ``n`` bytes is corrupted with ``1 - (1 - ber)^n``.
    chunk_abort_rate:
        Probability that the ICAP state machine aborts while draining one
        BRAM chunk — the custom-controller risk the paper's Fig. 7 path
        takes on by bypassing the vendor API.
    port_abort_rate:
        Probability that a full-device write through a vendor config port
        aborts.  Defaults to 0 separately from the ICAP rate because the
        vendor path is validated end-to-end (DONE-pin polling).
    seu_rate:
        Configuration-memory single-event upsets per second *per
        configured region* (consumed by the readback scrubber).
    seed:
        Seed for the injector's private random stream.
    """

    transfer_ber: float = 0.0
    chunk_abort_rate: float = 0.0
    port_abort_rate: float = 0.0
    seu_rate: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        for f in ("transfer_ber", "chunk_abort_rate", "port_abort_rate"):
            v = getattr(self, f)
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{f} must be a probability in [0,1]: {v}")
        if self.seu_rate < 0:
            raise ValueError(f"seu_rate must be >= 0: {self.seu_rate}")

    @property
    def fault_free(self) -> bool:
        return (
            self.transfer_ber == 0.0
            and self.chunk_abort_rate == 0.0
            and self.port_abort_rate == 0.0
            and self.seu_rate == 0.0
        )

    def transfer_corruption_probability(self, nbytes: float) -> float:
        """``1 - (1 - ber)^n``, evaluated stably for tiny ``ber``."""
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        if self.transfer_ber <= 0.0 or nbytes == 0:
            return 0.0
        if self.transfer_ber >= 1.0:
            return 1.0
        return -math.expm1(nbytes * math.log1p(-self.transfer_ber))

    def reseeded(self, seed: int) -> "FaultConfig":
        """The same rates under a different seed (per-blade streams)."""
        return replace(self, seed=seed)


@dataclass
class FaultStats:
    """Counters of *injected* faults (detection/recovery count elsewhere)."""

    transfers_corrupted: int = 0
    chunk_aborts: int = 0
    port_aborts: int = 0
    seus_injected: int = 0

    @property
    def total(self) -> int:
        return (
            self.transfers_corrupted
            + self.chunk_aborts
            + self.port_aborts
            + self.seus_injected
        )

    def as_dict(self) -> dict[str, int]:
        return {
            "transfers_corrupted": self.transfers_corrupted,
            "chunk_aborts": self.chunk_aborts,
            "port_aborts": self.port_aborts,
            "seus_injected": self.seus_injected,
            "total": self.total,
        }


class FaultInjector:
    """Seeded fault oracle shared by one node's hardware models."""

    def __init__(
        self,
        config: FaultConfig,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        self.config = config
        self.rng = resolve_rng(config.seed if rng is None else rng)
        self.stats = FaultStats()

    # -- per-fault-domain draws ------------------------------------------

    def transfer_corrupted(self, nbytes: float) -> bool:
        """Did this bitstream transfer arrive corrupted?"""
        p = self.config.transfer_corruption_probability(nbytes)
        if p <= 0.0:
            return False
        hit = bool(self.rng.random() < p)
        if hit:
            self.stats.transfers_corrupted += 1
        return hit

    def chunk_aborted(self) -> bool:
        """Does the ICAP state machine abort draining this chunk?"""
        p = self.config.chunk_abort_rate
        if p <= 0.0:
            return False
        hit = bool(self.rng.random() < p)
        if hit:
            self.stats.chunk_aborts += 1
        return hit

    def span_aborted(self, n_chunks: int) -> bool:
        """Abort draw for an ``n_chunks``-chunk write collapsed into one
        draw — used by the wire-only ("estimated") configuration path,
        which does not simulate individual chunks."""
        p_chunk = self.config.chunk_abort_rate
        if p_chunk <= 0.0 or n_chunks <= 0:
            return False
        if p_chunk >= 1.0:
            p = 1.0
        else:
            p = -math.expm1(n_chunks * math.log1p(-p_chunk))
        hit = bool(self.rng.random() < p)
        if hit:
            self.stats.chunk_aborts += 1
        return hit

    def port_aborted(self) -> bool:
        """Does this vendor-port full configuration abort?"""
        p = self.config.port_abort_rate
        if p <= 0.0:
            return False
        hit = bool(self.rng.random() < p)
        if hit:
            self.stats.port_aborts += 1
        return hit

    def abort_fraction(self) -> float:
        """How far through the write the abort struck (uniform in (0,1))."""
        return float(self.rng.uniform(0.0, 1.0))

    def seu_count(self, duration: float, n_regions: int = 1) -> int:
        """Poisson configuration-memory upsets over ``duration`` seconds."""
        if duration < 0:
            raise ValueError(f"negative duration: {duration}")
        lam = self.config.seu_rate * duration * max(0, n_regions)
        if lam <= 0.0:
            return 0
        count = int(self.rng.poisson(lam))
        self.stats.seus_injected += count
        return count

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<FaultInjector {self.config!r} injected={self.stats.total}>"
