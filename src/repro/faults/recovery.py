"""Fault *recovery*: pluggable policies the executors consult on failure.

A policy is pure decision logic — it never touches the simulator.  When a
configuration attempt fails, the executor calls
:meth:`RecoveryPolicy.on_failure` with the attempt number and the fault,
and receives a :class:`RecoveryAction` telling it what to do next:

``retry``
    Re-drive the configuration from the locally buffered bitstream after
    an optional backoff delay.
``refetch``
    Pull the bitstream from the bitstream server again first (the local
    copy is suspect), then retry.
``fallback_full``
    Give up on the partial path: reconfigure the whole device through the
    vendor API (which wipes *every* PRR) and continue — graceful
    degradation from PRTR to FRTR for this call.
``degrade``
    Declare the blade broken.  The executor abandons its remaining calls
    and the cluster runner redistributes them over the healthy blades.
``giveup``
    Re-raise the fault (fail fast; escapes ``Simulator.run``).

Backoff is deterministic (capped exponential, no jitter) so recovery
timing is as reproducible as the injection that triggered it.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..obs import metrics as obsm
from .errors import ReconfigurationFault, TransferCorruption

__all__ = [
    "RecoveryAction",
    "RecoveryPolicy",
    "RetryPolicy",
    "RefetchPolicy",
    "FallbackPolicy",
    "DegradePolicy",
]

_KINDS = ("retry", "refetch", "fallback_full", "degrade", "giveup")


@dataclass(frozen=True)
class RecoveryAction:
    """What the executor should do about a failed configuration attempt."""

    kind: str
    #: backoff delay to wait before acting (simulated seconds)
    delay: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown recovery action {self.kind!r}")
        if self.delay < 0:
            raise ValueError(f"negative backoff delay: {self.delay}")


class RecoveryPolicy:
    """Base policy: capped exponential backoff around a retry budget.

    Parameters
    ----------
    max_attempts:
        Failed attempts tolerated before escalating to ``exhausted``.
    backoff:
        Backoff before retry ``k`` is ``min(cap, backoff * factor**(k-1))``
        — attempt 1's failure waits ``backoff``, the next ``backoff *
        factor``, and so on.  ``backoff=0`` disables waiting entirely.
    exhausted:
        Action kind once the budget is spent: ``"giveup"`` (default),
        ``"fallback_full"`` or ``"degrade"``.
    refetch:
        When true, retries re-fetch the bitstream from the server instead
        of re-driving the local copy.
    """

    def __init__(
        self,
        max_attempts: int = 3,
        *,
        backoff: float = 0.0,
        factor: float = 2.0,
        cap: float = float("inf"),
        exhausted: str = "giveup",
        refetch: bool = False,
    ) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if backoff < 0 or cap < 0:
            raise ValueError("backoff/cap must be >= 0")
        if factor < 1.0:
            raise ValueError("backoff factor must be >= 1")
        if exhausted not in ("giveup", "fallback_full", "degrade"):
            raise ValueError(f"unknown exhausted action {exhausted!r}")
        self.max_attempts = max_attempts
        self.backoff = backoff
        self.factor = factor
        self.cap = cap
        self.exhausted = exhausted
        self.refetch = refetch

    def backoff_delay(self, attempt: int) -> float:
        """Deterministic capped exponential backoff for attempt ``attempt``."""
        if self.backoff <= 0:
            return 0.0
        return min(self.cap, self.backoff * self.factor ** (attempt - 1))

    def on_failure(
        self, attempt: int, fault: ReconfigurationFault
    ) -> RecoveryAction:
        """Decide the next step after failed attempt number ``attempt``."""
        if attempt >= self.max_attempts:
            action = RecoveryAction(self.exhausted)
        else:
            kind = "refetch" if self._wants_refetch(fault) else "retry"
            action = RecoveryAction(kind, delay=self.backoff_delay(attempt))
        obsm.counter("repro_recovery_actions_total").inc(
            action=action.kind
        )
        return action

    def _wants_refetch(self, fault: ReconfigurationFault) -> bool:
        return self.refetch or isinstance(fault, TransferCorruption)


class RetryPolicy(RecoveryPolicy):
    """Retry in place with capped exponential backoff, then give up."""

    def __init__(
        self,
        max_attempts: int = 3,
        *,
        backoff: float = 1e-3,
        factor: float = 2.0,
        cap: float = 0.1,
    ) -> None:
        super().__init__(
            max_attempts, backoff=backoff, factor=factor, cap=cap,
            exhausted="giveup",
        )


class RefetchPolicy(RecoveryPolicy):
    """Every retry re-pulls the bitstream from the server first."""

    def __init__(
        self,
        max_attempts: int = 3,
        *,
        backoff: float = 1e-3,
        factor: float = 2.0,
        cap: float = 0.1,
    ) -> None:
        super().__init__(
            max_attempts, backoff=backoff, factor=factor, cap=cap,
            exhausted="giveup", refetch=True,
        )


class FallbackPolicy(RecoveryPolicy):
    """After ``max_attempts`` failed partial attempts, do a full (FRTR)
    reconfiguration — the graceful-degradation path."""

    def __init__(
        self,
        max_attempts: int = 3,
        *,
        backoff: float = 1e-3,
        factor: float = 2.0,
        cap: float = 0.1,
    ) -> None:
        super().__init__(
            max_attempts, backoff=backoff, factor=factor, cap=cap,
            exhausted="fallback_full",
        )


class DegradePolicy(RecoveryPolicy):
    """After ``max_attempts`` failures, mark the blade degraded so the
    cluster redistributes its remaining trace."""

    def __init__(
        self,
        max_attempts: int = 3,
        *,
        backoff: float = 1e-3,
        factor: float = 2.0,
        cap: float = 0.1,
    ) -> None:
        super().__init__(
            max_attempts, backoff=backoff, factor=factor, cap=cap,
            exhausted="degrade",
        )
