"""Simulated HPRC hardware substrate (Cray XD1 blade model).

The paper's testbed, rebuilt as a parameterized discrete-event model:
device catalog (:mod:`repro.hardware.catalog`), fabric and floorplans
(:mod:`repro.hardware.fpga`, :mod:`repro.hardware.prr`), bitstream sizing
(:mod:`repro.hardware.bitstream`), configuration ports and the ICAP
controller (:mod:`repro.hardware.config_port`,
:mod:`repro.hardware.icap_controller`), the dual-channel link
(:mod:`repro.hardware.interconnect`), on-board memory
(:mod:`repro.hardware.memory`), and the assembled node
(:mod:`repro.hardware.node`).
"""

from .bitstream import (
    Bitstream,
    difference_based_bitstreams,
    difference_size,
    full_bitstream,
    module_based_bitstreams,
)
from .catalog import (
    MB,
    MS,
    PUBLISHED_TABLE2,
    US,
    FpgaDevice,
    NodeParameters,
    Table2Row,
    XC2VP50,
    XD1_NODE,
)
from .bitfile import (
    BitfileError,
    ParsedBitfile,
    SYNC_WORD,
    VendorConfigApi,
    build_full_bitfile,
    build_partial_bitfile,
    parse_bitfile,
)
from .devices import (
    DEVICES,
    CatalogEntry,
    DeviceGeneration,
    device_entry,
)
from .domains import DomainTopology, FailureDomain
from .config_port import (
    CRAY_API_OVERHEAD,
    ConfigPort,
    VendorApiOverhead,
    icap_raw_port,
    jtag_port,
    selectmap_port,
)
from .fpga import Fpga, PlacementError, Region, Resources
from .icap_controller import DEFAULT_ICAP_TIMINGS, IcapController, IcapTimings
from .interconnect import DualChannelLink
from .memory import Fifo, MemorySystem, SramBank
from .node import XD1Node
from .prr import (
    BusMacro,
    Floorplan,
    dual_prr_floorplan,
    single_prr_floorplan,
    static_only_floorplan,
    uniform_prr_floorplan,
)

__all__ = [
    "BitfileError",
    "Bitstream",
    "BusMacro",
    "CRAY_API_OVERHEAD",
    "ConfigPort",
    "CatalogEntry",
    "DEFAULT_ICAP_TIMINGS",
    "DEVICES",
    "DeviceGeneration",
    "DomainTopology",
    "DualChannelLink",
    "FailureDomain",
    "Fifo",
    "Floorplan",
    "Fpga",
    "FpgaDevice",
    "IcapController",
    "IcapTimings",
    "MB",
    "MS",
    "MemorySystem",
    "NodeParameters",
    "PUBLISHED_TABLE2",
    "PlacementError",
    "ParsedBitfile",
    "Region",
    "Resources",
    "SYNC_WORD",
    "SramBank",
    "Table2Row",
    "US",
    "VendorApiOverhead",
    "XC2VP50",
    "VendorConfigApi",
    "XD1Node",
    "XD1_NODE",
    "build_full_bitfile",
    "build_partial_bitfile",
    "device_entry",
    "difference_based_bitstreams",
    "difference_size",
    "dual_prr_floorplan",
    "full_bitstream",
    "icap_raw_port",
    "jtag_port",
    "module_based_bitstreams",
    "parse_bitfile",
    "selectmap_port",
    "single_prr_floorplan",
    "static_only_floorplan",
    "uniform_prr_floorplan",
]
