"""Byte-level bitstream images: build, parse, verify.

Section 4.1 of the paper turns on a mundane detail: the Cray API
*inspects* the bitstream it is given — it checks the byte count against
the full-device size and polls the DONE pin — and therefore rejects
partial bitstreams.  To make that story concrete (and to give the
simulator real bytes to move), this module implements a simplified
Virtex-style configuration image:

* a **header** (design name, part name, build tag) as length-prefixed
  fields, following the ``.bit`` container convention;
* the **sync word** ``AA 99 55 66`` marking the start of the command
  stream;
* one **frame-address record** (FAR) per configuration column followed by
  that column's frame payload;
* a trailing **CRC-32** over the command stream.

The payload geometry is driven by :class:`~repro.hardware.catalog.
FpgaDevice`, so built images land within a few bytes of the catalog's
size model (and the full-device image is padded to match it exactly).

:class:`VendorConfigApi` replicates the two documented checks and is what
the tests point at to reproduce the paper's "partial reconfiguration is
not natively supported" finding byte-for-byte.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass

import numpy as np

from .catalog import FpgaDevice, XC2VP50

__all__ = [
    "BitfileError",
    "ParsedBitfile",
    "build_full_bitfile",
    "build_partial_bitfile",
    "parse_bitfile",
    "VendorConfigApi",
    "SYNC_WORD",
]

SYNC_WORD = b"\xaa\x99\x55\x66"
_MAGIC = b"RPRB"  # repro bitfile container magic


class BitfileError(ValueError):
    """Malformed or corrupted bitstream image."""


@dataclass(frozen=True)
class ParsedBitfile:
    """Decoded view of a bitstream image."""

    design: str
    part: str
    build_tag: str
    #: (start_column, n_columns); full-device images cover every column
    column_span: tuple[int, int]
    payload_bytes: int
    total_bytes: int
    crc_ok: bool

    @property
    def is_partial(self) -> bool:
        return self.column_span[1] > 0 and self.column_span != (0, 0)


def _field(data: bytes) -> bytes:
    return struct.pack(">I", len(data)) + data


def _take_field(buf: memoryview, offset: int) -> tuple[bytes, int]:
    if offset + 4 > len(buf):
        raise BitfileError("truncated header field length")
    (length,) = struct.unpack_from(">I", buf, offset)
    offset += 4
    if offset + length > len(buf):
        raise BitfileError("truncated header field payload")
    return bytes(buf[offset : offset + length]), offset + length


def _column_payload(
    device: FpgaDevice, column: int, seed_tag: bytes
) -> bytes:
    """Deterministic pseudo-frame-data for one column."""
    n = int(device.column_bytes) - 8  # leave room for the FAR record
    if n <= 0:
        raise BitfileError(
            f"column payload would be non-positive for {device.name}"
        )
    rng = np.random.default_rng(
        zlib.crc32(seed_tag + column.to_bytes(4, "big"))
    )
    return rng.integers(0, 256, size=n, dtype=np.uint8).tobytes()


def _build(
    device: FpgaDevice,
    design: str,
    col_start: int,
    n_columns: int,
    pad_to: int | None,
) -> bytes:
    if not 0 <= col_start < device.clb_columns:
        raise BitfileError(f"bad start column {col_start}")
    if not 0 < n_columns <= device.clb_columns - col_start:
        raise BitfileError(f"bad column count {n_columns}")
    header = (
        _MAGIC
        + _field(design.encode())
        + _field(device.name.encode())
        + _field(b"repro-1.0")
        + struct.pack(">II", col_start, n_columns)
    )
    body = bytearray(SYNC_WORD)
    for col in range(col_start, col_start + n_columns):
        body += struct.pack(">II", 0x3000_2001, col)  # FAR write record
        body += _column_payload(device, col, design.encode())
    crc = zlib.crc32(bytes(body))
    image = header + bytes(body) + struct.pack(">I", crc)
    if pad_to is not None:
        if len(image) > pad_to:
            raise BitfileError(
                f"image ({len(image)} B) exceeds pad target ({pad_to} B)"
            )
        image += b"\xff" * (pad_to - len(image))
    return image


def build_full_bitfile(
    device: FpgaDevice = XC2VP50, design: str = "static_full"
) -> bytes:
    """A full-device image, padded to the catalog's exact byte count."""
    return _build(
        device,
        design,
        col_start=0,
        n_columns=device.clb_columns,
        pad_to=device.full_bitstream_bytes,
    )


def build_partial_bitfile(
    device: FpgaDevice,
    design: str,
    col_start: int,
    n_columns: int,
) -> bytes:
    """A partial image for a column span (module-based flow)."""
    return _build(device, design, col_start, n_columns, pad_to=None)


def parse_bitfile(image: bytes, device: FpgaDevice = XC2VP50) -> ParsedBitfile:
    """Decode and CRC-check an image produced by the builders."""
    buf = memoryview(image)
    if bytes(buf[:4]) != _MAGIC:
        raise BitfileError("missing container magic")
    offset = 4
    design, offset = _take_field(buf, offset)
    part, offset = _take_field(buf, offset)
    tag, offset = _take_field(buf, offset)
    if offset + 8 > len(buf):
        raise BitfileError("truncated column-span record")
    col_start, n_columns = struct.unpack_from(">II", buf, offset)
    offset += 8
    if bytes(buf[offset : offset + 4]) != SYNC_WORD:
        raise BitfileError("sync word not found after header")
    body_start = offset
    # Each column carries an 8-byte FAR record plus its frame payload of
    # (column_bytes - 8) pseudo-frame bytes; the body opens with the sync
    # word.
    body_end = body_start + 4 + n_columns * int(device.column_bytes)
    if body_end + 4 > len(buf):
        raise BitfileError("truncated frame payload")
    body = bytes(buf[body_start:body_end])
    (stored_crc,) = struct.unpack_from(">I", buf, body_end)
    crc_ok = zlib.crc32(body) == stored_crc
    full_span = col_start == 0 and n_columns == device.clb_columns
    return ParsedBitfile(
        design=design.decode(),
        part=part.decode(),
        build_tag=tag.decode(),
        column_span=(0, 0) if full_span else (col_start, n_columns),
        payload_bytes=body_end - body_start,
        total_bytes=len(image),
        crc_ok=crc_ok,
    )


class VendorConfigApi:
    """The two checks of the Cray configuration function (Section 4.1).

    ``accept`` raises :class:`BitfileError` exactly when the real API
    errors: a byte count different from the full-device size, or a DONE
    pin already high (the FPGA being configured) while the image is
    partial.  Building the modified API of the paper means constructing
    with ``check_size=False, check_done=False``.
    """

    def __init__(
        self,
        device: FpgaDevice = XC2VP50,
        *,
        check_size: bool = True,
        check_done: bool = True,
    ) -> None:
        self.device = device
        self.check_size = check_size
        self.check_done = check_done

    def accept(self, image: bytes, done_pin_high: bool) -> ParsedBitfile:
        parsed = parse_bitfile(image, self.device)
        if self.check_size and len(image) != self.device.full_bitstream_bytes:
            raise BitfileError(
                f"bitstream size check failed: {len(image)} != "
                f"{self.device.full_bitstream_bytes} "
                "(partial bitstreams have an undefined size)"
            )
        if self.check_done and done_pin_high:
            raise BitfileError(
                "DONE signal check failed: the device is already "
                "configured (always the case during partial "
                "reconfiguration)"
            )
        if not parsed.crc_ok:
            raise BitfileError("CRC mismatch: corrupted bitstream")
        return parsed
