"""Bitstream models for full and partial reconfiguration.

Implements the size accounting the paper describes in Section 2.2:

* **module-based flow** — one partial bitstream per module; every bitstream
  covers *all* frames of its PRR, so all bitstreams for a region have the
  same size regardless of the module inside (``n`` bitstreams for ``n``
  modules);
* **difference-based flow** — one bitstream per ordered (from, to) module
  pair containing only the changed frames (``n*(n-1)`` bitstreams of
  variable size).

Sizes derive from the device's column geometry (see
:class:`repro.hardware.catalog.FpgaDevice`).
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass
from typing import Iterable, Mapping

from .catalog import FpgaDevice
from .fpga import Region

__all__ = [
    "Bitstream",
    "full_bitstream",
    "module_based_bitstreams",
    "difference_based_bitstreams",
    "difference_size",
]


@dataclass(frozen=True)
class Bitstream:
    """A configuration image targeting the whole device or one region."""

    name: str
    nbytes: int
    #: region the bitstream configures; ``None`` for a full-device image
    region: str | None = None
    #: module the bitstream instantiates (informational)
    module: str = ""
    kind: str = "full"  # "full" | "module" | "difference"

    def __post_init__(self) -> None:
        if self.nbytes <= 0:
            raise ValueError(f"bitstream must have positive size: {self!r}")
        if self.kind not in ("full", "module", "difference"):
            raise ValueError(f"unknown bitstream kind {self.kind!r}")

    @property
    def is_partial(self) -> bool:
        return self.region is not None

    # -- integrity metadata ------------------------------------------------

    def _identity(self) -> bytes:
        return (
            f"{self.name}:{self.nbytes}:{self.region}:"
            f"{self.module}:{self.kind}"
        ).encode()

    @property
    def crc32(self) -> int:
        """Deterministic whole-image CRC-32.

        The simulator carries no real configuration payload, so the CRC
        is derived from the bitstream's identity — stable across runs and
        processes, which is all the detection layer needs to model a
        match/mismatch check.
        """
        return zlib.crc32(self._identity()) & 0xFFFFFFFF

    def n_chunks(self, chunk_bytes: int) -> int:
        """How many BRAM chunks the image occupies at ``chunk_bytes``."""
        if chunk_bytes <= 0:
            raise ValueError(f"chunk_bytes must be positive: {chunk_bytes}")
        return max(1, math.ceil(self.nbytes / chunk_bytes))

    def chunk_crc(self, index: int, chunk_bytes: int) -> int:
        """Deterministic CRC-32 of chunk ``index`` (for per-chunk checks)."""
        n = self.n_chunks(chunk_bytes)
        if not 0 <= index < n:
            raise IndexError(f"chunk {index} out of range [0, {n})")
        return zlib.crc32(self._identity() + b":%d" % index) & 0xFFFFFFFF

    def chunk_crcs(self, chunk_bytes: int) -> list[int]:
        """Per-chunk CRC table the ICAP controller's checker verifies."""
        return [
            self.chunk_crc(i, chunk_bytes)
            for i in range(self.n_chunks(chunk_bytes))
        ]


def full_bitstream(device: FpgaDevice, name: str = "full") -> Bitstream:
    """The full-device configuration image (what FRTR downloads per call)."""
    return Bitstream(
        name=name, nbytes=device.full_bitstream_bytes, region=None, kind="full"
    )


def module_based_bitstreams(
    device: FpgaDevice, region: Region, modules: Iterable[str]
) -> list[Bitstream]:
    """One fixed-size partial bitstream per module for ``region``.

    All returned bitstreams have identical size: the Early Access PR flow
    writes every frame of the region whether or not a given module uses it.
    """
    if not region.reconfigurable:
        raise ValueError(f"region {region.name!r} is not reconfigurable")
    size = device.partial_bitstream_bytes(region.columns)
    out = []
    for module in modules:
        out.append(
            Bitstream(
                name=f"{region.name}:{module}",
                nbytes=size,
                region=region.name,
                module=module,
                kind="module",
            )
        )
    if not out:
        raise ValueError("modules iterable was empty")
    return out


def difference_size(
    device: FpgaDevice,
    region: Region,
    similarity: float,
) -> int:
    """Size of a difference-based bitstream between two modules.

    ``similarity`` in ``[0, 1]`` is the fraction of the region's frames that
    are identical between the two designs; only differing frames (plus the
    fixed command overhead) are emitted.
    """
    if not 0.0 <= similarity <= 1.0:
        raise ValueError(f"similarity must be in [0,1]: {similarity}")
    full_region = device.partial_bitstream_bytes(region.columns)
    payload = full_region - device.bitstream_overhead_bytes
    return int(round(device.bitstream_overhead_bytes + payload * (1.0 - similarity)))


def difference_based_bitstreams(
    device: FpgaDevice,
    region: Region,
    similarities: Mapping[tuple[str, str], float],
) -> list[Bitstream]:
    """One variable-size bitstream per ordered module pair.

    ``similarities`` maps ``(from_module, to_module)`` to frame similarity.
    The paper's point — ``n*(n-1)`` bitstreams versus ``n`` for the
    module-based flow — falls out of the pair enumeration.
    """
    if not region.reconfigurable:
        raise ValueError(f"region {region.name!r} is not reconfigurable")
    modules = sorted({m for pair in similarities for m in pair})
    out = []
    for src in modules:
        for dst in modules:
            if src == dst:
                continue
            try:
                sim = similarities[(src, dst)]
            except KeyError:
                raise ValueError(
                    f"missing similarity for pair ({src!r}, {dst!r})"
                ) from None
            out.append(
                Bitstream(
                    name=f"{region.name}:{src}->{dst}",
                    nbytes=difference_size(device, region, sim),
                    region=region.name,
                    module=dst,
                    kind="difference",
                )
            )
    expected = len(modules) * (len(modules) - 1)
    assert len(out) == expected, (len(out), expected)
    return out
