"""Device and platform catalog.

All published constants of the paper's experimental platform live here, in
one place, so experiments can cite them and tests can pin them:

* the Xilinx Virtex-II Pro **XC2VP50** FPGA that serves as the Cray XD1
  Application Accelerator Processor (AAP);
* the XD1 node parameters (RapidArray/HyperTransport link, QDR-II SRAM
  banks, I/O bandwidth);
* the published Table 2 measurements, used both as calibration targets and
  as ground truth in EXPERIMENTS.md comparisons.

Resource-percentage note
------------------------
Table 1 of the paper reports utilization percentages that are exactly
``floor(100 * used / total)`` with totals **47,232 LUTs**, **47,232 FFs**
and **232 BRAMs** — the XC2VP50 figures (23,616 slices x 2).  We pin these
in tests.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "FpgaDevice",
    "XC2VP50",
    "XD1_NODE",
    "PUBLISHED_TABLE2",
    "Table2Row",
    "NodeParameters",
    "MB",
    "MS",
    "US",
]

# Unit helpers: the simulation time unit is the second; sizes in bytes.
MB = 1_000_000.0  # the paper's "MB/s" figures are decimal megabytes
MS = 1e-3
US = 1e-6


@dataclass(frozen=True)
class FpgaDevice:
    """Static description of a partially reconfigurable FPGA.

    The configuration-geometry fields follow the Virtex-II column/frame
    architecture: the device is configured by full-height *frames*; frames
    group into *columns*; a partial bitstream must cover whole columns
    (the paper: "a frame includes a whole column of logic resources").
    """

    name: str
    luts: int
    ffs: int
    brams: int
    slices: int
    clb_columns: int
    clb_rows: int
    #: total bytes of a full-device configuration bitstream
    full_bitstream_bytes: int
    #: bytes of bitstream header/command overhead (sync words, CRC, footer)
    bitstream_overhead_bytes: int
    #: number of PowerPC hard cores embedded in the fabric
    ppc_cores: int = 0

    def __post_init__(self) -> None:
        if min(self.luts, self.ffs, self.brams, self.slices) <= 0:
            raise ValueError("device resource totals must be positive")
        if self.full_bitstream_bytes <= self.bitstream_overhead_bytes:
            raise ValueError("bitstream overhead exceeds full bitstream")
        if self.clb_columns <= 0 or self.clb_rows <= 0:
            raise ValueError("CLB geometry must be positive")

    @property
    def column_bytes(self) -> float:
        """Configuration payload bytes per CLB column (uniform model)."""
        payload = self.full_bitstream_bytes - self.bitstream_overhead_bytes
        return payload / self.clb_columns

    def partial_bitstream_bytes(self, columns: int) -> int:
        """Size of a module-based partial bitstream spanning ``columns``.

        The Early Access PR flow emits *all* frames of the reconfigurable
        region, so size depends only on the region width, not on the module
        inside it.
        """
        if not 0 < columns <= self.clb_columns:
            raise ValueError(
                f"columns must be in (0, {self.clb_columns}]: {columns}"
            )
        return int(
            round(self.bitstream_overhead_bytes + columns * self.column_bytes)
        )

    def utilization_pct(self, used: int, total: int) -> int:
        """Utilization percentage as printed in the paper (floor)."""
        if total <= 0:
            raise ValueError("total must be positive")
        if used < 0:
            raise ValueError("used must be >= 0")
        return (100 * used) // total


#: The Cray XD1 Application Accelerator FPGA (Xilinx Virtex-II Pro).
#: ``full_bitstream_bytes`` is the paper's Table 2 value.  The overhead
#: constant is chosen so the single/dual PRR floorplans in
#: :mod:`repro.hardware.prr` land on the published partial sizes.
XC2VP50 = FpgaDevice(
    name="XC2VP50",
    luts=47_232,
    ffs=47_232,
    brams=232,
    slices=23_616,
    clb_columns=70,
    clb_rows=88,
    full_bitstream_bytes=2_381_764,
    bitstream_overhead_bytes=1_312,
    ppc_cores=2,
)


@dataclass(frozen=True)
class NodeParameters:
    """Timing/bandwidth parameters of one Cray XD1 compute blade."""

    #: usable host<->FPGA bandwidth per direction (paper: 1400 MB/s)
    io_bandwidth: float
    #: raw HyperTransport/RapidArray channel rate (paper: 1.6 GB/s)
    link_raw_bandwidth: float
    #: SelectMap external configuration port throughput (8 bit @ 66 MHz)
    selectmap_bandwidth: float
    #: ICAP internal configuration port raw throughput (8 bit @ 66 MHz)
    icap_bandwidth: float
    #: JTAG configuration throughput (serial, ~33 Mbit/s)
    jtag_bandwidth: float
    #: number of QDR-II SRAM banks attached to the FPGA
    sram_banks: int
    #: bytes per SRAM bank (16 MB total / 4 banks)
    sram_bank_bytes: int
    #: BRAM buffer inside the PR controller (8 x 18 Kb BRAMs ~ 16 KiB usable)
    icap_buffer_bytes: int
    #: measured transfer-of-control time (paper: ~10 us)
    control_time: float

    def __post_init__(self) -> None:
        for name in (
            "io_bandwidth",
            "link_raw_bandwidth",
            "selectmap_bandwidth",
            "icap_bandwidth",
            "jtag_bandwidth",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.sram_banks <= 0 or self.sram_bank_bytes <= 0:
            raise ValueError("SRAM geometry must be positive")


XD1_NODE = NodeParameters(
    io_bandwidth=1400 * MB,
    link_raw_bandwidth=1600 * MB,
    selectmap_bandwidth=66 * MB,
    icap_bandwidth=66 * MB,
    jtag_bandwidth=33e6 / 8,
    sram_banks=4,
    sram_bank_bytes=4 * 1024 * 1024,
    icap_buffer_bytes=16 * 1024,
    control_time=10 * US,
)


@dataclass(frozen=True)
class Table2Row:
    """One published row of the paper's Table 2."""

    layout: str
    bitstream_bytes: int
    estimated_time_s: float
    measured_time_s: float
    estimated_x_prtr: float
    measured_x_prtr: float


#: Table 2 exactly as published (times converted from msec to seconds).
PUBLISHED_TABLE2: dict[str, Table2Row] = {
    "full": Table2Row(
        layout="Full Configuration",
        bitstream_bytes=2_381_764,
        estimated_time_s=36.09 * MS,
        measured_time_s=1678.04 * MS,
        estimated_x_prtr=1.0,
        measured_x_prtr=1.0,
    ),
    "single_prr": Table2Row(
        layout="Single PRR",
        bitstream_bytes=887_784,
        estimated_time_s=13.45 * MS,
        measured_time_s=43.48 * MS,
        estimated_x_prtr=0.37,
        measured_x_prtr=0.026,
    ),
    "dual_prr": Table2Row(
        layout="Dual PRR",
        bitstream_bytes=404_168,
        estimated_time_s=6.12 * MS,
        measured_time_s=19.77 * MS,
        estimated_x_prtr=0.17,
        measured_x_prtr=0.012,
    ),
}
