"""Configuration-port models: SelectMap, JTAG and the raw ICAP.

Each port is a :class:`repro.sim.resources.BandwidthChannel` plus a pure
time model usable without a simulator.  Two overhead regimes matter for
Table 2:

* the **estimated** times are simply ``bytes / port_rate`` — the paper's
  "lower bound, best case scenario";
* the **measured** full-configuration time includes the Cray software API
  overhead (device reset, DONE polling, driver cost), modeled by
  :class:`VendorApiOverhead` and calibrated in
  :mod:`repro.analysis.calibration`.

The ICAP *controller* path (BRAM-buffered, host-fed) gets its own module,
:mod:`repro.hardware.icap_controller`, because its behaviour involves link
sharing and chunked pipelining.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator

from ..faults.errors import WriteAbort
from ..faults.injector import FaultInjector
from ..sim.engine import Delay, Simulator
from ..sim.resources import BandwidthChannel
from .bitstream import Bitstream
from .catalog import MS

__all__ = [
    "ConfigPort",
    "VendorApiOverhead",
    "selectmap_port",
    "jtag_port",
    "icap_raw_port",
    "CRAY_API_OVERHEAD",
]


@dataclass(frozen=True)
class VendorApiOverhead:
    """Fixed plus per-byte software overhead of a vendor configuration call.

    ``time = fixed + nbytes * per_byte`` is added on top of the raw wire
    time.  For the Cray XD1 the measured full configuration (1678.04 ms for
    a 36.09 ms wire transfer) implies the API dominates; calibration
    recovers the constants from Table 2.
    """

    fixed: float = 0.0
    per_byte: float = 0.0

    def __post_init__(self) -> None:
        if self.fixed < 0 or self.per_byte < 0:
            raise ValueError(f"overheads must be >= 0: {self!r}")

    def time(self, nbytes: float) -> float:
        return self.fixed + nbytes * self.per_byte


#: Calibrated Cray XD1 API overhead: the measured full configuration time
#: is 1678.04 ms against a ~36.09 ms wire time for 2,381,764 bytes.  We
#: attribute the difference to a per-byte software cost (bit-banging /
#: word-wise writes through the driver) — a fixed-only model would predict
#: the same overhead for tiny bitstreams, which contradicts how such APIs
#: behave.  per_byte = (measured - bytes / 66 MB/s) / bytes, so the model
#: closes on the published measurement exactly.
CRAY_API_OVERHEAD = VendorApiOverhead(
    fixed=0.0,
    per_byte=(1678.04 * MS - 2_381_764 / (66 * 1_000_000.0)) / 2_381_764,
)


class ConfigPort:
    """A configuration interface with a rate, an API overhead and checks.

    Parameters
    ----------
    supports_partial:
        Whether the port accepts partial bitstreams at all (JTAG and
        SelectMap do; the Cray API wrapper around SelectMap does *not*,
        because it validates bitstream size and the DONE pin — the exact
        blocker Section 4.1 of the paper describes).
    """

    def __init__(
        self,
        name: str,
        bandwidth: float,
        *,
        api_overhead: VendorApiOverhead | None = None,
        supports_partial: bool = True,
    ) -> None:
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive: {bandwidth}")
        self.name = name
        self.bandwidth = bandwidth
        self.api_overhead = api_overhead or VendorApiOverhead()
        self.supports_partial = supports_partial
        self._channel: BandwidthChannel | None = None
        self._injector: FaultInjector | None = None
        self.write_aborts = 0

    # -- pure time model -------------------------------------------------

    def wire_time(self, nbytes: float) -> float:
        """Raw transfer time (the Table 2 *estimated* column)."""
        if nbytes < 0:
            raise ValueError(f"negative size: {nbytes}")
        return nbytes / self.bandwidth

    def configure_time(self, bitstream: Bitstream) -> float:
        """Wire time plus API overhead (the *measured* model)."""
        self._check(bitstream)
        return self.wire_time(bitstream.nbytes) + self.api_overhead.time(
            bitstream.nbytes
        )

    def burst_power_w(self, model: Any) -> float:
        """Reconfiguration-burst draw (W) while this port streams.

        ``model`` is duck-typed (:class:`repro.power.model.PowerModel`
        shaped) so the hardware layer never imports :mod:`repro.power`;
        the lookup is by port name, and an unknown name raises rather
        than drawing zero.
        """
        return model.port_burst_w(self.name)

    def _check(self, bitstream: Bitstream) -> None:
        if bitstream.is_partial and not self.supports_partial:
            raise ValueError(
                f"port {self.name!r} rejects partial bitstreams "
                "(bitstream-size / DONE-signal checks in the vendor API)"
            )

    # -- DES integration -------------------------------------------------

    def bind(
        self, sim: Simulator, injector: FaultInjector | None = None
    ) -> "ConfigPort":
        """Attach the port to a simulator (creates the serializing channel).

        ``injector`` arms the port's write-abort fault process
        (``port_abort_rate``); without one, configuration never fails.
        """
        self._injector = injector
        self._channel = BandwidthChannel(
            sim, name=f"port:{self.name}", rate=self.bandwidth
        )
        return self

    @property
    def channel(self) -> BandwidthChannel:
        if self._channel is None:
            raise RuntimeError(f"port {self.name!r} is not bound to a simulator")
        return self._channel

    def configure(
        self, bitstream: Bitstream, owner: str
    ) -> Generator[Any, Any, float]:
        """DES process: run a configuration through the port.

        With an armed injector the write may abort mid-stream: the
        partial write's wire time is paid (those bytes moved), then
        :class:`~repro.faults.errors.WriteAbort` is raised for the
        caller's recovery policy to handle.
        """
        self._check(bitstream)
        api = self.api_overhead.time(bitstream.nbytes)
        if api > 0:
            yield Delay(api)
        if self._injector is not None and self._injector.port_aborted():
            self.write_aborts += 1
            frac = self._injector.abort_fraction()
            yield from self.channel.transfer(bitstream.nbytes * frac, owner)
            raise WriteAbort(
                f"port {self.name!r} aborted writing {bitstream.name!r} "
                f"at {frac:.0%}"
            )
        yield from self.channel.transfer(bitstream.nbytes, owner)
        return self.channel.sim.now


def selectmap_port(
    bandwidth: float,
    *,
    vendor_api: bool = True,
    api_overhead: VendorApiOverhead | None = None,
) -> ConfigPort:
    """The external parallel (SelectMap) port.

    With ``vendor_api=True`` the port is wrapped by the Cray configuration
    function: full bitstreams only, plus the calibrated software overhead.
    """
    return ConfigPort(
        "selectmap",
        bandwidth,
        api_overhead=(
            api_overhead if api_overhead is not None
            else (CRAY_API_OVERHEAD if vendor_api else VendorApiOverhead())
        ),
        supports_partial=not vendor_api,
    )


def jtag_port(bandwidth: float) -> ConfigPort:
    """The serial JTAG port (slow; supports partial bitstreams)."""
    return ConfigPort("jtag", bandwidth, supports_partial=True)


def icap_raw_port(bandwidth: float) -> ConfigPort:
    """The raw internal ICAP port (66 MB/s; partial-capable by design)."""
    return ConfigPort("icap", bandwidth, supports_partial=True)
