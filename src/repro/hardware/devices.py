"""Extended device catalog: the Virtex-II Pro family and successors.

The paper's Section 5 ties the PRTR payoff to "the current status of the
technology": the XC2VP50's slow SelectMap/ICAP (8 bit @ 66 MHz) and large
full bitstream make FRTR brutal and PRTR's ceiling high.  To study how
the bounds move with device size and configuration-port generation, we
catalog the Virtex-II Pro family plus Virtex-4/5 representatives (whose
ICAP widens to 32 bit @ 100 MHz = 400 MB/s).

Geometry and bitstream sizes are datasheet-approximate (the scaling
study cares about ratios and trends, and the XC2VP50 entry — the only
one the paper measures — is pinned exactly in
:mod:`repro.hardware.catalog`).
"""

from __future__ import annotations

from dataclasses import dataclass

from .catalog import MB, FpgaDevice, XC2VP50

__all__ = ["DeviceGeneration", "CatalogEntry", "DEVICES", "device_entry"]


@dataclass(frozen=True)
class DeviceGeneration:
    """Configuration-port characteristics of an FPGA family."""

    family: str
    #: external parallel configuration port throughput (bytes/s)
    selectmap_bandwidth: float
    #: internal ICAP raw throughput (bytes/s)
    icap_bandwidth: float

    def __post_init__(self) -> None:
        if self.selectmap_bandwidth <= 0 or self.icap_bandwidth <= 0:
            raise ValueError("port bandwidths must be positive")


#: Port generations: Virtex-II Pro is 8 bit @ 66 MHz on both ports;
#: Virtex-4/5 widen to 32 bit @ 100 MHz.
VIRTEX2PRO_PORTS = DeviceGeneration("virtex2pro", 66 * MB, 66 * MB)
VIRTEX4_PORTS = DeviceGeneration("virtex4", 400 * MB, 400 * MB)
VIRTEX5_PORTS = DeviceGeneration("virtex5", 400 * MB, 400 * MB)


@dataclass(frozen=True)
class CatalogEntry:
    """A device plus its family's configuration ports."""

    device: FpgaDevice
    ports: DeviceGeneration


def _v2p(
    name: str,
    slices: int,
    brams: int,
    clb_columns: int,
    clb_rows: int,
    full_bitstream_bytes: int,
    ppc: int,
) -> CatalogEntry:
    return CatalogEntry(
        device=FpgaDevice(
            name=name,
            luts=2 * slices,
            ffs=2 * slices,
            brams=brams,
            slices=slices,
            clb_columns=clb_columns,
            clb_rows=clb_rows,
            full_bitstream_bytes=full_bitstream_bytes,
            bitstream_overhead_bytes=1_312,
            ppc_cores=ppc,
        ),
        ports=VIRTEX2PRO_PORTS,
    )


DEVICES: dict[str, CatalogEntry] = {
    # -- Virtex-II Pro family (datasheet-approximate sizes) --------------
    "XC2VP20": _v2p("XC2VP20", 9_280, 88, 46, 56, 1_026_828, ppc=2),
    "XC2VP30": _v2p("XC2VP30", 13_696, 136, 46, 80, 1_448_740, ppc=2),
    "XC2VP50": CatalogEntry(device=XC2VP50, ports=VIRTEX2PRO_PORTS),
    "XC2VP70": _v2p("XC2VP70", 33_088, 328, 82, 104, 3_200_372, ppc=2),
    "XC2VP100": _v2p("XC2VP100", 44_096, 444, 94, 120, 4_206_560, ppc=2),
    # -- later generations: wider/faster configuration ports --------------
    "V4LX60": CatalogEntry(
        device=FpgaDevice(
            name="V4LX60",
            luts=53_248,
            ffs=53_248,
            brams=160,
            slices=26_624,
            clb_columns=52,
            clb_rows=128,
            full_bitstream_bytes=2_670_912,
            bitstream_overhead_bytes=1_312,
            ppc_cores=0,
        ),
        ports=VIRTEX4_PORTS,
    ),
    "V5LX110": CatalogEntry(
        device=FpgaDevice(
            name="V5LX110",
            luts=69_120,
            ffs=69_120,
            brams=128,
            slices=17_280,
            clb_columns=54,
            clb_rows=160,
            full_bitstream_bytes=3_889_792,
            bitstream_overhead_bytes=1_312,
            ppc_cores=0,
        ),
        ports=VIRTEX5_PORTS,
    ),
}


def device_entry(name: str) -> CatalogEntry:
    try:
        return DEVICES[name]
    except KeyError:
        raise KeyError(
            f"unknown device {name!r}; have {sorted(DEVICES)}"
        ) from None
