"""Failure-domain topology of one reconfigurable service node.

Chaos scenarios do not fail individual simulator objects — they fail
*domains*: a PRR slot, the blade that powers a group of slots, an ICAP
configuration port, or the interconnect tying the blades together.  A
fault injected into a domain takes down exactly that domain and every
domain beneath it (a blade power event kills the blade's PRRs *and* its
ICAP port), which is how correlated failures enter the model.

The topology is a static tree built once per service run:

.. code-block:: text

    interconnect
    ├── blade0
    │   ├── icap0          (the node's configuration port)
    │   ├── prr0
    │   └── prr1
    └── blade1
        ├── icap1
        ├── prr2
        └── prr3

The simulated node streams every partial bitstream through one physical
ICAP path, so any failed domain whose closure contains an ``icap`` or
``interconnect`` domain blocks *all* partial reconfiguration while it is
down; PRR-slot domains only take their own slot out of rotation.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DomainTopology", "FailureDomain"]

#: domain kinds in the fault tree
DOMAIN_KINDS = ("interconnect", "blade", "icap", "prr")


@dataclass(frozen=True)
class FailureDomain:
    """One node of the fault tree.

    Attributes
    ----------
    name:
        Topology-unique identifier (``"blade0"``, ``"prr3"``, ...).
    kind:
        One of :data:`DOMAIN_KINDS`.
    parent:
        Name of the enclosing domain; ``None`` only for the root.
    slots:
        PRR slot indices owned *directly* by this domain (non-empty only
        for ``prr`` domains; use
        :meth:`DomainTopology.slots_down` for the closure).
    """

    name: str
    kind: str
    parent: str | None = None
    slots: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("failure domain name must be non-empty")
        if self.kind not in DOMAIN_KINDS:
            raise ValueError(
                f"unknown domain kind {self.kind!r}; "
                f"expected one of {DOMAIN_KINDS}"
            )


class DomainTopology:
    """The static fault tree over one node's PRR slots and ICAP ports.

    Built via :meth:`build`; queried by the chaos runtime for the blast
    radius of one failed domain (:meth:`slots_down`,
    :meth:`blocks_config`).
    """

    def __init__(self, domains: dict[str, FailureDomain]) -> None:
        self.domains = dict(domains)
        roots = [d for d in self.domains.values() if d.parent is None]
        if len(roots) != 1:
            raise ValueError(
                f"topology needs exactly one root domain, got "
                f"{[d.name for d in roots]}"
            )
        self.root = roots[0].name
        self._children: dict[str, list[str]] = {n: [] for n in self.domains}
        for d in self.domains.values():
            if d.parent is not None:
                if d.parent not in self.domains:
                    raise ValueError(
                        f"domain {d.name!r} has unknown parent "
                        f"{d.parent!r}"
                    )
                self._children[d.parent].append(d.name)

    @classmethod
    def build(cls, n_slots: int, blades: int = 1) -> "DomainTopology":
        """The canonical tree: interconnect -> blades -> {icap, prrs}.

        ``n_slots`` PRR slots are split contiguously across ``blades``
        (earlier blades absorb the remainder); every blade also carries
        one ICAP-port domain.
        """
        if n_slots < 1:
            raise ValueError(f"need at least one PRR slot: {n_slots}")
        if not 1 <= blades <= n_slots:
            raise ValueError(
                f"blades must be in 1..{n_slots} (one slot minimum "
                f"per blade): {blades}"
            )
        domains = {
            "interconnect": FailureDomain("interconnect", "interconnect")
        }
        base, extra = divmod(n_slots, blades)
        slot = 0
        for b in range(blades):
            blade = f"blade{b}"
            domains[blade] = FailureDomain(blade, "blade", "interconnect")
            icap = f"icap{b}"
            domains[icap] = FailureDomain(icap, "icap", blade)
            for _ in range(base + (1 if b < extra else 0)):
                name = f"prr{slot}"
                domains[name] = FailureDomain(
                    name, "prr", blade, slots=(slot,)
                )
                slot += 1
        return cls(domains)

    def domain(self, name: str) -> FailureDomain:
        """Look up one domain; unknown names get an actionable error."""
        try:
            return self.domains[name]
        except KeyError:
            raise KeyError(
                f"unknown failure domain {name!r}; topology has "
                f"{sorted(self.domains)}"
            ) from None

    def closure(self, name: str) -> list[str]:
        """``name`` plus every descendant, in deterministic DFS order."""
        self.domain(name)
        out: list[str] = []
        stack = [name]
        while stack:
            current = stack.pop()
            out.append(current)
            stack.extend(reversed(self._children[current]))
        return out

    def slots_down(self, name: str) -> tuple[int, ...]:
        """All PRR slots lost when ``name`` fails (sorted closure)."""
        slots: set[int] = set()
        for member in self.closure(name):
            slots.update(self.domains[member].slots)
        return tuple(sorted(slots))

    def blocks_config(self, name: str) -> bool:
        """Whether failing ``name`` stalls the partial-bitstream path.

        True when the closure contains an ``icap`` or ``interconnect``
        domain — the node has one physical configuration path, so any
        ICAP-class outage blocks every partial reconfiguration.
        """
        return any(
            self.domains[member].kind in ("icap", "interconnect")
            for member in self.closure(name)
        )
