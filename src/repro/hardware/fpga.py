"""FPGA fabric model: resource vectors, regions and placement accounting.

The model captures what matters for the paper's experiments:

* a device exposes a finite resource vector (LUTs, FFs, BRAMs);
* the floorplan splits the CLB column range into a *static region* and one
  or more *partially reconfigurable regions* (PRRs);
* a hardware module fits in a region iff its resource demand fits in the
  region's share of the fabric, and the region spans whole columns
  (Virtex-II frames are full-height, so reconfiguration is column-wise).
"""

from __future__ import annotations

from dataclasses import dataclass

from .catalog import FpgaDevice

__all__ = ["Resources", "Region", "Fpga", "PlacementError"]


class PlacementError(ValueError):
    """A module does not fit in a region, or regions overlap."""


@dataclass(frozen=True)
class Resources:
    """A fabric resource demand or capacity vector."""

    luts: int = 0
    ffs: int = 0
    brams: int = 0

    def __post_init__(self) -> None:
        if min(self.luts, self.ffs, self.brams) < 0:
            raise ValueError(f"negative resources: {self}")

    def __add__(self, other: "Resources") -> "Resources":
        return Resources(
            self.luts + other.luts,
            self.ffs + other.ffs,
            self.brams + other.brams,
        )

    def __sub__(self, other: "Resources") -> "Resources":
        return Resources(
            self.luts - other.luts,
            self.ffs - other.ffs,
            self.brams - other.brams,
        )

    def fits_in(self, capacity: "Resources") -> bool:
        return (
            self.luts <= capacity.luts
            and self.ffs <= capacity.ffs
            and self.brams <= capacity.brams
        )

    def scale(self, factor: float) -> "Resources":
        """Proportionally scaled capacity (used for column-share capacity)."""
        if factor < 0:
            raise ValueError(f"negative scale factor: {factor}")
        return Resources(
            int(self.luts * factor),
            int(self.ffs * factor),
            int(self.brams * factor),
        )

    @property
    def is_zero(self) -> bool:
        return self.luts == 0 and self.ffs == 0 and self.brams == 0


@dataclass(frozen=True)
class Region:
    """A full-height rectangular column span of the fabric.

    ``col_start`` is inclusive, ``col_end`` exclusive — a region spans
    ``col_end - col_start`` whole CLB columns, matching the Virtex-II
    constraint that a configuration frame covers a whole column.
    """

    name: str
    col_start: int
    col_end: int
    reconfigurable: bool

    def __post_init__(self) -> None:
        if self.col_start < 0 or self.col_end <= self.col_start:
            raise ValueError(f"bad column span: {self!r}")

    @property
    def columns(self) -> int:
        return self.col_end - self.col_start

    def overlaps(self, other: "Region") -> bool:
        return self.col_start < other.col_end and other.col_start < self.col_end


class Fpga:
    """A device instance with a floorplan and per-region capacity tracking."""

    def __init__(self, device: FpgaDevice) -> None:
        self.device = device
        self._regions: dict[str, Region] = {}
        self._placed: dict[str, dict[str, Resources]] = {}

    # -- floorplanning ---------------------------------------------------

    def add_region(self, region: Region) -> Region:
        if region.col_end > self.device.clb_columns:
            raise PlacementError(
                f"region {region.name!r} exceeds device width "
                f"({region.col_end} > {self.device.clb_columns})"
            )
        if region.name in self._regions:
            raise PlacementError(f"duplicate region name {region.name!r}")
        for existing in self._regions.values():
            if region.overlaps(existing):
                raise PlacementError(
                    f"region {region.name!r} overlaps {existing.name!r}"
                )
        self._regions[region.name] = region
        self._placed[region.name] = {}
        return region

    @property
    def regions(self) -> dict[str, Region]:
        return dict(self._regions)

    def region(self, name: str) -> Region:
        try:
            return self._regions[name]
        except KeyError:
            raise PlacementError(f"unknown region {name!r}") from None

    def region_capacity(self, name: str) -> Resources:
        """Column-proportional share of the device resources.

        The two PPC hard cores consume fabric area but no LUT/FF/BRAM
        totals; the uniform-share model is the standard first-order
        approximation for column-wise floorplans.
        """
        region = self.region(name)
        share = region.columns / self.device.clb_columns
        return Resources(
            self.device.luts, self.device.ffs, self.device.brams
        ).scale(share)

    # -- placement -------------------------------------------------------

    def place(self, region_name: str, module: str, demand: Resources) -> None:
        """Place (or replace after :meth:`unplace`) a module in a region."""
        region = self.region(region_name)
        placed = self._placed[region_name]
        if module in placed:
            raise PlacementError(
                f"module {module!r} already placed in {region_name!r}"
            )
        used = self.region_used(region_name) + demand
        if not used.fits_in(self.region_capacity(region_name)):
            raise PlacementError(
                f"module {module!r} ({demand}) does not fit in region "
                f"{region_name!r} (capacity {self.region_capacity(region_name)}, "
                f"already used {self.region_used(region_name)})"
            )
        if not region.reconfigurable and placed:
            # The static region hosts many blocks; this is fine.  The check
            # below applies to PRRs, which hold exactly one module at a time
            # under the module-based PR flow.
            pass
        if region.reconfigurable and placed:
            raise PlacementError(
                f"PRR {region_name!r} already hosts {next(iter(placed))!r}; "
                "unplace it first (module-based PR swaps whole regions)"
            )
        placed[module] = demand

    def unplace(self, region_name: str, module: str) -> Resources:
        placed = self._placed[self.region(region_name).name]
        try:
            return placed.pop(module)
        except KeyError:
            raise PlacementError(
                f"module {module!r} not placed in {region_name!r}"
            ) from None

    def region_used(self, name: str) -> Resources:
        total = Resources()
        for demand in self._placed[self.region(name).name].values():
            total = total + demand
        return total

    def modules_in(self, name: str) -> list[str]:
        return list(self._placed[self.region(name).name])

    def occupant(self, name: str) -> str | None:
        """The single module hosted by a PRR, or ``None`` if empty."""
        mods = self.modules_in(name)
        if len(mods) > 1:
            raise PlacementError(
                f"region {name!r} hosts {len(mods)} modules; not a PRR"
            )
        return mods[0] if mods else None

    # -- reporting -------------------------------------------------------

    def utilization_row(self, module: str, demand: Resources) -> dict[str, object]:
        """A Table 1-style row: counts plus floor percentages."""
        dev = self.device
        return {
            "module": module,
            "luts": demand.luts,
            "luts_pct": dev.utilization_pct(demand.luts, dev.luts),
            "ffs": demand.ffs,
            "ffs_pct": dev.utilization_pct(demand.ffs, dev.ffs),
            "brams": demand.brams,
            "brams_pct": dev.utilization_pct(demand.brams, dev.brams),
        }
