"""The BRAM-buffered ICAP partial-reconfiguration controller (paper Fig. 7).

The Cray XD1 vendor API refuses partial bitstreams, so the paper routes
them through the FPGA's Internal Configuration Access Port (ICAP) behind a
custom control circuit:

* the host streams the partial bitstream over the (dual-channel,
  1.6 GB/s) link into a small BRAM buffer on the fabric;
* a state machine drains the buffer into the ICAP (8 bit @ 66 MHz);
* buffering lets the link transfer of chunk *i+1* overlap the ICAP write
  of chunk *i* (double buffering).

The controller is *slower than the dedicated external port*: each buffered
chunk pays a handshake/state-machine overhead on top of the raw ICAP wire
time.  Calibrating the per-chunk handshake against the published single-PRR
measurement (43.48 ms for 887,784 bytes) predicts the dual-PRR measurement
(19.77 ms for 404,168 bytes) to within 0.05% — strong evidence this is the
mechanism behind the paper's numbers.  See
:func:`repro.analysis.calibration.fit_icap_handshake`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Generator

from ..sim.engine import AllOf, Delay, Simulator
from ..sim.resources import BandwidthChannel, MutexResource
from .bitstream import Bitstream
from .catalog import MB, MS

__all__ = ["IcapController", "IcapTimings", "DEFAULT_ICAP_TIMINGS"]


@dataclass(frozen=True)
class IcapTimings:
    """Timing parameters of the ICAP controller datapath."""

    #: raw ICAP wire throughput (bytes/s)
    icap_bandwidth: float
    #: BRAM staging buffer size (bytes per chunk)
    chunk_bytes: int
    #: state-machine handshake overhead per chunk (seconds)
    chunk_handshake: float

    def __post_init__(self) -> None:
        if self.icap_bandwidth <= 0:
            raise ValueError("icap_bandwidth must be positive")
        if self.chunk_bytes <= 0:
            raise ValueError("chunk_bytes must be positive")
        if self.chunk_handshake < 0:
            raise ValueError("chunk_handshake must be >= 0")

    def n_chunks(self, nbytes: int) -> int:
        return max(1, math.ceil(nbytes / self.chunk_bytes))

    def drain_time(self, nbytes: int) -> float:
        """BRAM->ICAP time for a whole bitstream (handshake + wire)."""
        return (
            self.n_chunks(nbytes) * self.chunk_handshake
            + nbytes / self.icap_bandwidth
        )

    def effective_bandwidth(self, nbytes: int) -> float:
        """End-to-end controller throughput for an ``nbytes`` image."""
        return nbytes / self.drain_time(nbytes)


def _calibrated_handshake() -> float:
    """Per-chunk handshake solved from the published single-PRR row.

    43.48 ms total = first-chunk link fill (negligible) +
    n_chunks * handshake + bytes / 66 MB/s.
    """
    nbytes = 887_784
    measured = 43.48 * MS
    chunk = 16 * 1024
    n = max(1, math.ceil(nbytes / chunk))
    wire = nbytes / (66 * MB)
    first_fill = chunk / (1600 * MB)
    return (measured - wire - first_fill) / n


DEFAULT_ICAP_TIMINGS = IcapTimings(
    icap_bandwidth=66 * MB,
    chunk_bytes=16 * 1024,
    chunk_handshake=_calibrated_handshake(),
)


class IcapController:
    """DES model of the Fig. 7 control circuit.

    The controller owns the ICAP mutex (one reconfiguration at a time) and
    shares the host->FPGA *input* channel with data transfers — the
    architectural constraint Section 4.1 highlights: partial
    reconfiguration can only start once input data transfer is done, and
    overlaps computation or output transfer instead.
    """

    def __init__(
        self,
        sim: Simulator,
        in_link: BandwidthChannel,
        timings: IcapTimings = DEFAULT_ICAP_TIMINGS,
    ) -> None:
        self.sim = sim
        self.in_link = in_link
        self.timings = timings
        self.icap_mutex = MutexResource(sim, name="icap")
        self.configurations = 0
        self.bytes_configured = 0

    # -- pure time model (no queueing) ------------------------------------

    def configure_time(self, bitstream: Bitstream) -> float:
        """Unloaded end-to-end time: first chunk fill + pipelined drain."""
        t = self.timings
        first = min(t.chunk_bytes, bitstream.nbytes)
        return self.in_link.transfer_time(first) + t.drain_time(bitstream.nbytes)

    # -- DES process -------------------------------------------------------

    def configure(
        self, bitstream: Bitstream, owner: str
    ) -> Generator[Any, Any, float]:
        """Stream a partial bitstream through the controller.

        Double-buffered: while the state machine drains chunk ``i`` into
        the ICAP, the link prefetches chunk ``i+1`` into the second BRAM
        bank.  Both the link channel and the ICAP mutex serialize against
        other users, so contention with data transfers emerges naturally.
        """
        if not bitstream.is_partial:
            raise ValueError(
                "the ICAP controller path is for partial bitstreams; "
                "full configuration goes through the vendor SelectMap API"
            )
        t = self.timings
        sizes = self._chunk_sizes(bitstream.nbytes)

        yield from self.icap_mutex.acquire(owner)
        try:
            # Fill the first BRAM bank.
            yield from self.in_link.transfer(sizes[0], f"{owner}:bs0")
            for i, size in enumerate(sizes):
                drain = t.chunk_handshake + size / t.icap_bandwidth
                if i + 1 < len(sizes):
                    nxt = self.sim.spawn(
                        self.in_link.transfer(sizes[i + 1], f"{owner}:bs{i+1}"),
                        name=f"icap-prefetch-{i+1}",
                    )
                    yield Delay(drain)
                    yield AllOf([nxt.done])
                else:
                    yield Delay(drain)
            self.configurations += 1
            self.bytes_configured += bitstream.nbytes
        finally:
            self.icap_mutex.release(owner)
        return self.sim.now

    def _chunk_sizes(self, nbytes: int) -> list[int]:
        chunk = self.timings.chunk_bytes
        full, rem = divmod(nbytes, chunk)
        sizes = [chunk] * full
        if rem:
            sizes.append(rem)
        if not sizes:
            sizes = [nbytes]
        return sizes
