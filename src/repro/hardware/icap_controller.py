"""The BRAM-buffered ICAP partial-reconfiguration controller (paper Fig. 7).

The Cray XD1 vendor API refuses partial bitstreams, so the paper routes
them through the FPGA's Internal Configuration Access Port (ICAP) behind a
custom control circuit:

* the host streams the partial bitstream over the (dual-channel,
  1.6 GB/s) link into a small BRAM buffer on the fabric;
* a state machine drains the buffer into the ICAP (8 bit @ 66 MHz);
* buffering lets the link transfer of chunk *i+1* overlap the ICAP write
  of chunk *i* (double buffering).

The controller is *slower than the dedicated external port*: each buffered
chunk pays a handshake/state-machine overhead on top of the raw ICAP wire
time.  Calibrating the per-chunk handshake against the published single-PRR
measurement (43.48 ms for 887,784 bytes) predicts the dual-PRR measurement
(19.77 ms for 404,168 bytes) to within 0.05% — strong evidence this is the
mechanism behind the paper's numbers.  See
:func:`repro.analysis.calibration.fit_icap_handshake`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Generator

from ..faults.detection import CrcChecker
from ..faults.errors import TransferCorruption, WriteAbort
from ..faults.injector import FaultInjector
from ..obs import metrics as obsm
from ..sim.engine import AllOf, Delay, Simulator
from ..sim.resources import BandwidthChannel, MutexResource
from .bitstream import Bitstream
from .catalog import MB, MS

__all__ = ["IcapController", "IcapTimings", "DEFAULT_ICAP_TIMINGS"]


@dataclass(frozen=True)
class IcapTimings:
    """Timing parameters of the ICAP controller datapath."""

    #: raw ICAP wire throughput (bytes/s)
    icap_bandwidth: float
    #: BRAM staging buffer size (bytes per chunk)
    chunk_bytes: int
    #: state-machine handshake overhead per chunk (seconds)
    chunk_handshake: float

    def __post_init__(self) -> None:
        if self.icap_bandwidth <= 0:
            raise ValueError("icap_bandwidth must be positive")
        if self.chunk_bytes <= 0:
            raise ValueError("chunk_bytes must be positive")
        if self.chunk_handshake < 0:
            raise ValueError("chunk_handshake must be >= 0")

    def n_chunks(self, nbytes: int) -> int:
        return max(1, math.ceil(nbytes / self.chunk_bytes))

    def drain_time(self, nbytes: int) -> float:
        """BRAM->ICAP time for a whole bitstream (handshake + wire)."""
        return (
            self.n_chunks(nbytes) * self.chunk_handshake
            + nbytes / self.icap_bandwidth
        )

    def effective_bandwidth(self, nbytes: int) -> float:
        """End-to-end controller throughput for an ``nbytes`` image."""
        return nbytes / self.drain_time(nbytes)


def _calibrated_handshake() -> float:
    """Per-chunk handshake solved from the published single-PRR row.

    43.48 ms total = first-chunk link fill (negligible) +
    n_chunks * handshake + bytes / 66 MB/s.
    """
    nbytes = 887_784
    measured = 43.48 * MS
    chunk = 16 * 1024
    n = max(1, math.ceil(nbytes / chunk))
    wire = nbytes / (66 * MB)
    first_fill = chunk / (1600 * MB)
    return (measured - wire - first_fill) / n


DEFAULT_ICAP_TIMINGS = IcapTimings(
    icap_bandwidth=66 * MB,
    chunk_bytes=16 * 1024,
    chunk_handshake=_calibrated_handshake(),
)


class IcapController:
    """DES model of the Fig. 7 control circuit.

    The controller owns the ICAP mutex (one reconfiguration at a time) and
    shares the host->FPGA *input* channel with data transfers — the
    architectural constraint Section 4.1 highlights: partial
    reconfiguration can only start once input data transfer is done, and
    overlaps computation or output transfer instead.
    """

    def __init__(
        self,
        sim: Simulator,
        in_link: BandwidthChannel,
        timings: IcapTimings = DEFAULT_ICAP_TIMINGS,
        *,
        injector: FaultInjector | None = None,
        crc: CrcChecker | None = None,
        max_chunk_retries: int = 3,
    ) -> None:
        if max_chunk_retries < 0:
            raise ValueError("max_chunk_retries must be >= 0")
        self.sim = sim
        self.in_link = in_link
        self.timings = timings
        #: fault oracle for chunk-drain write aborts; link-transfer
        #: corruption is drawn by ``in_link``'s own injector hook
        self.injector = injector
        #: per-chunk CRC verification model (free + full-coverage default)
        self.crc = crc or CrcChecker()
        #: retransmits tolerated per corrupted chunk before the whole
        #: configuration attempt fails with :class:`TransferCorruption`
        self.max_chunk_retries = max_chunk_retries
        self.icap_mutex = MutexResource(sim, name="icap")
        self.configurations = 0
        self.bytes_configured = 0
        self.chunk_retransmits = 0
        self.write_aborts = 0
        self.silent_corruptions = 0

    # -- pure time model (no queueing) ------------------------------------

    def configure_time(self, bitstream: Bitstream) -> float:
        """Unloaded end-to-end time: first chunk fill + pipelined drain."""
        t = self.timings
        first = min(t.chunk_bytes, bitstream.nbytes)
        return self.in_link.transfer_time(first) + t.drain_time(bitstream.nbytes)

    # -- DES process -------------------------------------------------------

    def configure(
        self, bitstream: Bitstream, owner: str
    ) -> Generator[Any, Any, float]:
        """Stream a partial bitstream through the controller.

        Double-buffered: while the state machine drains chunk ``i`` into
        the ICAP, the link prefetches chunk ``i+1`` into the second BRAM
        bank.  Both the link channel and the ICAP mutex serialize against
        other users, so contention with data transfers emerges naturally.

        Fault semantics (inert without an injector): each chunk arriving
        over the link is CRC-checked and retransmitted up to
        ``max_chunk_retries`` times (:class:`TransferCorruption` when the
        budget runs out); the state machine may abort mid-drain
        (:class:`WriteAbort`).  Either fault aborts the whole attempt with
        the ICAP mutex cleanly released, leaving recovery to the caller.
        """
        if not bitstream.is_partial:
            raise ValueError(
                "the ICAP controller path is for partial bitstreams; "
                "full configuration goes through the vendor SelectMap API"
            )
        t = self.timings
        sizes = self._chunk_sizes(bitstream.nbytes)

        yield from self.icap_mutex.acquire(owner)
        held_at = self.sim.now
        try:
            # Fill the first BRAM bank.
            yield from self._fill_chunk(bitstream, 0, sizes[0], owner)
            for i, size in enumerate(sizes):
                drain = t.chunk_handshake + size / t.icap_bandwidth
                if self.injector is not None and self.injector.chunk_aborted():
                    # The state machine died partway through the write;
                    # pay the wasted fraction of the drain, then fail.
                    self.write_aborts += 1
                    obsm.counter("repro_icap_write_aborts_total").inc()
                    yield Delay(self.injector.abort_fraction() * drain)
                    raise WriteAbort(
                        f"ICAP write abort on chunk {i} of {bitstream.name!r}"
                    )
                if i + 1 < len(sizes):
                    arrived: dict[str, bool] = {}

                    def prefetch(
                        idx: int = i + 1, nb: int = sizes[i + 1]
                    ) -> Generator[Any, Any, None]:
                        _, ok = yield from self.in_link.transfer_ok(
                            nb, f"{owner}:bs{idx}"
                        )
                        arrived["ok"] = ok

                    nxt = self.sim.spawn(
                        prefetch(), name=f"icap-prefetch-{i+1}"
                    )
                    yield Delay(drain)
                    yield AllOf([nxt.done])
                    if not arrived.get("ok", True):
                        yield from self._retransmit(
                            bitstream, i + 1, sizes[i + 1], owner
                        )
                else:
                    yield Delay(drain)
            self.configurations += 1
            self.bytes_configured += bitstream.nbytes
            obsm.counter("repro_icap_configurations_total").inc()
            obsm.counter("repro_icap_bytes_total").inc(bitstream.nbytes)
        finally:
            # Busy time covers failed attempts too: the mutex was held
            # either way, which is what occupancy reports care about.
            obsm.counter("repro_icap_busy_seconds_total").inc(
                self.sim.now - held_at
            )
            self.icap_mutex.release(owner)
        return self.sim.now

    def _fill_chunk(
        self, bitstream: Bitstream, idx: int, nbytes: int, owner: str
    ) -> Generator[Any, Any, None]:
        """Stream chunk ``idx`` into a BRAM bank, retransmitting on CRC fail."""
        _, ok = yield from self.in_link.transfer_ok(nbytes, f"{owner}:bs{idx}")
        if not ok:
            yield from self._retransmit(bitstream, idx, nbytes, owner)

    def _retransmit(
        self, bitstream: Bitstream, idx: int, nbytes: int, owner: str
    ) -> Generator[Any, Any, None]:
        """Handle a corrupted chunk: CRC verdict, then bounded retransmits.

        The steady-state CRC is pipelined into the drain (free); the
        checker's ``check_time`` models the *re-verification* of each
        retransmitted chunk.  A checker with coverage < 1 may miss, in
        which case the corruption goes through silently (counted).
        """
        injector = self.injector or getattr(self.in_link, "injector", None)
        if not self.crc.detects(injector):
            self.silent_corruptions += 1
            return
        for _attempt in range(self.max_chunk_retries):
            self.chunk_retransmits += 1
            obsm.counter("repro_icap_chunk_retransmits_total").inc()
            check = self.crc.check_time(nbytes)
            if check:
                yield Delay(check)
            _, ok = yield from self.in_link.transfer_ok(
                nbytes, f"{owner}:bs{idx}:rt"
            )
            if ok:
                return
            if not self.crc.detects(injector):
                self.silent_corruptions += 1
                return
        raise TransferCorruption(
            f"chunk {idx} of {bitstream.name!r} failed CRC after "
            f"{self.max_chunk_retries} retransmits"
        )

    def _chunk_sizes(self, nbytes: int) -> list[int]:
        chunk = self.timings.chunk_bytes
        full, rem = divmod(nbytes, chunk)
        sizes = [chunk] * full
        if rem:
            sizes.append(rem)
        if not sizes:
            sizes = [nbytes]
        return sizes
