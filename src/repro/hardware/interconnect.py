"""Host<->FPGA interconnect: the dual-channel RapidArray/HyperTransport link.

The Cray XD1 exposes two independent channels (one per direction), which is
why the paper can overlap partial reconfiguration (carried over the *input*
channel) with either task computation or the *output* data transfer — but
never with the input data transfer of the same task.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.engine import Simulator
from ..sim.resources import BandwidthChannel

__all__ = ["DualChannelLink"]


@dataclass
class DualChannelLink:
    """Two independent byte channels: ``inbound`` (host->FPGA), ``outbound``.

    Parameters
    ----------
    io_bandwidth:
        Usable payload bandwidth per direction (the paper's 1400 MB/s).
    raw_bandwidth:
        Raw channel rate used for configuration streaming into the BRAM
        buffer (the paper's 1.6 GB/s HyperTransport figure).  Exposed as
        ``config_rate`` on the inbound channel model; payload transfers use
        ``io_bandwidth``.
    """

    sim: Simulator
    io_bandwidth: float
    raw_bandwidth: float

    def __post_init__(self) -> None:
        if self.io_bandwidth <= 0 or self.raw_bandwidth <= 0:
            raise ValueError("bandwidths must be positive")
        if self.io_bandwidth > self.raw_bandwidth:
            raise ValueError(
                "usable I/O bandwidth cannot exceed the raw channel rate"
            )
        self.inbound = BandwidthChannel(
            self.sim, name="link.in", rate=self.io_bandwidth
        )
        self.outbound = BandwidthChannel(
            self.sim, name="link.out", rate=self.io_bandwidth
        )
        #: configuration streaming shares the *inbound* wire; we model it on
        #: the same serializing channel so contention with data-in emerges,
        #: but at the raw rate (config writes bypass the payload protocol).
        self.config_stream = self.inbound

    def data_in_time(self, nbytes: float) -> float:
        return self.inbound.transfer_time(nbytes)

    def data_out_time(self, nbytes: float) -> float:
        return self.outbound.transfer_time(nbytes)

    def assert_consistent(self) -> None:
        self.inbound.assert_no_overlap()
        self.outbound.assert_no_overlap()
