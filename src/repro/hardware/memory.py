"""On-board memory: QDR-II SRAM banks and the PRR interface FIFOs.

Section 4.2 of the paper: each XD1 FPGA is attached to four SRAM banks; in
the dual-PRR layout two banks are assigned to each region; FIFOs sit
between each bank and its PRR to decouple bus-macro placement from the
hardware-function interface and to guarantee data availability.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..sim.engine import Simulator
from ..sim.resources import MutexResource

__all__ = ["SramBank", "Fifo", "MemorySystem"]


@dataclass
class SramBank:
    """One QDR-II SRAM bank with capacity accounting."""

    name: str
    capacity_bytes: int
    used_bytes: int = 0

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError("bank capacity must be positive")
        if not 0 <= self.used_bytes <= self.capacity_bytes:
            raise ValueError("used_bytes out of range")

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self.used_bytes

    def allocate(self, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError("cannot allocate a negative size")
        if nbytes > self.free_bytes:
            raise MemoryError(
                f"bank {self.name!r}: {nbytes} B requested, "
                f"{self.free_bytes} B free"
            )
        self.used_bytes += nbytes

    def free(self, nbytes: int) -> None:
        if nbytes < 0 or nbytes > self.used_bytes:
            raise ValueError(
                f"bank {self.name!r}: cannot free {nbytes} of "
                f"{self.used_bytes} used"
            )
        self.used_bytes -= nbytes


class Fifo:
    """A depth-bounded FIFO between an SRAM bank and a PRR.

    Only occupancy semantics are modeled (the timing effect of the FIFOs in
    the paper is to *decouple* interfaces; they add no steady-state latency
    at matched rates).  Occupancy violations indicate an executor bug.
    """

    def __init__(self, name: str, depth_words: int) -> None:
        if depth_words <= 0:
            raise ValueError("FIFO depth must be positive")
        self.name = name
        self.depth_words = depth_words
        self.occupancy = 0
        self.max_occupancy_seen = 0
        self.pushes = 0
        self.pops = 0

    @property
    def full(self) -> bool:
        return self.occupancy >= self.depth_words

    @property
    def empty(self) -> bool:
        return self.occupancy == 0

    def push(self, words: int = 1) -> None:
        if words < 0:
            raise ValueError("words must be >= 0")
        if self.occupancy + words > self.depth_words:
            raise OverflowError(
                f"FIFO {self.name!r} overflow: "
                f"{self.occupancy}+{words} > {self.depth_words}"
            )
        self.occupancy += words
        self.pushes += words
        self.max_occupancy_seen = max(self.max_occupancy_seen, self.occupancy)

    def pop(self, words: int = 1) -> None:
        if words < 0:
            raise ValueError("words must be >= 0")
        if words > self.occupancy:
            raise BufferError(
                f"FIFO {self.name!r} underflow: pop {words} of {self.occupancy}"
            )
        self.occupancy -= words
        self.pops += words


@dataclass
class MemorySystem:
    """The bank set of one node plus bank->region assignment."""

    sim: Simulator
    n_banks: int
    bank_bytes: int
    banks: list[SramBank] = field(init=False)
    bank_mutexes: list[MutexResource] = field(init=False)
    _assignment: dict[str, list[int]] = field(init=False, default_factory=dict)

    def __post_init__(self) -> None:
        if self.n_banks <= 0:
            raise ValueError("need at least one bank")
        self.banks = [
            SramBank(name=f"bank{i}", capacity_bytes=self.bank_bytes)
            for i in range(self.n_banks)
        ]
        self.bank_mutexes = [
            MutexResource(self.sim, name=f"bank{i}") for i in range(self.n_banks)
        ]

    def assign(self, region: str, bank_indices: list[int]) -> None:
        """Dedicate banks to a region (dual-PRR layout: 2 banks per PRR)."""
        for idx in bank_indices:
            if not 0 <= idx < self.n_banks:
                raise IndexError(f"no bank {idx}")
            for other, owned in self._assignment.items():
                if idx in owned and other != region:
                    raise ValueError(
                        f"bank {idx} already assigned to region {other!r}"
                    )
        self._assignment[region] = list(bank_indices)

    def banks_of(self, region: str) -> list[SramBank]:
        try:
            return [self.banks[i] for i in self._assignment[region]]
        except KeyError:
            raise KeyError(f"region {region!r} has no assigned banks") from None

    def region_capacity(self, region: str) -> int:
        return sum(b.capacity_bytes for b in self.banks_of(region))
