"""The assembled HPRC node: one Cray XD1 blade's acceleration subsystem.

:class:`XD1Node` wires together everything Section 4 of the paper
describes — the FPGA with its floorplan, the dual-channel link, the SRAM
banks with their per-PRR assignment and FIFOs, the vendor (SelectMap)
configuration path for full bitstreams, and the ICAP controller path for
partial bitstreams — on top of one shared :class:`repro.sim.Simulator`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..faults.detection import CrcChecker
from ..faults.injector import FaultInjector
from ..sim.engine import Simulator
from .bitstream import Bitstream, full_bitstream
from .catalog import XD1_NODE, FpgaDevice, NodeParameters
from .config_port import (
    ConfigPort,
    VendorApiOverhead,
    icap_raw_port,
    jtag_port,
    selectmap_port,
)
from .fpga import Fpga
from .icap_controller import DEFAULT_ICAP_TIMINGS, IcapController, IcapTimings
from .interconnect import DualChannelLink
from .memory import Fifo, MemorySystem
from .prr import Floorplan, dual_prr_floorplan

__all__ = ["XD1Node"]


@dataclass
class XD1Node:
    """One blade's acceleration subsystem, ready for executor use.

    Parameters
    ----------
    sim:
        The simulator that owns all the node's resources.
    floorplan:
        Any :class:`repro.hardware.prr.Floorplan`; defaults to the paper's
        dual-PRR layout.
    params:
        Bandwidth/latency parameters; defaults to the published XD1 values.
    vendor_api:
        When true (default), full configuration goes through the Cray API
        with its calibrated software overhead and partial bitstreams are
        rejected on the external port — forcing the ICAP path, exactly as
        on the real machine.
    fault_injector:
        Optional :class:`repro.faults.FaultInjector` armed on the whole
        configuration datapath: link transfers into the BRAM buffer, the
        ICAP controller's chunk drains, and the vendor port's full-device
        writes.  ``None`` (default) keeps every path fault-free and the
        node bit-identical to the pre-fault baseline.
    crc:
        Per-chunk CRC checker for the ICAP controller (cost/coverage);
        defaults to a free, full-coverage check.
    """

    sim: Simulator
    floorplan: Floorplan | None = None
    params: NodeParameters = XD1_NODE
    vendor_api: bool = True
    icap_timings: IcapTimings = DEFAULT_ICAP_TIMINGS
    api_overhead: VendorApiOverhead | None = None
    fault_injector: FaultInjector | None = None
    crc: CrcChecker | None = None

    def __post_init__(self) -> None:
        if self.floorplan is None:
            self.floorplan = dual_prr_floorplan()
        self.device: FpgaDevice = self.floorplan.device
        self.fpga: Fpga = self.floorplan.build()
        self.link = DualChannelLink(
            self.sim,
            io_bandwidth=self.params.io_bandwidth,
            raw_bandwidth=self.params.link_raw_bandwidth,
        )
        # Arm the inbound (configuration-carrying) channel: bitstream
        # transfers consult the injector via transfer_ok; plain data
        # transfers are unaffected.
        self.link.config_stream.injector = self.fault_injector
        self.selectmap: ConfigPort = selectmap_port(
            self.params.selectmap_bandwidth,
            vendor_api=self.vendor_api,
            api_overhead=self.api_overhead,
        ).bind(self.sim, injector=self.fault_injector)
        self.jtag: ConfigPort = jtag_port(self.params.jtag_bandwidth).bind(
            self.sim
        )
        self.icap_raw: ConfigPort = icap_raw_port(
            self.params.icap_bandwidth
        ).bind(self.sim)
        self.icap = IcapController(
            self.sim,
            in_link=self.link.config_stream,
            timings=self.icap_timings,
            injector=self.fault_injector,
            crc=self.crc,
        )
        self.memory = MemorySystem(
            self.sim,
            n_banks=self.params.sram_banks,
            bank_bytes=self.params.sram_bank_bytes,
        )
        self.fifos: dict[str, list[Fifo]] = {}
        self._assign_banks()
        self.full_image: Bitstream = full_bitstream(self.device)

    # -- construction helpers ---------------------------------------------

    def _assign_banks(self) -> None:
        """Distribute SRAM banks across PRRs as in Section 4.2.

        Single PRR: all four banks.  Dual PRR: two banks each.  For the
        parametric layouts banks are dealt round-robin; a PRR may end up
        with zero banks if there are more PRRs than banks (legal — such a
        region streams directly over the link).
        """
        prrs = self.floorplan.prr_names()
        if not prrs:
            return
        per_region: dict[str, list[int]] = {name: [] for name in prrs}
        for bank_idx in range(self.params.sram_banks):
            per_region[prrs[bank_idx % len(prrs)]].append(bank_idx)
        for name, banks in per_region.items():
            if banks:
                self.memory.assign(name, banks)
            self.fifos[name] = [
                Fifo(name=f"{name}.fifo{i}", depth_words=512)
                for i in range(max(1, len(banks)))
            ]

    # -- configuration time models ------------------------------------------

    def full_config_time(self, estimated: bool = False) -> float:
        """Full-device configuration time (the model's ``T_FRTR``).

        ``estimated=True`` gives the wire-only lower bound (Table 2
        "estimated"); otherwise the vendor-API model (Table 2 "measured").
        """
        if estimated:
            return self.selectmap.wire_time(self.full_image.nbytes)
        return self.selectmap.configure_time(self.full_image)

    def partial_config_time(
        self, bitstream: Bitstream, estimated: bool = False
    ) -> float:
        """Partial configuration time (the model's ``T_PRTR``).

        ``estimated=True``: wire-only through the nominal 66 MB/s port.
        Otherwise: the BRAM-buffered ICAP controller model.
        """
        if not bitstream.is_partial:
            raise ValueError("expected a partial bitstream")
        if estimated:
            return self.icap_raw.wire_time(bitstream.nbytes)
        return self.icap.configure_time(bitstream)

    def prr_bitstream(self, prr_index: int, module: str) -> Bitstream:
        """Module-based partial bitstream for a PRR, at the geometric size."""
        (bs,) = self.floorplan.bitstreams_for(prr_index, [module])
        return bs
