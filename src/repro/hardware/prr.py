"""PRR floorplans: the paper's single- and dual-PRR Cray XD1 layouts.

A :class:`Floorplan` carves the device's CLB columns into one static region
(RT core, ICAP controller, FIFOs — Fig. 8) and ``n`` partially
reconfigurable regions.  Bus macros anchor the wires crossing each PRR
boundary; we count them (2 per crossing direction per data bus) because
their fixed placement is what motivates the FIFOs.

Column widths for the XD1 layouts are chosen so the geometric
partial-bitstream model lands on the published Table 2 sizes:

* single PRR: 26 of 70 columns  -> 885,480 B (published 887,784; -0.26%)
* dual PRR:   12 of 70 columns  -> 409,390 B (published 404,168; +1.29%)

Both the geometric and the published sizes are reported by the Table 2
experiment; everything downstream (configuration times) uses the published
sizes as ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from .bitstream import Bitstream, module_based_bitstreams
from .catalog import FpgaDevice, XC2VP50
from .fpga import Fpga, PlacementError, Region

__all__ = [
    "BusMacro",
    "Floorplan",
    "static_only_floorplan",
    "single_prr_floorplan",
    "dual_prr_floorplan",
    "uniform_prr_floorplan",
]


@dataclass(frozen=True)
class BusMacro:
    """A fixed LUT-pair routing bridge across a PRR boundary."""

    name: str
    src_region: str
    dst_region: str
    width_bits: int = 8

    def __post_init__(self) -> None:
        if self.width_bits <= 0:
            raise ValueError("bus macro width must be positive")
        if self.src_region == self.dst_region:
            raise ValueError("bus macro must cross a region boundary")


@dataclass
class Floorplan:
    """A named floorplan: device + static region + PRRs + bus macros."""

    name: str
    device: FpgaDevice
    static_columns: int
    prr_columns: list[int]
    bus_macros: list[BusMacro] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.static_columns <= 0:
            raise ValueError("static region needs at least one column")
        if any(c <= 0 for c in self.prr_columns):
            raise ValueError("every PRR needs at least one column")
        total = self.static_columns + sum(self.prr_columns)
        if total > self.device.clb_columns:
            raise PlacementError(
                f"floorplan {self.name!r} needs {total} columns; device "
                f"{self.device.name} has {self.device.clb_columns}"
            )

    @property
    def n_prrs(self) -> int:
        return len(self.prr_columns)

    def prr_names(self) -> list[str]:
        return [f"prr{i}" for i in range(self.n_prrs)]

    def build(self) -> Fpga:
        """Instantiate an :class:`Fpga` with the regions laid out left to
        right: static first (as in the paper's Fig. 1), then each PRR."""
        fpga = Fpga(self.device)
        fpga.add_region(
            Region("static", 0, self.static_columns, reconfigurable=False)
        )
        col = self.static_columns
        for i, width in enumerate(self.prr_columns):
            fpga.add_region(
                Region(f"prr{i}", col, col + width, reconfigurable=True)
            )
            col += width
        return fpga

    def partial_bitstream_bytes(self, prr_index: int) -> int:
        """Geometry-derived size of a partial bitstream for one PRR."""
        return self.device.partial_bitstream_bytes(self.prr_columns[prr_index])

    def static_power_w(self, model: "Any") -> float:
        """Always-on draw (W) of this floorplan under a power model.

        ``model`` is duck-typed (:class:`repro.power.model.PowerModel`
        shaped) so the hardware layer never imports :mod:`repro.power`:
        the base static draw plus one per-PRR increment per region.
        """
        return model.static_power_w(self.n_prrs)

    def bitstreams_for(
        self, prr_index: int, modules: list[str]
    ) -> list[Bitstream]:
        region = Region(
            f"prr{prr_index}",
            0,
            self.prr_columns[prr_index],
            reconfigurable=True,
        )
        return module_based_bitstreams(self.device, region, modules)

    def default_bus_macros(self, buses_per_prr: int = 2) -> list[BusMacro]:
        """Standard macro set: one in/out pair per PRR<->static crossing."""
        macros = []
        for prr in self.prr_names():
            for b in range(buses_per_prr):
                macros.append(
                    BusMacro(f"{prr}_in{b}", "static", prr, width_bits=8)
                )
                macros.append(
                    BusMacro(f"{prr}_out{b}", prr, "static", width_bits=8)
                )
        return macros


def static_only_floorplan(device: FpgaDevice = XC2VP50) -> Floorplan:
    """The FRTR baseline layout: no PRRs, whole device reconfigured."""
    return Floorplan(
        name="static_only",
        device=device,
        static_columns=device.clb_columns,
        prr_columns=[],
    )


def single_prr_floorplan(device: FpgaDevice = XC2VP50) -> Floorplan:
    """The paper's single-PRR layout (all four SRAM banks to one PRR)."""
    plan = Floorplan(
        name="single_prr",
        device=device,
        static_columns=device.clb_columns - 26,
        prr_columns=[26],
    )
    plan.bus_macros = plan.default_bus_macros()
    return plan


def dual_prr_floorplan(device: FpgaDevice = XC2VP50) -> Floorplan:
    """The paper's dual-PRR layout (Fig. 8; two SRAM banks per PRR)."""
    plan = Floorplan(
        name="dual_prr",
        device=device,
        static_columns=device.clb_columns - 24,
        prr_columns=[12, 12],
    )
    plan.bus_macros = plan.default_bus_macros()
    return plan


def uniform_prr_floorplan(
    n_prrs: int,
    columns_each: int,
    device: FpgaDevice = XC2VP50,
    static_columns: int | None = None,
) -> Floorplan:
    """A parametric layout for the PRR-granularity ablation.

    ``static_columns`` defaults to whatever the device has left over after
    the PRRs (at least the paper's dual-layout static share is recommended
    for realism, but the ablation explores the whole range).
    """
    if n_prrs <= 0:
        raise ValueError("need at least one PRR")
    used = n_prrs * columns_each
    if static_columns is None:
        static_columns = device.clb_columns - used
    plan = Floorplan(
        name=f"uniform_{n_prrs}x{columns_each}",
        device=device,
        static_columns=static_columns,
        prr_columns=[columns_each] * n_prrs,
    )
    plan.bus_macros = plan.default_bus_macros()
    return plan
