"""The paper's analytical execution model (Section 3) — the core library.

Equations (1)-(7) of El-Araby, Gonzalez & El-Ghazawi (HPRCTA'07), plus the
closed-form bounds, sensitivities and sweep utilities built on them.

Quick use::

    >>> from repro.model import ModelParameters, asymptotic_speedup
    >>> p = ModelParameters(x_task=0.17, x_prtr=0.17, hit_ratio=0.0)
    >>> round(float(asymptotic_speedup(p)), 2)   # the ~7x estimated peak
    6.88
"""

from .application import (
    ApplicationProfile,
    Kernel,
    amdahl_limit,
    application_speedup,
    application_time,
    breakeven_kernel_time,
)
from .bounds import (
    Regime,
    classify_regime,
    hit_ratio_required,
    is_beneficial,
    large_task_bound,
    left_branch_increasing,
    min_calls_for_speedup,
    peak_speedup,
    peak_x_task,
    supremum_speedup,
)
from .frtr import (
    frtr_per_call_normalized,
    frtr_total_normalized,
    frtr_total_time,
)
from .parameters import ModelParameters, RawParameters
from .prtr import (
    hit_stage_normalized,
    missed_stage_normalized,
    prtr_per_call_normalized,
    prtr_total_normalized,
    prtr_total_time,
)
from .sensitivity import (
    dS_dH,
    dS_dx_control,
    dS_dx_decision,
    dS_dx_prtr,
    dS_dx_task,
    finite_difference,
    gradient,
)
from .stochastic import (
    DISTRIBUTIONS,
    expected_max_uniform,
    heterogeneous_per_call,
    heterogeneous_speedup,
    heterogeneous_speedup_finite,
    jensen_gap,
    resolve_rng,
    sample_task_times,
    uniform_heterogeneous_speedup,
)
from .speedup import (
    asymptotic_speedup,
    convergence_n,
    speedup,
    speedup_from_raw,
)
from .sweep import (
    SweepResult,
    figure5_grid,
    figure9_grid,
    log_task_axis,
    sweep_asymptotic,
    sweep_finite,
)

__all__ = [
    "ApplicationProfile",
    "DISTRIBUTIONS",
    "Kernel",
    "amdahl_limit",
    "application_speedup",
    "application_time",
    "breakeven_kernel_time",
    "ModelParameters",
    "RawParameters",
    "Regime",
    "SweepResult",
    "asymptotic_speedup",
    "classify_regime",
    "convergence_n",
    "dS_dH",
    "dS_dx_control",
    "dS_dx_decision",
    "dS_dx_prtr",
    "dS_dx_task",
    "figure5_grid",
    "figure9_grid",
    "finite_difference",
    "frtr_per_call_normalized",
    "frtr_total_normalized",
    "frtr_total_time",
    "gradient",
    "hit_ratio_required",
    "hit_stage_normalized",
    "is_beneficial",
    "large_task_bound",
    "left_branch_increasing",
    "log_task_axis",
    "min_calls_for_speedup",
    "missed_stage_normalized",
    "peak_speedup",
    "peak_x_task",
    "prtr_per_call_normalized",
    "prtr_total_normalized",
    "prtr_total_time",
    "expected_max_uniform",
    "heterogeneous_per_call",
    "heterogeneous_speedup",
    "heterogeneous_speedup_finite",
    "jensen_gap",
    "resolve_rng",
    "sample_task_times",
    "speedup",
    "speedup_from_raw",
    "uniform_heterogeneous_speedup",
    "sweep_asymptotic",
    "sweep_finite",
    "supremum_speedup",
]
