"""Whole-application speedup: software tasks included (paper future work).

Section 3.1 scopes the analysis to hardware tasks only; the conclusion
flags the inclusion of software tasks as future consideration.  This
module follows through in the style of the paper's modeling references
(Smith & Peterson [33, 34]): a *reconfiguration-aware Amdahl's law*.

An application is a serial software part plus a set of acceleratable
kernels.  Offloading kernel ``i`` replaces ``calls_i x t_sw_i`` of CPU
time with ``calls_i x (t_hw_i + per-call reconfiguration overhead)``,
where the overhead depends on the regime:

* ``"none"``   — the kernels' circuits all fit on chip (no RTR at all);
* ``"frtr"``   — every call pays ``T_FRTR + T_control`` (Eq. 1);
* ``"prtr"``   — every call pays the PRTR per-call surcharge of Eq. (5):
  ``T_control + M * max(0, T_PRTR - t_hw - T_decision) + T_decision``
  (the partial reconfiguration hides behind the kernel execution; only
  the *uncovered* remainder bills the application), plus the one-time
  initial full configuration.

The headline consequences, pinned by tests:

* Amdahl: no regime beats ``T_total / T_serial``;
* FRTR can make acceleration a *slowdown* for fine-grained kernels while
  PRTR keeps it profitable — the application-level restatement of the
  paper's bounds;
* as kernels grow coarse, the three regimes converge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np

__all__ = [
    "Kernel",
    "ApplicationProfile",
    "application_time",
    "application_speedup",
    "amdahl_limit",
    "breakeven_kernel_time",
]

Regime = Literal["none", "frtr", "prtr"]


@dataclass(frozen=True)
class Kernel:
    """One acceleratable function of the application."""

    name: str
    calls: int
    #: CPU time per call (seconds)
    t_sw: float
    #: FPGA time per call (seconds), including its I/O
    t_hw: float

    def __post_init__(self) -> None:
        if self.calls <= 0:
            raise ValueError("calls must be >= 1")
        if self.t_sw <= 0 or self.t_hw <= 0:
            raise ValueError("per-call times must be > 0")

    @property
    def hw_speedup(self) -> float:
        return self.t_sw / self.t_hw


@dataclass(frozen=True)
class ApplicationProfile:
    """Serial software time plus kernels."""

    name: str
    t_serial: float
    kernels: tuple[Kernel, ...]

    def __post_init__(self) -> None:
        if self.t_serial < 0:
            raise ValueError("t_serial must be >= 0")
        if not self.kernels:
            raise ValueError("need at least one kernel")
        names = [k.name for k in self.kernels]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate kernel names: {names}")

    @property
    def t_software_total(self) -> float:
        """Pure-CPU execution time (the baseline)."""
        return self.t_serial + sum(k.calls * k.t_sw for k in self.kernels)

    @property
    def accelerable_fraction(self) -> float:
        return 1.0 - self.t_serial / self.t_software_total


def _per_call_overhead(
    regime: Regime,
    t_hw: float,
    *,
    t_frtr: float,
    t_prtr: float,
    t_control: float,
    t_decision: float,
    hit_ratio: float,
) -> float:
    if regime == "none":
        return t_control
    if regime == "frtr":
        return t_frtr + t_control
    if regime == "prtr":
        miss = 1.0 - hit_ratio
        uncovered = max(0.0, t_prtr - t_hw - t_decision)
        return t_control + t_decision + miss * uncovered
    raise ValueError(f"unknown regime {regime!r}")


def application_time(
    profile: ApplicationProfile,
    regime: Regime,
    *,
    t_frtr: float,
    t_prtr: float,
    t_control: float = 0.0,
    t_decision: float = 0.0,
    hit_ratio: float = 0.0,
) -> float:
    """End-to-end accelerated execution time under a regime."""
    if t_frtr <= 0 or t_prtr <= 0:
        raise ValueError("configuration times must be > 0")
    total = profile.t_serial
    for k in profile.kernels:
        overhead = _per_call_overhead(
            regime,
            k.t_hw,
            t_frtr=t_frtr,
            t_prtr=t_prtr,
            t_control=t_control,
            t_decision=t_decision,
            hit_ratio=hit_ratio,
        )
        total += k.calls * (k.t_hw + overhead)
    if regime == "prtr":
        total += t_decision + t_frtr  # Eq. (5)'s one-time startup
    return total


def application_speedup(
    profile: ApplicationProfile,
    regime: Regime,
    **platform: float,
) -> float:
    """Speedup of the accelerated application over pure software."""
    return profile.t_software_total / application_time(
        profile, regime, **platform
    )


def amdahl_limit(profile: ApplicationProfile) -> float:
    """The zero-overhead, infinitely-fast-hardware ceiling:
    ``T_total / T_serial`` (``inf`` for fully-accelerable apps)."""
    if profile.t_serial == 0:
        return np.inf
    return profile.t_software_total / profile.t_serial


def breakeven_kernel_time(
    regime: Regime,
    hw_speedup: float,
    *,
    t_frtr: float,
    t_prtr: float,
    t_control: float = 0.0,
    t_decision: float = 0.0,
    hit_ratio: float = 0.0,
) -> float:
    """Smallest per-call *software* kernel time for which offloading pays.

    Offloading one call wins when ``t_sw > t_hw + overhead`` with
    ``t_hw = t_sw / hw_speedup``.  For the PRTR regime, the overhead
    itself depends on ``t_hw`` (coverage of the partial reconfiguration),
    so the bound solves the piecewise condition; for FRTR it is simply
    ``(t_frtr + t_control) / (1 - 1/s)``.
    """
    if hw_speedup <= 1.0:
        raise ValueError("hardware must be faster than software (s > 1)")
    shrink = 1.0 - 1.0 / hw_speedup
    if regime == "none":
        return t_control / shrink
    if regime == "frtr":
        return (t_frtr + t_control) / shrink
    if regime == "prtr":
        miss = 1.0 - hit_ratio
        # Case 1: t_hw covers the reconfiguration entirely.
        t1 = (t_control + t_decision) / shrink
        if t1 / hw_speedup + t_decision >= t_prtr:
            return t1
        # Case 2: uncovered remainder bills the call.
        # t_sw*shrink > Tc + Td + miss*(Tp - t_sw/s - Td)
        numer = t_control + t_decision + miss * (t_prtr - t_decision)
        denom = shrink + miss / hw_speedup
        return numer / denom
    raise ValueError(f"unknown regime {regime!r}")
