"""Closed-form performance bounds and regimes of the PRTR model.

This module turns Section 3.1's prose observations about Eq. (7) into
checkable mathematics:

* the **2x bound**: for ``X_task >= 1`` (and zero control/decision
  overheads) ``S_inf = 1 + 1/X_task < 2`` regardless of ``H`` or
  ``X_PRTR``;
* the **peak locus**: for imperfect prefetching the asymptotic speedup
  peaks exactly where the task time matches the partial configuration
  time (``X_task + X_decision = X_PRTR``), with peak value
  ``(1 + X_control + X_PRTR - X_decision) / (X_control + X_PRTR)`` at
  ``H = 0``;
* the three **regimes** of Figure 5 (``X_task > 1``,
  ``X_PRTR < X_task < 1``, ``X_task < X_PRTR``);
* *when is PRTR beneficial at all* and *how many calls amortize the
  startup configuration*.

Derivations (all with ``M = 1 - H``, ``F = 1 + X_control + X_task`` the
FRTR per-call cost and ``D`` the PRTR per-call cost):

On the right branch (``X_task + X_decision >= X_PRTR``) the max resolves
to ``X_task + X_decision`` and ``D = X_control + X_task + X_decision``:
``S_inf = F / D`` is strictly decreasing in ``X_task`` iff
``X_decision < 1``.  On the left branch the max resolves to ``X_PRTR``
and ``D`` grows with slope ``H`` while ``F`` grows with slope 1, so
``S_inf`` is increasing iff
``M * (X_control + X_PRTR) + H * X_decision > H - H * X_control``...
simplified below in :func:`left_branch_increasing`.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from .parameters import ModelParameters, as_array
from .prtr import prtr_per_call_normalized
from .speedup import asymptotic_speedup

__all__ = [
    "Regime",
    "classify_regime",
    "large_task_bound",
    "peak_x_task",
    "peak_speedup",
    "left_branch_increasing",
    "supremum_speedup",
    "is_beneficial",
    "min_calls_for_speedup",
    "hit_ratio_required",
]


class Regime:
    """The three Figure 5 regions of task time requirement."""

    LARGE = "x_task > 1"
    MID = "x_prtr < x_task <= 1"
    SMALL = "x_task <= x_prtr"


def classify_regime(params: ModelParameters) -> np.ndarray:
    """Elementwise regime labels (numpy array of str)."""
    x = as_array(params.x_task)
    p = as_array(params.x_prtr)
    out = np.where(
        x > 1.0,
        Regime.LARGE,
        np.where(x > p, Regime.MID, Regime.SMALL),
    )
    return out


def large_task_bound(params: ModelParameters) -> np.ndarray:
    """The tight upper bound ``1 + 1/X_task`` valid when
    ``X_task + X_decision >= X_PRTR`` and ``X_control = 0``.

    For ``X_task >= 1`` this is the paper's "PRTR cannot exceed twice
    FRTR" statement; the bound is independent of ``H`` and ``X_PRTR``.
    """
    return 1.0 + 1.0 / as_array(params.x_task)


def left_branch_increasing(params: ModelParameters) -> np.ndarray:
    """Whether ``S_inf`` increases with ``X_task`` on the left branch.

    On ``X_task + X_decision < X_PRTR``:
    ``S_inf = (1 + Xc + x) / (Xc + M*P + H*Xd + H*x)``.
    d/dx has the sign of ``(Xc + M*P + H*Xd) - H*(1 + Xc)``.
    """
    xc = as_array(params.x_control)
    xd = as_array(params.x_decision)
    p = as_array(params.x_prtr)
    h = as_array(params.hit_ratio)
    m = 1.0 - h
    return (xc + m * p + h * xd) > h * (1.0 + xc)


def peak_x_task(params: ModelParameters) -> np.ndarray:
    """The task time maximizing ``S_inf`` (the Fig. 5 peak locus).

    When the left branch is increasing, the two branches meet at the
    kink ``x* = X_PRTR - X_decision`` and the right branch decreases, so
    the peak sits exactly at the kink — the paper's
    "``X_task = X_PRTR``" optimum (with ``X_decision = 0``).  When the
    left branch decreases (very efficient prefetching), the supremum is
    at ``x -> 0+`` and we return 0.0 to signal an open endpoint.
    """
    kink = np.maximum(
        as_array(params.x_prtr) - as_array(params.x_decision), 0.0
    )
    increasing = left_branch_increasing(params)
    return np.where(increasing, kink, 0.0)


def peak_speedup(params: ModelParameters) -> np.ndarray:
    """``S_inf`` at the peak locus.

    At the kink ``x* = X_PRTR - X_decision`` both branches agree:
    ``S* = (1 + Xc + P - Xd) / (Xc + P)``.  With everything but the
    partial configuration negligible this is the paper's
    ``(1 + X_PRTR) / X_PRTR`` ceiling (≈7x estimated, ≈87x measured).
    For parameters whose supremum is at ``x -> 0+`` (decreasing left
    branch) we return the supremum ``(1 + Xc) / (Xc + M*P + H*Xd)``.
    """
    xc = as_array(params.x_control)
    xd = as_array(params.x_decision)
    p = as_array(params.x_prtr)
    h = as_array(params.hit_ratio)
    m = 1.0 - h
    at_kink = (1.0 + xc + np.maximum(p - xd, 0.0)) / (
        xc + np.maximum(p, xd)
    )
    # Guard against division by zero when every overhead vanishes
    # (perfect prefetching with no overheads: supremum = inf).
    denom_zero = xc + m * p + h * xd
    with np.errstate(divide="ignore"):
        at_zero = np.where(
            denom_zero > 0, (1.0 + xc) / np.where(denom_zero > 0, denom_zero, 1.0), np.inf
        )
    # When X_decision >= X_PRTR the left branch is empty and the kink
    # formula already evaluates the x -> 0+ supremum of the right branch.
    use_kink = left_branch_increasing(params) | (p <= xd)
    return np.where(use_kink, at_kink, at_zero)


def supremum_speedup(params: ModelParameters) -> np.ndarray:
    """Alias of :func:`peak_speedup`: the sup over all task times."""
    return peak_speedup(params)


def is_beneficial(params: ModelParameters) -> np.ndarray:
    """Elementwise ``S_inf >= 1``: does PRTR (asymptotically) ever lose?

    On the right branch PRTR wins iff ``X_decision <= 1`` (the decision
    latency must not exceed a full reconfiguration).  On the left branch
    the condition is ``1 + X_task*(1-H) >= M*X_PRTR + H*X_decision``.
    Evaluated numerically via Eq. (7) for robustness.
    """
    return asymptotic_speedup(params) >= 1.0


def min_calls_for_speedup(
    params: ModelParameters, target: Any
) -> np.ndarray:
    """Smallest ``n`` such that the finite-``n`` Eq. (6) meets ``target``.

    From ``S(n) = n*F / (a + n*D)`` with startup ``a = 1 + X_decision``::

        n >= target * a / (F - target * D)

    Entries where even ``S_inf < target`` come back ``inf``.
    """
    s = as_array(target)
    if np.any(s <= 0):
        raise ValueError("target speedup must be > 0")
    f = 1.0 + params.x_control + params.x_task
    d = prtr_per_call_normalized(params)
    a = 1.0 + params.x_decision
    margin = f - s * d
    with np.errstate(divide="ignore", invalid="ignore"):
        n = np.where(margin > 0, s * a / margin, np.inf)
    return np.where(np.isfinite(n), np.ceil(np.maximum(n, 1.0)), np.inf)


def hit_ratio_required(params: ModelParameters, target: Any) -> np.ndarray:
    """Hit ratio needed to reach an asymptotic ``target`` speedup.

    Solving Eq. (7) for ``H`` with ``mx = max(X_task + X_decision,
    X_PRTR)`` and ``ht = X_task + X_decision``::

        H = (X_control + mx - F/target) / (mx - ht)

    Only meaningful on the left branch (``mx > ht``) — elsewhere ``H``
    does not enter Eq. (7) and the result is 0 when the target is already
    met, ``inf`` when it never can be.  Values are clipped to ``[0, 1]``
    when achievable; unachievable targets return ``inf``.
    """
    s = as_array(target)
    if np.any(s <= 0):
        raise ValueError("target speedup must be > 0")
    x = as_array(params.x_task)
    xd = as_array(params.x_decision)
    xc = as_array(params.x_control)
    p = as_array(params.x_prtr)
    ht = x + xd
    mx = np.maximum(ht, p)
    f = 1.0 + xc + x
    denom_at_h = lambda h: xc + mx - h * (mx - ht)  # noqa: E731
    # Right branch: H is irrelevant.
    right = mx <= ht
    meets_now = f / denom_at_h(0.0) >= s
    meets_best = f / np.where(denom_at_h(1.0) > 0, denom_at_h(1.0), np.nan) >= s
    with np.errstate(divide="ignore", invalid="ignore"):
        h_needed = (xc + mx - f / s) / (mx - ht)
    out = np.where(
        right,
        np.where(meets_now, 0.0, np.inf),
        np.where(
            meets_now,
            0.0,
            np.where(
                np.nan_to_num(meets_best, nan=False),
                np.clip(h_needed, 0.0, 1.0),
                np.inf,
            ),
        ),
    )
    return out
