"""FRTR total-time model — Eqs. (1) and (2) of the paper.

Under Full Run-Time Reconfiguration every function call downloads a full
bitstream, transfers control, and runs the task::

    T_total^FRTR = n_calls * (T_FRTR + T_control + T_task)        (1)
    X_total^FRTR = n_calls * (1 + X_control + X_task)             (2)

No pre-fetch decision term appears: configuration caching only makes sense
with partial reconfiguration.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from .parameters import ModelParameters, RawParameters, as_array

__all__ = [
    "frtr_total_normalized",
    "frtr_total_time",
    "frtr_per_call_normalized",
]


def frtr_per_call_normalized(params: ModelParameters) -> np.ndarray:
    """Normalized cost of one FRTR call: ``1 + X_control + X_task``."""
    return 1.0 + params.x_control + params.x_task


def frtr_total_normalized(params: ModelParameters, n_calls: Any) -> np.ndarray:
    """Eq. (2): ``X_total^FRTR = n * (1 + X_control + X_task)``."""
    n = as_array(n_calls)
    if np.any(n <= 0):
        raise ValueError("n_calls must be > 0")
    return n * frtr_per_call_normalized(params)


def frtr_total_time(raw: RawParameters, n_calls: Any) -> np.ndarray:
    """Eq. (1) in seconds: ``n * (T_FRTR + T_control + T_task)``."""
    n = as_array(n_calls)
    if np.any(n <= 0):
        raise ValueError("n_calls must be > 0")
    return n * (
        as_array(raw.t_frtr) + as_array(raw.t_control) + as_array(raw.t_task)
    )
