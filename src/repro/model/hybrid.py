"""Hybrid analytical/DES fast path for the sweep engines.

The closed-form model (Eqs. 1-7, :mod:`repro.model.bounds`) is *exact* —
not approximate — wherever nothing the discrete-event simulator models
beyond the equations can fire.  This module makes that claim operational:

* :data:`EXACTNESS_PREDICATES` names the conditions under which a grid
  point's DES makespan is provably equal (bit-for-bit, not just close) to
  a straight-line float replay of the executor's event arithmetic;
* :func:`replay_frtr` / :func:`replay_prtr` / :func:`replay_icap_configure`
  perform that replay, folding the exact same float additions the DES
  would perform, in the exact same order — so the result is the *same
  Python float*, not an approximation of it;
* :func:`replay_comparison_speedup` and :func:`replay_fault_point` answer
  a Figure-9 point or a rate-0 fault-grid cell without spinning up the
  event loop;
* :func:`verification_sample` picks the seeded subset of analytical
  points that ``--hybrid=verify`` shadow-runs on the real DES; the
  resulting :class:`HybridSample` records feed
  :func:`repro.runtime.invariants.audit_hybrid`, the ``hybrid-exactness``
  invariant row.

Why the replay is exact and not merely accurate: every branch of the
executors accumulates absolute event times as a left fold of float sums
(``sim.now + duration`` at each dispatch), ``AllOf`` barriers resolve to
the max of their branch end times, the fault-free recovery wrapper adds
zero events, a zero-rate injector consumes no RNG draws, and uncontended
mutexes grant in zero time.  Replaying the same additions in the same
order therefore reproduces the DES clock bitwise.  The predicates below
delimit precisely the configurations where "uncontended / fault-free /
single formula per stage" holds; everywhere else the caller must fall
back to the DES.

Regime classification (:func:`repro.model.bounds.classify_regime`)
explains *which* closed-form branch governs each exact point — see
MODEL.md §13 — while the predicates here decide *whether* the replay may
be used at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Sequence

from .stochastic import resolve_rng

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from ..analysis.reliability import FaultSweepPoint
    from ..faults.recovery import RecoveryPolicy
    from ..hardware.icap_controller import IcapController
    from ..hardware.prr import Floorplan
    from ..rtr.frtr import FrtrExecutor
    from ..rtr.prtr import PrtrExecutor
    from ..workloads.task import CallTrace

__all__ = [
    "EXACTNESS_PREDICATES",
    "HybridMode",
    "HybridSample",
    "closed_form_exact",
    "comparison_verdicts",
    "fault_point_verdicts",
    "parse_hybrid_mode",
    "power_point_verdicts",
    "replay_comparison_speedup",
    "replay_energy_components",
    "replay_fault_point",
    "replay_frtr",
    "replay_icap_configure",
    "replay_prtr",
    "verification_sample",
]


class HybridMode:
    """The three ``--hybrid`` settings threaded through the sweep CLIs."""

    #: pure DES everywhere (the pre-hybrid behavior)
    OFF = "off"
    #: answer analytically where the predicates prove exactness
    ON = "on"
    #: like ``on``, plus a seeded shadow sample re-run on the DES and
    #: asserted bit-identical (the ``hybrid-exactness`` invariant)
    VERIFY = "verify"

    ALL: tuple[str, ...] = (OFF, ON, VERIFY)


def parse_hybrid_mode(text: str) -> str:
    """Validate and canonicalize a ``--hybrid`` argument."""
    mode = text.strip().lower()
    if mode not in HybridMode.ALL:
        raise ValueError(
            f"hybrid mode must be one of {HybridMode.ALL}: {text!r}"
        )
    return mode


#: The exactness contract: the closed-form replay is provably
#: bit-identical to the DES iff **every** predicate holds.  Names are
#: pinned by docs/PERFORMANCE.md and MODEL.md §13.
EXACTNESS_PREDICATES: dict[str, str] = {
    "fault-free": (
        "no injector, or every fault rate exactly zero — zero-rate draws "
        "consume no RNG and the resilient() wrapper adds zero events"
    ),
    "overlap-applicable": (
        "more than one PRR slot, so the prefetch branch follows the "
        "paper's max(task, config) stage law; the single-PRR serial "
        "fallback path is not replayed"
    ),
    "uniform-io": (
        "detailed_io disabled: tasks are one Delay, not data-in/compute/"
        "data-out legs contending for the link channels"
    ),
    "local-bitstreams": (
        "no bitstream_source backplane: configuration never queues on a "
        "shared fetch channel"
    ),
    "recovery-inert": (
        "with no faults to recover from, any recovery policy is a "
        "pass-through (implied by fault-free; kept separate because it "
        "is the predicate that breaks first if new recovery hooks gain "
        "unconditional events)"
    ),
}


def closed_form_exact(verdicts: dict[str, bool]) -> bool:
    """True iff every exactness predicate holds for a grid point."""
    unknown = set(verdicts) - set(EXACTNESS_PREDICATES)
    if unknown:
        raise KeyError(f"unknown exactness predicates: {sorted(unknown)}")
    return all(verdicts.get(name, False) for name in EXACTNESS_PREDICATES)


@dataclass(frozen=True)
class HybridSample:
    """One shadow-verification record: analytic vs DES answer.

    ``analytic`` and ``simulated`` must compare equal (``==``, i.e.
    bitwise for floats) for the ``hybrid-exactness`` invariant to hold.
    The comparison itself lives in
    :func:`repro.runtime.invariants.audit_hybrid`.
    """

    label: str
    analytic: Any
    simulated: Any


def verification_sample(
    n_items: int,
    seed: int = 0,
    fraction: float = 0.25,
    min_samples: int = 2,
) -> list[int]:
    """The seeded shadow-validation sample for ``--hybrid=verify``.

    Returns sorted indices into the analytical point list: at least
    ``min_samples`` (capped at ``n_items``), at most
    ``round(fraction * n_items)`` points, drawn without replacement from
    ``resolve_rng(seed)`` — the repo-wide seeded-RNG contract, so the
    sample is a pure function of ``(n_items, seed)`` and identical
    across workers and resumes.
    """
    if n_items <= 0:
        return []
    k = min(n_items, max(min_samples, int(round(fraction * n_items))))
    rng = resolve_rng(seed)
    chosen = rng.choice(n_items, size=k, replace=False)
    return sorted(int(i) for i in chosen)


# -- predicate evaluation ---------------------------------------------------


def _injector_fault_free(injector: Any) -> bool:
    return injector is None or injector.config.fault_free


def comparison_verdicts(
    *,
    floorplan: "Floorplan | None" = None,
    detailed_io: bool = False,
    node_kwargs: dict[str, Any] | None = None,
) -> dict[str, bool]:
    """Exactness verdicts for one :func:`repro.rtr.runner.compare` point."""
    from ..hardware.prr import dual_prr_floorplan

    kwargs = node_kwargs or {}
    fault_free = _injector_fault_free(kwargs.get("fault_injector"))
    plan = floorplan or dual_prr_floorplan()
    return {
        "fault-free": fault_free,
        "overlap-applicable": plan.n_prrs > 1,
        "uniform-io": not detailed_io,
        "local-bitstreams": True,
        "recovery-inert": fault_free,
    }


def power_point_verdicts(n_prrs: int) -> dict[str, bool]:
    """Exactness verdicts for one power-sweep cell.

    The power sweep (:mod:`repro.power.pareto`) is fault-free by
    construction; the only predicate that can fail is
    ``overlap-applicable`` — single-PRR floorplans take the serial
    partial-configuration path the replay does not model, so those
    cells always run the DES.
    """
    return {
        "fault-free": True,
        "overlap-applicable": n_prrs > 1,
        "uniform-io": True,
        "local-bitstreams": True,
        "recovery-inert": True,
    }


def fault_point_verdicts(fault_rate: float, seed: int = 0) -> dict[str, bool]:
    """Exactness verdicts for one fault-grid cell.

    Only the zero-rate cells are fault-free (:attr:`repro.faults.injector
    .FaultConfig.fault_free`); every other cell needs the DES because
    injected aborts perturb both the clock and the RNG stream.
    """
    from ..faults.injector import FaultConfig

    fault_free = FaultConfig(chunk_abort_rate=fault_rate, seed=seed).fault_free
    return {
        "fault-free": fault_free,
        "overlap-applicable": True,  # make_node() defaults to dual-PRR
        "uniform-io": True,
        "local-bitstreams": True,
        "recovery-inert": fault_free,
    }


# -- exact float replays ----------------------------------------------------


def replay_icap_configure(
    icap: "IcapController", nbytes: int, t0: float
) -> float:
    """End time of one chunked double-buffered ICAP configuration.

    Mirrors :meth:`repro.hardware.icap_controller.IcapController.configure`
    addition for addition: fill the first BRAM bank over the link, then
    per chunk take ``max(drain end, next-chunk prefetch end)`` — both the
    drain and the prefetch start from the same barrier time, exactly as
    the spawned prefetch branch does in the DES.
    """
    timings = icap.timings
    sizes = icap._chunk_sizes(nbytes)
    last = len(sizes) - 1
    t = t0 + icap.in_link.transfer_time(sizes[0])
    for i, size in enumerate(sizes):
        drain = timings.chunk_handshake + size / timings.icap_bandwidth
        if i < last:
            t_prefetch = t + icap.in_link.transfer_time(sizes[i + 1])
            t_drain = t + drain
            t = t_drain if t_drain >= t_prefetch else t_prefetch
        else:
            t = t + drain
    return t


def _replay_partial_config(
    executor: "PrtrExecutor", module: str, t0: float
) -> float:
    """End time of one partial configuration started at ``t0``."""
    bs = executor.bitstream_for(module)
    if executor.estimated:
        return t0 + executor.node.icap_raw.wire_time(bs.nbytes)
    return replay_icap_configure(executor.node.icap, bs.nbytes, t0)


def replay_frtr(executor: "FrtrExecutor", trace: "CallTrace") -> float:
    """The FRTR makespan, bit-identical to ``executor.run(trace)``.

    Per call: one full configuration, the control transfer, the task —
    a pure left fold of the same three additions the DES performs.
    """
    node = executor.node
    t_config = node.full_config_time(estimated=executor.estimated)
    control = executor.control_time
    t = 0.0
    for call in trace:
        t = t + t_config
        if control:
            t = t + control
        t = t + call.task.time
    return t


def replay_prtr(
    executor: "PrtrExecutor", trace: "CallTrace"
) -> tuple[float, int]:
    """The PRTR makespan and miss count, bit-identical to the DES run.

    Requires every :data:`EXACTNESS_PREDICATES` entry to hold (the
    caller checks); drives the executor's *real* cache and policy so hit
    and eviction decisions — and therefore which stages pay a partial
    configuration — are the executor's own.  Returns
    ``(total_time, n_configs)`` where ``n_configs`` counts the calls
    whose module was not resident (the :attr:`RunResult.n_configs`
    analogue).
    """
    calls = list(trace)
    n = len(calls)
    if not n:
        return 0.0, 0
    cache = executor.cache
    control = executor.control_time
    decision = executor.decision_time

    # Startup: optional prefetch decision, then the initial full
    # configuration that instantiates call 0's module in PRR 0.
    t = 0.0
    if decision:
        t = t + decision
    t = t + executor.node.full_config_time(estimated=executor.estimated)
    cache.fill(calls[0].name)
    hit0 = not executor.force_miss
    if hit0:
        cache.stats.hits += 1
    else:
        cache.stats.misses += 1
    n_configs = 0 if hit0 else 1

    for i, call in enumerate(calls):
        if control:
            t = t + control
        # The serial task chain: the task, then the prefetch decision.
        t_task = t + call.task.time
        if decision:
            t_task = t_task + decision
        t_cfg = None
        if i + 1 < n:
            nxt = calls[i + 1]
            resident = cache.contains(nxt.name)
            is_hit = resident and not executor.force_miss
            if is_hit:
                cache.stats.hits += 1
                cache.policy.on_access(nxt.name)
            else:
                cache.stats.misses += 1
                n_configs += 1
                # overlap-applicable guarantees slots > 1, so the
                # configuration overlaps the running task.
                if not resident:
                    cache.fill(nxt.name, pinned={call.name})
                t_cfg = _replay_partial_config(executor, nxt.name, t)
        # The stage barrier: AllOf(task, config) resolves to the later
        # branch end; a hit (or the last call) waits on the task alone.
        if t_cfg is not None:
            t = t_cfg if t_cfg >= t_task else t_task
        else:
            t = t_task
    return t, n_configs


def replay_energy_components(
    trace: "CallTrace",
    *,
    t_config_full: float,
    t_config_partial: float,
    n_full: int,
    n_partial: int,
) -> tuple[float, float, float]:
    """Busy-second buckets for a fault-free run, by exact replay.

    Returns ``(task_s, config_full_s, config_partial_s)`` — the same
    left folds :meth:`repro.power.ledger.EnergyLedger.from_run`
    performs over a clean run's records: task times in call order, then
    ``n_full`` copies of the canonical full-configuration time and
    ``n_partial`` copies of the canonical partial time.  Because every
    addend is the identical Python float on both sides, the resulting
    buckets (and therefore the joule ledger derived from them) are
    bit-identical to the DES-annotated ones wherever
    :data:`EXACTNESS_PREDICATES` hold.
    """
    task_s = 0.0
    for call in trace:
        task_s = task_s + call.task.time
    full_s = 0.0
    for _ in range(n_full):
        full_s = full_s + t_config_full
    part_s = 0.0
    for _ in range(n_partial):
        part_s = part_s + t_config_partial
    return task_s, full_s, part_s


# -- grid-point fast paths --------------------------------------------------


def replay_comparison_speedup(
    trace: "CallTrace",
    *,
    floorplan: "Floorplan | None" = None,
    estimated: bool = False,
    control_time: float | None = None,
    decision_time: float = 0.0,
    force_miss: bool = False,
    bitstream_bytes: int | None = None,
    node_kwargs: dict[str, Any] | None = None,
) -> float:
    """The :attr:`ComparisonResult.speedup` a DES ``compare()`` would
    report, computed by replay.

    Signature mirrors :func:`repro.rtr.runner.compare` (minus
    ``detailed_io``, which the ``uniform-io`` predicate excludes).  The
    caller must have checked :func:`comparison_verdicts`.
    """
    from ..rtr.frtr import FrtrExecutor
    from ..rtr.prtr import PrtrExecutor
    from ..rtr.runner import make_node

    kwargs = node_kwargs or {}
    frtr_node = make_node(floorplan, **kwargs)
    prtr_node = make_node(floorplan, **kwargs)
    frtr_total = replay_frtr(
        FrtrExecutor(
            frtr_node, estimated=estimated, control_time=control_time
        ),
        trace,
    )
    prtr_total, _ = replay_prtr(
        PrtrExecutor(
            prtr_node,
            estimated=estimated,
            control_time=control_time,
            decision_time=decision_time,
            force_miss=force_miss,
            bitstream_bytes=bitstream_bytes,
        ),
        trace,
    )
    if prtr_total <= 0:
        raise ZeroDivisionError("PRTR replay has zero total time")
    return frtr_total / prtr_total


def replay_fault_point(
    fault_rate: float,
    hit_ratio: float = 0.0,
    *,
    n_calls: int = 30,
    task_time: float = 0.1,
    seed: int = 0,
    recovery: "RecoveryPolicy | None" = None,
) -> "FaultSweepPoint":
    """One fault-grid cell by replay — exact only where
    :func:`fault_point_verdicts` all hold (i.e. ``fault_rate`` is
    exactly zero, so retries, fallbacks and recovery time are zero by
    construction and MTTR/availability are their fault-free constants).

    Mirrors :func:`repro.analysis.reliability
    .effective_speedup_under_faults` field for field.
    """
    from ..analysis.reliability import FaultSweepPoint, trace_with_hit_ratio
    from ..faults.injector import FaultConfig, FaultInjector
    from ..rtr.frtr import FrtrExecutor
    from ..rtr.prtr import PrtrExecutor
    from ..rtr.runner import make_node

    verdicts = fault_point_verdicts(fault_rate, seed)
    if not closed_form_exact(verdicts):
        failed = sorted(k for k, ok in verdicts.items() if not ok)
        raise ValueError(
            f"fault point rate={fault_rate!r} is not analytically exact "
            f"(failed predicates: {failed}); run the DES instead"
        )
    trace = trace_with_hit_ratio(hit_ratio, n_calls, task_time)
    config = FaultConfig(chunk_abort_rate=fault_rate, seed=seed)

    frtr_node = make_node(fault_injector=FaultInjector(config))
    frtr_total = replay_frtr(FrtrExecutor(frtr_node, recovery=recovery), trace)

    prtr_node = make_node(fault_injector=FaultInjector(config))
    prtr_executor = PrtrExecutor(prtr_node, recovery=recovery)
    prtr_total, n_configs = replay_prtr(prtr_executor, trace)

    speedup = frtr_total / prtr_total if prtr_total > 0 else 0.0
    t_full = prtr_node.full_config_time(estimated=False)
    t_part = prtr_executor.partial_config_time(trace[0].name)
    achieved = 1.0 - n_configs / n_calls
    return FaultSweepPoint(
        fault_rate=fault_rate,
        target_hit_ratio=hit_ratio,
        hit_ratio=achieved,
        frtr_time=frtr_total,
        prtr_time=prtr_total,
        speedup=speedup,
        prtr_retries=0,
        prtr_fallbacks=0,
        prtr_degraded=False,
        mttr=0.0,
        availability=1.0 - 0.0 / prtr_total if prtr_total > 0 else 1.0,
        x_prtr=t_part / t_full,
        x_task=task_time / t_full,
    )


def shadow_check(
    samples: Sequence[HybridSample],
) -> None:
    """Assert every shadow sample agrees; raises ``InvariantError``.

    Thin wrapper over :func:`repro.runtime.invariants.audit_hybrid` —
    verification failures are *always* fatal (a wrong analytic answer is
    never acceptable output), independent of the strict-invariants flag.
    """
    from ..runtime.invariants import audit_hybrid

    audit_hybrid(samples).raise_if_strict(strict=True)
