"""Model parameters: raw (seconds) and normalized (Eq. 2's ``X`` variables).

The paper normalizes every time by the full configuration time ``T_FRTR``::

    X_y = T_y / T_FRTR

:class:`RawParameters` carries dimensional task/platform times measured on
(or simulated for) a platform; :meth:`RawParameters.normalized` converts to
the dimensionless :class:`ModelParameters` the equations consume.  All
fields of :class:`ModelParameters` accept numpy arrays and broadcast, so a
whole figure grid is one object.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

import numpy as np

__all__ = ["ModelParameters", "RawParameters", "as_array"]


def as_array(x: Any) -> np.ndarray:
    """Coerce scalars/sequences to a float64 ndarray (0-d for scalars)."""
    return np.asarray(x, dtype=np.float64)


def _check_nonneg(name: str, value: np.ndarray) -> None:
    if np.any(value < 0):
        raise ValueError(f"{name} must be >= 0 (got min {value.min()!r})")


@dataclass(frozen=True)
class ModelParameters:
    """Normalized parameters of the PRTR/FRTR execution model.

    Attributes
    ----------
    x_task:
        ``T_task / T_FRTR`` — average task time requirement.  Must be > 0.
    x_prtr:
        ``T_PRTR / T_FRTR`` — average partial configuration time.  In
        ``(0, 1]``: a partial bitstream is never larger than the full one.
    hit_ratio:
        ``H`` — fraction of calls whose module was successfully
        pre-fetched.  In ``[0, 1]``.
    x_control:
        ``T_control / T_FRTR`` — transfer-of-control overhead.  >= 0.
    x_decision:
        ``T_decision / T_FRTR`` — pre-fetch decision latency.  >= 0.

    All attributes may be numpy arrays; they broadcast against each other.
    """

    x_task: Any
    x_prtr: Any
    hit_ratio: Any = 0.0
    x_control: Any = 0.0
    x_decision: Any = 0.0

    def __post_init__(self) -> None:
        x_task = as_array(self.x_task)
        x_prtr = as_array(self.x_prtr)
        h = as_array(self.hit_ratio)
        x_control = as_array(self.x_control)
        x_decision = as_array(self.x_decision)
        if np.any(x_task <= 0):
            raise ValueError("x_task must be > 0")
        if np.any(x_prtr <= 0) or np.any(x_prtr > 1):
            raise ValueError("x_prtr must be in (0, 1]")
        if np.any(h < 0) or np.any(h > 1):
            raise ValueError("hit_ratio must be in [0, 1]")
        _check_nonneg("x_control", x_control)
        _check_nonneg("x_decision", x_decision)
        # Freeze the coerced arrays.
        object.__setattr__(self, "x_task", x_task)
        object.__setattr__(self, "x_prtr", x_prtr)
        object.__setattr__(self, "hit_ratio", h)
        object.__setattr__(self, "x_control", x_control)
        object.__setattr__(self, "x_decision", x_decision)
        np.broadcast(x_task, x_prtr, h, x_control, x_decision)  # raises if bad

    @property
    def miss_ratio(self) -> np.ndarray:
        """``M = 1 - H``."""
        return 1.0 - self.hit_ratio

    def with_(self, **kwargs: Any) -> "ModelParameters":
        """A copy with some fields replaced (named to avoid ``replace``)."""
        return replace(self, **kwargs)

    @property
    def shape(self) -> tuple[int, ...]:
        return np.broadcast(
            self.x_task,
            self.x_prtr,
            self.hit_ratio,
            self.x_control,
            self.x_decision,
        ).shape


@dataclass(frozen=True)
class RawParameters:
    """Dimensional platform/task times in seconds.

    Attributes
    ----------
    t_task:
        Average task execution time requirement ``T_task`` (I/O +
        compute, folded together exactly as the paper does).
    t_frtr:
        Full configuration time ``T_FRTR``.
    t_prtr:
        Average partial configuration time ``T_PRTR``.
    t_control, t_decision:
        Transfer-of-control and pre-fetch decision latencies.
    hit_ratio:
        Cache/prefetch hit ratio ``H``.
    """

    t_task: Any
    t_frtr: Any
    t_prtr: Any
    t_control: Any = 0.0
    t_decision: Any = 0.0
    hit_ratio: Any = 0.0

    def __post_init__(self) -> None:
        t_frtr = as_array(self.t_frtr)
        if np.any(t_frtr <= 0):
            raise ValueError("t_frtr must be > 0")
        for name in ("t_task", "t_prtr"):
            if np.any(as_array(getattr(self, name)) <= 0):
                raise ValueError(f"{name} must be > 0")
        for name in ("t_control", "t_decision"):
            _check_nonneg(name, as_array(getattr(self, name)))

    def normalized(self) -> ModelParameters:
        """Normalize by ``t_frtr`` (Eq. 2's change of variables)."""
        t_frtr = as_array(self.t_frtr)
        return ModelParameters(
            x_task=as_array(self.t_task) / t_frtr,
            x_prtr=as_array(self.t_prtr) / t_frtr,
            hit_ratio=self.hit_ratio,
            x_control=as_array(self.t_control) / t_frtr,
            x_decision=as_array(self.t_decision) / t_frtr,
        )
