"""PRTR total-time model — Eqs. (3), (4) and (5) of the paper.

Under Partial Run-Time Reconfiguration the run starts with one pre-fetch
decision and one full configuration (the static design plus the first
module), then each of the ``n_calls`` calls pays a transfer of control and
one of two pipeline-stage costs:

* a **missed** call (probability ``M``) — the partial reconfiguration of
  the module overlaps the preceding execution; the stage costs the longer
  of the two: ``max(X_task + X_decision, X_PRTR)``;
* a **hit** call (probability ``H``) — the module is already on the
  fabric; the stage costs ``X_task + X_decision``.

Eq. (5), normalized by ``T_FRTR``::

    X_total^PRTR = (1 + X_decision)
                 + n * ( X_control
                       + M * max(X_task + X_decision, X_PRTR)
                       + H * (X_task + X_decision) )

The dimensional Eq. (3) is the same expression scaled by ``T_FRTR``.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from .parameters import ModelParameters, RawParameters, as_array

__all__ = [
    "prtr_total_normalized",
    "prtr_total_time",
    "prtr_per_call_normalized",
    "missed_stage_normalized",
    "hit_stage_normalized",
]


def missed_stage_normalized(params: ModelParameters) -> np.ndarray:
    """Per-call stage cost of a missed task (config overlaps prior work)."""
    return np.maximum(params.x_task + params.x_decision, params.x_prtr)


def hit_stage_normalized(params: ModelParameters) -> np.ndarray:
    """Per-call stage cost of a pre-fetched (hit) task."""
    return params.x_task + params.x_decision


def prtr_per_call_normalized(params: ModelParameters) -> np.ndarray:
    """The asymptotic per-call cost (the bracket of Eq. 5)."""
    m = params.miss_ratio
    h = params.hit_ratio
    return (
        params.x_control
        + m * missed_stage_normalized(params)
        + h * hit_stage_normalized(params)
    )


def prtr_total_normalized(params: ModelParameters, n_calls: Any) -> np.ndarray:
    """Eq. (5): startup term plus ``n`` pipeline stages."""
    n = as_array(n_calls)
    if np.any(n <= 0):
        raise ValueError("n_calls must be > 0")
    startup = 1.0 + params.x_decision
    return startup + n * prtr_per_call_normalized(params)


def prtr_total_time(raw: RawParameters, n_calls: Any) -> np.ndarray:
    """Eq. (3) in seconds (normalized Eq. 5 scaled back by ``T_FRTR``)."""
    return prtr_total_normalized(raw.normalized(), n_calls) * as_array(
        raw.t_frtr
    )
