"""Sensitivity of the asymptotic speedup to each model parameter.

Closed-form partial derivatives of Eq. (7),

    S_inf = F / D,   F = 1 + X_control + X_task,
    D = X_control + M * mx + H * ht,
    mx = max(X_task + X_decision, X_PRTR),  ht = X_task + X_decision,

give cheap first-order answers to the paper's design questions: is it
worth shrinking the PRRs further?  does improving the prefetcher pay?  how
much does the decision latency hurt?

At the branch kink (``X_task + X_decision = X_PRTR``) the derivative with
respect to ``x_task``/``x_decision``/``x_prtr`` is discontinuous; we
return the *right* (one-sided) derivative there, matching numpy's
``maximum`` tie-breaking used throughout the model.
"""

from __future__ import annotations

import numpy as np

from .parameters import ModelParameters, as_array
from .prtr import prtr_per_call_normalized

__all__ = [
    "dS_dH",
    "dS_dx_prtr",
    "dS_dx_task",
    "dS_dx_control",
    "dS_dx_decision",
    "gradient",
    "finite_difference",
]


def _fd(params: ModelParameters) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(F, D, on_left_branch) helper."""
    f = 1.0 + as_array(params.x_control) + as_array(params.x_task)
    d = prtr_per_call_normalized(params)
    ht = as_array(params.x_task) + as_array(params.x_decision)
    left = ht < as_array(params.x_prtr)
    return f, d, left


def dS_dH(params: ModelParameters) -> np.ndarray:
    """d S_inf / d H = -F * (ht - mx) / D^2 = F * (mx - ht) / D^2 >= 0.

    Raising the hit ratio never hurts; the gain is zero on the right
    branch (``X_task + X_decision >= X_PRTR``), which is the formal
    version of "prefetching efficiency only matters for small tasks".
    """
    f, d, _ = _fd(params)
    ht = as_array(params.x_task) + as_array(params.x_decision)
    mx = np.maximum(ht, as_array(params.x_prtr))
    return f * (mx - ht) / d**2


def dS_dx_prtr(params: ModelParameters) -> np.ndarray:
    """d S_inf / d X_PRTR = -F * M / D^2 on the left branch, else 0.

    Shrinking partial bitstreams only helps while the task is shorter
    than the partial configuration — the "fine-grained PRR" advice.
    """
    f, d, left = _fd(params)
    m = 1.0 - as_array(params.hit_ratio)
    return np.where(left, -f * m / d**2, 0.0)


def dS_dx_task(params: ModelParameters) -> np.ndarray:
    """d S_inf / d X_task.

    ``(D - F * w) / D^2`` with ``w`` the weight of ``x_task`` in ``D``:
    ``w = H`` on the left branch, ``w = 1`` on the right.
    """
    f, d, left = _fd(params)
    h = as_array(params.hit_ratio)
    w = np.where(left, h, 1.0)
    return (d - f * w) / d**2


def dS_dx_control(params: ModelParameters) -> np.ndarray:
    """d S_inf / d X_control = (D - F) / D^2 (negative whenever S > 1)."""
    f, d, _ = _fd(params)
    return (d - f) / d**2


def dS_dx_decision(params: ModelParameters) -> np.ndarray:
    """d S_inf / d X_decision = -F * w / D^2, ``w = H`` left, 1 right."""
    f, d, left = _fd(params)
    h = as_array(params.hit_ratio)
    w = np.where(left, h, 1.0)
    return -f * w / d**2


def gradient(params: ModelParameters) -> dict[str, np.ndarray]:
    """All partials in one dict keyed by parameter name."""
    return {
        "hit_ratio": dS_dH(params),
        "x_prtr": dS_dx_prtr(params),
        "x_task": dS_dx_task(params),
        "x_control": dS_dx_control(params),
        "x_decision": dS_dx_decision(params),
    }


def finite_difference(
    params: ModelParameters, field: str, eps: float = 1e-7
) -> np.ndarray:
    """Central finite-difference check of one partial (used in tests)."""
    from .speedup import asymptotic_speedup

    base = as_array(getattr(params, field))
    up = params.with_(**{field: base + eps})
    down = params.with_(**{field: np.maximum(base - eps, 0.0)})
    denom = as_array(getattr(up, field)) - as_array(getattr(down, field))
    return (asymptotic_speedup(up) - asymptotic_speedup(down)) / denom
