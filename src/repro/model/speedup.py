"""PRTR-over-FRTR speedup — Eqs. (6) and (7), the paper's headline result.

Finite-call speedup (Eq. 6)::

    S(n) = X_total^FRTR(n) / X_total^PRTR(n)

Asymptotic speedup (Eq. 7, ``n -> inf``)::

    S_inf = (1 + X_control + X_task) /
            ( X_control + M * max(X_task + X_decision, X_PRTR)
                        + H * (X_task + X_decision) )

Everything is vectorized; pass array-valued :class:`ModelParameters` to
evaluate whole figure grids in one call.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from .frtr import frtr_per_call_normalized, frtr_total_normalized
from .parameters import ModelParameters, RawParameters
from .prtr import prtr_per_call_normalized, prtr_total_normalized

__all__ = [
    "speedup",
    "asymptotic_speedup",
    "speedup_from_raw",
    "convergence_n",
]


def speedup(params: ModelParameters, n_calls: Any) -> np.ndarray:
    """Eq. (6): finite-``n`` speedup of PRTR relative to FRTR."""
    return frtr_total_normalized(params, n_calls) / prtr_total_normalized(
        params, n_calls
    )


def asymptotic_speedup(params: ModelParameters) -> np.ndarray:
    """Eq. (7): the ``n -> inf`` limit of Eq. (6).

    The PRTR startup term ``(1 + X_decision)`` amortizes away; what remains
    is the ratio of per-call costs.
    """
    return frtr_per_call_normalized(params) / prtr_per_call_normalized(params)


def speedup_from_raw(raw: RawParameters, n_calls: Any) -> np.ndarray:
    """Eq. (6) evaluated from dimensional (seconds) parameters."""
    return speedup(raw.normalized(), n_calls)


def convergence_n(
    params: ModelParameters, rel_tol: float = 0.01
) -> np.ndarray:
    """Smallest ``n`` for which ``S(n)`` is within ``rel_tol`` of ``S_inf``.

    Closed form: with ``a = 1 + X_decision`` (the PRTR startup term) and
    ``c = prtr_per_call``, ``S(n) = S_inf * n*c / (a + n*c)``, so the
    relative shortfall is ``a / (a + n*c)`` and::

        n >= a * (1 - tol) / (tol * c)

    Returns the (broadcast) ceiling as a float array.
    """
    if not 0 < rel_tol < 1:
        raise ValueError("rel_tol must be in (0, 1)")
    a = 1.0 + params.x_decision
    c = prtr_per_call_normalized(params)
    n = a * (1.0 - rel_tol) / (rel_tol * c)
    return np.ceil(np.maximum(n, 1.0))
