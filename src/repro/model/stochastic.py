"""Heterogeneous task times: beyond the paper's average-based model.

Section 3.1 characterizes every task by a single average requirement
``T_task``.  Real call streams mix fast and slow tasks, and Eq. (7) is
*nonlinear* in the task time (the ``max`` kink), so evaluating the model
at the mean is not the same as the true long-run speedup:

    S_true = E[FRTR per-call cost] / E[PRTR per-call cost]

with the expectations over the task-time distribution.  Because
``max(x + X_d, X_PRTR)`` is convex in ``x``, Jensen's inequality gives
``E[max(...)] >= max(E[...])``: **the average-based model systematically
over-estimates the PRTR speedup** whenever the distribution straddles the
partial-configuration time (it is exact when all mass sits on one side of
the kink and ``H`` doesn't re-weight anything).

This module provides:

* parametric task-time samplers (:func:`sample_task_times`) keyed by mean
  and coefficient of variation;
* the exact heterogeneous asymptotic speedup from samples
  (:func:`heterogeneous_speedup`) and its finite-``n`` analogue;
* a closed form for uniformly distributed task times
  (:func:`uniform_heterogeneous_speedup`) used to validate the Monte
  Carlo path;
* :func:`jensen_gap`, the over-estimate of the average-based model.
"""

from __future__ import annotations

import numpy as np

from .parameters import ModelParameters, as_array

__all__ = [
    "resolve_rng",
    "sample_task_times",
    "heterogeneous_per_call",
    "heterogeneous_speedup",
    "heterogeneous_speedup_finite",
    "expected_max_uniform",
    "uniform_heterogeneous_speedup",
    "jensen_gap",
    "DISTRIBUTIONS",
]

DISTRIBUTIONS = ("deterministic", "uniform", "exponential", "lognormal",
                 "bimodal")


def resolve_rng(
    rng: np.random.Generator | int | None = None,
) -> np.random.Generator:
    """Resolve ``rng`` into a :class:`numpy.random.Generator`.

    Determinism contract (shared by every stochastic component in the
    repo — task-time samplers here, the fault injector in
    :mod:`repro.faults.injector`):

    * ``None`` means **seeded with 0**, not OS entropy.  Every run of the
      same code with default arguments therefore produces the same draws;
      nothing in this codebase is ever nondeterministic by default.
    * an ``int`` is used as the seed of a fresh ``default_rng``;
    * an existing :class:`~numpy.random.Generator` is returned as-is, so
      callers can share one stream across components (draw *order* then
      determines the realization — single-threaded DES keeps that order
      reproducible).
    """
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(0 if rng is None else rng)


def sample_task_times(
    kind: str,
    mean: float,
    cv: float,
    size: int,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Draw ``size`` task times with the given mean and coefficient of
    variation (sigma/mean).

    ``deterministic`` ignores ``cv``; ``exponential`` requires ``cv == 1``
    (its CV is fixed); ``uniform`` supports ``cv <= 1/sqrt(3)``;
    ``bimodal`` mixes two spikes at ``mean*(1 -/+ cv)`` (requires
    ``cv < 1``).  All outputs are strictly positive.
    """
    if mean <= 0:
        raise ValueError("mean must be > 0")
    if cv < 0:
        raise ValueError("cv must be >= 0")
    if size <= 0:
        raise ValueError("size must be >= 1")
    rng = resolve_rng(rng)

    if kind == "deterministic":
        return np.full(size, mean)
    if kind == "uniform":
        half = mean * cv * np.sqrt(3.0)
        if half >= mean:
            raise ValueError(
                f"uniform needs cv <= 1/sqrt(3) ~ 0.577 for positivity: {cv}"
            )
        return rng.uniform(mean - half, mean + half, size)
    if kind == "exponential":
        if not np.isclose(cv, 1.0):
            raise ValueError("the exponential distribution has cv = 1")
        return rng.exponential(mean, size) + 1e-300
    if kind == "lognormal":
        if cv == 0:
            return np.full(size, mean)
        sigma2 = np.log(1.0 + cv**2)
        mu = np.log(mean) - sigma2 / 2.0
        return rng.lognormal(mu, np.sqrt(sigma2), size)
    if kind == "bimodal":
        if not 0 <= cv < 1:
            raise ValueError(f"bimodal needs 0 <= cv < 1: {cv}")
        lo, hi = mean * (1.0 - cv), mean * (1.0 + cv)
        picks = rng.integers(0, 2, size)
        return np.where(picks == 0, lo, hi)
    raise ValueError(f"unknown distribution {kind!r}; have {DISTRIBUTIONS}")


def _base_scalars(params: ModelParameters) -> tuple[float, float, float, float]:
    vals = []
    for f in ("x_prtr", "hit_ratio", "x_control", "x_decision"):
        a = as_array(getattr(params, f))
        if a.size != 1:
            raise ValueError(
                f"stochastic analysis needs scalar {f}; got shape {a.shape}"
            )
        vals.append(float(a))
    return tuple(vals)  # type: ignore[return-value]


def heterogeneous_per_call(
    x_task_samples: np.ndarray, params: ModelParameters
) -> tuple[float, float]:
    """(E[FRTR per-call], E[PRTR per-call]) over the sample set.

    ``params.x_task`` is ignored; the samples are the task times.
    """
    x = np.asarray(x_task_samples, dtype=np.float64)
    if x.ndim != 1 or x.size == 0:
        raise ValueError("need a non-empty 1-D sample array")
    if np.any(x <= 0):
        raise ValueError("task-time samples must be > 0")
    p, h, xc, xd = _base_scalars(params)
    m = 1.0 - h
    frtr = 1.0 + xc + x
    prtr = xc + m * np.maximum(x + xd, p) + h * (x + xd)
    return float(frtr.mean()), float(prtr.mean())


def heterogeneous_speedup(
    x_task_samples: np.ndarray, params: ModelParameters
) -> float:
    """True long-run speedup over a heterogeneous call stream.

    The time-average ratio: total FRTR time over total PRTR time for the
    same (long) stream equals the ratio of per-call expectations.
    """
    frtr, prtr = heterogeneous_per_call(x_task_samples, params)
    return frtr / prtr


def heterogeneous_speedup_finite(
    x_task_samples: np.ndarray, params: ModelParameters
) -> float:
    """Finite-stream speedup: treats the samples as the literal trace.

    Exactly Eq. (6) generalized per call: the PRTR startup term is paid
    once, every sampled task contributes its own stage cost.
    """
    x = np.asarray(x_task_samples, dtype=np.float64)
    frtr_mean, prtr_mean = heterogeneous_per_call(x, params)
    _, _, _, xd = _base_scalars(params)
    n = x.size
    return (n * frtr_mean) / ((1.0 + xd) + n * prtr_mean)


def expected_max_uniform(a: float, b: float, p: float) -> float:
    """``E[max(X, p)]`` for ``X ~ Uniform(a, b)`` (closed form).

    Piecewise: ``p <= a`` -> mean; ``p >= b`` -> ``p``; else
    ``[p(p - a) + (b^2 - p^2)/2] / (b - a)``.
    """
    if b <= a:
        raise ValueError("need a < b")
    if p <= a:
        return (a + b) / 2.0
    if p >= b:
        return p
    # (b - p)(b + p)/2, not (b^2 - p^2)/2: the squared form cancels
    # catastrophically when the support is narrow (b - a near the ulp of
    # the mean), returning garbage where Monte Carlo stays exact.
    return (p * (p - a) + (b - p) * (b + p) / 2.0) / (b - a)


def uniform_heterogeneous_speedup(
    mean: float, cv: float, params: ModelParameters
) -> float:
    """Closed-form heterogeneous speedup for uniform task times."""
    half = mean * cv * np.sqrt(3.0)
    if half >= mean:
        raise ValueError("uniform needs cv < 1/sqrt(3)")
    p, h, xc, xd = _base_scalars(params)
    m = 1.0 - h
    a, b = mean - half, mean + half
    if a == b:
        e_max = max(a + xd, p)
    else:
        e_max = expected_max_uniform(a + xd, b + xd, p)
    frtr = 1.0 + xc + mean
    prtr = xc + m * e_max + h * (mean + xd)
    return frtr / prtr


def jensen_gap(
    x_task_samples: np.ndarray, params: ModelParameters
) -> float:
    """How much the paper's average-based Eq. (7) over-estimates.

    Returns ``S_mean_based - S_true`` (>= 0 up to Monte-Carlo noise):
    evaluating the model at the mean task time under-counts the
    configuration exposure of the fast tasks in the mix.
    """
    from .speedup import asymptotic_speedup

    x = np.asarray(x_task_samples, dtype=np.float64)
    mean_based = float(
        asymptotic_speedup(params.with_(x_task=float(x.mean())))
    )
    true = heterogeneous_speedup(x, params)
    return mean_based - true
