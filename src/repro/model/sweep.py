"""Parameter-sweep helpers for regenerating the paper's figures.

A *sweep* is a set of named 1-D axes expanded to a broadcastable grid of
:class:`~repro.model.parameters.ModelParameters`, evaluated in one
vectorized call.  :func:`figure5_grid` builds exactly the grid behind the
paper's Figure 5; :func:`figure9_grid` builds the task-time sweeps behind
Figure 9.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

import numpy as np

from .parameters import ModelParameters, as_array
from .speedup import asymptotic_speedup, speedup

__all__ = [
    "SweepResult",
    "sweep_asymptotic",
    "sweep_finite",
    "log_task_axis",
    "figure5_grid",
    "figure9_grid",
]


@dataclass(frozen=True)
class SweepResult:
    """A labeled grid evaluation.

    ``axes`` maps axis name to its 1-D values (in grid order);
    ``values`` has shape ``tuple(len(a) for a in axes.values())``.
    """

    axes: Mapping[str, np.ndarray]
    values: np.ndarray
    name: str = "speedup"

    def __post_init__(self) -> None:
        expected = tuple(len(v) for v in self.axes.values())
        if self.values.shape != expected:
            raise ValueError(
                f"values shape {self.values.shape} != axes shape {expected}"
            )

    def series(self, **fixed: Any) -> tuple[np.ndarray, np.ndarray]:
        """Slice down to one free axis.

        Pass index values for every axis except one; returns
        ``(free_axis_values, curve)``.
        """
        names = list(self.axes)
        free = [n for n in names if n not in fixed]
        if len(free) != 1:
            # Name the axes the caller actually left unfixed — the hint
            # must list what to pin down (or, over-fixed, what to drop).
            hint = (
                f"fix all but one of {free!r}"
                if len(free) > 1
                else f"unfix one of {names!r}"
            )
            raise ValueError(
                f"need exactly one free axis, got {free!r} ({hint})"
            )
        idx = []
        for n in names:
            if n in fixed:
                axis = self.axes[n]
                where = np.nonzero(np.isclose(axis, fixed[n]))[0]
                if len(where) == 0:
                    raise KeyError(
                        f"value {fixed[n]!r} not on axis {n!r} ({axis!r})"
                    )
                idx.append(int(where[0]))
            else:
                idx.append(slice(None))
        return self.axes[free[0]], self.values[tuple(idx)]

    def to_rows(self) -> list[dict[str, float]]:
        """Long-format rows (one per grid point) for CSV export."""
        names = list(self.axes)
        mesh = np.meshgrid(*self.axes.values(), indexing="ij")
        rows = []
        for flat_idx in range(self.values.size):
            idx = np.unravel_index(flat_idx, self.values.shape)
            row = {n: float(m[idx]) for n, m in zip(names, mesh)}
            row[self.name] = float(self.values[idx])
            rows.append(row)
        return rows


def _grid_params(axes: Mapping[str, Sequence[float]]) -> ModelParameters:
    """ModelParameters whose fields broadcast to the full grid."""
    allowed = {"x_task", "x_prtr", "hit_ratio", "x_control", "x_decision"}
    unknown = set(axes) - allowed
    if unknown:
        raise KeyError(f"unknown sweep axes: {sorted(unknown)}")
    names = list(axes)
    arrays = [as_array(list(axes[n])) for n in names]
    shaped = {}
    for i, (n, a) in enumerate(zip(names, arrays)):
        if a.ndim != 1:
            raise ValueError(f"axis {n!r} must be 1-D")
        shape = [1] * len(names)
        shape[i] = len(a)
        shaped[n] = a.reshape(shape)
    defaults = dict(
        x_task=1.0, x_prtr=1.0, hit_ratio=0.0, x_control=0.0, x_decision=0.0
    )
    defaults.update(shaped)
    return ModelParameters(**defaults)


def sweep_asymptotic(axes: Mapping[str, Sequence[float]]) -> SweepResult:
    """Evaluate Eq. (7) over the outer product of the given axes."""
    params = _grid_params(axes)
    values = np.broadcast_to(
        asymptotic_speedup(params),
        tuple(len(axes[n]) for n in axes),
    ).copy()
    return SweepResult(
        axes={n: as_array(list(v)) for n, v in axes.items()},
        values=values,
        name="asymptotic_speedup",
    )


def sweep_finite(
    axes: Mapping[str, Sequence[float]], n_calls: float
) -> SweepResult:
    """Evaluate Eq. (6) at fixed ``n_calls`` over the axes grid."""
    params = _grid_params(axes)
    values = np.broadcast_to(
        speedup(params, n_calls),
        tuple(len(axes[n]) for n in axes),
    ).copy()
    return SweepResult(
        axes={n: as_array(list(v)) for n, v in axes.items()},
        values=values,
        name=f"speedup_n{n_calls:g}",
    )


def log_task_axis(
    lo: float = 1e-3, hi: float = 1e2, points: int = 241
) -> np.ndarray:
    """The logarithmic ``X_task`` axis used by Figures 5 and 9."""
    if lo <= 0 or hi <= lo:
        raise ValueError("need 0 < lo < hi")
    if points < 2:
        raise ValueError("need at least 2 points")
    return np.logspace(np.log10(lo), np.log10(hi), points)


def figure5_grid(
    x_prtr_values: Sequence[float] = (0.012, 0.05, 0.17, 0.37, 0.7),
    hit_ratios: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
    x_task: Sequence[float] | None = None,
) -> SweepResult:
    """The Figure 5 family: ``S_inf`` vs ``X_task`` per (X_PRTR, H) pair.

    The paper plots the ``X_decision = X_control = 0`` ideal; axes default
    to the experimentally relevant ``X_PRTR`` values (the published
    estimated and measured points among them).
    """
    axis = log_task_axis() if x_task is None else as_array(list(x_task))
    return sweep_asymptotic(
        {
            "x_task": list(axis),
            "x_prtr": list(x_prtr_values),
            "hit_ratio": list(hit_ratios),
        }
    )


def figure9_grid(
    x_prtr: float,
    x_control: float,
    x_task: Sequence[float] | None = None,
    hit_ratio: float = 0.0,
    x_decision: float = 0.0,
) -> SweepResult:
    """One Figure 9 panel: the paper's no-prefetch experiment.

    ``H = 0, M = 1`` (every call reconfigures), finite control overhead,
    zero decision latency — the published Cray XD1 configuration.
    """
    axis = log_task_axis() if x_task is None else as_array(list(x_task))
    return sweep_asymptotic(
        {
            "x_task": list(axis),
            "x_prtr": [x_prtr],
            "hit_ratio": [hit_ratio],
            "x_control": [x_control],
            "x_decision": [x_decision],
        }
    )
