"""Observability: metrics, trace export, profiling, utilization reports.

The paper's whole argument is about *where time goes* — execution
profiles (Figs. 2-4), hit-ratio-driven bounds, ICAP throughput
measurements (Tables 1-2).  This package makes the same quantities
first-class observables of every simulated run:

:mod:`repro.obs.metrics`
    Counter/gauge/histogram registry with labeled series and a declared
    catalog.  Disabled by default; the disabled path is a no-op and
    runs are bit-identical to an uninstrumented build.
:mod:`repro.obs.tracing`
    Hierarchical spans over :class:`~repro.sim.trace.Timeline` and
    Chrome trace-event JSON export (``chrome://tracing`` / Perfetto),
    one lane per FPGA/ICAP/channel/blade.
:mod:`repro.obs.profile`
    DES hot-path profiling through the simulator's watchdog hook point
    and wall-clock phase accounting for sweep drivers.
:mod:`repro.obs.report`
    Utilization rollups: ICAP occupancy, hit-ratio timelines, blade
    Gantt summaries, configuration-bandwidth histograms vs Table 2.

CLI: ``repro trace --out trace.json`` and ``repro metrics``.  The
architecture and metric catalog are documented in
``docs/OBSERVABILITY.md``; ``docs/ARCHITECTURE.md`` places the package
in the system map.

Usage::

    from repro.obs import metrics

    with metrics.observed():
        result = compare(trace, force_miss=True)
    print(metrics.render())
"""

from __future__ import annotations

from . import metrics, profile, report, tracing
from .metrics import MetricsRegistry, observed
from .profile import EventProfiler, PhaseTimer, profiled
from .report import icap_occupancy, render_utilization
from .tracing import (
    SpanRecorder,
    chrome_trace_events,
    trace_document,
    validate_chrome_trace,
    write_chrome_trace,
)

__all__ = [
    "EventProfiler",
    "MetricsRegistry",
    "PhaseTimer",
    "SpanRecorder",
    "chrome_trace_events",
    "icap_occupancy",
    "metrics",
    "observed",
    "profile",
    "profiled",
    "render_utilization",
    "report",
    "trace_document",
    "tracing",
    "validate_chrome_trace",
    "write_chrome_trace",
]
