"""Lightweight metric registry: counters, gauges and histograms.

Every quantity the paper argues from — cache hits and misses (the hit
ratio ``H``), ICAP bytes and busy time (the Table 1/2 throughput
measurements), prefetch outcomes, recovery attempts, per-blade call
counts — is exported here as a *labeled series* so perf work can point
at numbers instead of anecdotes.

Design rules
------------
* **Opt-in, zero overhead when off.**  Observability is disabled by
  default.  The module-level factories (:func:`counter`, :func:`gauge`,
  :func:`histogram`) return the shared :data:`NULL` instrument while
  disabled: instrumentation sites pay one global-flag check and a no-op
  method call, and the simulation itself is never touched — disabled
  runs are bit-identical to an uninstrumented build.
* **A closed catalog.**  Every metric name must be declared in
  :data:`CATALOG` (name, kind, unit, labels, help, source).  Asking for
  an undeclared name raises — the catalog in ``docs/OBSERVABILITY.md``
  can therefore be checked for completeness by a test.
* **Pure measurement.**  Instruments never feed back into executor or
  simulator decisions; enabling observability must not change results.

Example
-------
>>> from repro.obs import metrics
>>> previous = metrics.set_enabled(True)
>>> metrics.reset()
>>> metrics.counter("repro_cache_events_total").inc(result="hit")
>>> metrics.snapshot()["repro_cache_events_total"]["series"]
{'result=hit': 1.0}
>>> _ = metrics.set_enabled(previous)
"""

from __future__ import annotations

import bisect
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterator, Mapping, Sequence

__all__ = [
    "CATALOG",
    "NULL",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricSpec",
    "MetricsRegistry",
    "counter",
    "disable",
    "enable",
    "enabled",
    "gauge",
    "get_registry",
    "histogram",
    "observed",
    "render",
    "reset",
    "set_enabled",
    "snapshot",
]


class MetricError(ValueError):
    """Raised for undeclared metric names or label/kind misuse."""


@dataclass(frozen=True)
class MetricSpec:
    """Declaration of one metric: the catalog row."""

    name: str
    kind: str  # "counter" | "gauge" | "histogram"
    help: str
    unit: str = ""
    labels: tuple[str, ...] = ()
    #: module that emits it (documentation only)
    source: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ("counter", "gauge", "histogram"):
            raise MetricError(f"unknown metric kind {self.kind!r}")


#: The metric catalog.  ``docs/OBSERVABILITY.md`` documents the same
#: rows; a test pins the two against each other.
CATALOG: dict[str, MetricSpec] = {
    spec.name: spec
    for spec in (
        # -- caching / prefetch --------------------------------------------
        MetricSpec(
            "repro_cache_events_total", "counter",
            "Configuration-cache lookups by outcome; hit ratio H is "
            "hit / (hit + miss).",
            unit="events", labels=("result",), source="repro.rtr.prtr",
        ),
        MetricSpec(
            "repro_prefetch_outcomes_total", "counter",
            "Lookahead (pre-fetch) decisions about the next call: "
            "'hit' (module resident, no work) or 'miss' (a partial "
            "reconfiguration was scheduled).",
            unit="decisions", labels=("result",), source="repro.rtr.prtr",
        ),
        # -- calls ----------------------------------------------------------
        MetricSpec(
            "repro_calls_total", "counter",
            "Function calls completed by an executor.",
            unit="calls", labels=("mode", "lane"), source="repro.rtr",
        ),
        MetricSpec(
            "repro_configurations_total", "counter",
            "(Re)configurations performed, by kind: 'full' (vendor "
            "SelectMap path) or 'partial' (ICAP controller path).",
            unit="configurations", labels=("kind",), source="repro.rtr",
        ),
        # -- ICAP controller -------------------------------------------------
        MetricSpec(
            "repro_icap_bytes_total", "counter",
            "Partial-bitstream bytes drained through the ICAP "
            "controller (compare Table 2 sizes).",
            unit="bytes", source="repro.hardware.icap_controller",
        ),
        MetricSpec(
            "repro_icap_busy_seconds_total", "counter",
            "Simulated seconds the ICAP mutex was held by a "
            "configuration (occupancy numerator).",
            unit="seconds", source="repro.hardware.icap_controller",
        ),
        MetricSpec(
            "repro_icap_configurations_total", "counter",
            "Partial configurations completed by the ICAP controller.",
            unit="configurations", source="repro.hardware.icap_controller",
        ),
        MetricSpec(
            "repro_icap_chunk_retransmits_total", "counter",
            "Bitstream chunks retransmitted after a CRC failure.",
            unit="chunks", source="repro.hardware.icap_controller",
        ),
        MetricSpec(
            "repro_icap_write_aborts_total", "counter",
            "ICAP state-machine write aborts (injected faults).",
            unit="aborts", source="repro.hardware.icap_controller",
        ),
        # -- faults / recovery ----------------------------------------------
        MetricSpec(
            "repro_recovery_actions_total", "counter",
            "Recovery-policy decisions after failed configuration "
            "attempts, by action kind (retry/refetch/fallback_full/"
            "degrade/giveup).",
            unit="decisions", labels=("action",),
            source="repro.faults.recovery",
        ),
        MetricSpec(
            "repro_recovery_seconds_total", "counter",
            "Simulated seconds burned on failed attempts and backoff.",
            unit="seconds", source="repro.rtr",
        ),
        # -- cluster ---------------------------------------------------------
        MetricSpec(
            "repro_cluster_blades_degraded_total", "counter",
            "Blades that exhausted recovery and degraded mid-trace.",
            unit="blades", source="repro.rtr.cluster",
        ),
        MetricSpec(
            "repro_cluster_server_bytes_total", "counter",
            "Bytes served by the shared bitstream server.",
            unit="bytes", source="repro.rtr.cluster",
        ),
        # -- runs -------------------------------------------------------------
        MetricSpec(
            "repro_run_sim_seconds", "gauge",
            "Simulated makespan of the most recent run, per mode.",
            unit="seconds", labels=("mode",), source="repro.rtr",
        ),
        MetricSpec(
            "repro_run_events", "gauge",
            "DES events processed by the most recent run, per mode.",
            unit="events", labels=("mode",), source="repro.rtr",
        ),
        MetricSpec(
            "repro_compare_speedup", "gauge",
            "Measured FRTR/PRTR speedup of the most recent compare() "
            "(the Eq. 6 subject).",
            unit="ratio", source="repro.rtr.runner",
        ),
        MetricSpec(
            "repro_config_seconds", "histogram",
            "Distribution of per-(re)configuration durations, by kind.",
            unit="seconds", labels=("kind",), source="repro.rtr",
        ),
        MetricSpec(
            "repro_stage_seconds", "histogram",
            "Distribution of per-call stage times (CallRecord.end - "
            "CallRecord.start).",
            unit="seconds", labels=("mode",), source="repro.rtr",
        ),
        # -- runtime -----------------------------------------------------------
        MetricSpec(
            "repro_journal_records_total", "counter",
            "Checkpoint records appended to run journals.",
            unit="records", source="repro.runtime.journal",
        ),
        MetricSpec(
            "repro_watchdog_expirations_total", "counter",
            "Watchdog cancellations, by machine-readable reason.",
            unit="expirations", labels=("reason",),
            source="repro.runtime.watchdog",
        ),
        # -- service -----------------------------------------------------------
        MetricSpec(
            "repro_service_decisions_total", "counter",
            "Admission decisions per tenant, by verdict "
            "(admit/queue/shed).",
            unit="decisions", labels=("tenant", "decision"),
            source="repro.service.admission",
        ),
        MetricSpec(
            "repro_service_shed_total", "counter",
            "Requests shed per tenant, by reason (rate_limit/"
            "queue_full/overload/fault/power_cap).",
            unit="requests", labels=("tenant", "reason"),
            source="repro.service.admission",
        ),
        MetricSpec(
            "repro_service_completions_total", "counter",
            "Service requests completed, per tenant.",
            unit="requests", labels=("tenant",),
            source="repro.service.scheduler",
        ),
        MetricSpec(
            "repro_service_preemptions_total", "counter",
            "Checkpoint/evict preemptions suffered, per tenant.",
            unit="preemptions", labels=("tenant",),
            source="repro.service.scheduler",
        ),
        MetricSpec(
            "repro_service_latency_seconds", "histogram",
            "Arrival-to-completion latency of completed service "
            "requests, per tenant (the SLO subject).",
            unit="seconds", labels=("tenant",),
            source="repro.service.scheduler",
        ),
        MetricSpec(
            "repro_service_backlog_peak", "gauge",
            "Peak admitted-but-not-granted backlog observed during the "
            "most recent service run, per tenant.",
            unit="requests", labels=("tenant",),
            source="repro.service.scheduler",
        ),
        # -- power -------------------------------------------------------------
        MetricSpec(
            "repro_energy_total_joules", "gauge",
            "Total energy of the most recent powered run, per mode "
            "(the conserved ledger sum).",
            unit="joules", labels=("mode",), source="repro.power",
        ),
        MetricSpec(
            "repro_energy_static_joules", "gauge",
            "Static (always-on) energy of the most recent powered run: "
            "floorplan static draw x makespan, per mode.",
            unit="joules", labels=("mode",), source="repro.power",
        ),
        MetricSpec(
            "repro_energy_task_joules", "gauge",
            "Dynamic task-activity energy of the most recent powered "
            "run, per mode.",
            unit="joules", labels=("mode",), source="repro.power",
        ),
        MetricSpec(
            "repro_energy_config_joules", "gauge",
            "Reconfiguration-burst energy of the most recent powered "
            "run, per mode, by kind ('full' SelectMap loads vs "
            "'partial' ICAP loads).",
            unit="joules", labels=("mode", "kind"), source="repro.power",
        ),
        MetricSpec(
            "repro_energy_mean_watts", "gauge",
            "Mean draw (total energy / makespan) of the most recent "
            "powered run, per mode.",
            unit="watts", labels=("mode",), source="repro.power",
        ),
        # -- chaos -------------------------------------------------------------
        MetricSpec(
            "repro_chaos_breaker_transitions_total", "counter",
            "Circuit-breaker state transitions per failure domain, by "
            "destination state (closed/open/half_open).",
            unit="transitions", labels=("domain", "to"),
            source="repro.chaos.breakers",
        ),
        MetricSpec(
            "repro_chaos_migrations_total", "counter",
            "Checkpoint migrations off failed PRR slots, per tenant.",
            unit="migrations", labels=("tenant",),
            source="repro.service.scheduler",
        ),
        MetricSpec(
            "repro_chaos_brownout_epochs_total", "counter",
            "Brownout controller epoch transitions, by state "
            "(entered/exited).",
            unit="transitions", labels=("state",),
            source="repro.chaos.brownout",
        ),
    )
}

#: default histogram bucket boundaries (seconds; +inf is implicit)
DEFAULT_BUCKETS: tuple[float, ...] = (
    1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1.0, 3.0, 10.0,
)


def _label_key(
    spec: MetricSpec, labels: Mapping[str, str]
) -> tuple[str, ...]:
    if set(labels) != set(spec.labels):
        raise MetricError(
            f"{spec.name} expects labels {spec.labels!r}, "
            f"got {tuple(sorted(labels))!r}"
        )
    return tuple(str(labels[name]) for name in spec.labels)


def _series_name(spec: MetricSpec, key: tuple[str, ...]) -> str:
    if not spec.labels:
        return ""
    return ",".join(f"{n}={v}" for n, v in zip(spec.labels, key))


class Counter:
    """Monotonically increasing labeled series."""

    __slots__ = ("spec", "_series")

    def __init__(self, spec: MetricSpec) -> None:
        self.spec = spec
        self._series: dict[tuple[str, ...], float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        """Add ``amount`` (≥ 0) to the labeled series."""
        if amount < 0:
            raise MetricError(
                f"counter {self.spec.name} cannot decrease ({amount})"
            )
        key = _label_key(self.spec, labels)
        self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        """Current value of one labeled series (0 if never touched)."""
        return self._series.get(_label_key(self.spec, labels), 0.0)

    @property
    def total(self) -> float:
        """Sum across all label combinations."""
        return sum(self._series.values())

    def series(self) -> dict[str, float]:
        """All series as ``{"key=value,...": value}``."""
        return {
            _series_name(self.spec, k): v
            for k, v in sorted(self._series.items())
        }


class Gauge:
    """Last-write-wins labeled value (may go up or down)."""

    __slots__ = ("spec", "_series")

    def __init__(self, spec: MetricSpec) -> None:
        self.spec = spec
        self._series: dict[tuple[str, ...], float] = {}

    def set(self, value: float, **labels: str) -> None:
        """Overwrite the labeled series with ``value``."""
        self._series[_label_key(self.spec, labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        """Add ``amount`` (may be negative) to the labeled series."""
        key = _label_key(self.spec, labels)
        self._series[key] = self._series.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        """Subtract ``amount`` from the labeled series."""
        self.inc(-amount, **labels)

    def value(self, **labels: str) -> float:
        """Current value of one labeled series (0 if never set)."""
        return self._series.get(_label_key(self.spec, labels), 0.0)

    def series(self) -> dict[str, float]:
        """All series as ``{"key=value,...": value}``."""
        return {
            _series_name(self.spec, k): v
            for k, v in sorted(self._series.items())
        }


class Histogram:
    """Cumulative-bucket distribution with count and sum per series."""

    __slots__ = ("spec", "buckets", "_series")

    def __init__(
        self,
        spec: MetricSpec,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise MetricError("histogram needs at least one bucket bound")
        self.spec = spec
        self.buckets = bounds
        #: key -> [bucket counts (len+1, last is +inf), count, sum]
        self._series: dict[tuple[str, ...], list[Any]] = {}

    def observe(self, value: float, **labels: str) -> None:
        """Record one observation into the labeled series."""
        key = _label_key(self.spec, labels)
        state = self._series.get(key)
        if state is None:
            state = [[0] * (len(self.buckets) + 1), 0, 0.0]
            self._series[key] = state
        state[0][bisect.bisect_left(self.buckets, value)] += 1
        state[1] += 1
        state[2] += value

    def count(self, **labels: str) -> int:
        """Number of observations in one labeled series."""
        state = self._series.get(_label_key(self.spec, labels))
        return state[1] if state else 0

    def sum(self, **labels: str) -> float:
        """Sum of observed values in one labeled series."""
        state = self._series.get(_label_key(self.spec, labels))
        return state[2] if state else 0.0

    def series(self) -> dict[str, dict[str, Any]]:
        """All series with cumulative buckets, count, and sum."""
        out: dict[str, dict[str, Any]] = {}
        for key, (counts, count, total) in sorted(self._series.items()):
            out[_series_name(self.spec, key)] = {
                "buckets": dict(
                    zip([*map(str, self.buckets), "+inf"], counts)
                ),
                "count": count,
                "sum": total,
            }
        return out


class NullInstrument:
    """Shared no-op instrument returned while observability is off."""

    __slots__ = ()

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        """Discard."""

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        """Discard."""

    def set(self, value: float, **labels: str) -> None:
        """Discard."""

    def observe(self, value: float, **labels: str) -> None:
        """Discard."""


NULL = NullInstrument()

_KIND_CLASSES = {
    "counter": Counter,
    "gauge": Gauge,
    "histogram": Histogram,
}


class MetricsRegistry:
    """Instruments instantiated (lazily) from :data:`CATALOG`."""

    def __init__(self, catalog: Mapping[str, MetricSpec] = CATALOG) -> None:
        self.catalog = dict(catalog)
        self._instruments: dict[str, Any] = {}

    def _get(self, name: str, kind: str) -> Any:
        spec = self.catalog.get(name)
        if spec is None:
            raise MetricError(
                f"metric {name!r} is not declared in the catalog; "
                "add a MetricSpec to repro.obs.metrics.CATALOG "
                "(and docs/OBSERVABILITY.md)"
            )
        if spec.kind != kind:
            raise MetricError(
                f"metric {name!r} is a {spec.kind}, requested as {kind}"
            )
        inst = self._instruments.get(name)
        if inst is None:
            inst = _KIND_CLASSES[kind](spec)
            self._instruments[name] = inst
        return inst

    def counter(self, name: str) -> Counter:
        """The named counter (created on first use; name must be cataloged)."""
        return self._get(name, "counter")

    def gauge(self, name: str) -> Gauge:
        """The named gauge (created on first use; name must be cataloged)."""
        return self._get(name, "gauge")

    def histogram(self, name: str) -> Histogram:
        """The named histogram (created on first use; name must be cataloged)."""
        return self._get(name, "histogram")

    def reset(self) -> None:
        """Drop all recorded values (specs stay)."""
        self._instruments.clear()

    # -- export ------------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """JSON-serializable dump of every *touched* instrument."""
        out: dict[str, Any] = {}
        for name in sorted(self._instruments):
            inst = self._instruments[name]
            out[name] = {
                "kind": inst.spec.kind,
                "unit": inst.spec.unit,
                "series": inst.series(),
            }
        return out

    def render(self) -> str:
        """Human-readable table of every touched series."""
        rows: list[str] = []
        width = max(
            [len(n) for n in self._instruments] + [len("metric")]
        )
        rows.append(f"{'metric':<{width}}  series / value")
        rows.append("-" * (width + 30))
        for name in sorted(self._instruments):
            inst = self._instruments[name]
            series = inst.series()
            if not series:
                continue
            for label, value in series.items():
                if inst.spec.kind == "histogram":
                    shown = (
                        f"count={value['count']} sum={value['sum']:.6g}"
                    )
                else:
                    shown = f"{value:.6g}"
                unit = f" {inst.spec.unit}" if inst.spec.unit else ""
                label_part = f"{{{label}}} " if label else ""
                rows.append(
                    f"{name:<{width}}  {label_part}{shown}{unit}"
                )
        if len(rows) == 2:
            return "(no metrics recorded)"
        return "\n".join(rows)


# -- module-level state ----------------------------------------------------

_registry = MetricsRegistry()
_enabled = False


def get_registry() -> MetricsRegistry:
    """The process-global registry (records regardless of the flag)."""
    return _registry


def enabled() -> bool:
    """Whether observability is currently on."""
    return _enabled


def set_enabled(flag: bool) -> bool:
    """Turn observability on/off; returns the previous state."""
    global _enabled
    previous = _enabled
    _enabled = bool(flag)
    return previous


def enable() -> None:
    """Turn observability on."""
    set_enabled(True)


def disable() -> None:
    """Turn observability off (recorded values are kept)."""
    set_enabled(False)


def reset() -> None:
    """Clear every recorded value in the global registry."""
    _registry.reset()


@contextmanager
def observed(fresh: bool = True) -> Iterator[MetricsRegistry]:
    """Enable observability for a ``with`` block (and reset by default)."""
    if fresh:
        reset()
    previous = set_enabled(True)
    try:
        yield _registry
    finally:
        set_enabled(previous)


def counter(name: str) -> Any:
    """The named counter — or :data:`NULL` while observability is off."""
    if not _enabled:
        return NULL
    return _registry.counter(name)


def gauge(name: str) -> Any:
    """The named gauge — or :data:`NULL` while observability is off."""
    if not _enabled:
        return NULL
    return _registry.gauge(name)


def histogram(name: str) -> Any:
    """The named histogram — or :data:`NULL` while observability is off."""
    if not _enabled:
        return NULL
    return _registry.histogram(name)


def snapshot() -> dict[str, Any]:
    """Snapshot of the global registry (empty dict when disabled)."""
    if not _enabled:
        return {}
    return _registry.snapshot()


def render() -> str:
    """Human-readable table of the global registry."""
    return _registry.render()
