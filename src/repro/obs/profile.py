"""DES hot-path profiling and wall-clock phase accounting.

Two complementary instruments for finding where *host* time goes (the
simulated clock is already fully observable through timelines):

* :class:`EventProfiler` — rides the simulator's existing watchdog hook
  point (:attr:`repro.sim.engine.Simulator.watchdog`): the kernel calls
  ``after_event(sim)`` after every dispatched event, and the profiler
  attributes the wall-clock gap since the previous hook call to the
  event just processed, keyed by its process's *event type* (the
  process name with indices stripped, so ``task17`` and ``cfg3`` fold
  into ``task`` and ``cfg``).  An existing watchdog can be chained, so
  profiling composes with deadline cancellation.
* :class:`PhaseTimer` — coarse wall-clock accounting for multi-phase
  drivers (sweeps: setup / simulate / audit / write), a context-manager
  per phase with an injectable clock.

Profiling is measurement only — neither class influences scheduling, so
a profiled run produces the same :class:`~repro.rtr.events.RunResult`
as an unprofiled one (a test pins this).
"""

from __future__ import annotations

import re
import time
from contextlib import contextmanager
from typing import Any, Callable, Iterator

__all__ = ["EventProfiler", "PhaseTimer", "event_type", "profiled"]

_INDEX_RE = re.compile(r"\d+")


def event_type(process_name: str) -> str:
    """Fold a process name into its type: strip indices, keep structure.

    >>> event_type("task17")
    'task'
    >>> event_type("blade3:wave2")
    'blade:wave'
    >>> event_type("")
    '(anonymous)'
    """
    folded = _INDEX_RE.sub("", process_name).strip("-")
    return folded or "(anonymous)"


class EventProfiler:
    """Watchdog-slot hook measuring wall time per DES event type.

    Parameters
    ----------
    chain:
        Optional watchdog-shaped object whose ``after_event(sim)`` runs
        after the measurement (so deadlines still fire under profiling).
    clock:
        Monotonic wall-clock source, injectable for tests.
    """

    def __init__(
        self,
        chain: Any = None,
        *,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.chain = chain
        self._clock = clock
        self._last_tick: float | None = None
        #: event type -> [count, total wall seconds]
        self.stats: dict[str, list[float]] = {}
        self.events = 0

    def start(self, sim: Any | None = None) -> "EventProfiler":
        """Arm the profiler (and any chained watchdog)."""
        self._last_tick = self._clock()
        if self.chain is not None and hasattr(self.chain, "start"):
            self.chain.start(sim)
        return self

    def after_event(self, sim: Any) -> None:
        """Per-event hook: attribute the gap to the event just run."""
        now = self._clock()
        if self._last_tick is None:
            self._last_tick = now
        elapsed = now - self._last_tick
        self._last_tick = now
        name = getattr(getattr(sim, "last_process", None), "name", "")
        key = event_type(name)
        entry = self.stats.get(key)
        if entry is None:
            self.stats[key] = [1, elapsed]
        else:
            entry[0] += 1
            entry[1] += elapsed
        self.events += 1
        if self.chain is not None:
            self.chain.after_event(sim)

    @property
    def total_seconds(self) -> float:
        """Total wall time attributed across all event types."""
        return sum(total for _count, total in self.stats.values())

    def top(self, n: int = 10) -> list[dict[str, Any]]:
        """The ``n`` costliest event types by total wall time."""
        rows = [
            {
                "event_type": key,
                "count": int(count),
                "total_s": total,
                "mean_us": (total / count * 1e6) if count else 0.0,
            }
            for key, (count, total) in self.stats.items()
        ]
        rows.sort(key=lambda r: (-r["total_s"], r["event_type"]))
        return rows[:n]

    def render(self, n: int = 10) -> str:
        """Text table of :meth:`top` (the hot-path summary)."""
        rows = self.top(n)
        if not rows:
            return "(no events profiled)"
        width = max(len(r["event_type"]) for r in rows)
        width = max(width, len("event type"))
        lines = [
            f"{'event type':<{width}}  {'events':>8}  "
            f"{'total ms':>10}  {'mean us':>9}"
        ]
        for r in rows:
            lines.append(
                f"{r['event_type']:<{width}}  {r['count']:>8}  "
                f"{r['total_s'] * 1e3:>10.3f}  {r['mean_us']:>9.3f}"
            )
        lines.append(
            f"{'(all)':<{width}}  {self.events:>8}  "
            f"{self.total_seconds * 1e3:>10.3f}"
        )
        return "\n".join(lines)


@contextmanager
def profiled(sim: Any, **kwargs: Any) -> Iterator[EventProfiler]:
    """Install an :class:`EventProfiler` on ``sim`` for a ``with`` block.

    Any watchdog already installed keeps working (it is chained), and
    the previous watchdog slot is restored on exit.
    """
    profiler = EventProfiler(chain=sim.watchdog, **kwargs)
    previous = sim.watchdog
    sim.watchdog = profiler.start(sim)
    try:
        yield profiler
    finally:
        sim.watchdog = previous


class PhaseTimer:
    """Wall-clock accounting across the named phases of a driver loop."""

    def __init__(
        self, *, clock: Callable[[], float] = time.perf_counter
    ) -> None:
        self._clock = clock
        #: phase -> [entries, total wall seconds]
        self.phases: dict[str, list[float]] = {}
        self._order: list[str] = []

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time a ``with`` block under ``name`` (re-entrant accumulates)."""
        start = self._clock()
        try:
            yield
        finally:
            elapsed = self._clock() - start
            entry = self.phases.get(name)
            if entry is None:
                self.phases[name] = [1, elapsed]
                self._order.append(name)
            else:
                entry[0] += 1
                entry[1] += elapsed

    @property
    def total_seconds(self) -> float:
        """Wall time across all phases."""
        return sum(total for _n, total in self.phases.values())

    def report(self) -> list[dict[str, Any]]:
        """Rows in first-entered order with share-of-total percentages."""
        total = self.total_seconds
        return [
            {
                "phase": name,
                "entries": int(self.phases[name][0]),
                "total_s": self.phases[name][1],
                "share_pct": (
                    100.0 * self.phases[name][1] / total if total else 0.0
                ),
            }
            for name in self._order
        ]

    def render(self) -> str:
        """Phase table as text."""
        rows = self.report()
        if not rows:
            return "(no phases timed)"
        width = max([len(r["phase"]) for r in rows] + [len("phase")])
        lines = [
            f"{'phase':<{width}}  {'entries':>7}  "
            f"{'total ms':>10}  {'share':>6}"
        ]
        for r in rows:
            lines.append(
                f"{r['phase']:<{width}}  {r['entries']:>7}  "
                f"{r['total_s'] * 1e3:>10.3f}  {r['share_pct']:>5.1f}%"
            )
        return "\n".join(lines)
