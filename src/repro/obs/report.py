"""Utilization rollups: where the simulated time actually went.

Post-processing over :class:`~repro.rtr.events.RunResult` /
``ClusterResult`` objects (duck-typed — this module never imports the
executors) that turns timelines into the operational summaries the
paper's argument needs:

* **ICAP occupancy** — what fraction of the run the configuration port
  was busy (the denominator of every "can prefetching hide this?"
  question);
* **hit-ratio timeline** — the achieved ``H`` as it converges over the
  run, not just the final scalar;
* **configuration-bandwidth rows** — effective bytes/second of every
  configuration span, comparable against the paper's published Table 2
  rows (e.g. dual-PRR: 404,168 bytes in 19.77 ms measured);
* **blade Gantt summary** — per-blade utilization of a cluster run.

Everything returns plain rows/floats; ``render_utilization`` composes
them into the text report the ``repro metrics`` CLI prints.
"""

from __future__ import annotations

from typing import Any

from ..hardware.catalog import PUBLISHED_TABLE2
from ..sim.trace import Phase

__all__ = [
    "blade_summary",
    "config_bandwidth_rows",
    "hit_ratio_timeline",
    "icap_occupancy",
    "lane_utilization",
    "published_bandwidth_rows",
    "render_utilization",
]

#: notes used by the executors on CONFIG spans, mapped to a bytes kind
_FULL_NOTES = ("full", "initial full", "fallback-full")


def lane_utilization(result: Any) -> dict[str, float]:
    """Busy fraction (union of spans / makespan) per timeline lane."""
    timeline = result.timeline
    makespan = timeline.makespan
    if makespan <= 0:
        return {lane: 0.0 for lane in timeline.lanes()}
    return {
        lane: timeline.busy_time(lane) / makespan
        for lane in timeline.lanes()
    }


def icap_occupancy(result: Any, lane: str = "icap") -> float:
    """Fraction of the run's makespan the ICAP lane was busy.

    Returns 0.0 when the run never used the ICAP (e.g. FRTR runs,
    single-PRR serial configurations land on the main lane).
    """
    return lane_utilization(result).get(lane, 0.0)


def hit_ratio_timeline(result: Any) -> list[tuple[float, float]]:
    """``(time, cumulative H)`` after each completed call, in call order.

    The final point equals ``result.hit_ratio``; earlier points show how
    fast the replacement/prefetch machinery converged.
    """
    points: list[tuple[float, float]] = []
    hits = 0
    for i, record in enumerate(result.records, start=1):
        hits += 1 if record.hit else 0
        points.append((record.end, hits / i))
    return points


def config_bandwidth_rows(
    result: Any,
    *,
    partial_bytes: int | None = None,
    full_bytes: int | None = None,
) -> list[dict[str, Any]]:
    """Effective bandwidth of every configuration span in the run.

    Bitstream sizes default to the published Table 2 dual-PRR partial
    (404,168 bytes) and the full image (2,381,764 bytes); pass the run's
    actual sizes when they differ.  Spans with zero duration or unknown
    kind are skipped.
    """
    if partial_bytes is None:
        partial_bytes = PUBLISHED_TABLE2["dual_prr"].bitstream_bytes
    if full_bytes is None:
        full_bytes = PUBLISHED_TABLE2["full"].bitstream_bytes
    rows: list[dict[str, Any]] = []
    for span in result.timeline.by_phase(Phase.CONFIG):
        kind = "full" if span.note in _FULL_NOTES else "partial"
        nbytes = full_bytes if kind == "full" else partial_bytes
        if span.duration <= 0:
            continue
        rows.append(
            {
                "kind": kind,
                "task": span.task,
                "lane": span.lane,
                "start": span.start,
                "seconds": span.duration,
                "bytes": nbytes,
                "mb_per_s": nbytes / span.duration / 1e6,
            }
        )
    return rows


def published_bandwidth_rows() -> list[dict[str, Any]]:
    """Effective configuration bandwidths implied by published Table 2."""
    rows = []
    for key, row in PUBLISHED_TABLE2.items():
        rows.append(
            {
                "layout": row.layout,
                "key": key,
                "bytes": row.bitstream_bytes,
                "measured_mb_per_s": (
                    row.bitstream_bytes / row.measured_time_s / 1e6
                ),
                "estimated_mb_per_s": (
                    row.bitstream_bytes / row.estimated_time_s / 1e6
                ),
            }
        )
    return rows


def blade_summary(cluster: Any) -> list[dict[str, Any]]:
    """One utilization row per blade (plus redistribution waves)."""
    makespan = cluster.makespan
    rows: list[dict[str, Any]] = []

    def add(run: Any, label: str) -> None:
        busy = run.timeline.busy_time()
        rows.append(
            {
                "blade": label,
                "calls": run.n_calls,
                "hit_ratio": run.hit_ratio,
                "busy_s": busy,
                "busy_pct": 100.0 * busy / makespan if makespan else 0.0,
                "degraded": run.degraded,
            }
        )

    for i, blade in enumerate(cluster.blades):
        add(blade, f"blade{i}")
    for wave in cluster.redistributed:
        add(wave, wave.trace_name)
    return rows


def _bandwidth_histogram(
    rows: list[dict[str, Any]], n_bins: int = 8, width: int = 40
) -> str:
    """ASCII histogram of effective configuration bandwidth (MB/s)."""
    values = [r["mb_per_s"] for r in rows]
    if not values:
        return "(no configuration spans)"
    lo, hi = min(values), max(values)
    if hi <= lo:
        return f"all {len(values)} configurations at {lo:.2f} MB/s"
    step = (hi - lo) / n_bins
    counts = [0] * n_bins
    for v in values:
        counts[min(int((v - lo) / step), n_bins - 1)] += 1
    peak = max(counts)
    lines = []
    for i, count in enumerate(counts):
        bar = "#" * max(
            1 if count else 0, round(width * count / peak)
        )
        lines.append(
            f"{lo + i * step:>9.2f}-{lo + (i + 1) * step:<9.2f} MB/s "
            f"|{bar:<{width}}| {count}"
        )
    return "\n".join(lines)


def render_utilization(
    result: Any,
    *,
    partial_bytes: int | None = None,
    full_bytes: int | None = None,
) -> str:
    """The full text rollup for one run (what ``repro metrics`` prints)."""
    lines = [f"run: {result.mode}:{result.trace_name}"]
    lines.append(
        f"  makespan            : {result.total_time:.6g} s "
        f"({result.n_calls} calls, hit ratio "
        f"H={result.hit_ratio:.3f})"
    )
    occupancy = icap_occupancy(result)
    lines.append(f"  ICAP occupancy      : {occupancy:.1%}")
    for lane, util in sorted(lane_utilization(result).items()):
        lines.append(f"  lane {lane:<14} : {util:.1%} busy")
    overhead = result.config_overhead()
    share = overhead / result.total_time if result.total_time else 0.0
    lines.append(
        f"  config overhead     : {overhead:.6g} s ({share:.1%} of run)"
    )
    timeline_points = hit_ratio_timeline(result)
    if timeline_points:
        mid = timeline_points[len(timeline_points) // 2]
        lines.append(
            f"  hit-ratio timeline  : H={timeline_points[0][1]:.2f} "
            f"(first) -> {mid[1]:.2f} (mid) -> "
            f"{timeline_points[-1][1]:.2f} (final)"
        )
    rows = config_bandwidth_rows(
        result, partial_bytes=partial_bytes, full_bytes=full_bytes
    )
    if rows:
        lines.append("  configuration bandwidth histogram:")
        for hist_line in _bandwidth_histogram(rows).splitlines():
            lines.append(f"    {hist_line}")
        lines.append("  published Table 2 reference points:")
        for ref in published_bandwidth_rows():
            lines.append(
                f"    {ref['layout']:<20} {ref['bytes']:>9} bytes  "
                f"measured {ref['measured_mb_per_s']:>8.2f} MB/s  "
                f"estimated {ref['estimated_mb_per_s']:>8.2f} MB/s"
            )
    return "\n".join(lines)
