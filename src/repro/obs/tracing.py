"""Hierarchical span recording and Chrome trace-event export.

:class:`~repro.sim.trace.Timeline` already records *flat* spans (the
paper's Fig. 2-4 execution profiles).  This module layers two things on
top:

* :class:`SpanRecorder` — a context-manager API for **nested** spans
  (``with rec.span("stage"): ...``); children carry their parent path so
  hierarchy survives in the flat span list;
* exporters that turn timelines and run results into **Chrome
  trace-event JSON** — the format ``chrome://tracing`` and Perfetto
  (https://ui.perfetto.dev) load directly.  Lanes become named threads,
  runs become named processes, and one simulated second maps to one
  trace second (timestamps are emitted in microseconds, the format's
  native unit).

The export is pure read-only post-processing: it never mutates the
timeline and works on completed, interrupted, and merged runs alike.

Example
-------
>>> from repro.sim.trace import Timeline
>>> tl = Timeline()
>>> _ = tl.add("config", 0.0, 1.5, lane="icap", task="sobel")
>>> doc = trace_document(chrome_trace_events(tl, process_name="demo"))
>>> sorted(doc) == ["displayTimeUnit", "traceEvents"]
True
"""

from __future__ import annotations

import json
from typing import Any, Iterator, Sequence
from contextlib import contextmanager

from ..sim.trace import Timeline

__all__ = [
    "SpanRecorder",
    "chrome_trace_events",
    "cluster_to_chrome",
    "comparison_to_chrome",
    "run_to_chrome",
    "trace_document",
    "validate_chrome_trace",
    "write_chrome_trace",
]

#: one simulated second in trace-event timestamp units (microseconds)
US_PER_S = 1e6

#: parent-path separator used in hierarchical span notes
PATH_SEP = "/"


class SpanRecorder:
    """Record nested spans into a :class:`Timeline`.

    The clock is injectable: pass ``clock=lambda: sim.now`` to record in
    simulated time (the default records nothing until a clock is given —
    there is deliberately no hidden wall-clock fallback, so traces stay
    deterministic).  Nesting is tracked per recorder; a child span's
    ``note`` holds the ``/``-joined path of its ancestors.
    """

    def __init__(
        self,
        clock: Any,
        timeline: Timeline | None = None,
        *,
        lane: str = "main",
    ) -> None:
        self.clock = clock
        self.timeline = timeline if timeline is not None else Timeline()
        self.lane = lane
        self._stack: list[str] = []

    @property
    def depth(self) -> int:
        """Current nesting depth of open spans."""
        return len(self._stack)

    @contextmanager
    def span(
        self, phase: str, *, lane: str | None = None, task: str = ""
    ) -> Iterator[None]:
        """Time a block as one span; nests under any open spans."""
        parent = PATH_SEP.join(self._stack)
        self._stack.append(phase)
        start = float(self.clock())
        try:
            yield
        finally:
            end = float(self.clock())
            self._stack.pop()
            self.timeline.add(
                phase,
                start,
                end,
                lane=self.lane if lane is None else lane,
                task=task,
                note=parent,
            )


def _lane_tids(timeline: Timeline) -> dict[str, int]:
    return {lane: tid for tid, lane in enumerate(timeline.lanes(), start=1)}


def chrome_trace_events(
    timeline: Timeline,
    *,
    pid: int = 1,
    process_name: str = "",
    sort_index: int | None = None,
) -> list[dict[str, Any]]:
    """Convert one timeline into a list of Chrome trace events.

    Every lane becomes a named thread (``tid``) of process ``pid``;
    every span becomes a complete ("X") event whose ``args`` carry the
    task and note fields.  Metadata ("M") events name the process and
    threads so Perfetto's track labels are readable.
    """
    events: list[dict[str, Any]] = []
    if process_name:
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": process_name},
            }
        )
    if sort_index is not None:
        events.append(
            {
                "name": "process_sort_index",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"sort_index": sort_index},
            }
        )
    tids = _lane_tids(timeline)
    for lane, tid in tids.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": lane},
            }
        )
    for span in sorted(
        timeline.spans, key=lambda s: (s.start, s.lane, s.end)
    ):
        args: dict[str, Any] = {}
        if span.task:
            args["task"] = span.task
        if span.note:
            args["note"] = span.note
        events.append(
            {
                "name": span.phase,
                "cat": span.phase,
                "ph": "X",
                "ts": span.start * US_PER_S,
                "dur": span.duration * US_PER_S,
                "pid": pid,
                "tid": tids[span.lane],
                "args": args,
            }
        )
    return events


def trace_document(
    events: Sequence[dict[str, Any]],
) -> dict[str, Any]:
    """Wrap events in the JSON-object trace container format."""
    return {
        "traceEvents": list(events),
        "displayTimeUnit": "ms",
    }


def run_to_chrome(
    result: Any, *, pid: int = 1, sort_index: int | None = None
) -> list[dict[str, Any]]:
    """Events for one :class:`~repro.rtr.events.RunResult`."""
    name = f"{result.mode}:{result.trace_name}"
    if getattr(result, "interrupted", False):
        name += " (interrupted)"
    return chrome_trace_events(
        result.timeline,
        pid=pid,
        process_name=name,
        sort_index=sort_index,
    )


def comparison_to_chrome(comparison: Any) -> list[dict[str, Any]]:
    """Events for a paired FRTR/PRTR comparison: one process per run."""
    events = run_to_chrome(comparison.frtr, pid=1, sort_index=1)
    events.extend(run_to_chrome(comparison.prtr, pid=2, sort_index=2))
    return events


def cluster_to_chrome(cluster: Any) -> list[dict[str, Any]]:
    """Events for a cluster run: one process per blade (+ second waves)."""
    events: list[dict[str, Any]] = []
    pid = 1
    for blade in list(cluster.blades) + list(cluster.redistributed):
        events.extend(run_to_chrome(blade, pid=pid, sort_index=pid))
        pid += 1
    return events


def write_chrome_trace(path: str, events: Sequence[dict[str, Any]]) -> None:
    """Write events as a trace-document JSON file."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(trace_document(events), fh, indent=None, sort_keys=True)
        fh.write("\n")


def validate_chrome_trace(document: Any) -> list[str]:
    """Schema-check a trace document; returns a list of problems.

    This is the loadability contract the CLI and tests enforce: a
    document with no problems loads in ``chrome://tracing``/Perfetto.
    """
    problems: list[str] = []
    if not isinstance(document, dict):
        return [f"document must be a JSON object, got {type(document)!r}"]
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["document lacks a traceEvents array"]
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in ("X", "M"):
            problems.append(f"{where}: unsupported phase {ph!r}")
            continue
        for field_name in ("pid", "tid"):
            if not isinstance(ev.get(field_name), int):
                problems.append(f"{where}: missing integer {field_name!r}")
        if not isinstance(ev.get("name"), str) or not ev.get("name"):
            problems.append(f"{where}: missing name")
        if ph == "X":
            ts, dur = ev.get("ts"), ev.get("dur")
            if not isinstance(ts, (int, float)) or ts < 0:
                problems.append(f"{where}: bad ts {ts!r}")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: bad dur {dur!r}")
        elif ev.get("name") not in (
            "process_name",
            "process_sort_index",
            "thread_name",
            "thread_sort_index",
        ):
            problems.append(
                f"{where}: unknown metadata record {ev.get('name')!r}"
            )
    return problems
