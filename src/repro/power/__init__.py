"""Power modeling: energy ledgers, Pareto sweeps, power contracts.

The package answers what the paper's speedup bounds leave open — what
PRTR *costs* in energy (arXiv 1701.08849 shows reconfiguration bursts
are first-order).  Layers:

* :mod:`repro.power.model` — :class:`PowerModel`, the frozen calibrated
  constants (static per-PRR draw, dynamic-while-busy, per-port
  reconfiguration bursts);
* :mod:`repro.power.ledger` — :class:`EnergyLedger`, the deterministic
  joule account every executor run can carry in its notes;
* :mod:`repro.power.pareto` — the time-vs-energy Pareto frontier sweep
  behind the ``repro power`` CLI verb;
* :mod:`repro.power.contracts` — Nornir-shaped contracts (minimize
  energy under a deadline, maximize throughput under a power cap).

Power accounting follows the observability opt-in pattern
(:mod:`repro.obs.metrics`): it is **off by default**, and while off the
executors never touch a run's notes, so power-disabled runs stay
bit-identical to an unpowered build.  Enable per block::

    from repro import power
    with power.powered():
        result = PrtrExecutor(node).run(trace)
    result.notes["energy_total_j"]
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Any, Iterator

from .ledger import EnergyLedger
from .model import DEFAULT_POWER_MODEL, PowerModel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (rtr -> power)
    from ..rtr.events import RunResult
    from ..workloads.task import CallTrace

__all__ = [
    "DEFAULT_POWER_MODEL",
    "EnergyLedger",
    "PowerModel",
    "annotate_energy",
    "current_model",
    "enabled",
    "powered",
    "set_enabled",
]

# -- module-level opt-in state ----------------------------------------------

_enabled = False
_model: PowerModel = DEFAULT_POWER_MODEL


def enabled() -> bool:
    """Whether power accounting is currently on."""
    return _enabled


def current_model() -> PowerModel:
    """The model in effect (meaningful only while enabled)."""
    return _model


def set_enabled(
    flag: bool, model: PowerModel | None = None
) -> tuple[bool, PowerModel]:
    """Turn power accounting on/off; returns the previous state.

    ``model`` (default :data:`DEFAULT_POWER_MODEL`) selects the
    constants subsequent annotations integrate.
    """
    global _enabled, _model
    previous = (_enabled, _model)
    _enabled = bool(flag)
    _model = model if model is not None else DEFAULT_POWER_MODEL
    return previous


@contextmanager
def powered(model: PowerModel | None = None) -> Iterator[PowerModel]:
    """Enable power accounting for a ``with`` block."""
    previous = set_enabled(True, model)
    try:
        yield _model
    finally:
        set_enabled(*previous)


def annotate_energy(
    result: "RunResult", trace: "CallTrace", node: Any
) -> "RunResult":
    """Stamp a run's energy ledger into its notes (no-op while off).

    Called by the executors between finalization and the invariant
    audit, so a powered run reaches
    :func:`repro.runtime.invariants.audit_and_record` with its
    ``energy_*`` notes present and the ``energy-conservation`` check
    armed.  While power accounting is disabled the result is returned
    untouched — the bit-identity guarantee for unpowered runs.
    """
    if not _enabled:
        return result
    from ..obs import metrics as obsm

    n_prrs = node.floorplan.n_prrs
    ledger = EnergyLedger.from_run(
        result, trace, model=_model, n_prrs=n_prrs
    )
    result.notes.update(ledger.as_notes())
    obsm.gauge("repro_energy_total_joules").set(
        ledger.total_j, mode=result.mode
    )
    obsm.gauge("repro_energy_static_joules").set(
        ledger.static_j, mode=result.mode
    )
    obsm.gauge("repro_energy_task_joules").set(
        ledger.task_j, mode=result.mode
    )
    obsm.gauge("repro_energy_config_joules").set(
        ledger.config_full_j, mode=result.mode, kind="full"
    )
    obsm.gauge("repro_energy_config_joules").set(
        ledger.config_partial_j, mode=result.mode, kind="partial"
    )
    obsm.gauge("repro_energy_mean_watts").set(
        ledger.mean_w, mode=result.mode
    )
    return result
