"""Nornir-shaped power contracts over a completed power sweep.

The Nornir runtime arbitrates applications against declarative
contracts — ``PERF_COMPLETION_TIME`` (finish by a deadline) and
``POWER_BUDGET`` (stay under a draw cap).  This module answers the same
two questions over a :class:`~repro.power.pareto.PowerSweepPoint` grid:

* :func:`min_energy_under_deadline` — of the configurations meeting the
  completion-time deadline, the one burning the fewest joules;
* :func:`max_throughput_under_cap` — of the configurations whose mean
  draw respects the power cap, the fastest one (throughput is
  ``n_calls / T`` for a shared trace, so minimizing time maximizes it).

Selection is deterministic: feasibility uses ``<=`` against the bound
and ties break on a fixed key ordering, so two runs over the same grid
choose the same point bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .pareto import PowerSweepPoint

__all__ = [
    "ContractOutcome",
    "max_throughput_under_cap",
    "min_energy_under_deadline",
]


@dataclass(frozen=True)
class ContractOutcome:
    """The arbitration result for one contract over one sweep."""

    #: contract kind: ``min_energy_deadline`` / ``max_throughput_cap``
    contract: str
    #: the bound the caller supplied (seconds or watts)
    bound: float
    feasible: bool
    #: the winning configuration, ``None`` when nothing satisfies
    chosen: PowerSweepPoint | None
    #: human-readable verdict for the CLI report
    reason: str

    def summary_line(self) -> str:
        """One-line rendering for the ``repro power`` report."""
        if not self.feasible or self.chosen is None:
            return f"{self.contract}({self.bound:g}): INFEASIBLE - {self.reason}"
        p = self.chosen
        return (
            f"{self.contract}({self.bound:g}): prrs={p.n_prrs} "
            f"H={p.target_hit_ratio:g} T={p.prtr_time:.4f}s "
            f"E={p.prtr_energy_j:.4f}J P={p.prtr_mean_w:.4f}W"
        )


def _tiebreak(point: PowerSweepPoint) -> tuple[int, float]:
    """Deterministic final tie-break: fewer PRRs, lower target H."""
    return (point.n_prrs, point.target_hit_ratio)


def min_energy_under_deadline(
    points: Sequence[PowerSweepPoint], deadline_s: float
) -> ContractOutcome:
    """Minimize PRTR energy subject to ``T_PRTR <= deadline_s``."""
    if deadline_s <= 0:
        raise ValueError(f"deadline must be > 0: {deadline_s}")
    feasible = [p for p in points if p.prtr_time <= deadline_s]
    if not feasible:
        fastest = min((p.prtr_time for p in points), default=0.0)
        return ContractOutcome(
            contract="min_energy_deadline",
            bound=deadline_s,
            feasible=False,
            chosen=None,
            reason=(
                f"no swept configuration finishes within {deadline_s:g}s "
                f"(fastest: {fastest:.4f}s)"
            ),
        )
    chosen = min(
        feasible,
        key=lambda p: (p.prtr_energy_j, p.prtr_time, *_tiebreak(p)),
    )
    return ContractOutcome(
        contract="min_energy_deadline",
        bound=deadline_s,
        feasible=True,
        chosen=chosen,
        reason=f"{len(feasible)}/{len(points)} configurations feasible",
    )


def max_throughput_under_cap(
    points: Sequence[PowerSweepPoint], cap_w: float
) -> ContractOutcome:
    """Maximize throughput subject to mean draw ``<= cap_w`` watts.

    All points of one sweep share the trace, so the highest-throughput
    feasible configuration is the one with the smallest PRTR makespan.
    """
    if cap_w <= 0:
        raise ValueError(f"power cap must be > 0: {cap_w}")
    feasible = [p for p in points if p.prtr_mean_w <= cap_w]
    if not feasible:
        coolest = min((p.prtr_mean_w for p in points), default=0.0)
        return ContractOutcome(
            contract="max_throughput_cap",
            bound=cap_w,
            feasible=False,
            chosen=None,
            reason=(
                f"no swept configuration stays under {cap_w:g}W "
                f"(coolest: {coolest:.4f}W)"
            ),
        )
    chosen = min(
        feasible,
        key=lambda p: (p.prtr_time, p.prtr_energy_j, *_tiebreak(p)),
    )
    return ContractOutcome(
        contract="max_throughput_cap",
        bound=cap_w,
        feasible=True,
        chosen=chosen,
        reason=f"{len(feasible)}/{len(points)} configurations feasible",
    )
