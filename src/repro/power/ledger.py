"""Energy ledgers: deterministic joule accounting for a run.

An :class:`EnergyLedger` integrates a :class:`~repro.power.model
.PowerModel` over one run's simulated time and itemizes the result:

    total = static_w x makespan            (always-on fabric draw)
          + dynamic_task_w x SUM T_task    (task activity)
          + selectmap_burst_w x t_full     (full-bitstream streaming)
          + icap_burst_w x t_partial       (partial-bitstream streaming)

The ``energy-conservation`` invariant
(:func:`repro.runtime.invariants.audit_energy`) re-derives the total
from the components with exact ``==``, so every term here is computed
once, in one fixed fold order, and reused everywhere.

Bitwise reproducibility is the design constraint.  Clean (fault-free)
records are charged at the *canonical* per-configuration times the
executors publish in ``RunResult.notes`` (``t_config_full`` /
``t_config_partial``) rather than at the measured timeline spans —
a span duration is ``(t0 + x) - t0``, which IEEE-754 does not promise
equals ``x``, while the canonical times are the exact values the
closed-form replay (:func:`repro.model.hybrid.replay_energy_components`)
folds over.  Fault-affected records fall back to the measured,
recovery-inclusive times: retries and fallbacks must *burn* energy,
and the hybrid replay never applies to them anyway.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import TYPE_CHECKING

from ..sim.trace import Phase, Timeline
from .model import PowerModel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (rtr -> power)
    from ..rtr.events import RunResult
    from ..workloads.task import CallTrace

__all__ = ["EnergyLedger"]


@dataclass(frozen=True)
class EnergyLedger:
    """Itemized energy account (joules) for one run.

    Attributes
    ----------
    makespan:
        Simulated seconds the run covered (``RunResult.total_time``).
    static_w:
        Always-on draw the floorplan idles at
        (:meth:`~repro.power.model.PowerModel.static_power_w`).
    static_j, task_j, config_full_j, config_partial_j:
        The component integrals: static draw x makespan, task draw x
        busy task seconds, and burst draw x streaming seconds per port
        class.
    total_j:
        The conserved sum ``((static + task) + full) + partial`` —
        one fixed fold order, asserted exactly by the
        ``energy-conservation`` invariant.
    mean_w:
        Average draw ``total_j / makespan`` (0 for empty runs).
    """

    makespan: float
    static_w: float
    static_j: float
    task_j: float
    config_full_j: float
    config_partial_j: float
    total_j: float
    mean_w: float

    def __post_init__(self) -> None:
        for f in fields(self):
            if getattr(self, f.name) < 0:
                raise ValueError(
                    f"{f.name} must be >= 0: {getattr(self, f.name)}"
                )

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_components(
        cls,
        *,
        makespan: float,
        n_prrs: int,
        model: PowerModel,
        task_s: float,
        config_full_s: float,
        config_partial_s: float,
    ) -> "EnergyLedger":
        """Integrate the model over pre-folded busy-second buckets.

        This is the single place joules are derived from seconds; both
        the DES-side :meth:`from_run` and the closed-form replay path
        funnel through it so their ledgers agree bit-for-bit whenever
        their second-buckets do.
        """
        static_w = model.static_power_w(n_prrs)
        static_j = static_w * makespan
        task_j = model.dynamic_task_w * task_s
        full_j = model.port_burst_w("selectmap") * config_full_s
        part_j = model.port_burst_w("icap") * config_partial_s
        total_j = ((static_j + task_j) + full_j) + part_j
        mean_w = total_j / makespan if makespan > 0 else 0.0
        return cls(
            makespan=makespan,
            static_w=static_w,
            static_j=static_j,
            task_j=task_j,
            config_full_j=full_j,
            config_partial_j=part_j,
            total_j=total_j,
            mean_w=mean_w,
        )

    @classmethod
    def from_run(
        cls,
        result: "RunResult",
        trace: "CallTrace",
        *,
        model: PowerModel,
        n_prrs: int,
    ) -> "EnergyLedger":
        """Account one executor run record by record.

        Charging rules (the exact fold the replay mirrors):

        * task seconds: every non-failed record burns its call's
          ``T_task`` (a failed call never computed);
        * clean FRTR records burn the canonical ``t_config_full``;
          clean PRTR records burn ``t_config_partial`` iff a partial
          configuration ran during their stage (``config_time > 0`` —
          the pre-fetch for the *next* call), and the PRTR startup full
          load burns the ``startup_config`` note;
        * fault-affected records (retries, fallback-full, degradation)
          burn their *measured* times, which include the failed
          attempts and backoff — recovery consumes energy, never
          creates it.  Failed records charge their ``recovery_time``
          (their ``config_time`` is zero by convention).
        """
        notes = result.notes
        task_s = 0.0
        full_s = 0.0
        part_s = 0.0
        if result.mode == "prtr":
            # Startup full configuration (covers call 0's residency);
            # the measured note includes any startup recovery time.
            full_s = full_s + notes.get("startup_config", 0.0)
        for rec in result.records:
            if not rec.failed:
                task_s = task_s + trace.calls[rec.index].task.time
            affected = (
                rec.retries > 0
                or rec.fallback_full
                or rec.failed
                or rec.recovery_time > 0.0
            )
            if result.mode == "frtr":
                if affected:
                    full_s = full_s + (
                        rec.config_time
                        if rec.config_time > 0.0
                        else rec.recovery_time
                    )
                else:
                    full_s = full_s + notes["t_config_full"]
            else:
                if affected:
                    if rec.failed:
                        part_s = part_s + rec.recovery_time
                    elif rec.fallback_full:
                        full_s = full_s + rec.config_time
                    else:
                        part_s = part_s + rec.config_time
                elif rec.config_time > 0.0:
                    part_s = part_s + notes["t_config_partial"]
        return cls.from_components(
            makespan=result.total_time,
            n_prrs=n_prrs,
            model=model,
            task_s=task_s,
            config_full_s=full_s,
            config_partial_s=part_s,
        )

    @classmethod
    def from_timeline(
        cls,
        timeline: Timeline,
        *,
        makespan: float,
        model: PowerModel,
        n_prrs: int,
    ) -> "EnergyLedger":
        """Account a raw timeline (service / chaos runs).

        Service-mode runs interleave many tenants, so there is no
        per-record canonical time to charge; spans are integrated as
        measured.  ``config`` spans whose note mentions ``full`` burn
        the SelectMap burst, every other configuration burns the ICAP
        burst; ``task``/``compute`` spans burn the dynamic task draw.
        """
        task_s = 0.0
        full_s = 0.0
        part_s = 0.0
        for span in timeline:
            if span.phase in (Phase.TASK, Phase.COMPUTE):
                task_s = task_s + span.duration
            elif span.phase == Phase.CONFIG:
                if "full" in span.note:
                    full_s = full_s + span.duration
                else:
                    part_s = part_s + span.duration
        return cls.from_components(
            makespan=makespan,
            n_prrs=n_prrs,
            model=model,
            task_s=task_s,
            config_full_s=full_s,
            config_partial_s=part_s,
        )

    # -- export ------------------------------------------------------------

    def as_notes(self) -> dict[str, float]:
        """The ledger as ``RunResult.notes`` entries (all floats)."""
        return {
            "energy_total_j": self.total_j,
            "energy_static_j": self.static_j,
            "energy_task_j": self.task_j,
            "energy_config_full_j": self.config_full_j,
            "energy_config_partial_j": self.config_partial_j,
            "energy_static_w": self.static_w,
            "energy_mean_w": self.mean_w,
        }

    @classmethod
    def from_notes(cls, notes: dict[str, float], makespan: float) -> "EnergyLedger":
        """Rebuild a ledger from stamped notes (auditor convenience)."""
        return cls(
            makespan=makespan,
            static_w=notes["energy_static_w"],
            static_j=notes["energy_static_j"],
            task_j=notes["energy_task_j"],
            config_full_j=notes["energy_config_full_j"],
            config_partial_j=notes["energy_config_partial_j"],
            total_j=notes["energy_total_j"],
            mean_w=notes["energy_mean_w"],
        )
