"""Deterministic power model for the XD1 reconfigurable fabric.

The paper's speedup bounds (Eqs. 1-3) are silent on energy, yet DPR
power measurements (arXiv 1701.08849) show the reconfiguration path is
a first-order draw while it is active.  This module pins the repo's
power abstraction to three deterministic components:

* **static** — always-on draw of the configured fabric: a base term for
  the static region plus a per-PRR term for each partially
  reconfigurable region the floorplan carves out;
* **dynamic-while-busy** — extra draw while a hardware task computes
  (charged against ``T_task``, the paper's single per-task number);
* **reconfiguration burst** — extra draw while a configuration port is
  streaming a bitstream, keyed by port name (SelectMap full loads vs
  ICAP partial loads).

All constants live in one frozen dataclass so a model is a value: two
runs under the same :class:`PowerModel` produce bit-identical energy
ledgers (:mod:`repro.power.ledger`), and the model itself can be swept.
The watt figures below are calibrated to the XC2VP50-class numbers the
DPR overhead study reports — roughly a watt of static draw, under a
watt of task activity, and sub-watt configuration bursts.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

__all__ = ["PowerModel", "DEFAULT_POWER_MODEL"]


@dataclass(frozen=True)
class PowerModel:
    """Calibrated power constants (watts) for one platform.

    Attributes
    ----------
    static_base_w:
        Always-on draw of the static region (clock tree, bus macros,
        host interface) — charged over the whole makespan.
    static_prr_w:
        Additional always-on draw per partially reconfigurable region;
        a floorplan with ``n`` PRRs idles at
        ``static_base_w + n * static_prr_w``.
    dynamic_task_w:
        Extra draw while a hardware task is computing, charged against
        the task's ``T_task`` seconds.
    selectmap_burst_w:
        Extra draw while the vendor SelectMap port streams a (full)
        bitstream.
    jtag_burst_w:
        Extra draw while the JTAG port streams a bitstream (slowest
        port, lowest burst).
    icap_burst_w:
        Extra draw while the internal ICAP streams a partial bitstream.
    """

    static_base_w: float = 1.25
    static_prr_w: float = 0.15
    dynamic_task_w: float = 0.9
    selectmap_burst_w: float = 0.45
    jtag_burst_w: float = 0.2
    icap_burst_w: float = 0.35

    def __post_init__(self) -> None:
        for f in fields(self):
            if getattr(self, f.name) < 0:
                raise ValueError(
                    f"{f.name} must be >= 0: {getattr(self, f.name)}"
                )

    def static_power_w(self, n_prrs: int) -> float:
        """Always-on draw (W) of a floorplan with ``n_prrs`` regions."""
        if n_prrs < 0:
            raise ValueError(f"n_prrs must be >= 0: {n_prrs}")
        return self.static_base_w + n_prrs * self.static_prr_w

    def port_burst_w(self, port_name: str) -> float:
        """Reconfiguration-burst draw (W) for a named config port.

        Port names follow :mod:`repro.hardware.config_port`
        (``selectmap`` / ``jtag`` / ``icap``); unknown ports raise so a
        renamed port cannot silently draw zero.
        """
        try:
            return {
                "selectmap": self.selectmap_burst_w,
                "jtag": self.jtag_burst_w,
                "icap": self.icap_burst_w,
            }[port_name]
        except KeyError:
            raise KeyError(f"no burst-power entry for port {port_name!r}")

    def as_dict(self) -> dict[str, float]:
        """The constants as a plain dict (journal/report embedding)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


#: The calibrated defaults every sweep and service run shares.  Treat
#: these as platform facts: change them only with a recalibration note
#: in ``docs/POWER.md``.
DEFAULT_POWER_MODEL = PowerModel()
