"""The time-vs-energy Pareto sweep behind ``repro power``.

Each grid cell fixes a floorplan (``n_prrs`` uniform PRRs) and a target
hit ratio, runs the same trace under FRTR and PRTR, and records both
makespans and both energy ledgers.  More PRRs buy residency (fewer
partial reconfigurations, shorter makespan) at the price of static draw
— exactly the time/energy trade the Nornir contracts
(:mod:`repro.power.contracts`) arbitrate.

The sweep composes with the whole existing machinery:

* ``--workers N`` shards the grid across fork workers with bit-identical
  results (:func:`repro.runtime.crashsafe.run_checkpointed`);
* ``--resume`` replays journaled points after a kill, merging to the
  same bytes as an uninterrupted walk;
* ``--hybrid on|verify`` answers multi-PRR cells by exact closed-form
  replay (:func:`repro.model.hybrid.replay_prtr` plus
  :func:`repro.model.hybrid.replay_energy_components`) under the same
  exactness predicates the fault sweep uses; single-PRR cells fail
  ``overlap-applicable`` and always run the DES.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass
from typing import Callable, Sequence

from ..analysis.pareto import pareto_front
from ..analysis.reliability import trace_with_hit_ratio
from ..hardware.prr import uniform_prr_floorplan
from ..model.hybrid import (
    HybridMode,
    HybridSample,
    closed_form_exact,
    parse_hybrid_mode,
    power_point_verdicts,
    replay_energy_components,
    replay_frtr,
    replay_prtr,
    verification_sample,
)
from .ledger import EnergyLedger
from .model import DEFAULT_POWER_MODEL, PowerModel

__all__ = [
    "DEFAULT_PRR_COUNTS",
    "DEFAULT_POWER_HIT_RATIOS",
    "PowerSweepPoint",
    "crash_safe_power_sweep",
    "measure_power_point",
    "power_cell_modes",
    "power_pareto_front",
]

#: default swept floorplan sizes (1 PRR = the serial-fallback floor,
#: 4 PRRs = the largest uniform carve the XC2VP50 column budget admits)
DEFAULT_PRR_COUNTS: tuple[int, ...] = (1, 2, 3, 4)
#: default swept target hit ratios (the reliability-sweep span)
DEFAULT_POWER_HIT_RATIOS: tuple[float, ...] = (0.0, 0.5, 0.9)


@dataclass(frozen=True)
class PowerSweepPoint:
    """One cell of the PRR-count x hit-ratio power grid."""

    n_prrs: int
    target_hit_ratio: float
    #: hit ratio the PRTR run actually achieved (extra PRR slots turn
    #: intended misses into hits, so this can exceed the target)
    hit_ratio: float
    frtr_time: float
    prtr_time: float
    #: ``T_FRTR / T_PRTR`` on the shared trace
    speedup: float
    frtr_energy_j: float
    prtr_energy_j: float
    prtr_static_j: float
    prtr_task_j: float
    prtr_config_full_j: float
    prtr_config_partial_j: float
    prtr_mean_w: float
    #: partial reconfigurations the PRTR run paid for
    n_configs: int

    def as_row(self) -> dict[str, object]:
        """Flat row for the CLI table / CSV export."""
        return {
            "prrs": self.n_prrs,
            "H_target": self.target_hit_ratio,
            "H": self.hit_ratio,
            "T_frtr_s": self.frtr_time,
            "T_prtr_s": self.prtr_time,
            "speedup": self.speedup,
            "E_frtr_j": self.frtr_energy_j,
            "E_prtr_j": self.prtr_energy_j,
            "P_mean_w": self.prtr_mean_w,
            "configs": self.n_configs,
        }


def measure_power_point(
    n_prrs: int,
    hit_ratio: float,
    *,
    n_calls: int = 30,
    task_time: float = 0.1,
    seed: int = 0,
    model: PowerModel = DEFAULT_POWER_MODEL,
    hybrid: str = HybridMode.OFF,
) -> PowerSweepPoint:
    """Measure one grid cell: same trace, FRTR vs PRTR, shared model.

    ``hybrid="on"`` answers the cell by closed-form replay when
    :func:`repro.model.hybrid.power_point_verdicts` prove exactness
    (every multi-PRR cell — the sweep is fault-free by construction);
    ``"verify"`` additionally shadow-runs the DES and asserts the two
    points — times *and* joules — are identical.  ``seed`` only feeds
    the verify-mode shadow sampling; the cells themselves are
    deterministic.
    """
    mode = parse_hybrid_mode(hybrid)
    if mode != HybridMode.OFF and closed_form_exact(
        power_point_verdicts(n_prrs)
    ):
        point = _replayed_power_point(
            n_prrs, hit_ratio,
            n_calls=n_calls, task_time=task_time, model=model,
        )
        if mode == HybridMode.VERIFY:
            from ..runtime.invariants import audit_hybrid

            simulated = _simulated_power_point(
                n_prrs, hit_ratio,
                n_calls=n_calls, task_time=task_time, model=model,
            )
            label = f"power:prrs={n_prrs!r},H={hit_ratio!r}"
            audit_hybrid(
                [HybridSample(label, point, simulated)]
            ).raise_if_strict(strict=True)
        return point
    return _simulated_power_point(
        n_prrs, hit_ratio,
        n_calls=n_calls, task_time=task_time, model=model,
    )


def _simulated_power_point(
    n_prrs: int,
    hit_ratio: float,
    *,
    n_calls: int,
    task_time: float,
    model: PowerModel,
) -> PowerSweepPoint:
    """The pure-DES cell measurement (the ``hybrid=off`` path)."""
    from ..rtr.frtr import FrtrExecutor
    from ..rtr.prtr import PrtrExecutor
    from ..rtr.runner import make_node
    from . import powered

    trace = trace_with_hit_ratio(hit_ratio, n_calls, task_time)
    plan = uniform_prr_floorplan(n_prrs, 12)
    with powered(model):
        frtr = FrtrExecutor(make_node(plan)).run(trace)
        prtr = PrtrExecutor(make_node(plan)).run(trace)
    misses = sum(1 for rec in prtr.records if not rec.hit)
    return _build_point(
        n_prrs,
        hit_ratio,
        n_calls=n_calls,
        n_partial=misses,
        frtr_time=frtr.total_time,
        prtr_time=prtr.total_time,
        frtr_ledger=EnergyLedger.from_notes(frtr.notes, frtr.total_time),
        prtr_ledger=EnergyLedger.from_notes(prtr.notes, prtr.total_time),
    )


def _replayed_power_point(
    n_prrs: int,
    hit_ratio: float,
    *,
    n_calls: int,
    task_time: float,
    model: PowerModel,
) -> PowerSweepPoint:
    """One cell by exact closed-form replay (multi-PRR cells only).

    Folds the same float additions the DES-side ledger performs
    (:func:`repro.model.hybrid.replay_energy_components`), so the
    returned point — joules included — is bit-identical to the
    simulated one wherever the exactness predicates hold.
    """
    from ..rtr.frtr import FrtrExecutor
    from ..rtr.prtr import PrtrExecutor
    from ..rtr.runner import make_node

    trace = trace_with_hit_ratio(hit_ratio, n_calls, task_time)
    plan = uniform_prr_floorplan(n_prrs, 12)
    frtr_executor = FrtrExecutor(make_node(plan))
    frtr_time = replay_frtr(frtr_executor, trace)
    prtr_executor = PrtrExecutor(make_node(plan))
    prtr_time, n_partial = replay_prtr(prtr_executor, trace)

    t_full = prtr_executor.node.full_config_time(
        estimated=prtr_executor.estimated
    )
    t_part = prtr_executor.partial_config_time(trace[0].name)
    task_s, full_s, _ = replay_energy_components(
        trace,
        t_config_full=t_full,
        t_config_partial=t_part,
        n_full=len(trace),
        n_partial=0,
    )
    frtr_ledger = EnergyLedger.from_components(
        makespan=frtr_time, n_prrs=n_prrs, model=model,
        task_s=task_s, config_full_s=full_s, config_partial_s=0.0,
    )
    task_s, full_s, part_s = replay_energy_components(
        trace,
        t_config_full=t_full,
        t_config_partial=t_part,
        n_full=1,
        n_partial=n_partial,
    )
    prtr_ledger = EnergyLedger.from_components(
        makespan=prtr_time, n_prrs=n_prrs, model=model,
        task_s=task_s, config_full_s=full_s, config_partial_s=part_s,
    )
    return _build_point(
        n_prrs,
        hit_ratio,
        n_calls=n_calls,
        n_partial=n_partial,
        frtr_time=frtr_time,
        prtr_time=prtr_time,
        frtr_ledger=frtr_ledger,
        prtr_ledger=prtr_ledger,
    )


def _build_point(
    n_prrs: int,
    hit_ratio: float,
    *,
    n_calls: int,
    n_partial: int,
    frtr_time: float,
    prtr_time: float,
    frtr_ledger: EnergyLedger,
    prtr_ledger: EnergyLedger,
) -> PowerSweepPoint:
    """Assemble a point from values both measurement paths share."""
    return PowerSweepPoint(
        n_prrs=n_prrs,
        target_hit_ratio=hit_ratio,
        hit_ratio=1.0 - n_partial / n_calls,
        frtr_time=frtr_time,
        prtr_time=prtr_time,
        speedup=frtr_time / prtr_time if prtr_time > 0 else 0.0,
        frtr_energy_j=frtr_ledger.total_j,
        prtr_energy_j=prtr_ledger.total_j,
        prtr_static_j=prtr_ledger.static_j,
        prtr_task_j=prtr_ledger.task_j,
        prtr_config_full_j=prtr_ledger.config_full_j,
        prtr_config_partial_j=prtr_ledger.config_partial_j,
        prtr_mean_w=prtr_ledger.mean_w,
        n_configs=n_partial,
    )


def power_cell_modes(
    grid: Sequence[tuple[int, float]],
    hybrid: str,
    seed: int = 0,
) -> list[str]:
    """The per-cell hybrid mode for a ``(n_prrs, hit_ratio)`` grid.

    Mirrors :func:`repro.analysis.reliability.hybrid_cell_modes`:
    ``"verify"`` shadow-runs a seeded sample of the analytic cells
    (:func:`repro.model.hybrid.verification_sample`) and answers the
    rest with ``"on"``.  A pure function of ``(grid, hybrid, seed)``,
    so sharded and resumed walks pick identical samples.
    """
    mode = parse_hybrid_mode(hybrid)
    if mode != HybridMode.VERIFY:
        return [mode] * len(grid)
    exact = [
        i
        for i, cell in enumerate(grid)
        if closed_form_exact(power_point_verdicts(cell[0]))
    ]
    sampled = {exact[j] for j in verification_sample(len(exact), seed=seed)}
    return [
        HybridMode.VERIFY if i in sampled else HybridMode.ON
        for i in range(len(grid))
    ]


def power_pareto_front(
    points: Sequence[PowerSweepPoint],
) -> list[PowerSweepPoint]:
    """The time-vs-energy non-dominated subset (PRTR objectives)."""
    return pareto_front(
        points, lambda p: (p.prtr_time, p.prtr_energy_j)
    )


def crash_safe_power_sweep(
    run_dir: str,
    prr_counts: Sequence[int] = DEFAULT_PRR_COUNTS,
    hit_ratios: Sequence[float] = DEFAULT_POWER_HIT_RATIOS,
    *,
    n_calls: int = 30,
    task_time: float = 0.1,
    seed: int = 0,
    model: PowerModel = DEFAULT_POWER_MODEL,
    resume: bool = False,
    deadline_s: float | None = None,
    strict: bool | None = None,
    progress: Callable[[str], None] | None = None,
    workers: int = 1,
    hybrid: str = HybridMode.OFF,
):
    """The power grid with checkpoint/resume and energy auditing.

    Same contract as :func:`repro.runtime.crashsafe
    .crash_safe_fault_sweep`: row-major grid order (PRR counts outer,
    hit ratios inner), every point independently derived, so a killed
    run resumed under any worker count — or the other hybrid mode —
    merges to a bit-identical point list.  ``hybrid`` is deliberately
    left out of the resume meta for exactly that reason.  The completed
    sweep is audited point by point (``energy-conservation``) and the
    report written to ``<run_dir>/invariants.json``.
    """
    from ..runtime.crashsafe import SweepOutcome, run_checkpointed
    from ..runtime.invariants import audit_power_points
    from ..runtime.journal import atomic_write_text
    from ..runtime.watchdog import Watchdog

    meta = {
        "kind": "power_sweep",
        "prr_counts": [int(p) for p in prr_counts],
        "hit_ratios": [float(h) for h in hit_ratios],
        "n_calls": int(n_calls),
        "task_time": float(task_time),
        "seed": int(seed),
        "model": model.as_dict(),
    }
    grid = [(p, h) for p in prr_counts for h in hit_ratios]
    modes = dict(zip(grid, power_cell_modes(grid, hybrid, seed)))
    watchdog = (
        Watchdog(max_wall_s=deadline_s) if deadline_s is not None else None
    )
    outcome = run_checkpointed(
        run_dir,
        grid,
        lambda cell: measure_power_point(
            cell[0], cell[1],
            n_calls=n_calls, task_time=task_time, seed=seed,
            model=model, hybrid=modes[cell],
        ),
        key_of=lambda cell: f"prrs={cell[0]!r},H={cell[1]!r}",
        encode=asdict,
        decode=lambda payload: PowerSweepPoint(**payload),
        meta=meta,
        resume=resume,
        watchdog=watchdog,
        progress=progress,
        workers=workers,
    )
    audit = audit_power_points(outcome.results)
    atomic_write_text(
        os.path.join(run_dir, "invariants.json"),
        json.dumps(audit.as_dict(), indent=2) + "\n",
    )
    sweep = SweepOutcome(
        results=outcome.results,
        interrupted=outcome.interrupted,
        resumed_points=outcome.resumed_points,
        computed_points=outcome.computed_points,
        journal=outcome.journal,
        merge_audit=outcome.merge_audit,
        audit=audit,
    )
    audit.raise_if_strict(strict)
    return sweep
