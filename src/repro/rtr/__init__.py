"""Run-time reconfiguration executors (the paper's Figures 3 and 4).

:class:`~repro.rtr.frtr.FrtrExecutor` reconfigures the whole device per
call; :class:`~repro.rtr.prtr.PrtrExecutor` pipelines partial
reconfiguration against execution; :func:`~repro.rtr.runner.compare`
measures the speedup between them.
"""

from .cluster import ClusterResult, compare_cluster, run_cluster
from .events import CallRecord, RunResult
from .frtr import FrtrExecutor, run_frtr
from .multitask import (
    AppResult,
    AppSpec,
    MultitaskFrtrExecutor,
    MultitaskPrtrExecutor,
    MultitaskResult,
    compare_multitask,
)
from .prtr import PrtrExecutor, run_prtr
from .resilience import ConfigOutcome, resilient
from .runner import ComparisonResult, compare, make_node

__all__ = [
    "AppResult",
    "AppSpec",
    "CallRecord",
    "ClusterResult",
    "ComparisonResult",
    "ConfigOutcome",
    "FrtrExecutor",
    "MultitaskFrtrExecutor",
    "MultitaskPrtrExecutor",
    "MultitaskResult",
    "PrtrExecutor",
    "RunResult",
    "compare",
    "compare_cluster",
    "compare_multitask",
    "make_node",
    "resilient",
    "run_cluster",
    "run_frtr",
    "run_prtr",
]
