"""Cluster-scale execution: many blades, one bitstream server.

The Cray XD1 is a *parallel* machine — six blades per chassis, twelve
chassis per system.  At job launch every blade (re)configures its FPGA,
and all bitstreams come from the same place (the management host / shared
filesystem).  This module models that **configuration storm**:

* ``n`` independent blades (each a full :class:`~repro.hardware.node.
  XD1Node`) share one simulator clock;
* every (re)configuration first fetches its bitstream over a shared
  :class:`~repro.sim.resources.BandwidthChannel` backplane, then proceeds
  through the blade's local configuration path;
* a workload is a list of per-blade traces executed concurrently.

The scaling result this enables: FRTR moves the full bitstream
(2.4 MB x calls x blades) through the shared server and saturates it as
the machine grows, while PRTR's partial bitstreams are ~6x smaller *and*
mostly hidden behind execution — so PRTR's advantage **grows** with
cluster size.  This is the quantitative footing under the paper's claim
that PRTR matters most for large HPRC deployments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..faults.injector import FaultConfig, FaultInjector
from ..faults.recovery import RecoveryPolicy
from ..hardware.node import XD1Node
from ..hardware.prr import Floorplan, dual_prr_floorplan
from ..obs import metrics as obsm
from ..runtime.invariants import audit_cluster
from ..runtime.watchdog import Watchdog, WatchdogExpired
from ..sim.engine import Simulator
from ..sim.resources import BandwidthChannel
from ..workloads.task import CallTrace
from .events import RunResult
from .frtr import FrtrExecutor
from .prtr import PrtrExecutor

__all__ = ["ClusterResult", "run_cluster", "compare_cluster"]

#: default shared bitstream-server bandwidth: one RapidArray link's worth
#: (the management path is a single 2 GB/s pipe shared by every blade).
DEFAULT_SERVER_BANDWIDTH = 2e9


@dataclass
class ClusterResult:
    """Outcome of one cluster run."""

    mode: str
    blades: list[RunResult]
    makespan: float
    server_bytes: float
    server_busy_time: float
    notes: dict[str, float] = field(default_factory=dict)
    #: indices of blades that degraded (recovery exhausted mid-trace)
    degraded: list[int] = field(default_factory=list)
    #: second-wave runs that absorbed a degraded blade's leftover calls
    redistributed: list[RunResult] = field(default_factory=list)
    #: a watchdog cancelled the run mid-flight; blades are partial
    interrupted: bool = False
    #: cancellation reason (empty for completed runs)
    interrupt_reason: str = ""

    @property
    def n_blades(self) -> int:
        return len(self.blades)

    @property
    def total_calls(self) -> int:
        return sum(b.n_calls for b in self.blades)

    @property
    def completed_calls(self) -> int:
        """Calls that actually ran (degraded blades abandon their tail)."""
        done = sum(
            sum(1 for r in b.records if not r.failed) for b in self.blades
        )
        done += sum(
            sum(1 for r in w.records if not r.failed)
            for w in self.redistributed
        )
        return done

    @property
    def throughput(self) -> float:
        if self.makespan <= 0:
            raise ZeroDivisionError("empty run")
        return self.total_calls / self.makespan

    @property
    def server_utilization(self) -> float:
        return self.server_busy_time / self.makespan if self.makespan else 0.0

    def parallel_efficiency(self, single_blade_makespan: float) -> float:
        """``T(1) / (n * T(n))`` for a per-blade-constant workload."""
        if single_blade_makespan <= 0:
            raise ValueError("need a positive single-blade makespan")
        return single_blade_makespan / self.makespan


def run_cluster(
    traces: list[CallTrace],
    mode: str = "prtr",
    *,
    floorplan: Floorplan | None = None,
    server_bandwidth: float = DEFAULT_SERVER_BANDWIDTH,
    estimated: bool = False,
    control_time: float | None = None,
    force_miss: bool = False,
    bitstream_bytes: int | None = None,
    node_kwargs: dict[str, Any] | None = None,
    fault_config: FaultConfig | None = None,
    recovery: RecoveryPolicy | None = None,
    redistribute: bool = True,
    watchdog: Watchdog | None = None,
) -> ClusterResult:
    """Execute one trace per blade, all sharing the bitstream server.

    ``mode`` selects the per-blade executor (``"frtr"`` or ``"prtr"``).

    ``watchdog`` (a :class:`~repro.runtime.watchdog.Watchdog`) guards
    the shared clock: when a limit trips, the run cancels gracefully —
    every blade finalizes the calls it completed, redistribution is
    skipped, and the result comes back ``interrupted`` instead of the
    process hanging on a stalled simulation.

    With ``fault_config`` set, every blade gets its own
    :class:`~repro.faults.injector.FaultInjector` (seeded
    ``fault_config.seed + blade_index`` so the streams are independent but
    the whole cluster run stays reproducible), and the shared server
    channel gets one more for fetch corruption.  ``recovery`` is the
    per-blade recovery policy; if a blade still degrades and
    ``redistribute`` is true, its unfinished calls are re-spread
    round-robin over the surviving blades in a second wave on the same
    clock — the cluster-level graceful-degradation path.
    """
    if not traces:
        raise ValueError("need at least one per-blade trace")
    if mode not in ("frtr", "prtr"):
        raise ValueError(f"mode must be 'frtr' or 'prtr': {mode!r}")
    if server_bandwidth <= 0:
        raise ValueError("server_bandwidth must be positive")
    sim = Simulator()
    server = BandwidthChannel(
        sim, name="bitstream-server", rate=server_bandwidth
    )
    if fault_config is not None:
        # The server channel draws from its own stream, seeded past every
        # blade stream, so fetch corruption is independent of local faults.
        server.injector = FaultInjector(
            fault_config.reseeded(fault_config.seed + len(traces))
        )
    plan = floorplan or dual_prr_floorplan()

    def make_executor(node: XD1Node) -> FrtrExecutor | PrtrExecutor:
        if mode == "frtr":
            return FrtrExecutor(
                node,
                estimated=estimated,
                control_time=control_time,
                bitstream_source=server,
                recovery=recovery,
            )
        return PrtrExecutor(
            node,
            estimated=estimated,
            control_time=control_time,
            force_miss=force_miss,
            bitstream_bytes=bitstream_bytes,
            bitstream_source=server,
            recovery=recovery,
        )

    nodes: list[XD1Node] = []
    pendings = []
    for i, trace in enumerate(traces):
        injector = (
            FaultInjector(fault_config.reseeded(fault_config.seed + i))
            if fault_config is not None
            else None
        )
        node = XD1Node(
            sim, floorplan=plan, fault_injector=injector,
            **(node_kwargs or {}),
        )
        nodes.append(node)
        pendings.append(make_executor(node).launch(trace, lane=f"blade{i}"))
    start = sim.now
    if watchdog is not None:
        sim.watchdog = watchdog.start(sim)
    interrupted: str | None = None
    interrupt_kind = ""
    try:
        sim.run()
    except WatchdogExpired as exc:
        interrupted = str(exc)
        interrupt_kind = exc.reason
    blades = [p.finalize(interrupted=interrupted) for p in pendings]

    # -- graceful degradation: redistribute abandoned work ----------------
    degraded = [i for i, b in enumerate(blades) if b.degraded]
    redistributed: list[RunResult] = []
    notes: dict[str, float] = {}
    if degraded and interrupted is None:
        notes["n_degraded"] = float(len(degraded))
        healthy = [i for i in range(len(blades)) if i not in degraded]
        leftover = [
            call.task
            for i in degraded
            for call in list(traces[i])[blades[i].degraded_at:]
        ]
        if healthy and redistribute and leftover:
            notes["redistributed_calls"] = float(len(leftover))
            per_blade: dict[int, list[Any]] = {j: [] for j in healthy}
            for k, task in enumerate(leftover):
                per_blade[healthy[k % len(healthy)]].append(task)
            wave = []
            for j, tasks in per_blade.items():
                if not tasks:
                    continue
                extra = CallTrace(tasks, name=f"redistributed->blade{j}")
                wave.append(
                    make_executor(nodes[j]).launch(
                        extra, lane=f"blade{j}:wave2"
                    )
                )
            try:
                sim.run()
            except WatchdogExpired as exc:
                interrupted = str(exc)
                interrupt_kind = exc.reason
            redistributed = [
                p.finalize(interrupted=interrupted) for p in wave
            ]
        elif leftover:
            notes["abandoned_calls"] = float(len(leftover))
    sim.watchdog = None
    server.assert_no_overlap()
    if interrupted is not None:
        notes["interrupted"] = 1.0
    result = ClusterResult(
        mode=mode,
        blades=blades,
        makespan=sim.now - start,
        server_bytes=server.bytes_moved,
        server_busy_time=sum(
            iv.end - iv.start for iv in server.intervals
        ),
        notes=notes,
        degraded=degraded,
        redistributed=redistributed,
        interrupted=interrupted is not None,
        interrupt_reason=interrupted or "",
    )
    if degraded:
        obsm.counter("repro_cluster_blades_degraded_total").inc(
            len(degraded)
        )
    obsm.counter("repro_cluster_server_bytes_total").inc(
        server.bytes_moved
    )
    if interrupted is not None:
        obsm.counter("repro_watchdog_expirations_total").inc(
            reason=interrupt_kind or "unknown"
        )
    report = audit_cluster(result, sum(len(t) for t in traces))
    result.notes["invariant_violations"] = float(len(report.violations))
    return result


def compare_cluster(
    traces: list[CallTrace],
    **kwargs: Any,
) -> tuple[ClusterResult, ClusterResult]:
    """The same per-blade workload under FRTR and PRTR."""
    frtr = run_cluster(traces, mode="frtr", **{
        k: v for k, v in kwargs.items()
        if k not in ("force_miss", "bitstream_bytes")
    })
    prtr = run_cluster(traces, mode="prtr", **kwargs)
    return frtr, prtr
