"""Cluster-scale execution: many blades, one bitstream server.

The Cray XD1 is a *parallel* machine — six blades per chassis, twelve
chassis per system.  At job launch every blade (re)configures its FPGA,
and all bitstreams come from the same place (the management host / shared
filesystem).  This module models that **configuration storm**:

* ``n`` independent blades (each a full :class:`~repro.hardware.node.
  XD1Node`) share one simulator clock;
* every (re)configuration first fetches its bitstream over a shared
  :class:`~repro.sim.resources.BandwidthChannel` backplane, then proceeds
  through the blade's local configuration path;
* a workload is a list of per-blade traces executed concurrently.

The scaling result this enables: FRTR moves the full bitstream
(2.4 MB x calls x blades) through the shared server and saturates it as
the machine grows, while PRTR's partial bitstreams are ~6x smaller *and*
mostly hidden behind execution — so PRTR's advantage **grows** with
cluster size.  This is the quantitative footing under the paper's claim
that PRTR matters most for large HPRC deployments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..hardware.node import XD1Node
from ..hardware.prr import Floorplan, dual_prr_floorplan
from ..sim.engine import Simulator
from ..sim.resources import BandwidthChannel
from ..workloads.task import CallTrace
from .events import RunResult
from .frtr import FrtrExecutor
from .prtr import PrtrExecutor

__all__ = ["ClusterResult", "run_cluster", "compare_cluster"]

#: default shared bitstream-server bandwidth: one RapidArray link's worth
#: (the management path is a single 2 GB/s pipe shared by every blade).
DEFAULT_SERVER_BANDWIDTH = 2e9


@dataclass
class ClusterResult:
    """Outcome of one cluster run."""

    mode: str
    blades: list[RunResult]
    makespan: float
    server_bytes: float
    server_busy_time: float
    notes: dict[str, float] = field(default_factory=dict)

    @property
    def n_blades(self) -> int:
        return len(self.blades)

    @property
    def total_calls(self) -> int:
        return sum(b.n_calls for b in self.blades)

    @property
    def throughput(self) -> float:
        if self.makespan <= 0:
            raise ZeroDivisionError("empty run")
        return self.total_calls / self.makespan

    @property
    def server_utilization(self) -> float:
        return self.server_busy_time / self.makespan if self.makespan else 0.0

    def parallel_efficiency(self, single_blade_makespan: float) -> float:
        """``T(1) / (n * T(n))`` for a per-blade-constant workload."""
        if single_blade_makespan <= 0:
            raise ValueError("need a positive single-blade makespan")
        return single_blade_makespan / self.makespan


def run_cluster(
    traces: list[CallTrace],
    mode: str = "prtr",
    *,
    floorplan: Floorplan | None = None,
    server_bandwidth: float = DEFAULT_SERVER_BANDWIDTH,
    estimated: bool = False,
    control_time: float | None = None,
    force_miss: bool = False,
    bitstream_bytes: int | None = None,
    node_kwargs: dict[str, Any] | None = None,
) -> ClusterResult:
    """Execute one trace per blade, all sharing the bitstream server.

    ``mode`` selects the per-blade executor (``"frtr"`` or ``"prtr"``).
    """
    if not traces:
        raise ValueError("need at least one per-blade trace")
    if mode not in ("frtr", "prtr"):
        raise ValueError(f"mode must be 'frtr' or 'prtr': {mode!r}")
    if server_bandwidth <= 0:
        raise ValueError("server_bandwidth must be positive")
    sim = Simulator()
    server = BandwidthChannel(
        sim, name="bitstream-server", rate=server_bandwidth
    )
    plan = floorplan or dual_prr_floorplan()
    pendings = []
    for i, trace in enumerate(traces):
        node = XD1Node(sim, floorplan=plan, **(node_kwargs or {}))
        if mode == "frtr":
            executor = FrtrExecutor(
                node,
                estimated=estimated,
                control_time=control_time,
                bitstream_source=server,
            )
            pendings.append(executor.launch(trace, lane=f"blade{i}"))
        else:
            executor = PrtrExecutor(
                node,
                estimated=estimated,
                control_time=control_time,
                force_miss=force_miss,
                bitstream_bytes=bitstream_bytes,
                bitstream_source=server,
            )
            pendings.append(executor.launch(trace, lane=f"blade{i}"))
    start = sim.now
    sim.run()
    server.assert_no_overlap()
    blades = [p.finalize() for p in pendings]
    return ClusterResult(
        mode=mode,
        blades=blades,
        makespan=sim.now - start,
        server_bytes=server.bytes_moved,
        server_busy_time=sum(
            iv.end - iv.start for iv in server.intervals
        ),
    )


def compare_cluster(
    traces: list[CallTrace],
    **kwargs: Any,
) -> tuple[ClusterResult, ClusterResult]:
    """The same per-blade workload under FRTR and PRTR."""
    frtr = run_cluster(traces, mode="frtr", **{
        k: v for k, v in kwargs.items()
        if k not in ("force_miss", "bitstream_bytes")
    })
    prtr = run_cluster(traces, mode="prtr", **kwargs)
    return frtr, prtr
