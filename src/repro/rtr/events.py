"""Per-call execution records and run results.

Both executors return a :class:`RunResult`: the full timeline, one
:class:`CallRecord` per function call, aggregate counters, and helpers
that convert the measurement into the analytical model's parameter space
for validation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..model.parameters import RawParameters
from ..sim.trace import Timeline

__all__ = ["CallRecord", "RunResult"]


@dataclass(frozen=True)
class CallRecord:
    """What happened to one function call."""

    index: int
    task: str
    #: True when the module was already resident (no reconfiguration)
    hit: bool
    #: stage start/end on the executor's main lane
    start: float
    end: float
    #: seconds of (re)configuration attributed to this call (0 for hits)
    config_time: float
    #: which PRR slot ran the task (-1 for FRTR: the whole device)
    slot: int = -1
    #: failed (re)configuration attempts recovered from before this call
    retries: int = 0
    #: retries that re-fetched the bitstream from the server
    refetches: int = 0
    #: partial path abandoned — this call paid a full reconfiguration
    fallback_full: bool = False
    #: seconds burned on failed attempts/backoff (subset of config_time)
    recovery_time: float = 0.0
    #: the call never ran: recovery exhausted and the blade degraded
    failed: bool = False

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"call record ends before start: {self!r}")
        if self.config_time < 0:
            raise ValueError("config_time must be >= 0")
        if self.retries < 0 or self.refetches < 0:
            raise ValueError("retry counters must be >= 0")
        if self.recovery_time < 0:
            raise ValueError("recovery_time must be >= 0")

    @property
    def stage_time(self) -> float:
        return self.end - self.start


@dataclass
class RunResult:
    """Aggregate outcome of an executor run."""

    mode: str  # "frtr" | "prtr"
    trace_name: str
    total_time: float
    records: list[CallRecord]
    timeline: Timeline
    #: startup cost before the first stage (decision + initial full config)
    startup_time: float = 0.0
    notes: dict[str, float] = field(default_factory=dict)
    #: the run was cancelled mid-flight (watchdog); records are partial
    interrupted: bool = False
    #: human-readable cancellation reason (empty for completed runs)
    interrupt_reason: str = ""

    def __post_init__(self) -> None:
        if self.total_time < 0:
            raise ValueError("total_time must be >= 0")
        if not self.records and not self.interrupted:
            raise ValueError("a run must have at least one call record")

    # -- counters ----------------------------------------------------------

    @property
    def n_calls(self) -> int:
        return len(self.records)

    @property
    def n_configs(self) -> int:
        return sum(1 for r in self.records if not r.hit)

    # -- robustness counters ----------------------------------------------

    @property
    def n_retries(self) -> int:
        """Failed configuration attempts recovered from across the run."""
        return sum(r.retries for r in self.records)

    @property
    def n_refetches(self) -> int:
        return sum(r.refetches for r in self.records)

    @property
    def n_fallbacks(self) -> int:
        """Calls that abandoned the partial path for a full reconfiguration."""
        return sum(1 for r in self.records if r.fallback_full)

    @property
    def n_failed(self) -> int:
        return sum(1 for r in self.records if r.failed)

    @property
    def recovery_time(self) -> float:
        """Total simulated seconds burned on failed attempts and backoff."""
        return self.notes.get("startup_recovery_time", 0.0) + sum(
            r.recovery_time for r in self.records
        )

    @property
    def degraded(self) -> bool:
        """The run gave up partway: recovery exhausted on some call."""
        return bool(self.notes.get("degraded", 0.0))

    @property
    def degraded_at(self) -> int | None:
        """Index of the first call that never ran (``None`` if healthy)."""
        if not self.degraded:
            return None
        return int(self.notes["degraded_at"])

    @property
    def hit_ratio(self) -> float:
        """Achieved ``H = 1 - n_config / n_calls`` (0 for empty runs)."""
        if not self.records:
            return 0.0
        return 1.0 - self.n_configs / self.n_calls

    @property
    def miss_ratio(self) -> float:
        if not self.records:
            return 0.0
        return self.n_configs / self.n_calls

    @property
    def mean_stage_time(self) -> float:
        if not self.records:
            return 0.0
        return float(np.mean([r.stage_time for r in self.records]))

    def config_overhead(self) -> float:
        """Total seconds attributed to (re)configuration."""
        return self.startup_config + sum(r.config_time for r in self.records)

    @property
    def startup_config(self) -> float:
        return self.notes.get("startup_config", 0.0)

    # -- model bridging -------------------------------------------------------

    def raw_parameters(
        self,
        t_frtr: float,
        t_prtr: float,
        t_control: float = 0.0,
        t_decision: float = 0.0,
        t_task: Optional[float] = None,
    ) -> RawParameters:
        """Package this run's measured ``H`` with platform times for the
        analytical model (``t_task`` defaults to the trace mean)."""
        if t_task is None:
            t_task = self.notes.get("mean_task_time")
            if t_task is None:
                raise ValueError("t_task not recorded; pass it explicitly")
        return RawParameters(
            t_task=t_task,
            t_frtr=t_frtr,
            t_prtr=t_prtr,
            t_control=t_control,
            t_decision=t_decision,
            hit_ratio=self.hit_ratio,
        )

    def summary(self) -> dict[str, float]:
        out = {
            "total_time": self.total_time,
            "n_calls": float(self.n_calls),
            "n_configs": float(self.n_configs),
            "hit_ratio": self.hit_ratio,
            "startup_time": self.startup_time,
            "config_overhead": self.config_overhead(),
            "mean_stage_time": self.mean_stage_time,
        }
        if self.n_retries or self.n_fallbacks or self.n_failed:
            out["n_retries"] = float(self.n_retries)
            out["n_fallbacks"] = float(self.n_fallbacks)
            out["n_failed"] = float(self.n_failed)
            out["recovery_time"] = self.recovery_time
        if self.interrupted:
            out["interrupted"] = 1.0
        return out
