"""The FRTR executor: every call pays a full reconfiguration (Fig. 3).

The baseline of the whole study.  Per call: download the full bitstream
through the vendor API (SelectMap), transfer control, run the task.  The
run total equals Eq. (1) exactly — a property test pins this.
"""

from __future__ import annotations

from typing import Any, Generator

from ..faults.errors import TransferCorruption, WriteAbort
from ..faults.recovery import RecoveryPolicy
from ..hardware.node import XD1Node
from ..obs import metrics as obsm
from ..sim.engine import Delay, Simulator
from ..sim.resources import BandwidthChannel
from ..sim.trace import Phase, Timeline
from ..workloads.task import CallTrace
from .events import CallRecord, RunResult
from .resilience import resilient

__all__ = ["FrtrExecutor", "PendingRun", "run_frtr"]


class PendingRun:
    """Handle for an executor launched into a shared simulator.

    Call :meth:`finalize` after the simulator has drained to obtain the
    :class:`RunResult`.  Used by the cluster executor to run many blades
    concurrently on one clock; single-node ``run()`` wraps it.

    ``finalize(interrupted=reason)`` builds a *partial* result from
    whatever the run recorded before a watchdog cancelled it — the
    result is marked :attr:`RunResult.interrupted` and may legitimately
    hold zero records.
    """

    def __init__(self, build: "Any") -> None:
        self._build = build
        self._result: RunResult | None = None

    # finalize() is PendingRun's accessor, not an entry point: every
    # caller (FrtrExecutor.run, the cluster executor) audits the result
    # before it escapes the runtime, so the audit-coverage rule would
    # double-count it here.
    def finalize(self, *, interrupted: str | None = None) -> RunResult:  # reprolint: disable=RL007
        if self._result is None:
            self._result = (
                self._build()
                if interrupted is None
                else self._build(interrupted)
            )
        return self._result


class FrtrExecutor:
    """Serial full-reconfiguration execution on one node.

    Parameters
    ----------
    node:
        The hardware model (provides the full-configuration time).
    estimated:
        Use the wire-only configuration time (Table 2 "estimated") instead
        of the vendor-API measured model.
    control_time:
        Transfer-of-control latency per call (``T_control``).
    bitstream_source:
        Optional shared channel bitstreams must be fetched over before
        each configuration (a cluster's bitstream-distribution backplane).
        ``None`` means bitstreams are local (the single-node experiments).
    recovery:
        Optional :class:`~repro.faults.recovery.RecoveryPolicy` applied
        when a configuration (server fetch or vendor-port write) fails.
        ``None`` (default) lets injected faults propagate out of
        ``Simulator.run`` — fail fast.
    """

    def __init__(
        self,
        node: XD1Node,
        *,
        estimated: bool = False,
        control_time: float | None = None,
        bitstream_source: BandwidthChannel | None = None,
        recovery: RecoveryPolicy | None = None,
    ) -> None:
        self.node = node
        self.estimated = estimated
        self.control_time = (
            node.params.control_time if control_time is None else control_time
        )
        if self.control_time < 0:
            raise ValueError("control_time must be >= 0")
        self.bitstream_source = bitstream_source
        self.recovery = recovery

    def launch(self, trace: CallTrace, lane: str = "main") -> PendingRun:
        """Spawn the execution process; does not advance the clock."""
        sim = self.node.sim
        timeline = Timeline()
        records: list[CallRecord] = []
        t_config = self.node.full_config_time(estimated=self.estimated)
        full_bytes = self.node.full_image.nbytes
        start = sim.now

        notes_extra: dict[str, float] = {}

        # No-op NULL instruments while observability is disabled.
        m_calls = obsm.counter("repro_calls_total")
        m_configs = obsm.counter("repro_configurations_total")
        m_config_s = obsm.histogram("repro_config_seconds")
        m_stage_s = obsm.histogram("repro_stage_seconds")
        m_recovery_s = obsm.counter("repro_recovery_seconds_total")

        def config_attempt(
            call_index: int, fetch: bool
        ) -> Generator[Any, Any, None]:
            """One fetch + full-configuration try (may raise faults)."""
            if self.bitstream_source is not None and fetch:
                _, ok = yield from self.bitstream_source.transfer_ok(
                    full_bytes, owner=f"{lane}:fetch{call_index}"
                )
                if not ok:
                    raise TransferCorruption(
                        f"full-bitstream fetch for call {call_index} "
                        "failed its CRC check"
                    )
            # Full reconfiguration (the FPGA is held in reset; nothing
            # else can run, so a plain delay is faithful).
            inj = self.node.fault_injector
            if inj is not None and inj.port_aborted():
                self.node.selectmap.write_aborts += 1
                yield Delay(inj.abort_fraction() * t_config)
                raise WriteAbort(
                    f"vendor-port write aborted on call {call_index}"
                )
            yield Delay(t_config)

        def main() -> Generator[Any, Any, None]:
            for call in trace:
                stage_start = sim.now
                cfg_start = sim.now
                outcome = yield from resilient(
                    sim,
                    lambda fetch, idx=call.index: config_attempt(idx, fetch),
                    self.recovery,
                    allow_fallback=False,
                )
                if outcome.degrade:
                    timeline.add(
                        Phase.CONFIG, cfg_start, sim.now, task=call.name,
                        note="degraded", lane=lane,
                    )
                    records.append(
                        CallRecord(
                            index=call.index,
                            task=call.name,
                            hit=False,
                            start=stage_start,
                            end=sim.now,
                            config_time=sim.now - stage_start,
                            retries=outcome.retries,
                            refetches=outcome.refetches,
                            recovery_time=outcome.recovery_time,
                            failed=True,
                        )
                    )
                    m_calls.inc(mode="frtr", lane=lane)
                    m_stage_s.observe(sim.now - stage_start, mode="frtr")
                    if outcome.recovery_time:
                        m_recovery_s.inc(outcome.recovery_time)
                    notes_extra["degraded"] = 1.0
                    notes_extra["degraded_at"] = float(call.index)
                    return
                timeline.add(
                    Phase.CONFIG, cfg_start, sim.now, task=call.name,
                    note="full", lane=lane,
                )
                m_configs.inc(kind="full")
                m_config_s.observe(sim.now - cfg_start, kind="full")
                t0 = sim.now
                if self.control_time:
                    yield Delay(self.control_time)
                timeline.add(
                    Phase.CONTROL, t0, sim.now, task=call.name, lane=lane
                )
                t0 = sim.now
                yield Delay(call.task.time)
                timeline.add(
                    Phase.TASK, t0, sim.now, task=call.name, lane=lane
                )
                records.append(
                    CallRecord(
                        index=call.index,
                        task=call.name,
                        hit=False,
                        start=stage_start,
                        end=sim.now,
                        config_time=sim.now - stage_start
                        - call.task.time - self.control_time,
                        retries=outcome.retries,
                        refetches=outcome.refetches,
                        recovery_time=outcome.recovery_time,
                    )
                )
                m_calls.inc(mode="frtr", lane=lane)
                m_stage_s.observe(sim.now - stage_start, mode="frtr")
                if outcome.recovery_time:
                    m_recovery_s.inc(outcome.recovery_time)

        sim.spawn(main(), name=f"frtr:{lane}")

        def build(interrupted: str | None = None) -> RunResult:
            total = (records[-1].end - start) if records else 0.0
            result = RunResult(
                mode="frtr",
                trace_name=trace.name,
                total_time=total,
                records=records,
                # Freeze: the executor is done writing; aliased list refs
                # (the cluster merges many of these) must not corrupt it.
                timeline=timeline.freeze(),
                startup_time=0.0,
                interrupted=interrupted is not None,
                interrupt_reason=interrupted or "",
            )
            result.notes["mean_task_time"] = trace.mean_task_time()
            result.notes["t_config_full"] = t_config
            result.notes.update(notes_extra)
            return result

        return PendingRun(build)

    def run(self, trace: CallTrace) -> RunResult:
        """Execute the trace; returns the measured :class:`RunResult`.

        The result is audited (:func:`repro.runtime.invariants
        .audit_and_record`): violations land in ``notes`` — or raise,
        in strict-invariants mode.  With power accounting enabled
        (:mod:`repro.power`), the energy ledger is stamped into the
        notes first, arming the ``energy-conservation`` check.
        """
        from ..power import annotate_energy
        from ..runtime.invariants import audit_and_record

        pending = self.launch(trace)
        self.node.sim.run()
        result = pending.finalize()
        obsm.gauge("repro_run_sim_seconds").set(
            result.total_time, mode="frtr"
        )
        obsm.gauge("repro_run_events").set(
            self.node.sim.events_processed, mode="frtr"
        )
        annotate_energy(result, trace, self.node)
        audit_and_record(result)
        return result


def run_frtr(
    trace: CallTrace,
    node: XD1Node | None = None,
    *,
    estimated: bool = False,
    control_time: float | None = None,
) -> RunResult:
    """One-shot convenience wrapper (builds a default node if needed)."""
    if node is None:
        node = XD1Node(Simulator())
    return FrtrExecutor(
        node, estimated=estimated, control_time=control_time
    ).run(trace)
