"""Multi-tasking and hardware virtualization on PRRs (Section 5 extension).

The paper's closing argument: "PRTR as compared to FRTR is far more
beneficial for versatility purposes, multi-tasking applications, and
hardware virtualization than it is for plain performance."  This module
implements that scenario so the claim can be measured:

* several **applications** (each a call trace) share one FPGA;
* under **FRTR**, the device is monolithic — every call from any
  application reconfigures the whole chip, so execution is one global
  serial stream (and a context switch between applications is a full
  reconfiguration even if the module was just loaded);
* under **PRTR**, the PRRs act as a *shared module cache* (hardware
  virtualization): calls whose module is resident run immediately on that
  PRR; misses allocate a PRR (replacement policy) and stream a partial
  bitstream through the single shared ICAP controller.  With per-PRR
  memory banks (Section 4.2's dual layout), PRRs execute **concurrently**
  — spatial multitasking.

Scheduling: each application is a DES process issuing its calls in order
(optionally after an arrival delay).  A call executes on the PRR holding
its module; per-PRR queues are FIFO; the ICAP serializes
reconfigurations.  This is deliberately simple — the point is the
architectural comparison, not scheduler research.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator

from ..caching.base import ConfigCache
from ..caching.policies import LruPolicy
from ..hardware.bitstream import Bitstream
from ..hardware.node import XD1Node
from ..sim.engine import Delay
from ..sim.resources import MutexResource
from ..sim.trace import Phase, Timeline
from ..workloads.task import CallTrace

__all__ = [
    "AppSpec",
    "AppResult",
    "MultitaskResult",
    "MultitaskFrtrExecutor",
    "MultitaskPrtrExecutor",
    "PrrFabric",
    "compare_multitask",
]


@dataclass(frozen=True)
class AppSpec:
    """One application sharing the node."""

    name: str
    trace: CallTrace
    arrival_time: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("application name must be non-empty")
        if self.arrival_time < 0:
            raise ValueError("arrival_time must be >= 0")


@dataclass
class AppResult:
    """Per-application outcome."""

    name: str
    arrival_time: float
    completion_time: float
    n_calls: int
    n_configs: int

    @property
    def turnaround(self) -> float:
        return self.completion_time - self.arrival_time

    def __post_init__(self) -> None:
        if self.completion_time < self.arrival_time:
            raise ValueError("completed before it arrived")


@dataclass
class MultitaskResult:
    """Aggregate outcome of a multi-application run."""

    mode: str
    apps: list[AppResult]
    makespan: float
    timeline: Timeline
    notes: dict[str, float] = field(default_factory=dict)

    @property
    def total_calls(self) -> int:
        return sum(a.n_calls for a in self.apps)

    @property
    def total_configs(self) -> int:
        return sum(a.n_configs for a in self.apps)

    @property
    def throughput(self) -> float:
        """Completed calls per unit time (0.0 for an empty run)."""
        if self.makespan <= 0 or not self.total_calls:
            return 0.0
        return self.total_calls / self.makespan

    @property
    def mean_turnaround(self) -> float:
        """Average per-application turnaround (0.0 with no applications)."""
        if not self.apps:
            return 0.0
        return sum(a.turnaround for a in self.apps) / len(self.apps)

    @property
    def max_turnaround(self) -> float:
        """Worst per-application turnaround (0.0 with no applications)."""
        if not self.apps:
            return 0.0
        return max(a.turnaround for a in self.apps)

    def unfairness(self) -> float:
        """max/min turnaround ratio (1.0 = perfectly fair).

        Degenerate mixes stay NaN-free: no applications (an all-shed
        service epoch) is trivially fair (1.0), and a zero minimum with
        a positive maximum is infinitely unfair.
        """
        if not self.apps:
            return 1.0
        lo = min(a.turnaround for a in self.apps)
        hi = max(a.turnaround for a in self.apps)
        if hi <= 0:
            return 1.0
        return hi / lo if lo > 0 else float("inf")


class MultitaskFrtrExecutor:
    """All applications funnel through one monolithic FRTR device.

    The fabric is a single exclusive resource; every call pays a full
    reconfiguration, a transfer of control and its task time.  FIFO
    arbitration in call-arrival order (applications interleave naturally
    as each finishes its previous call).
    """

    def __init__(
        self,
        node: XD1Node,
        *,
        estimated: bool = False,
        control_time: float | None = None,
    ) -> None:
        self.node = node
        self.estimated = estimated
        self.control_time = (
            node.params.control_time if control_time is None else control_time
        )

    def run(self, apps: list[AppSpec]) -> MultitaskResult:
        if not apps:
            raise ValueError("need at least one application")
        _check_unique_names(apps)
        sim = self.node.sim
        timeline = Timeline()
        fabric = MutexResource(sim, name="fabric")
        t_config = self.node.full_config_time(estimated=self.estimated)
        results: dict[str, AppResult] = {}

        def app_proc(spec: AppSpec) -> Generator[Any, Any, None]:
            if spec.arrival_time:
                yield Delay(spec.arrival_time)
            for call in spec.trace:
                yield from fabric.acquire(f"{spec.name}#{call.index}")
                try:
                    t0 = sim.now
                    yield Delay(t_config)
                    timeline.add(
                        Phase.CONFIG, t0, sim.now,
                        task=call.name, lane="fabric", note=spec.name,
                    )
                    if self.control_time:
                        yield Delay(self.control_time)
                    t0 = sim.now
                    yield Delay(call.task.time)
                    timeline.add(
                        Phase.TASK, t0, sim.now,
                        task=call.name, lane="fabric", note=spec.name,
                    )
                finally:
                    fabric.release(f"{spec.name}#{call.index}")
            results[spec.name] = AppResult(
                name=spec.name,
                arrival_time=spec.arrival_time,
                completion_time=sim.now,
                n_calls=spec.trace.n_calls,
                n_configs=spec.trace.n_calls,
            )

        start = sim.now
        for spec in apps:
            sim.spawn(app_proc(spec), name=f"app:{spec.name}")
        sim.run()
        fabric.assert_no_overlap()
        return MultitaskResult(
            mode="frtr",
            apps=[results[s.name] for s in apps],
            makespan=sim.now - start,
            timeline=timeline,
            notes={"t_config_full": t_config},
        )


class PrrFabric:
    """The shared PRR-pool machinery: residency, pinning, reconfiguration.

    Extracted from :class:`MultitaskPrtrExecutor` so the multi-tenant
    service scheduler (:mod:`repro.service.scheduler`) can time-share the
    exact same pool — the reduction identity (service with one tenant,
    no admission, no preemption == multitask PRTR) holds because both
    run *this* code, not a reimplementation.

    Responsibilities:

    * residency tracked by a :class:`ConfigCache` over the PRR slots;
    * each PRR is an exclusive execution resource
      (:attr:`prr_mutexes`, its own memory banks per Section 4.2);
    * the ICAP controller serializes reconfigurations;
    * a miss allocates a victim PRR — never one whose module is pinned
      (currently executing or queued) — and streams the partial
      bitstream;
    * a configuration fault (:class:`~repro.faults.errors
      .ReconfigurationFault`) rolls residency back cleanly and
      propagates, so callers can retry or shed;
    * a slot can be *retired* (:meth:`retire_slot`) — the
      degraded-blade analogue for service mode: a pinned sentinel
      occupies the slot forever, shrinking effective capacity;
    * a slot can be temporarily *blocked* (:meth:`block_slot` /
      :meth:`unblock_slot`) while its failure domain is down — the
      reversible outage primitive the chaos runtime
      (:mod:`repro.chaos`) drives.
    """

    def __init__(
        self,
        node: XD1Node,
        cache: ConfigCache,
        timeline: Timeline,
        *,
        estimated: bool = False,
        bitstream_bytes: int | None = None,
    ) -> None:
        self.node = node
        self.cache = cache
        self.timeline = timeline
        self.estimated = estimated
        self._bitstream_bytes = bitstream_bytes
        sim = node.sim
        self.prr_mutexes = [
            MutexResource(sim, name=f"prr{i}") for i in range(cache.slots)
        ]
        #: modules currently executing or queued -> pin against eviction
        self.busy_modules: dict[str, int] = {}
        #: per-module "configured" signal registry to avoid double configs
        self.configuring: dict[str, Any] = {}
        self._unpin_waiters: list[Any] = []
        #: slots taken out of rotation by :meth:`retire_slot`
        self.retired: set[int] = set()
        #: slots temporarily dark while their failure domain is down
        #: (:meth:`block_slot` / :meth:`unblock_slot`, chaos runtime)
        self.blocked_slots: set[int] = set()
        #: partial configurations streamed (successful fills)
        self.fills = 0

    @property
    def sim(self) -> Any:
        """The simulator the fabric's node lives on."""
        return self.node.sim

    @property
    def active_slots(self) -> int:
        """PRRs still in rotation (total minus retired minus blocked)."""
        return self.cache.slots - len(self.retired | self.blocked_slots)

    def bitstream(self, module: str) -> Bitstream:
        """The partial bitstream configured for ``module``."""
        if self._bitstream_bytes is not None:
            return Bitstream(
                name=f"prr:{module}", nbytes=self._bitstream_bytes,
                region="prr0", module=module, kind="module",
            )
        return self.node.prr_bitstream(0, module)

    def pin(self, module: str) -> None:
        """Protect ``module`` from eviction while it executes or queues."""
        self.busy_modules[module] = self.busy_modules.get(module, 0) + 1

    def unpin(self, module: str) -> None:
        """Drop one pin; wakes fills waiting for an eviction candidate."""
        self.busy_modules[module] -= 1
        if not self.busy_modules[module]:
            del self.busy_modules[module]
        waiters, self._unpin_waiters[:] = list(self._unpin_waiters), []
        for sig in waiters:
            sig.succeed()

    def block_slot(self, slot: int) -> None:
        """Darken ``slot`` while its failure domain is down.

        Unlike :meth:`retire_slot` this is reversible and synchronous:
        the slot stops counting toward :attr:`active_slots` and stops
        receiving fills immediately; evicting its (state-lost) resident
        is the chaos runtime's job.
        """
        if not 0 <= slot < self.cache.slots:
            raise ValueError(f"no such PRR slot: {slot}")
        self.blocked_slots.add(slot)

    def unblock_slot(self, slot: int) -> None:
        """Return ``slot`` to rotation; wakes fills waiting for space."""
        self.blocked_slots.discard(slot)
        waiters, self._unpin_waiters[:] = list(self._unpin_waiters), []
        for sig in waiters:
            sig.succeed()

    def evictable_exists(self, module: str) -> bool:
        """Can a fill for ``module`` proceed right now?"""
        blocked = self.blocked_slots
        if blocked:
            if any(s not in blocked for s in self.cache._free):
                return True
            pinned = set(self.busy_modules)
            return any(
                m not in pinned and s not in blocked
                for m, s in self.cache._residents.items()
            )
        if not self.cache.is_full:
            return True
        pinned = set(self.busy_modules)
        return any(m not in pinned for m in self.cache.residents)

    def ensure_resident(
        self, module: str, owner: str
    ) -> Generator[Any, Any, bool]:
        """Make ``module`` resident; returns True if it was a hit.

        A hit is decided at the *first* check — if the module arrives
        while we wait (loaded by another application), the call still
        counts as a miss but skips the redundant reconfiguration
        (module sharing across applications).  A configuration fault
        rolls the speculative residency back, wakes any waiters (they
        re-enter the loop and may retry the fill themselves) and
        re-raises for the caller's recovery policy.
        """
        sim = self.sim
        was_hit = self.cache.contains(module)
        if was_hit:
            self.cache.stats.hits += 1
            self.cache.policy.on_access(module)
            return True
        self.cache.stats.misses += 1
        while True:
            if self.cache.contains(module):
                return False  # another app loaded it meanwhile
            if module in self.configuring:
                yield self.configuring[module]
                continue  # loop: confirm residency (or eviction race)
            if not self.evictable_exists(module):
                # Every resident is busy; wait for any unpin.
                sig = sim.signal(name=f"evict-wait:{module}")
                self._unpin_waiters.append(sig)
                yield sig
                continue
            break
        sig = sim.signal(name=f"cfg:{module}")
        self.configuring[module] = sig
        self.cache.fill(
            module,
            pinned=set(self.busy_modules),
            blocked=self.blocked_slots,
        )
        t0 = sim.now
        bs = self.bitstream(module)
        try:
            if self.estimated:
                yield Delay(self.node.icap_raw.wire_time(bs.nbytes))
            else:
                yield from self.node.icap.configure(bs, owner=owner)
        except BaseException:
            # Roll the speculative residency back so the slot is not
            # poisoned by a half-written configuration.
            self.cache.evict(module)
            del self.configuring[module]
            sig.succeed()
            raise
        self.timeline.add(
            Phase.CONFIG, t0, sim.now, task=module, lane="icap",
            note="partial",
        )
        del self.configuring[module]
        self.fills += 1
        sig.succeed()
        return False

    def retire_slot(self, slot: int) -> Generator[Any, Any, None]:
        """Take PRR ``slot`` out of rotation (a degraded blade).

        A DES process: waits for the slot's mutex (any running task
        finishes first), evicts whatever module lives there once it is
        neither pinned nor mid-configuration, then installs a
        permanently pinned sentinel so the replacement policy can never
        hand the slot out again.
        """
        if not 0 <= slot < self.cache.slots:
            raise ValueError(f"no such PRR slot: {slot}")
        if slot in self.retired:
            raise ValueError(f"PRR slot {slot} is already retired")
        self.retired.add(slot)
        # Retirement subsumes any temporary outage on the same slot.
        self.blocked_slots.discard(slot)
        sentinel = f"__retired{slot}"
        owner = f"retire:{slot}"
        yield from self.prr_mutexes[slot].acquire(owner)
        # The mutex is held forever: nothing can execute here again.
        while True:
            victim = next(
                (
                    m
                    for m, s in list(self.cache._residents.items())
                    if s == slot
                ),
                None,
            )
            if victim is None:
                break
            if victim in self.configuring:
                yield self.configuring[victim]
                continue
            if victim in self.busy_modules:
                sig = self.sim.signal(name=f"retire-wait:{slot}")
                self._unpin_waiters.append(sig)
                yield sig
                continue
            self.cache.evict(victim)
            break
        self.cache.place(sentinel, slot)
        self.pin(sentinel)

    def assert_no_overlap(self) -> None:
        """Post-run sanity: PRR and ICAP mutexes were truly exclusive."""
        for m in self.prr_mutexes:
            m.assert_no_overlap()
        self.node.icap.icap_mutex.assert_no_overlap()


class MultitaskPrtrExecutor:
    """Spatial multitasking: PRRs as a shared, concurrent module cache.

    The pool machinery lives in :class:`PrrFabric`; this executor adds
    the closed-loop application processes (each replays its trace,
    issuing the next call when the previous completes) and the initial
    full configuration that loads the static design only — all modules
    arrive by partial reconfiguration (unlike the single-app executor,
    there is no well-defined "first module" here).
    """

    def __init__(
        self,
        node: XD1Node,
        *,
        estimated: bool = False,
        control_time: float | None = None,
        cache: ConfigCache | None = None,
        bitstream_bytes: int | None = None,
    ) -> None:
        if not node.floorplan.n_prrs:
            raise ValueError("PRTR multitasking needs PRRs")
        self.node = node
        self.estimated = estimated
        self.control_time = (
            node.params.control_time if control_time is None else control_time
        )
        self.cache = cache or ConfigCache(
            slots=node.floorplan.n_prrs, policy=LruPolicy()
        )
        if self.cache.slots != node.floorplan.n_prrs:
            raise ValueError("cache slots must equal the PRR count")
        self._bitstream_bytes = bitstream_bytes

    def run(self, apps: list[AppSpec]) -> MultitaskResult:
        if not apps:
            raise ValueError("need at least one application")
        _check_unique_names(apps)
        sim = self.node.sim
        timeline = Timeline()
        fabric = PrrFabric(
            self.node,
            self.cache,
            timeline,
            estimated=self.estimated,
            bitstream_bytes=self._bitstream_bytes,
        )
        results: dict[str, AppResult] = {}
        config_counts: dict[str, int] = {s.name: 0 for s in apps}

        def app_proc(spec: AppSpec) -> Generator[Any, Any, None]:
            if spec.arrival_time:
                yield Delay(spec.arrival_time)
            for call in spec.trace:
                owner = f"{spec.name}#{call.index}"
                fabric.pin(call.name)
                try:
                    hit = yield from fabric.ensure_resident(call.name, owner)
                    if not hit:
                        config_counts[spec.name] += 1
                    slot = self.cache.slot_of(call.name)
                    yield from fabric.prr_mutexes[slot].acquire(owner)
                    try:
                        if self.control_time:
                            yield Delay(self.control_time)
                        t0 = sim.now
                        yield Delay(call.task.time)
                        timeline.add(
                            Phase.TASK, t0, sim.now, task=call.name,
                            lane=f"prr{slot}", note=spec.name,
                        )
                    finally:
                        fabric.prr_mutexes[slot].release(owner)
                finally:
                    fabric.unpin(call.name)
            results[spec.name] = AppResult(
                name=spec.name,
                arrival_time=spec.arrival_time,
                completion_time=sim.now,
                n_calls=spec.trace.n_calls,
                n_configs=config_counts[spec.name],
            )

        def startup() -> Generator[Any, Any, None]:
            t0 = sim.now
            yield Delay(self.node.full_config_time(estimated=self.estimated))
            timeline.add(Phase.CONFIG, t0, sim.now, note="initial full")

        start = sim.now
        boot = sim.spawn(startup(), name="startup")

        def gated_app(spec: AppSpec) -> Generator[Any, Any, None]:
            yield boot.done
            yield from app_proc(spec)

        for spec in apps:
            sim.spawn(gated_app(spec), name=f"app:{spec.name}")
        sim.run()
        fabric.assert_no_overlap()
        return MultitaskResult(
            mode="prtr",
            apps=[results[s.name] for s in apps],
            makespan=sim.now - start,
            timeline=timeline,
            notes={
                "t_config_full": self.node.full_config_time(
                    estimated=self.estimated
                ),
                "hit_ratio": self.cache.stats.hit_ratio,
            },
        )


def _check_unique_names(apps: list[AppSpec]) -> None:
    names = [a.name for a in apps]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate application names: {names}")


def compare_multitask(
    apps: list[AppSpec],
    *,
    floorplan=None,
    estimated: bool = False,
    control_time: float | None = None,
    bitstream_bytes: int | None = None,
) -> tuple[MultitaskResult, MultitaskResult]:
    """Run the application mix under FRTR and PRTR on fresh nodes."""
    from .runner import make_node

    frtr = MultitaskFrtrExecutor(
        make_node(floorplan), estimated=estimated, control_time=control_time
    ).run(apps)
    prtr = MultitaskPrtrExecutor(
        make_node(floorplan),
        estimated=estimated,
        control_time=control_time,
        bitstream_bytes=bitstream_bytes,
    ).run(apps)
    return frtr, prtr
