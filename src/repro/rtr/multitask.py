"""Multi-tasking and hardware virtualization on PRRs (Section 5 extension).

The paper's closing argument: "PRTR as compared to FRTR is far more
beneficial for versatility purposes, multi-tasking applications, and
hardware virtualization than it is for plain performance."  This module
implements that scenario so the claim can be measured:

* several **applications** (each a call trace) share one FPGA;
* under **FRTR**, the device is monolithic — every call from any
  application reconfigures the whole chip, so execution is one global
  serial stream (and a context switch between applications is a full
  reconfiguration even if the module was just loaded);
* under **PRTR**, the PRRs act as a *shared module cache* (hardware
  virtualization): calls whose module is resident run immediately on that
  PRR; misses allocate a PRR (replacement policy) and stream a partial
  bitstream through the single shared ICAP controller.  With per-PRR
  memory banks (Section 4.2's dual layout), PRRs execute **concurrently**
  — spatial multitasking.

Scheduling: each application is a DES process issuing its calls in order
(optionally after an arrival delay).  A call executes on the PRR holding
its module; per-PRR queues are FIFO; the ICAP serializes
reconfigurations.  This is deliberately simple — the point is the
architectural comparison, not scheduler research.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator

from ..caching.base import ConfigCache
from ..caching.policies import LruPolicy
from ..hardware.bitstream import Bitstream
from ..hardware.node import XD1Node
from ..sim.engine import Delay
from ..sim.resources import MutexResource
from ..sim.trace import Phase, Timeline
from ..workloads.task import CallTrace

__all__ = [
    "AppSpec",
    "AppResult",
    "MultitaskResult",
    "MultitaskFrtrExecutor",
    "MultitaskPrtrExecutor",
    "compare_multitask",
]


@dataclass(frozen=True)
class AppSpec:
    """One application sharing the node."""

    name: str
    trace: CallTrace
    arrival_time: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("application name must be non-empty")
        if self.arrival_time < 0:
            raise ValueError("arrival_time must be >= 0")


@dataclass
class AppResult:
    """Per-application outcome."""

    name: str
    arrival_time: float
    completion_time: float
    n_calls: int
    n_configs: int

    @property
    def turnaround(self) -> float:
        return self.completion_time - self.arrival_time

    def __post_init__(self) -> None:
        if self.completion_time < self.arrival_time:
            raise ValueError("completed before it arrived")


@dataclass
class MultitaskResult:
    """Aggregate outcome of a multi-application run."""

    mode: str
    apps: list[AppResult]
    makespan: float
    timeline: Timeline
    notes: dict[str, float] = field(default_factory=dict)

    @property
    def total_calls(self) -> int:
        return sum(a.n_calls for a in self.apps)

    @property
    def total_configs(self) -> int:
        return sum(a.n_configs for a in self.apps)

    @property
    def throughput(self) -> float:
        """Completed calls per unit time."""
        if self.makespan <= 0:
            raise ZeroDivisionError("empty run")
        return self.total_calls / self.makespan

    @property
    def mean_turnaround(self) -> float:
        return sum(a.turnaround for a in self.apps) / len(self.apps)

    @property
    def max_turnaround(self) -> float:
        return max(a.turnaround for a in self.apps)

    def unfairness(self) -> float:
        """max/min turnaround ratio (1.0 = perfectly fair)."""
        lo = min(a.turnaround for a in self.apps)
        hi = max(a.turnaround for a in self.apps)
        return hi / lo if lo > 0 else float("inf")


class MultitaskFrtrExecutor:
    """All applications funnel through one monolithic FRTR device.

    The fabric is a single exclusive resource; every call pays a full
    reconfiguration, a transfer of control and its task time.  FIFO
    arbitration in call-arrival order (applications interleave naturally
    as each finishes its previous call).
    """

    def __init__(
        self,
        node: XD1Node,
        *,
        estimated: bool = False,
        control_time: float | None = None,
    ) -> None:
        self.node = node
        self.estimated = estimated
        self.control_time = (
            node.params.control_time if control_time is None else control_time
        )

    def run(self, apps: list[AppSpec]) -> MultitaskResult:
        if not apps:
            raise ValueError("need at least one application")
        _check_unique_names(apps)
        sim = self.node.sim
        timeline = Timeline()
        fabric = MutexResource(sim, name="fabric")
        t_config = self.node.full_config_time(estimated=self.estimated)
        results: dict[str, AppResult] = {}

        def app_proc(spec: AppSpec) -> Generator[Any, Any, None]:
            if spec.arrival_time:
                yield Delay(spec.arrival_time)
            for call in spec.trace:
                yield from fabric.acquire(f"{spec.name}#{call.index}")
                try:
                    t0 = sim.now
                    yield Delay(t_config)
                    timeline.add(
                        Phase.CONFIG, t0, sim.now,
                        task=call.name, lane="fabric", note=spec.name,
                    )
                    if self.control_time:
                        yield Delay(self.control_time)
                    t0 = sim.now
                    yield Delay(call.task.time)
                    timeline.add(
                        Phase.TASK, t0, sim.now,
                        task=call.name, lane="fabric", note=spec.name,
                    )
                finally:
                    fabric.release(f"{spec.name}#{call.index}")
            results[spec.name] = AppResult(
                name=spec.name,
                arrival_time=spec.arrival_time,
                completion_time=sim.now,
                n_calls=spec.trace.n_calls,
                n_configs=spec.trace.n_calls,
            )

        start = sim.now
        for spec in apps:
            sim.spawn(app_proc(spec), name=f"app:{spec.name}")
        sim.run()
        fabric.assert_no_overlap()
        return MultitaskResult(
            mode="frtr",
            apps=[results[s.name] for s in apps],
            makespan=sim.now - start,
            timeline=timeline,
            notes={"t_config_full": t_config},
        )


class MultitaskPrtrExecutor:
    """Spatial multitasking: PRRs as a shared, concurrent module cache.

    * residency tracked by a :class:`ConfigCache` over the PRR slots;
    * each PRR is an exclusive execution resource (its own memory banks);
    * the ICAP controller serializes reconfigurations;
    * a miss allocates a victim PRR (never one whose module is currently
      executing or queued — we pin busy modules) and reconfigures.

    The initial full configuration loads the static design only; all
    modules arrive by partial reconfiguration (unlike the single-app
    executor, there is no well-defined "first module" here).
    """

    def __init__(
        self,
        node: XD1Node,
        *,
        estimated: bool = False,
        control_time: float | None = None,
        cache: ConfigCache | None = None,
        bitstream_bytes: int | None = None,
    ) -> None:
        if not node.floorplan.n_prrs:
            raise ValueError("PRTR multitasking needs PRRs")
        self.node = node
        self.estimated = estimated
        self.control_time = (
            node.params.control_time if control_time is None else control_time
        )
        self.cache = cache or ConfigCache(
            slots=node.floorplan.n_prrs, policy=LruPolicy()
        )
        if self.cache.slots != node.floorplan.n_prrs:
            raise ValueError("cache slots must equal the PRR count")
        self._bitstream_bytes = bitstream_bytes

    def _bitstream(self, module: str) -> Bitstream:
        if self._bitstream_bytes is not None:
            return Bitstream(
                name=f"prr:{module}", nbytes=self._bitstream_bytes,
                region="prr0", module=module, kind="module",
            )
        return self.node.prr_bitstream(0, module)

    def run(self, apps: list[AppSpec]) -> MultitaskResult:
        if not apps:
            raise ValueError("need at least one application")
        _check_unique_names(apps)
        sim = self.node.sim
        timeline = Timeline()
        prr_mutexes = [
            MutexResource(sim, name=f"prr{i}")
            for i in range(self.cache.slots)
        ]
        #: modules currently executing or queued -> pin against eviction
        busy_modules: dict[str, int] = {}
        #: per-module "configured" signal registry to avoid double configs
        configuring: dict[str, Any] = {}
        results: dict[str, AppResult] = {}
        config_counts: dict[str, int] = {s.name: 0 for s in apps}

        unpin_waiters: list[Any] = []

        def pin(module: str) -> None:
            busy_modules[module] = busy_modules.get(module, 0) + 1

        def unpin(module: str) -> None:
            busy_modules[module] -= 1
            if not busy_modules[module]:
                del busy_modules[module]
            waiters, unpin_waiters[:] = list(unpin_waiters), []
            for sig in waiters:
                sig.succeed()

        def evictable_exists(module: str) -> bool:
            """Can a fill for ``module`` proceed right now?"""
            if not self.cache.is_full:
                return True
            pinned = set(busy_modules)
            return any(m not in pinned for m in self.cache.residents)

        def ensure_resident(
            module: str, owner: str
        ) -> Generator[Any, Any, bool]:
            """Make ``module`` resident; returns True if it was a hit.

            A hit is decided at the *first* check — if the module arrives
            while we wait (loaded by another application), the call still
            counts as a miss but skips the redundant reconfiguration
            (module sharing across applications).
            """
            was_hit = self.cache.contains(module)
            if was_hit:
                self.cache.stats.hits += 1
                self.cache.policy.on_access(module)
                return True
            self.cache.stats.misses += 1
            while True:
                if self.cache.contains(module):
                    return False  # another app loaded it meanwhile
                if module in configuring:
                    yield configuring[module]
                    continue  # loop: confirm residency (or eviction race)
                if not evictable_exists(module):
                    # Every resident is busy; wait for any unpin.
                    sig = sim.signal(name=f"evict-wait:{module}")
                    unpin_waiters.append(sig)
                    yield sig
                    continue
                break
            sig = sim.signal(name=f"cfg:{module}")
            configuring[module] = sig
            self.cache.fill(module, pinned=set(busy_modules))
            t0 = sim.now
            bs = self._bitstream(module)
            if self.estimated:
                yield Delay(self.node.icap_raw.wire_time(bs.nbytes))
            else:
                yield from self.node.icap.configure(bs, owner=owner)
            timeline.add(
                Phase.CONFIG, t0, sim.now, task=module, lane="icap",
                note="partial",
            )
            del configuring[module]
            sig.succeed()
            return False

        def app_proc(spec: AppSpec) -> Generator[Any, Any, None]:
            if spec.arrival_time:
                yield Delay(spec.arrival_time)
            for call in spec.trace:
                owner = f"{spec.name}#{call.index}"
                pin(call.name)
                try:
                    hit = yield from ensure_resident(call.name, owner)
                    if not hit:
                        config_counts[spec.name] += 1
                    slot = self.cache.slot_of(call.name)
                    yield from prr_mutexes[slot].acquire(owner)
                    try:
                        if self.control_time:
                            yield Delay(self.control_time)
                        t0 = sim.now
                        yield Delay(call.task.time)
                        timeline.add(
                            Phase.TASK, t0, sim.now, task=call.name,
                            lane=f"prr{slot}", note=spec.name,
                        )
                    finally:
                        prr_mutexes[slot].release(owner)
                finally:
                    unpin(call.name)
            results[spec.name] = AppResult(
                name=spec.name,
                arrival_time=spec.arrival_time,
                completion_time=sim.now,
                n_calls=spec.trace.n_calls,
                n_configs=config_counts[spec.name],
            )

        def startup() -> Generator[Any, Any, None]:
            t0 = sim.now
            yield Delay(self.node.full_config_time(estimated=self.estimated))
            timeline.add(Phase.CONFIG, t0, sim.now, note="initial full")

        start = sim.now
        boot = sim.spawn(startup(), name="startup")

        def gated_app(spec: AppSpec) -> Generator[Any, Any, None]:
            yield boot.done
            yield from app_proc(spec)

        for spec in apps:
            sim.spawn(gated_app(spec), name=f"app:{spec.name}")
        sim.run()
        for m in prr_mutexes:
            m.assert_no_overlap()
        self.node.icap.icap_mutex.assert_no_overlap()
        return MultitaskResult(
            mode="prtr",
            apps=[results[s.name] for s in apps],
            makespan=sim.now - start,
            timeline=timeline,
            notes={
                "t_config_full": self.node.full_config_time(
                    estimated=self.estimated
                ),
                "hit_ratio": self.cache.stats.hit_ratio,
            },
        )


def _check_unique_names(apps: list[AppSpec]) -> None:
    names = [a.name for a in apps]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate application names: {names}")


def compare_multitask(
    apps: list[AppSpec],
    *,
    floorplan=None,
    estimated: bool = False,
    control_time: float | None = None,
    bitstream_bytes: int | None = None,
) -> tuple[MultitaskResult, MultitaskResult]:
    """Run the application mix under FRTR and PRTR on fresh nodes."""
    from .runner import make_node

    frtr = MultitaskFrtrExecutor(
        make_node(floorplan), estimated=estimated, control_time=control_time
    ).run(apps)
    prtr = MultitaskPrtrExecutor(
        make_node(floorplan),
        estimated=estimated,
        control_time=control_time,
        bitstream_bytes=bitstream_bytes,
    ).run(apps)
    return frtr, prtr
