"""The PRTR executor: pipelined partial reconfiguration (Fig. 4).

Execution follows the paper's model: after an initial pre-fetch decision
and one full configuration (the static design plus the first module), the
calls stream through a two-resource pipeline —

* stage *i* runs task *i* on its PRR (serially: transfer of control, the
  task itself, then the pre-fetch decision about call *i+1*);
* concurrently, if call *i+1*'s module is not resident, its partial
  bitstream is pushed through the ICAP controller into another PRR.

The stage ends when both finish: a missed successor costs
``max(T_task + T_decision, T_PRTR)``, a hit successor nothing — exactly
the accounting of Eq. (3).  With a single PRR no overlap is possible and
the executor falls back to serial configure-then-execute.

Hits and misses are decided by PRR residency, tracked by a
:class:`~repro.caching.base.ConfigCache` whose replacement policy is
pluggable.  ``force_miss=True`` reproduces the paper's experimental
configuration (the hypothetical always-missing prefetcher: ``M = 1``).

With ``detailed_io=True`` tasks split into data-in / compute / data-out on
the node's dual-channel link, and partial reconfiguration *shares the
inbound channel* — the Section 4.1 architectural constraint (configuration
can only overlap compute or data-out) emerges from channel serialization
rather than being hard-coded.
"""

from __future__ import annotations

from typing import Any, Generator

from ..caching.base import ConfigCache
from ..caching.policies import LruPolicy
from ..faults.errors import TransferCorruption, WriteAbort
from ..faults.recovery import RecoveryPolicy
from ..hardware.bitstream import Bitstream
from ..obs import metrics as obsm
from ..hardware.node import XD1Node
from ..sim.engine import AllOf, Delay, Simulator
from ..sim.trace import Phase, Timeline
from ..sim.resources import BandwidthChannel
from ..workloads.task import CallTrace, FunctionCall
from .events import CallRecord, RunResult
from .frtr import PendingRun
from .resilience import ConfigOutcome, resilient

__all__ = ["PrtrExecutor", "run_prtr"]


class PrtrExecutor:
    """Pipelined partial-reconfiguration execution on one node.

    Parameters
    ----------
    node:
        Hardware model; its floorplan's PRR count sets the cache slots.
    estimated:
        Wire-only configuration times (Table 2 "estimated") instead of the
        vendor-API + ICAP-controller measured models.
    control_time, decision_time:
        ``T_control`` and ``T_decision`` per call.
    cache:
        Residency tracker; defaults to LRU over the floorplan's PRRs.
    bitstream_bytes:
        Partial bitstream size override (e.g. the published Table 2 value);
        defaults to the floorplan's geometric size for PRR 0.
    force_miss:
        Reconfigure on every call regardless of residency (the paper's
        ``M = 1`` experiment).
    detailed_io:
        Split tasks into data-in/compute/data-out over the link channels.
    bitstream_source:
        Optional shared channel every bitstream (initial full image and
        partials) is fetched over first — the cluster bitstream-server
        model of :mod:`repro.rtr.cluster`.
    recovery:
        Optional :class:`~repro.faults.recovery.RecoveryPolicy` applied
        when a (re)configuration fails: retries/refetches happen inside
        the overlapped configuration branch; a ``fallback_full`` action
        stalls the pipeline after the current stage and reconfigures the
        whole device (wiping every PRR); ``degrade`` abandons the rest of
        the trace.  ``None`` (default) lets faults propagate — fail fast.
    """

    def __init__(
        self,
        node: XD1Node,
        *,
        estimated: bool = False,
        control_time: float | None = None,
        decision_time: float = 0.0,
        cache: ConfigCache | None = None,
        bitstream_bytes: int | None = None,
        force_miss: bool = False,
        detailed_io: bool = False,
        bitstream_source: BandwidthChannel | None = None,
        recovery: RecoveryPolicy | None = None,
    ) -> None:
        if not node.floorplan.n_prrs:
            raise ValueError(
                "PRTR needs at least one PRR; use a single/dual PRR floorplan"
            )
        self.node = node
        self.estimated = estimated
        self.control_time = (
            node.params.control_time if control_time is None else control_time
        )
        self.decision_time = decision_time
        if self.control_time < 0 or self.decision_time < 0:
            raise ValueError("overhead times must be >= 0")
        self.cache = cache or ConfigCache(
            slots=node.floorplan.n_prrs, policy=LruPolicy()
        )
        if self.cache.slots != node.floorplan.n_prrs:
            raise ValueError(
                f"cache has {self.cache.slots} slots but the floorplan has "
                f"{node.floorplan.n_prrs} PRRs"
            )
        self._bitstream_bytes = bitstream_bytes
        self.force_miss = force_miss
        self.detailed_io = detailed_io
        #: optional shared backplane bitstreams are fetched over before
        #: each (re)configuration — the cluster bitstream-server model
        self.bitstream_source = bitstream_source
        self.recovery = recovery

    # -- bitstream/config helpers -------------------------------------------

    def bitstream_for(self, module: str) -> Bitstream:
        if self._bitstream_bytes is not None:
            return Bitstream(
                name=f"prr:{module}",
                nbytes=self._bitstream_bytes,
                region="prr0",
                module=module,
                kind="module",
            )
        return self.node.prr_bitstream(0, module)

    def partial_config_time(self, module: str) -> float:
        """Unloaded partial configuration time for one module."""
        return self.node.partial_config_time(
            self.bitstream_for(module), estimated=self.estimated
        )

    def _configure_partial(
        self, module: str, owner: str, fetch: bool = True
    ) -> Generator[Any, Any, None]:
        """One partial-configuration attempt (may raise injected faults).

        ``fetch=False`` skips the bitstream-server pull — a plain retry
        re-drives the locally buffered copy.
        """
        bs = self.bitstream_for(module)
        if self.bitstream_source is not None and fetch:
            _, ok = yield from self.bitstream_source.transfer_ok(
                bs.nbytes, owner=f"{owner}:fetch"
            )
            if not ok:
                raise TransferCorruption(
                    f"server fetch of {bs.name!r} failed its CRC check"
                )
        if self.estimated:
            wire = self.node.icap_raw.wire_time(bs.nbytes)
            inj = self.node.fault_injector
            if inj is not None and inj.span_aborted(
                self.node.icap.timings.n_chunks(bs.nbytes)
            ):
                self.node.icap.write_aborts += 1
                yield Delay(inj.abort_fraction() * wire)
                raise WriteAbort(
                    f"wire-only write of {bs.name!r} aborted"
                )
            yield Delay(wire)
        else:
            yield from self.node.icap.configure(bs, owner=owner)

    def _full_config_attempt(
        self, owner: str, fetch: bool = True
    ) -> Generator[Any, Any, None]:
        """One full-device configuration attempt through the vendor path."""
        if self.bitstream_source is not None and fetch:
            _, ok = yield from self.bitstream_source.transfer_ok(
                self.node.full_image.nbytes, owner=f"{owner}:fetch-full"
            )
            if not ok:
                raise TransferCorruption(
                    "full-bitstream server fetch failed its CRC check"
                )
        t_full = self.node.full_config_time(estimated=self.estimated)
        inj = self.node.fault_injector
        if inj is not None and inj.port_aborted():
            self.node.selectmap.write_aborts += 1
            yield Delay(inj.abort_fraction() * t_full)
            raise WriteAbort("vendor-port full configuration aborted")
        yield Delay(t_full)

    def _task_body(
        self, call: FunctionCall, timeline: Timeline, lane: str
    ) -> Generator[Any, Any, None]:
        sim = self.node.sim
        task = call.task
        if self.detailed_io and (task.data_in_bytes or task.data_out_bytes):
            t0 = sim.now
            if task.data_in_bytes:
                yield from self.node.link.inbound.transfer(
                    task.data_in_bytes, owner=f"{call.name}#{call.index}:in"
                )
                timeline.add(
                    Phase.DATA_IN, t0, sim.now, task=call.name, lane=lane
                )
            t0 = sim.now
            yield Delay(task.compute_time)
            timeline.add(Phase.COMPUTE, t0, sim.now, task=call.name, lane=lane)
            t0 = sim.now
            if task.data_out_bytes:
                yield from self.node.link.outbound.transfer(
                    task.data_out_bytes, owner=f"{call.name}#{call.index}:out"
                )
                timeline.add(
                    Phase.DATA_OUT, t0, sim.now, task=call.name, lane=lane
                )
        else:
            t0 = sim.now
            yield Delay(task.time)
            timeline.add(Phase.TASK, t0, sim.now, task=call.name, lane=lane)

    # -- main run -------------------------------------------------------------

    def launch(self, trace: CallTrace, lane: str = "prr") -> PendingRun:
        """Spawn the execution pipeline; does not advance the clock."""
        sim = self.node.sim
        timeline = Timeline()
        records: list[CallRecord] = []
        calls = list(trace)
        n = len(calls)
        #: hit flag per call, decided at lookahead (residency) time
        hit: list[bool] = [False] * n
        config_attr: list[float] = [0.0] * n
        #: per-call recovery accounting (filled when faults are recovered)
        outcomes: dict[int, ConfigOutcome] = {}
        fallback_attr: list[bool] = [False] * n

        # Observability instruments — the shared no-op NULL while
        # observability is disabled, so the hot path stays untouched.
        m_cache = obsm.counter("repro_cache_events_total")
        m_prefetch = obsm.counter("repro_prefetch_outcomes_total")
        m_calls = obsm.counter("repro_calls_total")
        m_configs = obsm.counter("repro_configurations_total")
        m_config_s = obsm.histogram("repro_config_seconds")
        m_stage_s = obsm.histogram("repro_stage_seconds")
        m_recovery_s = obsm.counter("repro_recovery_seconds_total")

        def startup() -> Generator[Any, Any, tuple[float, ConfigOutcome]]:
            t_start = sim.now
            if self.decision_time:
                t0 = sim.now
                yield Delay(self.decision_time)
                timeline.add(Phase.SETUP, t0, sim.now, note="initial decision")
            t0 = sim.now
            outcome = yield from resilient(
                sim,
                lambda fetch: self._full_config_attempt(lane, fetch),
                self.recovery,
                allow_fallback=False,
            )
            if outcome.degrade:
                timeline.add(Phase.CONFIG, t0, sim.now, note="degraded")
                return sim.now - t_start, outcome
            timeline.add(Phase.CONFIG, t0, sim.now, note="initial full")
            m_configs.inc(kind="full")
            m_config_s.observe(sim.now - t0, kind="full")
            # The full bitstream instantiates the first module in PRR 0.
            self.cache.fill(calls[0].name)
            hit[0] = not self.force_miss
            if hit[0]:
                self.cache.stats.hits += 1
            else:
                self.cache.stats.misses += 1
            m_cache.inc(result="hit" if hit[0] else "miss")
            return sim.now - t_start, outcome

        def degrade_run(index: int, outcome: ConfigOutcome) -> None:
            """Record the call that never ran and flag the run degraded."""
            records.append(
                CallRecord(
                    index=calls[index].index,
                    task=calls[index].name,
                    hit=False,
                    start=sim.now,
                    end=sim.now,
                    config_time=0.0,
                    retries=outcome.retries,
                    refetches=outcome.refetches,
                    recovery_time=outcome.recovery_time,
                    failed=True,
                )
            )
            main_result["degraded"] = 1.0
            main_result["degraded_at"] = float(index)

        def main() -> Generator[Any, Any, None]:
            startup_proc = sim.spawn(startup(), name="prtr-startup")
            yield startup_proc.done
            startup_time, startup_outcome = startup_proc.result
            main_result["startup_time"] = startup_time
            main_result["startup_config"] = startup_time
            if startup_outcome.retries:
                main_result["startup_retries"] = float(
                    startup_outcome.retries
                )
                main_result["startup_recovery_time"] = (
                    startup_outcome.recovery_time
                )
            if startup_outcome.degrade:
                degrade_run(0, startup_outcome)
                return

            for i, call in enumerate(calls):
                stage_start = sim.now
                if self.control_time:
                    t0 = sim.now
                    yield Delay(self.control_time)
                    timeline.add(Phase.CONTROL, t0, sim.now, task=call.name)

                # Serial chain: the task, then the pre-fetch decision
                # about the next call.
                def chain(
                    call: FunctionCall = call,
                ) -> Generator[Any, Any, None]:
                    yield from self._task_body(call, timeline, lane=lane)
                    if self.decision_time:
                        t0 = sim.now
                        yield Delay(self.decision_time)
                        timeline.add(
                            Phase.SETUP, t0, sim.now, task=call.name
                        )

                branch_task = sim.spawn(chain(), name=f"task{i}")

                branch_cfg = None
                serial_cfg = False
                if i + 1 < n:
                    nxt = calls[i + 1]
                    resident = self.cache.contains(nxt.name)
                    is_hit = resident and not self.force_miss
                    hit[i + 1] = is_hit
                    m_cache.inc(result="hit" if is_hit else "miss")
                    m_prefetch.inc(result="hit" if is_hit else "miss")
                    if is_hit:
                        self.cache.stats.hits += 1
                        self.cache.policy.on_access(nxt.name)
                    else:
                        self.cache.stats.misses += 1
                        overlap_possible = self.cache.slots > 1
                        if overlap_possible:
                            if not resident:
                                self.cache.fill(nxt.name, pinned={call.name})

                            def cfg(
                                module: str = nxt.name, idx: int = i + 1
                            ) -> Generator[Any, Any, None]:
                                c0 = sim.now
                                out = yield from resilient(
                                    sim,
                                    lambda fetch, m=module, o=f"cfg{idx}": (
                                        self._configure_partial(
                                            m, owner=o, fetch=fetch
                                        )
                                    ),
                                    self.recovery,
                                    allow_fallback=True,
                                )
                                outcomes[idx] = out
                                if out.ok:
                                    timeline.add(
                                        Phase.CONFIG,
                                        c0,
                                        sim.now,
                                        task=module,
                                        lane="icap",
                                        note="partial",
                                    )
                                    m_configs.inc(kind="partial")
                                    m_config_s.observe(
                                        sim.now - c0, kind="partial"
                                    )
                                config_attr[idx] = sim.now - c0

                            branch_cfg = sim.spawn(cfg(), name=f"cfg{i+1}")
                        else:
                            # Single PRR: the target region is the one
                            # executing; configure serially after the stage.
                            serial_cfg = True

                if branch_cfg is not None:
                    yield AllOf([branch_task.done, branch_cfg.done])
                else:
                    yield branch_task.done

                if serial_cfg:
                    nxt = calls[i + 1]
                    t0 = sim.now
                    out = yield from resilient(
                        sim,
                        lambda fetch, m=nxt.name, o=f"cfg{i+1}": (
                            self._configure_partial(m, owner=o, fetch=fetch)
                        ),
                        self.recovery,
                        allow_fallback=True,
                    )
                    outcomes[i + 1] = out
                    config_attr[i + 1] = sim.now - t0
                    if out.ok:
                        timeline.add(
                            Phase.CONFIG,
                            t0,
                            sim.now,
                            task=nxt.name,
                            lane="icap",
                            note="partial-serial",
                        )
                        m_configs.inc(kind="partial")
                        m_config_s.observe(sim.now - t0, kind="partial")
                        if not self.cache.contains(nxt.name):
                            self.cache.fill(nxt.name)

                out_i = outcomes.get(i)
                records.append(
                    CallRecord(
                        index=call.index,
                        task=call.name,
                        hit=hit[i],
                        start=stage_start,
                        end=sim.now,
                        config_time=config_attr[i],
                        slot=(
                            self.cache.slot_of(call.name)
                            if self.cache.contains(call.name)
                            else -1
                        ),
                        retries=out_i.retries if out_i else 0,
                        refetches=out_i.refetches if out_i else 0,
                        fallback_full=fallback_attr[i],
                        recovery_time=out_i.recovery_time if out_i else 0.0,
                    )
                )
                m_calls.inc(mode="prtr", lane=lane)
                m_stage_s.observe(sim.now - stage_start, mode="prtr")
                if out_i is not None and out_i.recovery_time:
                    m_recovery_s.inc(out_i.recovery_time)

                # Resolve a failed overlapped/serial configuration of the
                # next call *after* the stage barrier: the fallback full
                # reconfiguration holds the whole device in reset, so it
                # cannot overlap execution and stalls the pipeline here.
                out_next = outcomes.get(i + 1)
                if out_next is not None and not out_next.ok:
                    nxt = calls[i + 1]
                    # Undo the speculative residency fill — the partial
                    # write never completed.
                    if self.cache.contains(nxt.name):
                        self.cache.evict(nxt.name)
                    if out_next.fallback:
                        fallback_attr[i + 1] = True
                        t0 = sim.now
                        out2 = yield from resilient(
                            sim,
                            lambda fetch, o=f"cfg{i+1}-full": (
                                self._full_config_attempt(o, fetch)
                            ),
                            self.recovery,
                            allow_fallback=False,
                        )
                        out_next.retries += out2.retries
                        out_next.refetches += out2.refetches
                        out_next.recovery_time += out2.recovery_time
                        config_attr[i + 1] += sim.now - t0
                        if out2.degrade:
                            out_next.degrade = True
                        else:
                            timeline.add(
                                Phase.CONFIG,
                                t0,
                                sim.now,
                                task=nxt.name,
                                lane=lane,
                                note="fallback-full",
                            )
                            m_configs.inc(kind="full")
                            m_config_s.observe(sim.now - t0, kind="full")
                            # The full image wipes every PRR and leaves
                            # the next module instantiated in PRR 0.
                            for resident in self.cache.residents:
                                self.cache.evict(resident)
                            self.cache.fill(nxt.name)
                    if out_next.degrade:
                        degrade_run(i + 1, out_next)
                        return

        main_result: dict[str, float] = {}
        start = sim.now

        def wrapped() -> Generator[Any, Any, None]:
            yield from main()
            main_result["done_at"] = sim.now

        sim.spawn(wrapped(), name=f"prtr:{lane}")

        def build(interrupted: str | None = None) -> RunResult:
            end = main_result.get("done_at")
            if end is None:
                # Cancelled mid-run: the last stage barrier is the
                # honest partial makespan (zero if nothing finished).
                end = records[-1].end if records else start
            result = RunResult(
                mode="prtr",
                trace_name=trace.name,
                total_time=end - start,
                records=records,
                # Freeze: the executor is done writing, and aliased
                # references must not corrupt the finalized result.
                timeline=timeline.freeze(),
                startup_time=main_result.get("startup_time", 0.0),
                interrupted=interrupted is not None,
                interrupt_reason=interrupted or "",
            )
            result.notes["mean_task_time"] = trace.mean_task_time()
            result.notes["startup_config"] = main_result.get(
                "startup_config", 0.0
            )
            result.notes["t_config_full"] = self.node.full_config_time(
                estimated=self.estimated
            )
            for key in (
                "startup_retries",
                "startup_recovery_time",
                "degraded",
                "degraded_at",
            ):
                if key in main_result:
                    result.notes[key] = main_result[key]
            if calls:
                result.notes["t_config_partial"] = self.partial_config_time(
                    calls[0].name
                )
            return result

        return PendingRun(build)

    def run(self, trace: CallTrace) -> RunResult:
        """Execute the trace to completion on this node's simulator.

        The result is audited (:func:`repro.runtime.invariants
        .audit_and_record`): violations land in ``notes`` — or raise,
        in strict-invariants mode.  With power accounting enabled
        (:mod:`repro.power`), the energy ledger is stamped into the
        notes first, arming the ``energy-conservation`` check.
        """
        from ..power import annotate_energy
        from ..runtime.invariants import audit_and_record

        pending = self.launch(trace)
        self.node.sim.run()
        result = pending.finalize()
        obsm.gauge("repro_run_sim_seconds").set(
            result.total_time, mode="prtr"
        )
        obsm.gauge("repro_run_events").set(
            self.node.sim.events_processed, mode="prtr"
        )
        annotate_energy(result, trace, self.node)
        audit_and_record(result)
        return result


def run_prtr(
    trace: CallTrace,
    node: XD1Node | None = None,
    **kwargs: Any,
) -> RunResult:
    """One-shot convenience wrapper (builds a default dual-PRR node)."""
    if node is None:
        node = XD1Node(Simulator())
    return PrtrExecutor(node, **kwargs).run(trace)
