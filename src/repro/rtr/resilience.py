"""Recovery-loop plumbing shared by the FRTR and PRTR executors.

:func:`resilient` drives one logical configuration (fetch + write) through
a :class:`~repro.faults.recovery.RecoveryPolicy`: it re-runs the attempt
generator on every injected :class:`~repro.faults.errors
.ReconfigurationFault`, pays the policy's deterministic backoff between
attempts, and reports what happened as a :class:`ConfigOutcome` so the
executor can account retries/fallbacks per call record.

With ``recovery=None`` the first fault propagates unchanged — fail-fast —
which also means the fault-free path adds *zero* events or draws and runs
bit-identical to the pre-fault executors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator

from ..faults.errors import ReconfigurationFault
from ..faults.recovery import RecoveryPolicy
from ..sim.engine import Delay, Simulator

__all__ = ["ConfigOutcome", "config_attempts", "resilient"]


@dataclass
class ConfigOutcome:
    """How one logical (re)configuration resolved."""

    #: attempts actually driven (1 for a clean first-try success)
    attempts: int = 1
    #: failed attempts before resolution (``attempts - 1`` on success)
    retries: int = 0
    #: retries that re-fetched the bitstream from the server
    refetches: int = 0
    #: the policy gave up on the partial path; the caller must now run a
    #: full (FRTR) reconfiguration
    fallback: bool = False
    #: the policy declared the blade degraded; the caller must abandon
    #: the remaining trace
    degrade: bool = False
    #: simulated seconds burned on failed attempts and backoff
    recovery_time: float = 0.0

    @property
    def ok(self) -> bool:
        return not (self.fallback or self.degrade)


def config_attempts(
    sim: Simulator,
    attempt: Callable[[], Generator[Any, Any, Any]],
    *,
    max_attempts: int,
    backoff: float = 0.0,
    breaker: Any = None,
) -> Generator[Any, Any, tuple[bool, Any]]:
    """Bounded retry driver for one service-mode configuration.

    Drives ``attempt()`` (a generator returning the cache-hit flag) up
    to ``max_attempts`` times, treating each
    :class:`~repro.faults.errors.ReconfigurationFault` as one consumed
    attempt.  Returns ``(True, result)`` on success, ``(False, None)``
    once the budget is exhausted.

    Two optional chaos-mode hooks, both inert by default so the plain
    service path stays event-identical to the historical inline loop:

    * ``breaker`` — a :class:`~repro.chaos.breakers.CircuitBreaker`-like
      object.  An attempt the breaker refuses (``allow`` False) fails
      fast *without* touching the hardware but still consumes an
      attempt, so a held-open breaker cannot spin the caller forever at
      one sim instant; outcomes are reported back via
      ``record_failure`` / ``record_success``.
    * ``backoff`` — deterministic delay paid between attempts (never
      after the last), keeping retry storms off the ICAP mutex.
    """
    if max_attempts < 1:
        raise ValueError(f"max_attempts must be >= 1: {max_attempts}")
    attempts = 0
    while True:
        if breaker is not None and not breaker.allow(sim.now):
            attempts += 1
            if attempts >= max_attempts:
                return False, None
            if backoff > 0:
                yield Delay(backoff)
            continue
        try:
            result = yield from attempt()
        except ReconfigurationFault:
            if breaker is not None:
                breaker.record_failure(sim.now)
            attempts += 1
            if attempts >= max_attempts:
                return False, None
            if backoff > 0:
                yield Delay(backoff)
            continue
        if breaker is not None:
            breaker.record_success(sim.now)
        return True, result


def resilient(
    sim: Simulator,
    attempt: Callable[[bool], Generator[Any, Any, Any]],
    recovery: RecoveryPolicy | None,
    *,
    allow_fallback: bool = False,
) -> Generator[Any, Any, ConfigOutcome]:
    """Drive ``attempt`` until it succeeds or the policy escalates.

    ``attempt(fetch)`` is a generator performing one configuration try;
    ``fetch`` tells it whether to (re)pull the bitstream over the server
    channel first (the first attempt always fetches; plain retries reuse
    the locally buffered copy).  ``allow_fallback=False`` (the full-config
    path, which has nothing coarser to fall back to) downgrades a
    ``fallback_full`` action to a refetching retry.
    """
    t_start = sim.now
    failures = 0
    refetches = 0
    fetch = True
    while True:
        attempt_start = sim.now
        try:
            yield from attempt(fetch)
        except ReconfigurationFault as fault:
            failures += 1
            if recovery is None:
                raise
            action = recovery.on_failure(failures, fault)
            if action.delay:
                yield Delay(action.delay)
            kind = action.kind
            if kind == "fallback_full" and not allow_fallback:
                kind = "refetch"
            if kind == "retry":
                fetch = False
                continue
            if kind == "refetch":
                refetches += 1
                fetch = True
                continue
            out = ConfigOutcome(
                attempts=failures,
                retries=failures,
                refetches=refetches,
                recovery_time=sim.now - t_start,
            )
            if kind == "fallback_full":
                out.fallback = True
                return out
            if kind == "degrade":
                out.degrade = True
                return out
            raise fault  # "giveup"
        else:
            return ConfigOutcome(
                attempts=failures + 1,
                retries=failures,
                refetches=refetches,
                recovery_time=attempt_start - t_start,
            )
