"""High-level run API: FRTR vs PRTR comparisons in one call.

:func:`compare` executes the same trace under both regimes on identically
parameterized (but independent) nodes and reports the measured speedup —
the simulated analogue of the paper's Figure 9 measurements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..hardware.node import XD1Node
from ..hardware.prr import Floorplan, dual_prr_floorplan
from ..obs import metrics as obsm
from ..runtime.invariants import audit_comparison
from ..sim.engine import Simulator
from ..workloads.task import CallTrace
from .events import RunResult
from .frtr import FrtrExecutor
from .prtr import PrtrExecutor

__all__ = ["ComparisonResult", "compare", "make_node"]


def make_node(
    floorplan: Floorplan | None = None, **node_kwargs: Any
) -> XD1Node:
    """A fresh node on a fresh simulator (runs must not share clocks)."""
    return XD1Node(
        Simulator(),
        floorplan=floorplan or dual_prr_floorplan(),
        **node_kwargs,
    )


@dataclass(frozen=True)
class ComparisonResult:
    """Paired FRTR/PRTR measurement for one trace."""

    frtr: RunResult
    prtr: RunResult

    @property
    def speedup(self) -> float:
        """Measured ``S = T_total^FRTR / T_total^PRTR`` (Eq. 6's subject)."""
        if self.prtr.total_time <= 0:
            raise ZeroDivisionError("PRTR run has zero total time")
        return self.frtr.total_time / self.prtr.total_time

    def summary(self) -> dict[str, float]:
        return {
            "speedup": self.speedup,
            "frtr_total": self.frtr.total_time,
            "prtr_total": self.prtr.total_time,
            "hit_ratio": self.prtr.hit_ratio,
            "n_calls": float(self.prtr.n_calls),
        }


def compare(
    trace: CallTrace,
    *,
    floorplan: Floorplan | None = None,
    estimated: bool = False,
    control_time: float | None = None,
    decision_time: float = 0.0,
    force_miss: bool = False,
    bitstream_bytes: int | None = None,
    detailed_io: bool = False,
    node_kwargs: dict[str, Any] | None = None,
) -> ComparisonResult:
    """Run ``trace`` under FRTR and PRTR and return both results.

    Each regime gets its own node and simulator so clocks and resource
    histories stay independent.
    """
    node_kwargs = node_kwargs or {}
    frtr_node = make_node(floorplan, **node_kwargs)
    prtr_node = make_node(floorplan, **node_kwargs)
    frtr = FrtrExecutor(
        frtr_node, estimated=estimated, control_time=control_time
    ).run(trace)
    prtr = PrtrExecutor(
        prtr_node,
        estimated=estimated,
        control_time=control_time,
        decision_time=decision_time,
        force_miss=force_miss,
        bitstream_bytes=bitstream_bytes,
        detailed_io=detailed_io,
    ).run(trace)
    # Paired audit: the measured speedup must respect the model's
    # (1+X_PRTR)/X_PRTR supremum and large-task 2x bounds.
    report = audit_comparison(frtr, prtr)
    prtr.notes["pair_invariant_violations"] = float(len(report.violations))
    report.raise_if_strict()
    result = ComparisonResult(frtr=frtr, prtr=prtr)
    if prtr.total_time > 0:
        obsm.gauge("repro_compare_speedup").set(result.speedup)
    return result
