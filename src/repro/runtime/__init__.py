"""Crash-safe execution layer: journal, watchdog, invariant auditor.

Long-running entry points (model sweeps, reliability grids, cluster
runs) wrap themselves in three cooperating pieces:

:mod:`repro.runtime.journal`
    Durable append-only JSONL checkpoints — one O(1) append+fsync per
    record — with torn-tail-tolerant resume and per-shard segment
    journals for parallel sweeps.
:mod:`repro.runtime.watchdog`
    Wall-clock deadlines plus DES no-progress detection, hooked into
    :class:`repro.sim.engine.Simulator`; cancels gracefully via
    :class:`WatchdogExpired`.
:mod:`repro.runtime.invariants`
    Post-run conservation-law audits (clock monotonicity, makespan and
    hit/miss accounting, the paper's speedup bounds, cluster call
    conservation, parallel shard-merge consistency), strict or
    record-only.
:mod:`repro.runtime.parallel`
    The sharded sweep engine: :func:`parallel_map` over fork workers
    and :func:`run_sharded`, the journaled walk behind
    ``run_checkpointed(..., workers=N)``.
:mod:`repro.runtime.crashsafe`
    The harnesses tying them together: :func:`run_checkpointed`,
    :func:`crash_safe_fault_sweep`, :func:`run_interruptible`.

``crashsafe`` is exported lazily: it imports the executors, which in
turn audit through :mod:`repro.runtime.invariants`, and the lazy hop
keeps that dependency loop unwound at import time.
"""

from __future__ import annotations

from typing import Any

from .invariants import (
    INVARIANTS,
    AuditReport,
    InvariantError,
    Violation,
    audit_and_record,
    audit_cluster,
    audit_comparison,
    audit_run,
    audit_service,
    audit_shard_merge,
    audit_sweep_points,
    set_strict,
    strict_enabled,
)
from .journal import (
    JournalError,
    RunJournal,
    atomic_write_text,
    list_segments,
    segment_name,
)
from .parallel import (
    ShardedWalk,
    ShardStatus,
    fork_available,
    merge_snapshots,
    parallel_map,
    run_sharded,
    shard_indices,
)
from .watchdog import Watchdog, WatchdogExpired

_LAZY_CRASHSAFE = (
    "GridOutcome",
    "SweepOutcome",
    "crash_safe_fault_sweep",
    "run_checkpointed",
    "run_interruptible",
)

__all__ = [
    "INVARIANTS",
    "AuditReport",
    "InvariantError",
    "JournalError",
    "RunJournal",
    "ShardStatus",
    "ShardedWalk",
    "Violation",
    "Watchdog",
    "WatchdogExpired",
    "atomic_write_text",
    "audit_and_record",
    "audit_cluster",
    "audit_comparison",
    "audit_run",
    "audit_service",
    "audit_shard_merge",
    "audit_sweep_points",
    "fork_available",
    "list_segments",
    "merge_snapshots",
    "parallel_map",
    "run_sharded",
    "segment_name",
    "set_strict",
    "shard_indices",
    "strict_enabled",
    *_LAZY_CRASHSAFE,
]


def __getattr__(name: str) -> Any:
    if name in _LAZY_CRASHSAFE:
        from . import crashsafe

        return getattr(crashsafe, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
