"""Benchmark trajectory tracking: collect, append, gate.

The benchmark suite (``benchmarks/test_bench_*.py``) measures wall
clock — which this module, living inside the deterministic runtime,
must never do (reprolint RL001 bans clock calls under ``runtime/``).
The division of labor is therefore strict:

* benchmarks **measure** and drop one ``BENCH_<suite>.json`` per suite
  into a scratch directory (``pytest benchmarks/ --bench-json DIR``),
  written atomically through :func:`write_bench_json`;
* this module **bookkeeps**: it collects those per-suite summaries into
  one trajectory entry, appends it to the committed
  ``BENCH_trajectory.json`` (one entry per PR), and gates CI on
  throughput regressions against the previous entry.

Timestamps and labels are *inputs* (CI passes the commit SHA and date);
nothing here reads a clock or draws randomness, so the module itself
stays replayable.

CLI (used by the ``bench-trajectory`` CI job)::

    python -m repro.runtime.benchtrack append \\
        --dir bench-json --label pr8 --timestamp 2026-08-07
    python -m repro.runtime.benchtrack gate

``append`` exits 2 on usage errors (missing suite files); ``gate``
exits 1 when any watched metric in the newest entry fell more than
``--tolerance`` (default 20%) below the previous entry.
See ``docs/PERFORMANCE.md`` for how to read the trajectory file.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys
from typing import Any, Mapping, Sequence

from .journal import atomic_write_text

__all__ = [
    "TRAJECTORY_FILE",
    "GATE_METRICS",
    "REGRESSION_TOLERANCE",
    "write_bench_json",
    "collect_bench_results",
    "build_entry",
    "load_trajectory",
    "append_entry",
    "check_regression",
    "main",
]

#: the committed trajectory file, repo-root relative
TRAJECTORY_FILE = "BENCH_trajectory.json"

#: throughput metrics the regression gate watches (higher is better),
#: mapped to the per-suite summary that produces them
GATE_METRICS: dict[str, tuple[str, str]] = {
    "events_per_sec": ("service", "events_per_sec"),
    "grid_points_per_sec_serial": ("hybrid", "grid_points_per_sec_serial"),
    # DES-basis parallel throughput: serial and workers-4 walls measured
    # on the *same* DES-forced grid.  The retired
    # grid_points_per_sec_workers4 metric compared unlike bases — an
    # analytically-answered grid (microseconds per point) against fork
    # startup — so it gated on process-spawn latency, not sweep
    # throughput.  Entries recorded before the split keep the old key;
    # the gate compares like with like and skips one-sided metrics.
    "des_points_per_sec_workers4": (
        "hybrid", "des_points_per_sec_workers4"
    ),
    "hybrid_speedup": ("hybrid", "hybrid_speedup"),
    "power_points_per_sec": ("power", "power_points_per_sec"),
    # warm-cache reprolint throughput (benchmarks/test_bench_lint.py):
    # guards the whole-program analyzer against superlinear growth as
    # the tree and the rule set expand together.
    "lint_files_per_sec": ("lint", "lint_files_per_sec"),
}

#: maximum tolerated relative drop per metric vs the previous entry
REGRESSION_TOLERANCE = 0.20


def write_bench_json(directory: str, name: str, payload: Mapping[str, Any]) -> str:
    """Atomically write one ``BENCH_<name>.json`` summary; returns its path.

    Routed through :func:`~repro.runtime.journal.atomic_write_text`
    (write-to-temp + fsync + rename) so a benchmark run killed
    mid-write never leaves a torn summary for the collector to choke
    on.  No-op (returns ``""``) when ``directory`` is empty — the
    benchmarks' opt-in convention.
    """
    if not directory:
        return ""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"BENCH_{name}.json")
    atomic_write_text(
        path, json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    return path


def collect_bench_results(directory: str) -> dict[str, dict[str, Any]]:
    """Read every ``BENCH_*.json`` in ``directory``, keyed by suite name."""
    results: dict[str, dict[str, Any]] = {}
    for path in sorted(glob.glob(os.path.join(directory, "BENCH_*.json"))):
        suite = os.path.basename(path)[len("BENCH_"):-len(".json")]
        with open(path, encoding="utf-8") as fh:
            results[suite] = json.load(fh)
    return results


def build_entry(
    label: str,
    results: Mapping[str, Mapping[str, Any]],
    *,
    timestamp: str = "",
) -> dict[str, Any]:
    """One trajectory entry from the collected per-suite summaries.

    Pulls each :data:`GATE_METRICS` value out of its producing suite's
    summary; a missing suite or key becomes ``None`` (recorded, but
    skipped by the gate) so a partial benchmark run still appends an
    honest entry rather than failing or inventing numbers.
    """
    metrics: dict[str, float | None] = {}
    for metric, (suite, key) in GATE_METRICS.items():
        value = results.get(suite, {}).get(key)
        metrics[metric] = float(value) if value is not None else None
    return {
        "label": label,
        "timestamp": timestamp,
        "metrics": metrics,
        "suites": sorted(results),
    }


def load_trajectory(path: str) -> dict[str, Any]:
    """The trajectory document (``{"version": 1, "entries": [...]}``)."""
    if not os.path.exists(path):
        return {"version": 1, "entries": []}
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    if not isinstance(doc.get("entries"), list):
        raise ValueError(f"{path!r} is not a trajectory file")
    return doc


def append_entry(path: str, entry: Mapping[str, Any]) -> dict[str, Any]:
    """Append ``entry`` to the trajectory at ``path`` (atomic rewrite).

    Re-running the collector for the same ``label`` (a force-pushed PR
    branch, a re-triggered CI job) *replaces* that label's entry
    instead of duplicating it, so the trajectory stays one entry per
    PR.
    """
    doc = load_trajectory(path)
    doc["entries"] = [
        e for e in doc["entries"] if e.get("label") != entry["label"]
    ]
    doc["entries"].append(dict(entry))
    atomic_write_text(path, json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return doc


def check_regression(
    entries: Sequence[Mapping[str, Any]],
    tolerance: float = REGRESSION_TOLERANCE,
) -> list[str]:
    """Violation messages for the newest entry vs its predecessor.

    A metric regresses when both entries have it and the new value is
    below ``(1 - tolerance)`` times the old one.  Metrics absent from
    either side are skipped: the gate compares like with like and never
    blocks on a suite that did not run.
    """
    if len(entries) < 2:
        return []
    prev, curr = entries[-2], entries[-1]
    violations: list[str] = []
    for metric in GATE_METRICS:
        old = prev.get("metrics", {}).get(metric)
        new = curr.get("metrics", {}).get(metric)
        if old is None or new is None:
            continue
        if new < old * (1.0 - tolerance):
            violations.append(
                f"{metric}: {new:.4g} is {(1.0 - new / old):.1%} below "
                f"{prev.get('label', 'previous')!r} ({old:.4g}); "
                f"tolerance is {tolerance:.0%}"
            )
    return violations


def _cmd_append(args: argparse.Namespace) -> int:
    results = collect_bench_results(args.dir)
    if not results:
        print(
            f"benchtrack: no BENCH_*.json under {args.dir!r} — run "
            f"`pytest benchmarks/ --bench-json {args.dir}` first",
            file=sys.stderr,
        )
        return 2
    entry = build_entry(args.label, results, timestamp=args.timestamp)
    doc = append_entry(args.out, entry)
    print(
        f"benchtrack: appended {args.label!r} to {args.out} "
        f"({len(doc['entries'])} entries; suites: "
        f"{', '.join(entry['suites'])})"
    )
    for metric, value in sorted(entry["metrics"].items()):
        shown = "n/a" if value is None else f"{value:.4g}"
        print(f"  {metric:<30} {shown}")
    return 0


def _cmd_gate(args: argparse.Namespace) -> int:
    doc = load_trajectory(args.out)
    violations = check_regression(doc["entries"], tolerance=args.tolerance)
    if violations:
        for violation in violations:
            print(f"benchtrack: REGRESSION {violation}", file=sys.stderr)
        return 1
    n = len(doc["entries"])
    print(
        f"benchtrack: gate PASS ({n} entr{'y' if n == 1 else 'ies'}, "
        f"tolerance {args.tolerance:.0%})"
    )
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point for ``python -m repro.runtime.benchtrack``."""
    parser = argparse.ArgumentParser(
        prog="benchtrack",
        description="collect benchmark summaries, track the throughput "
                    "trajectory, gate CI on regressions",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    pa = sub.add_parser(
        "append", help="collect BENCH_*.json and append one entry"
    )
    pa.add_argument(
        "--dir", required=True,
        help="directory the benchmarks wrote BENCH_*.json into",
    )
    pa.add_argument(
        "--label", required=True,
        help="entry label (one per PR; re-append replaces)",
    )
    pa.add_argument(
        "--timestamp", default="",
        help="ISO date/SHA stamp recorded verbatim (this module never "
             "reads a clock)",
    )
    pa.add_argument(
        "--out", default=TRAJECTORY_FILE,
        help=f"trajectory file (default {TRAJECTORY_FILE})",
    )
    pa.set_defaults(fn=_cmd_append)

    pg = sub.add_parser(
        "gate", help="fail if the newest entry regressed vs the previous"
    )
    pg.add_argument(
        "--out", default=TRAJECTORY_FILE,
        help=f"trajectory file (default {TRAJECTORY_FILE})",
    )
    pg.add_argument(
        "--tolerance", type=float, default=REGRESSION_TOLERANCE,
        help="maximum tolerated relative drop (default 0.20)",
    )
    pg.set_defaults(fn=_cmd_gate)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    sys.exit(main())
