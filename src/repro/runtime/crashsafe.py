"""Crash-safe execution harnesses: checkpointed sweeps, interruptible DES.

Three layers cooperate (see ``docs/MODEL.md`` section 9):

* :func:`run_checkpointed` — the generic engine: walk a grid of work
  items, journal every completed point atomically
  (:class:`~repro.runtime.journal.RunJournal`), honor a wall-clock
  :class:`~repro.runtime.watchdog.Watchdog` between points, and on
  resume replay journaled payloads instead of recomputing them.
* :func:`crash_safe_fault_sweep` — the concrete wrapper for the
  reliability fault-rate x hit-ratio sweep (the ``repro sweep`` CLI).
  Every grid point is an independent, internally seeded simulation
  (:func:`~repro.model.stochastic.resolve_rng` semantics), so a resumed
  sweep is **bit-identical** to an uninterrupted one regardless of
  where the crash fell.
* :func:`run_interruptible` — attach a watchdog to a single executor's
  DES run; on expiry the partial :class:`~repro.rtr.events.RunResult`
  comes back marked ``interrupted`` instead of the process hanging.

Completed sweeps are audited (:mod:`repro.runtime.invariants`) and the
report is written to ``<run_dir>/invariants.json``.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Iterable, Mapping, Sequence

from ..analysis.reliability import (
    DEFAULT_FAULT_RATES,
    DEFAULT_HIT_RATIOS,
    FaultSweepPoint,
    effective_speedup_under_faults,
)
from ..obs import metrics as obsm
from .invariants import AuditReport, audit_sweep_points
from .journal import (
    JournalError,
    RunJournal,
    atomic_write_text,
    list_segments,
)
from .parallel import fork_available, load_segment_points, run_sharded
from .watchdog import Watchdog, WatchdogExpired

__all__ = [
    "GridOutcome",
    "SweepOutcome",
    "crash_safe_fault_sweep",
    "run_checkpointed",
    "run_interruptible",
]


@dataclass
class GridOutcome:
    """Result of one checkpointed grid walk."""

    #: results for every *completed* item, in grid order
    results: list[Any]
    #: watchdog reason when the walk was cut short, else ``None``
    interrupted: str | None
    #: points replayed from the journal instead of recomputed
    resumed_points: int
    #: points computed (and journaled) this walk
    computed_points: int
    journal: RunJournal
    #: shard-merge audit when the walk ran in parallel, else ``None``
    merge_audit: AuditReport | None = None

    @property
    def complete(self) -> bool:
        """True when the run finished without watchdog interruption."""
        return self.interrupted is None


def run_checkpointed(
    run_dir: str,
    items: Iterable[Any],
    fn: Callable[[Any], Any],
    *,
    key_of: Callable[[Any], str],
    encode: Callable[[Any], Any] = lambda r: r,
    decode: Callable[[Any], Any] = lambda p: p,
    meta: Mapping[str, Any] | None = None,
    resume: bool = False,
    watchdog: Watchdog | None = None,
    progress: Callable[[str], None] | None = None,
    workers: int = 1,
) -> GridOutcome:
    """Walk ``items`` through ``fn`` with durable per-item checkpoints.

    With ``resume=True`` the journal in ``run_dir`` is loaded, its
    ``meta`` is required to match the provided one (resuming under
    different sweep parameters would merge incompatible grids), and
    journaled items are decoded instead of recomputed.  The wall-clock
    watchdog is consulted *between* items; on expiry the walk stops
    with everything completed so far safely journaled.

    ``workers > 1`` runs the walk on the sharded engine
    (:func:`repro.runtime.parallel.run_sharded`): bit-identical results
    and merged journal, one segment journal per worker while in flight.
    A run may be killed under one worker count and resumed under any
    other (including serial) — leftover segments are always absorbed.
    """
    meta = dict(meta or {})
    items = list(items)
    keys = [key_of(item) for item in items]
    if resume:
        journal = RunJournal.load(run_dir)
        # Compare unconditionally: an empty requested meta must match an
        # empty journaled meta, not act as a wildcard that would merge a
        # parameterless resume into any journal.
        if journal.meta != meta:
            raise JournalError(
                f"journal meta in {run_dir!r} does not match this "
                f"sweep's parameters (journaled {journal.meta!r}, "
                f"requested {meta!r})"
            )
        if journal.sealed:
            missing = [key for key in keys if not journal.has(key)]
            if missing:
                raise JournalError(
                    f"journal in {run_dir!r} is sealed but the requested "
                    f"grid has {len(missing)} point(s) it never recorded "
                    f"(first: {missing[0]!r}); the grids differ — start "
                    f"a fresh run directory instead of resuming"
                )
    else:
        journal = RunJournal.create(run_dir, meta)

    if workers > 1 and fork_available() and not journal.sealed:
        walk = run_sharded(
            run_dir,
            items,
            fn,
            key_of=key_of,
            encode=encode,
            decode=decode,
            meta=meta,
            journal=journal,
            workers=workers,
            max_wall_s=(
                watchdog.max_wall_s if watchdog is not None else None
            ),
            wall_clock=watchdog.clock if watchdog is not None else None,
            progress=progress,
        )
        return GridOutcome(
            results=walk.results,
            interrupted=walk.interrupted,
            resumed_points=walk.resumed_points,
            computed_points=walk.computed_points,
            journal=walk.journal,
            merge_audit=walk.merge_audit,
        )

    if watchdog is not None:
        watchdog.start()
    # Segments left behind by a killed parallel run: absorb their points
    # into the main journal at the grid position a serial walk would
    # have written them, so the merged journal stays byte-identical.
    segment_payloads: dict[str, Any] = {}
    if resume:
        _, segment_payloads = load_segment_points(run_dir, meta)

    results: list[Any] = []
    resumed = computed = 0
    interrupted: str | None = None
    for item, key in zip(items, keys):
        if journal.has(key):
            results.append(decode(journal.payload(key)))
            resumed += 1
            continue
        if key in segment_payloads:
            journal.record(key, segment_payloads[key])
            results.append(decode(segment_payloads[key]))
            resumed += 1
            continue
        if watchdog is not None:
            try:
                watchdog.check_wall()
            except WatchdogExpired as exc:
                interrupted = str(exc)
                break
        result = fn(item)
        journal.record(key, encode(result))
        computed += 1
        results.append(result)
        if progress is not None:
            progress(f"{key} done ({journal.n_points} journaled)")
    if interrupted is None:
        # Seal with the observability snapshot (None while disabled, so
        # uninstrumented journals keep the pre-observability byte format).
        journal.seal(obsm.snapshot() or None)
        for name in list_segments(run_dir).values():
            os.remove(os.path.join(run_dir, name))
    return GridOutcome(
        results=results,
        interrupted=interrupted,
        resumed_points=resumed,
        computed_points=computed,
        journal=journal,
    )


@dataclass
class SweepOutcome(GridOutcome):
    """A checkpointed reliability sweep plus its invariant audit."""

    audit: AuditReport = field(default_factory=AuditReport)

    @property
    def points(self) -> list[FaultSweepPoint]:
        """The merged sweep results (alias of ``results``)."""
        return self.results


def crash_safe_fault_sweep(
    run_dir: str,
    fault_rates: Sequence[float] = DEFAULT_FAULT_RATES,
    hit_ratios: Sequence[float] = DEFAULT_HIT_RATIOS,
    *,
    n_calls: int = 30,
    task_time: float = 0.1,
    seed: int = 0,
    resume: bool = False,
    deadline_s: float | None = None,
    strict: bool | None = None,
    progress: Callable[[str], None] | None = None,
    workers: int = 1,
    hybrid: str = "off",
) -> SweepOutcome:
    """The reliability grid with checkpoint/resume and auditing.

    Point order, seeds and numerics are identical to
    :func:`~repro.analysis.reliability.sweep_fault_hit_grid`; each
    point's simulators are freshly seeded from ``seed``, so a resumed
    run merges to a bit-identical point list.  ``workers > 1`` shards
    the grid across fork workers — point list, audit report and merged
    journal are all bit-identical to the serial walk.

    ``hybrid`` ("off"/"on"/"verify") selects the analytic fast path per
    cell; points — and therefore journal bytes — are identical in every
    mode, so a run journaled under one mode resumes cleanly under
    another (``hybrid`` is deliberately left out of the resume meta).
    """
    from ..analysis.reliability import hybrid_cell_modes

    meta = {
        "kind": "fault_sweep",
        "rates": [float(r) for r in fault_rates],
        "hit_ratios": [float(h) for h in hit_ratios],
        "n_calls": int(n_calls),
        "task_time": float(task_time),
        "seed": int(seed),
    }
    grid = [(h, rate) for h in hit_ratios for rate in fault_rates]
    modes = dict(zip(grid, hybrid_cell_modes(grid, hybrid, seed)))
    watchdog = (
        Watchdog(max_wall_s=deadline_s) if deadline_s is not None else None
    )
    outcome = run_checkpointed(
        run_dir,
        grid,
        lambda cell: effective_speedup_under_faults(
            cell[1], cell[0],
            n_calls=n_calls, task_time=task_time, seed=seed,
            hybrid=modes[cell],
        ),
        key_of=lambda cell: f"rate={cell[1]!r},H={cell[0]!r}",
        encode=asdict,
        decode=lambda payload: FaultSweepPoint(**payload),
        meta=meta,
        resume=resume,
        watchdog=watchdog,
        progress=progress,
        workers=workers,
    )
    audit = audit_sweep_points(outcome.results)
    atomic_write_text(
        os.path.join(run_dir, "invariants.json"),
        json.dumps(audit.as_dict(), indent=2) + "\n",
    )
    sweep = SweepOutcome(
        results=outcome.results,
        interrupted=outcome.interrupted,
        resumed_points=outcome.resumed_points,
        computed_points=outcome.computed_points,
        journal=outcome.journal,
        merge_audit=outcome.merge_audit,
        audit=audit,
    )
    audit.raise_if_strict(strict)
    return sweep


def run_interruptible(
    executor: Any, trace: Any, *, watchdog: Watchdog
) -> Any:
    """Run one executor under a DES watchdog; never hangs.

    Returns the full :class:`~repro.rtr.events.RunResult` when the run
    drains normally, or a partial result marked ``interrupted`` (with
    ``interrupt_reason`` set to the watchdog's reason) when a limit
    trips mid-run.
    """
    sim = executor.node.sim
    pending = executor.launch(trace)
    sim.watchdog = watchdog.start(sim)
    try:
        try:
            sim.run()
        except WatchdogExpired as exc:
            return pending.finalize(interrupted=str(exc))
    finally:
        sim.watchdog = None
    return pending.finalize()
