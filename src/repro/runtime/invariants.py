"""Runtime invariant auditing: conservation laws checked after every run.

The paper's model is exact, so its conservation laws are checkable at
runtime against every simulated result — not just in the test suite.
This module is the pluggable post-run auditor:

* :func:`audit_run` — per-:class:`~repro.rtr.events.RunResult` checks
  (clock monotonicity, makespan accounting, hit/miss accounting,
  recovery-time containment);
* :func:`audit_comparison` / :func:`audit_sweep_points` — speedup-bound
  checks against :mod:`repro.model.bounds` (the ``(1+X_PRTR)/X_PRTR``
  supremum and the 2x large-task bound);
* :func:`audit_cluster` — conservation of calls under blade degradation
  and server-busy accounting.

Strictness is a process-wide mode set by the CLI's
``--strict-invariants`` (:func:`set_strict`): strict audits raise
:class:`InvariantError`; the default records violations in the result's
``notes`` (``invariant_violations``) and carries on.  All checks are
duck-typed over result objects so this module depends only on
:mod:`repro.model` — executors can import it without cycles.

Every check is registered in :data:`INVARIANTS` (name -> description);
``docs/MODEL.md`` renders the same catalog.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

import numpy as np

from ..model.bounds import large_task_bound, peak_speedup
from ..model.parameters import ModelParameters

__all__ = [
    "INVARIANTS",
    "AuditReport",
    "InvariantError",
    "Violation",
    "audit_and_record",
    "audit_chaos",
    "audit_cluster",
    "audit_comparison",
    "audit_energy",
    "audit_hybrid",
    "audit_metrics",
    "audit_power_points",
    "audit_run",
    "audit_service",
    "audit_shard_merge",
    "audit_sweep_points",
    "set_strict",
    "strict_enabled",
]

#: the invariant catalog: check name -> what it asserts
INVARIANTS: dict[str, str] = {
    "clock-monotonic": (
        "call records are time-ordered: end >= start per record and "
        "record i+1 starts no earlier than record i ends"
    ),
    "makespan-accounting": (
        "total_time == startup_time + (last record end - first record "
        "start) within float tolerance (stages tile the run)"
    ),
    "call-accounting": (
        "hits + misses == calls, hit_ratio in [0, 1], record indices "
        "unique, hits carry no configuration time"
    ),
    "recovery-containment": (
        "per-record recovery_time <= config_time (recovery is a subset "
        "of the configuration work it repairs)"
    ),
    "degradation-consistency": (
        "a degraded run ends with its failed record and degraded_at "
        "names that record"
    ),
    "speedup-bound-supremum": (
        "measured speedup <= peak_speedup(X_PRTR, H) from "
        "repro.model.bounds (the (1+X_PRTR)/X_PRTR ceiling)"
    ),
    "speedup-bound-2x": (
        "for X_task >= 1, measured speedup <= 1 + 1/X_task <= 2 "
        "(the paper's large-task 2x bound)"
    ),
    "sweep-consistency": (
        "per sweep point: speedup == T_FRTR/T_PRTR, availability and "
        "hit ratios in [0, 1], MTTR >= 0"
    ),
    "call-conservation": (
        "cluster runs account for every submitted call: completed + "
        "failed + abandoned == planned, redistribution conserves calls"
    ),
    "server-accounting": (
        "shared-server busy time fits inside the cluster makespan"
    ),
    "metrics-conservation": (
        "observability counters agree with each other: cache hits + "
        "misses == PRTR calls, ICAP-controller configurations never "
        "exceed the executors' partial-configuration count"
    ),
    "shard-merge": (
        "a parallel sweep's merged journal holds exactly the requested "
        "grid keys in grid order, worker segments are pairwise "
        "disjoint, and no segment recorded a key outside the grid"
    ),
    "service-accounting": (
        "per tenant: admission decisions (admit + queue + shed) == "
        "arrivals, arrived == completed + shed + in-flight, one latency "
        "sample per completion (all non-negative), and in-flight is "
        "zero unless the run was interrupted"
    ),
    "chaos-containment": (
        "injected failures lose no work: every admitted request still "
        "completes or is explicitly shed (no in-flight residue on an "
        "uninterrupted run), migrations happen only when outages did, "
        "every scripted outage that ended restored its failure domain, "
        "and restored slots are a subset of failed slots"
    ),
    "hybrid-exactness": (
        "every shadow-verified hybrid sample agrees bit-for-bit: where "
        "the exactness predicates hold, the closed-form replay equals "
        "the DES answer exactly (== on floats), per grid point"
    ),
    "energy-conservation": (
        "a powered run's energy ledger balances exactly: static energy "
        "== static power x makespan, the ledger total == ((static + "
        "task) + full-config) + partial-config in the fixed fold order, "
        "mean power == total / makespan, and every component is "
        "non-negative (== on floats; the ledger and the audit evaluate "
        "the same expressions)"
    ),
}

_STRICT = False


def set_strict(flag: bool) -> bool:
    """Set the process-wide strict mode; returns the previous value."""
    global _STRICT
    previous = _STRICT
    _STRICT = bool(flag)
    return previous


def strict_enabled() -> bool:
    """Whether strict mode (raise on violation) is on."""
    return _STRICT


@dataclass(frozen=True)
class Violation:
    """One failed invariant check."""

    invariant: str
    message: str

    def __str__(self) -> str:  # pragma: no cover - display helper
        return f"[{self.invariant}] {self.message}"


class InvariantError(RuntimeError):
    """Raised in strict mode when an audit finds violations."""

    def __init__(self, violations: Sequence[Violation]) -> None:
        self.violations = list(violations)
        head = "; ".join(str(v) for v in self.violations[:3])
        more = len(self.violations) - 3
        if more > 0:
            head += f" (+{more} more)"
        super().__init__(f"{len(self.violations)} invariant "
                         f"violation(s): {head}")


@dataclass
class AuditReport:
    """Outcome of one audit pass."""

    checked: list[str] = field(default_factory=list)
    violations: list[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no invariant was violated."""
        return not self.violations

    def merge(self, other: "AuditReport") -> "AuditReport":
        """Fold another report into this one (dedups checked names)."""
        for name in other.checked:
            if name not in self.checked:
                self.checked.append(name)
        self.violations.extend(other.violations)
        return self

    def raise_if_strict(self, strict: bool | None = None) -> None:
        """Raise :class:`InvariantError` on violations in strict mode."""
        strict = _STRICT if strict is None else strict
        if strict and self.violations:
            raise InvariantError(self.violations)

    def as_dict(self) -> dict[str, Any]:
        """JSON-serializable form (persisted as ``invariants.json``)."""
        return {
            "checked": list(self.checked),
            "ok": self.ok,
            "violations": [
                {"invariant": v.invariant, "message": v.message}
                for v in self.violations
            ],
        }

    def summary_line(self) -> str:
        """One-line human summary, e.g. ``invariants: 3 checked, OK``."""
        state = "OK" if self.ok else f"{len(self.violations)} violation(s)"
        return f"invariants: {len(self.checked)} checked, {state}"


def _check(
    report: AuditReport, name: str, ok: bool, message: str
) -> None:
    if name not in report.checked:
        report.checked.append(name)
    if not ok:
        report.violations.append(Violation(name, message))


# -- per-run checks -------------------------------------------------------


def audit_run(result: Any, *, rel_tol: float = 1e-9) -> AuditReport:
    """Audit one executor :class:`~repro.rtr.events.RunResult`.

    Interrupted partial results only get the ordering checks (their
    makespan is, by construction, cut short).
    """
    report = AuditReport()
    records = result.records
    tol = rel_tol * max(1.0, result.total_time)

    ordered = all(r.end >= r.start for r in records) and all(
        b.start >= a.end - tol for a, b in zip(records, records[1:])
    )
    _check(
        report, "clock-monotonic", ordered,
        f"records of {result.trace_name!r} are not time-ordered",
    )

    if records:
        indices = [r.index for r in records]
        hits = sum(1 for r in records if r.hit)
        _check(
            report, "call-accounting",
            hits + result.n_configs == result.n_calls
            and len(set(indices)) == len(indices)
            and 0.0 <= result.hit_ratio <= 1.0
            and all(r.config_time == 0.0 for r in records if r.hit),
            f"hit/miss accounting broken for {result.trace_name!r}",
        )
        _check(
            report, "recovery-containment",
            all(r.recovery_time <= r.config_time + tol for r in records),
            f"recovery_time exceeds config_time in {result.trace_name!r}",
        )

    report.merge(audit_energy(result))

    if getattr(result, "interrupted", False) or not records:
        return report

    span = records[-1].end - records[0].start
    expected = result.startup_time + span
    _check(
        report, "makespan-accounting",
        abs(result.total_time - expected) <= tol,
        f"total_time {result.total_time!r} != startup "
        f"{result.startup_time!r} + record span {span!r} "
        f"for {result.trace_name!r}",
    )

    if result.degraded:
        _check(
            report, "degradation-consistency",
            records[-1].failed
            and result.degraded_at == records[-1].index,
            f"degraded run {result.trace_name!r} does not end with its "
            "failed record",
        )
    return report


def audit_energy(result: Any) -> AuditReport:
    """Check the ``energy-conservation`` invariant on one result.

    Vacuously clean when the result carries no ``energy_*`` notes
    (power accounting disabled — the bit-identity path).  Every
    identity is asserted with exact ``==``: the ledger
    (:class:`repro.power.ledger.EnergyLedger`) derives its fields in
    one fixed fold order and this audit re-evaluates the very same
    float expressions, so any drift at all means the ledger was
    tampered with or the model integrated differently.
    """
    report = AuditReport()
    notes = getattr(result, "notes", None) or {}
    if "energy_total_j" not in notes:
        return report
    label = getattr(result, "trace_name", "run")
    makespan = result.total_time
    static_j = notes["energy_static_j"]
    task_j = notes["energy_task_j"]
    full_j = notes["energy_config_full_j"]
    part_j = notes["energy_config_partial_j"]
    total_j = notes["energy_total_j"]
    expected_static = notes["energy_static_w"] * makespan
    _check(
        report, "energy-conservation",
        static_j == expected_static,
        f"{label!r}: static energy {static_j!r} != static power x "
        f"makespan {expected_static!r}",
    )
    component_sum = ((static_j + task_j) + full_j) + part_j
    _check(
        report, "energy-conservation",
        total_j == component_sum,
        f"{label!r}: ledger total {total_j!r} != component sum "
        f"{component_sum!r}",
    )
    expected_mean = total_j / makespan if makespan > 0 else 0.0
    _check(
        report, "energy-conservation",
        notes["energy_mean_w"] == expected_mean,
        f"{label!r}: mean power {notes['energy_mean_w']!r} != "
        f"total / makespan {expected_mean!r}",
    )
    _check(
        report, "energy-conservation",
        min(static_j, task_j, full_j, part_j) >= 0.0,
        f"{label!r}: negative energy component in the ledger",
    )
    return report


def audit_power_points(points: Sequence[Any]) -> AuditReport:
    """Audit a power-sweep grid (PowerSweepPoint-shaped rows).

    Re-checks ``energy-conservation`` on every journaled point — the
    per-run audit already ran inside the executors, but resumed points
    come back from the journal, so the sweep-level pass is what
    guarantees a merged grid still balances — plus the
    ``sweep-consistency`` sanity of the time/speedup fields.
    """
    report = AuditReport()
    for p in points:
        label = f"power(prrs={p.n_prrs}, H={p.target_hit_ratio:g})"
        component_sum = (
            (p.prtr_static_j + p.prtr_task_j) + p.prtr_config_full_j
        ) + p.prtr_config_partial_j
        _check(
            report, "energy-conservation",
            p.prtr_energy_j == component_sum,
            f"{label}: PRTR energy {p.prtr_energy_j!r} != component "
            f"sum {component_sum!r}",
        )
        expected_mean = (
            p.prtr_energy_j / p.prtr_time if p.prtr_time > 0 else 0.0
        )
        _check(
            report, "energy-conservation",
            p.prtr_mean_w == expected_mean,
            f"{label}: mean power {p.prtr_mean_w!r} != total / "
            f"makespan {expected_mean!r}",
        )
        _check(
            report, "energy-conservation",
            min(
                p.prtr_static_j, p.prtr_task_j, p.prtr_config_full_j,
                p.prtr_config_partial_j, p.frtr_energy_j,
            ) >= 0.0,
            f"{label}: negative energy component",
        )
        implied = p.frtr_time / p.prtr_time if p.prtr_time > 0 else 0.0
        _check(
            report, "sweep-consistency",
            p.speedup == implied
            and 0.0 <= p.hit_ratio <= 1.0
            and p.n_configs >= 0,
            f"{label}: internal accounting is inconsistent",
        )
    return report


def audit_and_record(
    result: Any, *, strict: bool | None = None
) -> AuditReport:
    """Audit a run and record the outcome in ``result.notes``.

    The default (non-strict) mode stamps ``invariant_violations`` into
    the notes and returns; strict mode raises :class:`InvariantError`.
    """
    report = audit_run(result)
    result.notes["invariant_violations"] = float(len(report.violations))
    report.raise_if_strict(strict)
    return report


# -- speedup bounds -------------------------------------------------------


def _bound_checks(
    report: AuditReport,
    *,
    speedup: float,
    x_prtr: float,
    x_task: float,
    hit_ratio: float,
    label: str,
    rel_tol: float,
) -> None:
    if not (np.isfinite(x_prtr) and x_prtr > 0):
        return
    params = ModelParameters(
        x_task=max(x_task, 0.0) if np.isfinite(x_task) else 1.0,
        x_prtr=x_prtr,
        hit_ratio=min(max(hit_ratio, 0.0), 1.0),
    )
    ceiling = float(peak_speedup(params))
    _check(
        report, "speedup-bound-supremum",
        speedup <= ceiling * (1.0 + rel_tol),
        f"{label}: speedup {speedup:g} exceeds the "
        f"(1+X_PRTR)/X_PRTR ceiling {ceiling:g}",
    )
    if np.isfinite(x_task) and x_task >= 1.0:
        two_x = float(large_task_bound(params))
        _check(
            report, "speedup-bound-2x",
            speedup <= min(two_x, 2.0) * (1.0 + rel_tol),
            f"{label}: speedup {speedup:g} exceeds the large-task "
            f"bound {min(two_x, 2.0):g} at X_task={x_task:g}",
        )


def audit_comparison(
    frtr: Any, prtr: Any, *, rel_tol: float = 1e-6
) -> AuditReport:
    """Check a paired FRTR/PRTR measurement against the model bounds.

    Platform ratios come from the PRTR run's notes
    (``t_config_full`` / ``t_config_partial`` / ``mean_task_time``).
    """
    report = AuditReport()
    if prtr.total_time <= 0:
        return report
    t_full = prtr.notes.get("t_config_full")
    t_part = prtr.notes.get("t_config_partial")
    if not t_full or t_part is None:
        return report
    t_task = prtr.notes.get("mean_task_time", float("nan"))
    _bound_checks(
        report,
        speedup=frtr.total_time / prtr.total_time,
        x_prtr=t_part / t_full,
        x_task=t_task / t_full if t_full else float("nan"),
        hit_ratio=prtr.hit_ratio,
        label=f"compare({prtr.trace_name})",
        rel_tol=rel_tol,
    )
    return report


def audit_sweep_points(
    points: Sequence[Any], *, rel_tol: float = 1e-6
) -> AuditReport:
    """Audit a reliability-sweep grid (FaultSweepPoint-shaped rows)."""
    report = AuditReport()
    for p in points:
        label = f"point(rate={p.fault_rate:g}, H={p.target_hit_ratio:g})"
        implied = (
            p.frtr_time / p.prtr_time if p.prtr_time > 0 else 0.0
        )
        _check(
            report, "sweep-consistency",
            abs(p.speedup - implied) <= rel_tol * max(1.0, implied)
            and 0.0 <= p.availability <= 1.0 + rel_tol
            and p.mttr >= 0.0
            and 0.0 <= p.hit_ratio <= 1.0,
            f"{label}: internal accounting is inconsistent",
        )
        _bound_checks(
            report,
            speedup=p.speedup,
            x_prtr=getattr(p, "x_prtr", float("nan")),
            x_task=getattr(p, "x_task", float("nan")),
            hit_ratio=p.hit_ratio,
            label=label,
            rel_tol=rel_tol,
        )
    return report


# -- parallel-merge checks ------------------------------------------------


def audit_shard_merge(
    expected_keys: Sequence[str],
    merged_keys: Sequence[str],
    shard_keys: Mapping[int, Sequence[str]],
) -> AuditReport:
    """Check a sharded sweep's deterministic merge.

    ``expected_keys`` is the requested grid in walk order,
    ``merged_keys`` the point keys of the merged journal in insertion
    order, and ``shard_keys`` maps each worker shard to the keys its
    segment journal recorded.  The merge is sound iff the merged
    journal reproduces the grid exactly, segments never overlap, and
    no segment invented a key.
    """
    report = AuditReport()
    expected = list(expected_keys)
    merged = list(merged_keys)
    _check(
        report, "shard-merge",
        merged == expected,
        f"merged journal holds {len(merged)} point(s) that do not "
        f"match the {len(expected)}-point grid in grid order",
    )
    grid = set(expected)
    seen: dict[str, int] = {}
    for shard, keys in sorted(shard_keys.items()):
        for key in keys:
            if key in seen:
                _check(
                    report, "shard-merge", False,
                    f"key {key!r} recorded by both shard {seen[key]} "
                    f"and shard {shard}",
                )
            seen.setdefault(key, shard)
            if key not in grid:
                _check(
                    report, "shard-merge", False,
                    f"shard {shard} recorded key {key!r} which is not "
                    "on the requested grid",
                )
    return report


# -- observability checks -------------------------------------------------


def audit_metrics(
    snapshot: Mapping[str, Any] | None = None,
) -> AuditReport:
    """Check conservation laws across an observability snapshot.

    ``snapshot`` is the :func:`repro.obs.metrics.snapshot` dump of a
    *completed* run (degraded or interrupted runs may legitimately count
    a cache lookahead whose call never finished); ``None`` snapshots the
    global registry.  An empty snapshot — observability disabled, or
    nothing recorded — audits clean by construction.
    """
    report = AuditReport()
    if snapshot is None:
        from ..obs import metrics as obsm

        snapshot = obsm.snapshot()
    if not snapshot:
        return report

    def total(name: str, prefix: str = "") -> float | None:
        metric = snapshot.get(name)
        if metric is None:
            return None
        return sum(
            v for k, v in metric["series"].items() if k.startswith(prefix)
        )

    cache_events = total("repro_cache_events_total")
    prtr_calls = total("repro_calls_total", prefix="mode=prtr")
    if cache_events is not None and prtr_calls:
        _check(
            report, "metrics-conservation",
            cache_events == prtr_calls,
            f"cache hits + misses ({cache_events:g}) != PRTR calls "
            f"({prtr_calls:g})",
        )

    partial = total("repro_configurations_total", prefix="kind=partial")
    icap = total("repro_icap_configurations_total")
    if partial is not None and icap is not None:
        _check(
            report, "metrics-conservation",
            icap <= partial,
            f"ICAP-controller configurations ({icap:g}) exceed the "
            f"executors' partial count ({partial:g})",
        )
    report.raise_if_strict()
    return report


# -- service checks -------------------------------------------------------


def audit_service(result: Any) -> AuditReport:
    """Audit a :class:`~repro.service.scheduler.ServiceResult`.

    Checks per-tenant call conservation: every arrival got exactly one
    admission decision, every admitted request is either completed,
    shed, or (only on interrupted runs) still in flight, and completed
    requests each left one non-negative latency sample.
    """
    report = AuditReport()
    interrupted = bool(result.interrupted)
    for t in result.tenants:
        decisions = sum(t.decisions.values())
        # Post-admission sheds (e.g. config faults) are counted in
        # t.shed but never got an arrival-time "shed" decision.
        decided_sheds = t.decisions.get("shed", 0)
        post_sheds = t.shed_total - decided_sheds
        _check(
            report, "service-accounting",
            decisions == t.arrived,
            f"tenant {t.name!r}: {decisions} admission decisions for "
            f"{t.arrived} arrivals",
        )
        _check(
            report, "service-accounting",
            t.arrived == t.completed + t.shed_total + t.in_flight
            and post_sheds >= 0,
            f"tenant {t.name!r}: arrived {t.arrived} != completed "
            f"{t.completed} + shed {t.shed_total} + in-flight "
            f"{t.in_flight}",
        )
        _check(
            report, "service-accounting",
            len(t.latencies) == t.completed
            and all(v >= 0.0 for v in t.latencies),
            f"tenant {t.name!r}: {len(t.latencies)} latency samples for "
            f"{t.completed} completions (or a negative latency)",
        )
        _check(
            report, "service-accounting",
            interrupted or t.in_flight == 0,
            f"tenant {t.name!r}: {t.in_flight} request(s) in flight "
            "after an uninterrupted drain",
        )
    report.raise_if_strict()
    return report


def audit_chaos(result: Any) -> AuditReport:
    """Audit a chaos-mode :class:`~repro.service.scheduler.ServiceResult`.

    Runs the full :func:`audit_service` conservation pass, then checks
    failure containment against the run's chaos record
    (``result.chaos``): an injected outage may delay or shed work, but
    it must never *lose* it — and the failure bookkeeping itself must
    balance (outages recover, restorations name failed slots,
    migrations imply injected slot failures).
    """
    report = audit_service(result)
    chaos = getattr(result, "chaos", None)
    if chaos is None:
        return report
    interrupted = bool(result.interrupted)

    if not interrupted:
        residue = sum(t.in_flight for t in result.tenants)
        _check(
            report, "chaos-containment",
            residue == 0,
            f"{residue} request(s) still in flight after an "
            "uninterrupted chaos drain (work lost to an injected "
            "failure)",
        )

    failed_slots: set[int] = set()
    for outage in chaos.get("outages", ()):
        failed_slots.update(outage.get("slots", ()))
        recovered = outage.get("recovered_at")
        _check(
            report, "chaos-containment",
            interrupted or (
                recovered is not None
                and recovered >= outage.get("failed_at", 0.0)
            ),
            f"outage on domain {outage.get('domain')!r} never recovered "
            "(or recovered before it failed)",
        )

    for restoration in chaos.get("restorations", ()):
        slot = restoration.get("slot")
        _check(
            report, "chaos-containment",
            slot in failed_slots,
            f"slot {slot} was restored without ever failing",
        )

    migrations = sum(t.migrations for t in result.tenants)
    _check(
        report, "chaos-containment",
        migrations == 0 or bool(failed_slots),
        f"{migrations} migration(s) recorded with no failed slots",
    )
    report.raise_if_strict()
    return report


def audit_hybrid(samples: Sequence[Any]) -> AuditReport:
    """Audit hybrid shadow-verification samples (``--hybrid=verify``).

    Each sample is a :class:`repro.model.hybrid.HybridSample`-shaped
    record (``label`` / ``analytic`` / ``simulated``).  The exactness
    contract is *equality*, not closeness: the replay folds the same
    float additions as the DES, so any difference at all means a
    predicate failed to exclude a configuration it should have.
    """
    report = AuditReport()
    for sample in samples:
        _check(
            report, "hybrid-exactness",
            sample.analytic == sample.simulated,
            f"{sample.label}: analytic {sample.analytic!r} != "
            f"DES {sample.simulated!r}",
        )
    report.raise_if_strict()
    return report


# -- cluster checks -------------------------------------------------------


def audit_cluster(
    result: Any, planned_calls: int, *, rel_tol: float = 1e-9
) -> AuditReport:
    """Audit a :class:`~repro.rtr.cluster.ClusterResult`.

    ``planned_calls`` is the total number of calls submitted across all
    per-blade traces (degraded blades record fewer than they were
    given, so the result alone cannot reconstruct it).
    """
    report = AuditReport()
    for blade in list(result.blades) + list(result.redistributed):
        report.merge(audit_run(blade, rel_tol=rel_tol))

    if not getattr(result, "interrupted", False):
        completed = result.completed_calls
        redistributed = int(result.notes.get("redistributed_calls", 0.0))
        abandoned = int(result.notes.get("abandoned_calls", 0.0))
        wave_calls = sum(w.n_calls for w in result.redistributed)
        base_ok = sum(
            sum(1 for r in b.records if not r.failed)
            for b in result.blades
        )
        _check(
            report, "call-conservation",
            base_ok + redistributed + abandoned == planned_calls
            and (not result.redistributed or wave_calls == redistributed)
            and completed <= planned_calls,
            f"cluster run accounts for "
            f"{base_ok + redistributed + abandoned} of "
            f"{planned_calls} submitted calls",
        )
        tol = rel_tol * max(1.0, result.makespan)
        _check(
            report, "server-accounting",
            0.0 <= result.server_busy_time <= result.makespan + tol,
            f"server busy time {result.server_busy_time:g} exceeds the "
            f"makespan {result.makespan:g}",
        )
    report.raise_if_strict()
    return report
