"""Durable run journal: append-only JSONL checkpoints for long runs.

A *journal* is the crash-safety substrate of :mod:`repro.runtime`: every
completed unit of work (a grid point of a sweep, a finished cluster run)
is recorded as one JSON line in ``<run_dir>/journal.jsonl`` *before* the
next unit starts.  A run killed at any instant therefore loses at most
the unit in flight, and ``resume`` replays the journal instead of the
work.

Durability contract
-------------------
* Every mutation rewrites the whole journal to a temporary file in the
  same directory, flushes, fsyncs, then ``os.replace``-renames it over
  the live file.  The rename is atomic on POSIX, so a reader (or a
  resumed run) sees either the old journal or the new one — never a
  partially written file.
* The loader additionally tolerates a *torn tail*: if the final line
  fails to parse as JSON (a crash mid-write through some non-atomic
  channel, a truncated copy), that line alone is dropped and counted in
  :attr:`RunJournal.dropped_lines`.  Any earlier malformed line is an
  error — corruption in the middle of a journal is not a crash artifact.
* Record keys are unique; re-recording a key raises.  A ``seal`` record
  marks the run complete; sealed journals refuse further records.

Record grammar (one JSON object per line)::

    {"kind": "header", "version": 1, "meta": {...}}
    {"kind": "point", "key": "<unique id>", "payload": {...}}
    {"kind": "seal", "n_points": <int>, "metrics": {...}?}

The optional ``metrics`` field of the seal record is an observability
snapshot (:func:`repro.obs.metrics.snapshot`) taken when the run
completed — absent when instrumentation was disabled, so journals from
uninstrumented runs are byte-identical to the pre-observability format.
"""

from __future__ import annotations

import json
import os
from typing import Any, Iterator, Mapping

from ..obs import metrics as obsm

__all__ = ["JournalError", "RunJournal", "atomic_write_text"]

JOURNAL_NAME = "journal.jsonl"
JOURNAL_VERSION = 1


class JournalError(ValueError):
    """Raised for malformed or misused journals."""


def atomic_write_text(path: str, text: str) -> None:
    """Write ``text`` to ``path`` via write-then-rename (crash atomic)."""
    directory = os.path.dirname(os.path.abspath(path))
    tmp = os.path.join(directory, f".{os.path.basename(path)}.tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(text)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def _encode(record: Mapping[str, Any]) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


class RunJournal:
    """Append-only checkpoint journal for one run directory.

    Construct via :meth:`create` (fresh run) or :meth:`load` (resume);
    the bare constructor is internal.
    """

    def __init__(
        self,
        run_dir: str,
        meta: Mapping[str, Any],
        points: dict[str, Any],
        *,
        sealed: bool = False,
        dropped_lines: int = 0,
        seal_metrics: Mapping[str, Any] | None = None,
    ) -> None:
        self.run_dir = run_dir
        self.meta = dict(meta)
        self._points = points
        self._sealed = sealed
        #: torn trailing lines dropped while loading (0 or 1)
        self.dropped_lines = dropped_lines
        #: observability snapshot stored with the seal record (or None)
        self.seal_metrics = (
            dict(seal_metrics) if seal_metrics is not None else None
        )

    # -- construction -----------------------------------------------------

    @property
    def path(self) -> str:
        """Absolute path of the journal file."""
        return os.path.join(self.run_dir, JOURNAL_NAME)

    @classmethod
    def create(
        cls, run_dir: str, meta: Mapping[str, Any] | None = None
    ) -> "RunJournal":
        """Start a fresh journal; refuses to clobber an existing one."""
        os.makedirs(run_dir, exist_ok=True)
        journal = cls(run_dir, meta or {}, {})
        if os.path.exists(journal.path):
            raise FileExistsError(
                f"journal already exists in {run_dir!r}; "
                "pass resume=True (CLI: --resume) to continue it"
            )
        journal._flush()
        return journal

    @classmethod
    def load(cls, run_dir: str) -> "RunJournal":
        """Load an existing journal (for resume or inspection)."""
        path = os.path.join(run_dir, JOURNAL_NAME)
        if not os.path.exists(path):
            raise FileNotFoundError(f"no journal found in {run_dir!r}")
        with open(path, "r", encoding="utf-8") as fh:
            lines = fh.read().splitlines()
        records: list[dict[str, Any]] = []
        dropped = 0
        for lineno, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                if lineno == len(lines) - 1:
                    dropped += 1  # torn tail from a crash mid-write
                    continue
                raise JournalError(
                    f"{path}:{lineno + 1}: malformed journal line"
                )
        if not records or records[0].get("kind") != "header":
            raise JournalError(f"{path}: missing header record")
        header = records[0]
        if header.get("version") != JOURNAL_VERSION:
            raise JournalError(
                f"{path}: journal version {header.get('version')!r} "
                f"!= supported {JOURNAL_VERSION}"
            )
        points: dict[str, Any] = {}
        sealed = False
        seal_metrics: Mapping[str, Any] | None = None
        for rec in records[1:]:
            kind = rec.get("kind")
            if kind == "point":
                key = rec["key"]
                if key in points:
                    raise JournalError(f"{path}: duplicate key {key!r}")
                points[key] = rec["payload"]
            elif kind == "seal":
                sealed = True
                seal_metrics = rec.get("metrics")
            else:
                raise JournalError(
                    f"{path}: unknown record kind {kind!r}"
                )
        return cls(
            run_dir,
            header.get("meta", {}),
            points,
            sealed=sealed,
            dropped_lines=dropped,
            seal_metrics=seal_metrics,
        )

    # -- queries ----------------------------------------------------------

    @property
    def sealed(self) -> bool:
        """Whether the run completed and the journal was sealed."""
        return self._sealed

    @property
    def n_points(self) -> int:
        """Number of checkpointed grid points."""
        return len(self._points)

    def has(self, key: str) -> bool:
        """Whether a grid point was already checkpointed."""
        return key in self._points

    def payload(self, key: str) -> Any:
        """The checkpointed payload for ``key`` (KeyError if absent)."""
        return self._points[key]

    def keys(self) -> Iterator[str]:
        """Checkpointed grid-point keys in insertion order."""
        return iter(self._points)

    # -- mutation ---------------------------------------------------------

    def record(self, key: str, payload: Any) -> None:
        """Checkpoint one completed unit of work (atomic on return)."""
        if self._sealed:
            raise JournalError("journal is sealed; no further records")
        if key in self._points:
            raise JournalError(f"duplicate journal key {key!r}")
        json.dumps(payload)  # fail fast on unserializable payloads
        self._points[key] = payload
        obsm.counter("repro_journal_records_total").inc()
        self._flush()

    def seal(self, metrics: Mapping[str, Any] | None = None) -> None:
        """Mark the run complete (idempotent).

        ``metrics`` attaches an observability snapshot to the seal record
        so a journal is self-describing about the run that produced it.
        A second ``seal()`` call never overwrites an existing snapshot.
        """
        if self._sealed:
            return
        if metrics is not None:
            json.dumps(metrics)  # fail fast, like record()
            self.seal_metrics = dict(metrics)
        self._sealed = True
        self._flush()

    def _flush(self) -> None:
        lines = [
            _encode(
                {
                    "kind": "header",
                    "version": JOURNAL_VERSION,
                    "meta": self.meta,
                }
            )
        ]
        lines.extend(
            _encode({"kind": "point", "key": k, "payload": v})
            for k, v in self._points.items()
        )
        if self._sealed:
            seal: dict[str, Any] = {
                "kind": "seal",
                "n_points": len(self._points),
            }
            if self.seal_metrics is not None:
                seal["metrics"] = self.seal_metrics
            lines.append(_encode(seal))
        atomic_write_text(self.path, "\n".join(lines) + "\n")
