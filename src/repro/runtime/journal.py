"""Durable run journal: append-only JSONL checkpoints for long runs.

A *journal* is the crash-safety substrate of :mod:`repro.runtime`: every
completed unit of work (a grid point of a sweep, a finished cluster run)
is recorded as one JSON line in ``<run_dir>/journal.jsonl`` *before* the
next unit starts.  A run killed at any instant therefore loses at most
the unit in flight, and ``resume`` replays the journal instead of the
work.

Durability contract
-------------------
* The journal is a true append-only file: every mutation appends exactly
  one line to an open handle, flushes, and fsyncs.  Checkpointing a
  point is O(1) in the journal size — an n-point sweep performs O(n)
  journal I/O, one append+fsync per point (:attr:`RunJournal
  .bytes_written` and :attr:`RunJournal.fsyncs` expose the cost so a
  regression test can pin it).
* A crash mid-append leaves at most a *torn tail*: the loader drops a
  final line that fails to parse as JSON and counts it in
  :attr:`RunJournal.dropped_lines`; the next append first truncates the
  file back to the last complete line.  Any earlier malformed line is
  an error — corruption in the middle of a journal is not a crash
  artifact.
* Record keys are unique; re-recording a key raises.  A ``seal`` record
  marks the run complete; sealed journals refuse further records.

Record grammar (one JSON object per line)::

    {"kind": "header", "version": 1, "meta": {...}}
    {"kind": "point", "key": "<unique id>", "payload": {...}}
    {"kind": "seal", "n_points": <int>, "metrics": {...}?}

Parallel sweeps (:mod:`repro.runtime.parallel`) write one *segment*
journal per worker shard — ``journal-<shard>.jsonl``, same grammar,
same ``meta`` — and a deterministic merge reassembles them into the
main ``journal.jsonl`` in grid order.  :func:`segment_name` and
:func:`list_segments` define the segment naming grammar.

The optional ``metrics`` field of the seal record is an observability
snapshot (:func:`repro.obs.metrics.snapshot`) taken when the run
completed — absent when instrumentation was disabled, so journals from
uninstrumented runs are byte-identical to the pre-observability format.
"""

from __future__ import annotations

import json
import os
import re
from typing import Any, Iterator, Mapping

from ..obs import metrics as obsm

__all__ = [
    "JournalError",
    "RunJournal",
    "atomic_write_text",
    "list_segments",
    "segment_name",
]

JOURNAL_NAME = "journal.jsonl"
JOURNAL_VERSION = 1

_SEGMENT_RE = re.compile(r"^journal-(\d+)\.jsonl$")


class JournalError(ValueError):
    """Raised for malformed or misused journals."""


def atomic_write_text(path: str, text: str) -> None:
    """Write ``text`` to ``path`` via write-then-rename (crash atomic)."""
    directory = os.path.dirname(os.path.abspath(path))
    tmp = os.path.join(directory, f".{os.path.basename(path)}.tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(text)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def segment_name(shard: int) -> str:
    """The journal file name for one worker shard."""
    if shard < 0:
        raise ValueError(f"shard must be >= 0: {shard}")
    return f"journal-{shard}.jsonl"


def list_segments(run_dir: str) -> dict[int, str]:
    """Map shard id -> segment file name for every segment in a run dir."""
    if not os.path.isdir(run_dir):
        return {}
    found: dict[int, str] = {}
    for entry in os.listdir(run_dir):
        match = _SEGMENT_RE.match(entry)
        if match:
            found[int(match.group(1))] = entry
    return dict(sorted(found.items()))


def _encode(record: Mapping[str, Any]) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


class RunJournal:
    """Append-only checkpoint journal for one run directory.

    Construct via :meth:`create` (fresh run) or :meth:`load` (resume);
    the bare constructor is internal.  ``name`` selects the file inside
    the run directory — the main ``journal.jsonl`` by default, or a
    ``journal-<shard>.jsonl`` segment for parallel workers.
    """

    def __init__(
        self,
        run_dir: str,
        meta: Mapping[str, Any],
        points: dict[str, Any],
        *,
        name: str = JOURNAL_NAME,
        sealed: bool = False,
        dropped_lines: int = 0,
        seal_metrics: Mapping[str, Any] | None = None,
        append_offset: int = 0,
    ) -> None:
        self.run_dir = run_dir
        self.name = name
        self.meta = dict(meta)
        self._points = points
        self._sealed = sealed
        #: torn trailing lines dropped while loading (0 or 1)
        self.dropped_lines = dropped_lines
        #: observability snapshot stored with the seal record (or None)
        self.seal_metrics = (
            dict(seal_metrics) if seal_metrics is not None else None
        )
        # Journal content is pure ASCII (json.dumps escapes), so text
        # offsets equal byte offsets; a torn tail is clipped by
        # truncating to this offset before the first append.
        self._append_offset = append_offset
        self._needs_newline = False
        self._fh: Any = None
        #: bytes appended by this instance (the O(n) I/O guard)
        self.bytes_written = 0
        #: fsync calls issued by this instance (one per mutation)
        self.fsyncs = 0

    # -- construction -----------------------------------------------------

    @property
    def path(self) -> str:
        """Absolute path of the journal file."""
        return os.path.join(self.run_dir, self.name)

    @classmethod
    def create(
        cls,
        run_dir: str,
        meta: Mapping[str, Any] | None = None,
        *,
        name: str = JOURNAL_NAME,
    ) -> "RunJournal":
        """Start a fresh journal; refuses to clobber an existing one."""
        os.makedirs(run_dir, exist_ok=True)
        journal = cls(run_dir, meta or {}, {}, name=name)
        if os.path.exists(journal.path):
            raise FileExistsError(
                f"journal already exists in {run_dir!r}; "
                "pass resume=True (CLI: --resume) to continue it"
            )
        journal._append(
            _encode(
                {
                    "kind": "header",
                    "version": JOURNAL_VERSION,
                    "meta": journal.meta,
                }
            )
        )
        return journal

    @classmethod
    def load(
        cls, run_dir: str, *, name: str = JOURNAL_NAME
    ) -> "RunJournal":
        """Load an existing journal (for resume or inspection)."""
        path = os.path.join(run_dir, name)
        if not os.path.exists(path):
            raise FileNotFoundError(f"no journal found in {run_dir!r}")
        with open(path, "r", encoding="utf-8") as fh:
            text = fh.read()
        lines = text.splitlines()
        records: list[dict[str, Any]] = []
        dropped = 0
        good_end = 0  # offset just past the last parseable line
        offset = 0
        for lineno, line in enumerate(lines):
            # +1 for the newline; the final line may be unterminated.
            line_end = min(offset + len(line) + 1, len(text))
            if not line.strip():
                good_end = line_end
                offset = line_end
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                if lineno == len(lines) - 1:
                    dropped += 1  # torn tail from a crash mid-write
                    offset = line_end
                    continue
                raise JournalError(
                    f"{path}:{lineno + 1}: malformed journal line"
                )
            good_end = line_end
            offset = line_end
        if not records or records[0].get("kind") != "header":
            raise JournalError(f"{path}: missing header record")
        header = records[0]
        if header.get("version") != JOURNAL_VERSION:
            raise JournalError(
                f"{path}: journal version {header.get('version')!r} "
                f"!= supported {JOURNAL_VERSION}"
            )
        points: dict[str, Any] = {}
        sealed = False
        seal_metrics: Mapping[str, Any] | None = None
        for rec in records[1:]:
            kind = rec.get("kind")
            if kind == "point":
                key = rec["key"]
                if key in points:
                    raise JournalError(f"{path}: duplicate key {key!r}")
                points[key] = rec["payload"]
            elif kind == "seal":
                sealed = True
                seal_metrics = rec.get("metrics")
            else:
                raise JournalError(
                    f"{path}: unknown record kind {kind!r}"
                )
        journal = cls(
            run_dir,
            header.get("meta", {}),
            points,
            name=name,
            sealed=sealed,
            dropped_lines=dropped,
            seal_metrics=seal_metrics,
            append_offset=good_end,
        )
        # A valid final line may be unterminated (truncation exactly at
        # the closing brace); the first append must not concatenate.
        journal._needs_newline = (
            good_end == len(text) and bool(text) and not text.endswith("\n")
        )
        return journal

    # -- queries ----------------------------------------------------------

    @property
    def sealed(self) -> bool:
        """Whether the run completed and the journal was sealed."""
        return self._sealed

    @property
    def n_points(self) -> int:
        """Number of checkpointed grid points."""
        return len(self._points)

    def has(self, key: str) -> bool:
        """Whether a grid point was already checkpointed."""
        return key in self._points

    def payload(self, key: str) -> Any:
        """The checkpointed payload for ``key`` (KeyError if absent)."""
        return self._points[key]

    def keys(self) -> Iterator[str]:
        """Checkpointed grid-point keys in insertion order."""
        return iter(self._points)

    def payloads(self) -> dict[str, Any]:
        """Key -> raw payload for every checkpointed point (a copy)."""
        return dict(self._points)

    # -- mutation ---------------------------------------------------------

    def record(self, key: str, payload: Any) -> None:
        """Checkpoint one completed unit of work (durable on return)."""
        if self._sealed:
            raise JournalError("journal is sealed; no further records")
        if key in self._points:
            raise JournalError(f"duplicate journal key {key!r}")
        line = _encode({"kind": "point", "key": key, "payload": payload})
        self._points[key] = payload
        obsm.counter("repro_journal_records_total").inc()
        self._append(line)

    def seal(self, metrics: Mapping[str, Any] | None = None) -> None:
        """Mark the run complete (idempotent).

        ``metrics`` attaches an observability snapshot to the seal record
        so a journal is self-describing about the run that produced it.
        A second ``seal()`` call never overwrites an existing snapshot.
        """
        if self._sealed:
            return
        seal: dict[str, Any] = {
            "kind": "seal",
            "n_points": len(self._points),
        }
        if metrics is not None:
            self.seal_metrics = dict(metrics)
        if self.seal_metrics is not None:
            seal["metrics"] = self.seal_metrics
        line = _encode(seal)
        self._sealed = True
        self._append(line)
        self.close()

    def close(self) -> None:
        """Release the append handle (reopened on the next mutation)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def _open_for_append(self) -> Any:
        """The append handle, clipping any torn tail on first open."""
        if self._fh is None:
            if os.path.exists(self.path):
                if os.path.getsize(self.path) != self._append_offset:
                    os.truncate(self.path, self._append_offset)
                self._fh = open(self.path, "a", encoding="utf-8")
                if self._needs_newline:
                    self._fh.write("\n")
                    self._append_offset += 1
                    self._needs_newline = False
            else:
                self._fh = open(self.path, "x", encoding="utf-8")
        return self._fh

    def _append(self, line: str) -> None:
        data = line + "\n"
        fh = self._open_for_append()
        fh.write(data)
        fh.flush()
        os.fsync(fh.fileno())
        self.fsyncs += 1
        self.bytes_written += len(data)
        self._append_offset += len(data)
