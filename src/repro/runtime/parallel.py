"""Parallel sweep execution: shared-nothing workers over grid shards.

The paper's results are grids — Figure 5's ``(X_task, X_PRTR, H)``
family, Figure 9's task-time sweeps, the fault-rate x hit-ratio
reliability grid — and every grid point is an *independently seeded*
computation (:func:`repro.model.stochastic.resolve_rng` semantics).
This module exploits that independence:

* :func:`parallel_map` — the in-memory engine: round-robin shard any
  item list across ``fork``-ed worker processes and reassemble results
  in item order, bit-identical to the serial map.
* :func:`run_sharded` — the journaled engine behind
  ``run_checkpointed(..., workers=N)``: each worker appends completed
  points to its own segment journal (``journal-<shard>.jsonl``, one
  O(1) append+fsync per point), and the parent deterministically merges
  segments into the main ``journal.jsonl`` in grid order, so the merged
  journal is byte-identical to the one a serial walk writes.

Sharding is round-robin by grid index: shard ``s`` of ``N`` owns items
``s, s+N, s+2N, ...`` — a pure function of the grid, so a killed run
resumed with the same ``workers`` revisits exactly the same shards, and
a resume under a *different* worker count (including serial) still
works because the merge reads every segment regardless of provenance.

Workers are created with the ``fork`` start method so arbitrary
closures (the sweep functions) need no pickling; on platforms without
``fork`` the callers fall back to the serial path.  Workers never touch
the main journal and never share state: results travel back only
through segment journals (durable) and a status queue (advisory —
per-worker interrupt reasons and observability snapshots).
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_mod
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from ..obs import metrics as obsm
from .invariants import AuditReport, InvariantError, audit_shard_merge
from .journal import JournalError, RunJournal, list_segments, segment_name
from .watchdog import Watchdog, WatchdogExpired

__all__ = [
    "ShardStatus",
    "ShardedWalk",
    "fork_available",
    "load_segment_points",
    "merge_snapshots",
    "parallel_map",
    "run_sharded",
    "shard_indices",
]


def fork_available() -> bool:
    """Whether the ``fork`` start method exists on this platform."""
    return "fork" in multiprocessing.get_all_start_methods()


def shard_indices(n_items: int, workers: int) -> list[list[int]]:
    """Round-robin shard assignment: shard ``s`` owns ``s::workers``."""
    if workers < 1:
        raise ValueError(f"workers must be >= 1: {workers}")
    return [list(range(s, n_items, workers)) for s in range(workers)]


def _drain(
    status_queue: Any, procs: Sequence[Any], expected: int
) -> list[dict[str, Any]]:
    """Collect one status message per worker, tolerating hard deaths."""
    messages: list[dict[str, Any]] = []
    seen: set[int] = set()
    while len(messages) < expected:
        try:
            msg = status_queue.get(timeout=0.2)
        except queue_mod.Empty:
            if all(p.exitcode is not None for p in procs):
                # Every worker exited; give the queue feeder one last
                # chance, then report the silent shards as dead.
                try:
                    while len(messages) < expected:
                        msg = status_queue.get(timeout=1.0)
                        messages.append(msg)
                        seen.add(msg["shard"])
                except queue_mod.Empty:
                    for shard, proc in enumerate(procs):
                        if shard not in seen:
                            messages.append(
                                {
                                    "shard": shard,
                                    "error": "worker died without a "
                                    f"status (exit code {proc.exitcode})",
                                }
                            )
                break
            continue
        messages.append(msg)
        seen.add(msg["shard"])
    return messages


def parallel_map(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    *,
    workers: int = 1,
) -> list[Any]:
    """Map ``fn`` over ``items`` across fork workers, in item order.

    Bit-identical to ``[fn(x) for x in items]`` for deterministic
    ``fn`` — each item is computed exactly once in a shared-nothing
    child process and results are reassembled by index.  Falls back to
    the serial map when ``workers <= 1``, the item list is trivial, or
    the platform cannot ``fork``.  Results must be picklable.
    """
    items = list(items)
    if workers <= 1 or len(items) <= 1 or not fork_available():
        return [fn(item) for item in items]
    workers = min(workers, len(items))
    ctx = multiprocessing.get_context("fork")
    status_queue: Any = ctx.Queue()

    def child(shard: int) -> None:
        try:
            pairs = [
                (i, fn(items[i]))
                for i in range(shard, len(items), workers)
            ]
            status_queue.put({"shard": shard, "pairs": pairs})
        except BaseException as exc:  # report, don't kill siblings
            status_queue.put(
                {"shard": shard, "error": f"{type(exc).__name__}: {exc}"}
            )
        finally:
            status_queue.close()
            status_queue.join_thread()

    procs = [ctx.Process(target=child, args=(s,)) for s in range(workers)]
    for proc in procs:
        proc.start()
    messages = _drain(status_queue, procs, workers)
    for proc in procs:
        proc.join()
    errors = sorted(
        (m["shard"], m["error"]) for m in messages if "error" in m
    )
    if errors:
        detail = "; ".join(f"shard {s}: {e}" for s, e in errors)
        raise RuntimeError(f"parallel map failed in {detail}")
    results: list[Any] = [None] * len(items)
    for msg in messages:
        for index, value in msg["pairs"]:
            results[index] = value
    return results


def merge_snapshots(
    snapshots: Sequence[Mapping[str, Any]],
) -> dict[str, Any] | None:
    """Combine per-worker observability snapshots into one.

    Counters and histogram counts/sums/buckets are summed across
    workers; gauges are last-write-wins in shard order (they have no
    meaningful cross-process aggregate).  Returns ``None`` when no
    worker recorded anything, matching the disabled-observability seal
    format.
    """
    merged: dict[str, Any] = {}
    for snap in snapshots:
        for name, metric in snap.items():
            target = merged.setdefault(
                name,
                {"kind": metric["kind"], "unit": metric["unit"], "series": {}},
            )
            series = target["series"]
            for label, value in metric["series"].items():
                if metric["kind"] == "histogram":
                    state = series.get(label)
                    if state is None:
                        series[label] = {
                            "buckets": dict(value["buckets"]),
                            "count": value["count"],
                            "sum": value["sum"],
                        }
                    else:
                        for bound, count in value["buckets"].items():
                            state["buckets"][bound] = (
                                state["buckets"].get(bound, 0) + count
                            )
                        state["count"] += value["count"]
                        state["sum"] += value["sum"]
                elif metric["kind"] == "counter":
                    series[label] = series.get(label, 0.0) + value
                else:  # gauge: last writer (highest shard) wins
                    series[label] = value
    return merged or None


@dataclass(frozen=True)
class ShardStatus:
    """What one worker reported when it finished its shard."""

    shard: int
    interrupted: str | None
    computed: int


@dataclass
class ShardedWalk:
    """Result of one sharded grid walk (pre-``GridOutcome`` form)."""

    results: list[Any]
    interrupted: str | None
    resumed_points: int
    computed_points: int
    journal: RunJournal
    merge_audit: AuditReport = field(default_factory=AuditReport)
    statuses: list[ShardStatus] = field(default_factory=list)


def load_segment_points(
    run_dir: str, meta: Mapping[str, Any]
) -> tuple[dict[int, list[str]], dict[str, Any]]:
    """(shard -> keys, key -> payload) across all segment journals."""
    shard_keys: dict[int, list[str]] = {}
    payloads: dict[str, Any] = {}
    for shard, name in list_segments(run_dir).items():
        segment = RunJournal.load(run_dir, name=name)
        if segment.meta != dict(meta):
            raise JournalError(
                f"segment {name} in {run_dir!r} belongs to a different "
                f"sweep (journaled {segment.meta!r}, requested "
                f"{dict(meta)!r})"
            )
        shard_keys[shard] = list(segment.keys())
        for key, payload in segment.payloads().items():
            payloads.setdefault(key, payload)
    return shard_keys, payloads


def run_sharded(
    run_dir: str,
    items: Sequence[Any],
    fn: Callable[[Any], Any],
    *,
    key_of: Callable[[Any], str],
    encode: Callable[[Any], Any],
    decode: Callable[[Any], Any],
    meta: Mapping[str, Any],
    journal: RunJournal,
    workers: int,
    max_wall_s: float | None = None,
    wall_clock: Callable[[], float] | None = None,
    progress: Callable[[str], None] | None = None,
) -> ShardedWalk:
    """Walk a grid across ``workers`` shared-nothing fork workers.

    ``journal`` is the already-created-or-loaded main journal (the
    caller — :func:`repro.runtime.crashsafe.run_checkpointed` — has
    validated ``meta`` and the sealed/extra-points cases).  Each worker
    appends newly computed points to its ``journal-<shard>.jsonl``
    segment; on full completion the parent appends every missing point
    to the main journal *in grid order*, seals it with the merged
    per-worker observability snapshot, audits the merge, and removes
    the segments.  An interrupted walk leaves the segments in place for
    the next ``resume`` (serial or parallel — both absorb segments).

    The wall-clock budget ``max_wall_s`` is enforced *per worker*,
    checked between grid points exactly like the serial watchdog.
    """
    items = list(items)
    keys = [key_of(item) for item in items]
    done_before = journal.payloads()
    _, segment_payloads = load_segment_points(run_dir, meta)
    for key, payload in segment_payloads.items():
        done_before.setdefault(key, payload)

    pending = [i for i, key in enumerate(keys) if key not in done_before]
    statuses: list[ShardStatus] = []
    worker_snapshots: list[Mapping[str, Any]] = []
    errors: list[tuple[int, str]] = []

    if pending:
        n_workers = min(workers, len(pending))
        # Shard the *pending* indices round-robin so live workers stay
        # balanced no matter where a previous run stopped.
        shards = shard_indices(len(pending), n_workers)
        ctx = multiprocessing.get_context("fork")
        status_queue: Any = ctx.Queue()

        def worker(shard: int) -> None:
            try:
                # A private registry per worker: the sealed snapshot
                # must describe this shard's work, not inherited state.
                # The reset intentionally targets the forked child's own
                # copy-on-write registry; nothing is shared back — the
                # snapshot travels via the status queue.
                obsm.get_registry().reset()  # reprolint: disable=RL003
                watchdog = (
                    Watchdog(
                        max_wall_s=max_wall_s,
                        clock=(
                            wall_clock
                            if wall_clock is not None
                            else time.monotonic
                        ),
                    )
                    if max_wall_s is not None
                    else None
                )
                if watchdog is not None:
                    watchdog.start()
                name = segment_name(shard)
                if os.path.exists(os.path.join(run_dir, name)):
                    segment = RunJournal.load(run_dir, name=name)
                else:
                    segment = RunJournal.create(run_dir, meta, name=name)
                interrupted: str | None = None
                computed = 0
                for pending_pos in shards[shard]:
                    index = pending[pending_pos]
                    key = keys[index]
                    if segment.has(key):
                        continue
                    if watchdog is not None:
                        try:
                            watchdog.check_wall()
                        except WatchdogExpired as exc:
                            interrupted = str(exc)
                            break
                    result = fn(items[index])
                    segment.record(key, encode(result))
                    computed += 1
                    if progress is not None:
                        progress(
                            f"{key} done (shard {shard}, "
                            f"{segment.n_points} journaled)"
                        )
                segment.close()
                status_queue.put(
                    {
                        "shard": shard,
                        "interrupted": interrupted,
                        "computed": computed,
                        "metrics": obsm.snapshot() or None,
                    }
                )
            except BaseException as exc:
                status_queue.put(
                    {
                        "shard": shard,
                        "error": f"{type(exc).__name__}: {exc}",
                    }
                )
            finally:
                status_queue.close()
                status_queue.join_thread()

        procs = [
            ctx.Process(target=worker, args=(s,)) for s in range(n_workers)
        ]
        for proc in procs:
            proc.start()
        messages = _drain(status_queue, procs, n_workers)
        for proc in procs:
            proc.join()
        for msg in sorted(messages, key=lambda m: m["shard"]):
            if "error" in msg:
                errors.append((msg["shard"], msg["error"]))
                continue
            statuses.append(
                ShardStatus(
                    shard=msg["shard"],
                    interrupted=msg["interrupted"],
                    computed=msg["computed"],
                )
            )
            if msg["metrics"]:
                worker_snapshots.append(msg["metrics"])

    # Re-read segments: the durable record of what the workers did.
    shard_keys, segment_payloads = load_segment_points(run_dir, meta)
    known = dict(done_before)
    for key, payload in segment_payloads.items():
        known.setdefault(key, payload)

    if errors:
        detail = "; ".join(f"shard {s}: {e}" for s, e in errors)
        raise RuntimeError(
            f"parallel sweep failed in {detail} (completed points are "
            f"journaled in {run_dir!r}; rerun with resume to continue)"
        )

    interrupted = next(
        (s.interrupted for s in statuses if s.interrupted is not None),
        None,
    )
    computed = sum(s.computed for s in statuses)
    resumed = sum(1 for key in keys if key in done_before)

    merge_audit = AuditReport()
    if interrupted is None:
        missing = [key for key in keys if key not in known]
        if missing:  # pragma: no cover - defensive: workers all "done"
            raise JournalError(
                f"parallel walk finished but {len(missing)} point(s) "
                f"never reached a journal (first: {missing[0]!r})"
            )
        for key in keys:
            if not journal.has(key):
                journal.record(key, known[key])
        merge_audit = audit_shard_merge(
            keys, list(journal.keys()), shard_keys
        )
        if not merge_audit.ok:
            # A merge inconsistency is a bug, not a data point: raise
            # regardless of strict mode, before sealing anything.
            raise InvariantError(merge_audit.violations)
        journal.seal(merge_snapshots(worker_snapshots))
        for name in list_segments(run_dir).values():
            os.remove(os.path.join(run_dir, name))

    results: list[Any] = []
    for key in keys:
        if key not in known:
            break  # grid-order prefix, like an interrupted serial walk
        results.append(decode(known[key]))

    return ShardedWalk(
        results=results,
        interrupted=interrupted,
        resumed_points=resumed,
        computed_points=computed,
        journal=journal,
        merge_audit=merge_audit,
        statuses=statuses,
    )
