"""Watchdog: deadline and no-progress cancellation for long runs.

Two execution shapes need guarding:

* **DES runs** (:class:`~repro.sim.engine.Simulator`) can livelock —
  a buggy process yielding ``Delay(0)`` forever burns events without
  advancing the clock — or simply run far past any useful horizon.
  Attach a watchdog to the simulator (``sim.watchdog = wd; wd.start()``)
  and the kernel calls :meth:`Watchdog.after_event` after every event;
  the watchdog raises :class:`WatchdogExpired` when a limit trips.
* **Sweep loops** (grid evaluations in :mod:`repro.runtime.crashsafe`)
  are bounded by *wall clock*: call :meth:`Watchdog.check_wall` between
  grid points.

Cancellation is cooperative and graceful: the exception unwinds out of
``Simulator.run`` (or the sweep loop) to a harness that flushes the
journal and finalizes a partial result marked ``interrupted`` — see
:func:`repro.runtime.crashsafe.run_interruptible`.

Deadline semantics are deterministic for DES limits: an event scheduled
*exactly at* ``max_sim_time`` still runs (the check is strict ``>``),
so two runs of the same workload cancel at the same event regardless of
host speed.  Only ``max_wall_s`` depends on the host clock.
"""

from __future__ import annotations

import time
from typing import Any, Callable

__all__ = ["Watchdog", "WatchdogExpired"]


class WatchdogExpired(RuntimeError):
    """A watchdog limit tripped; carries the machine-readable reason."""

    def __init__(self, reason: str, detail: str) -> None:
        super().__init__(detail)
        self.reason = reason


class Watchdog:
    """Deadline / stall canceller for simulators and sweep loops.

    Parameters
    ----------
    max_sim_time:
        Cancel once the simulation clock passes this time.  An event at
        exactly this time still runs; the first event strictly later
        trips the watchdog.
    max_events:
        Cancel after this many processed events (runaway-queue guard).
    stall_events:
        Cancel after this many *consecutive* events that do not advance
        the simulation clock (the zero-delay livelock heuristic).  Any
        clock advance resets the counter.
    max_wall_s:
        Wall-clock budget in seconds, measured from :meth:`start`.
        Checked both per event and by :meth:`check_wall`; ``0`` expires
        at the first check.
    clock:
        Monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        *,
        max_sim_time: float | None = None,
        max_events: int | None = None,
        stall_events: int | None = None,
        max_wall_s: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_sim_time is not None and max_sim_time < 0:
            raise ValueError("max_sim_time must be >= 0")
        if max_events is not None and max_events < 1:
            raise ValueError("max_events must be >= 1")
        if stall_events is not None and stall_events < 1:
            raise ValueError("stall_events must be >= 1")
        if max_wall_s is not None and max_wall_s < 0:
            raise ValueError("max_wall_s must be >= 0")
        if all(
            limit is None
            for limit in (max_sim_time, max_events, stall_events, max_wall_s)
        ):
            raise ValueError("watchdog needs at least one limit")
        self.max_sim_time = max_sim_time
        self.max_events = max_events
        self.stall_events = stall_events
        self.max_wall_s = max_wall_s
        #: the injectable time source (read by the parallel engine to
        #: rebuild per-worker watchdogs with the same clock)
        self.clock = clock
        self._wall_start: float | None = None
        self._base_events = 0
        self._last_now: float | None = None
        self._stalled = 0
        #: set when the watchdog fires (mirrors the raised exception)
        self.expired_reason: str | None = None

    def start(self, sim: Any | None = None) -> "Watchdog":
        """Arm the watchdog; call when the guarded run begins."""
        self._wall_start = self.clock()
        if sim is not None:
            self._base_events = sim.events_processed
            self._last_now = sim.now
        self._stalled = 0
        self.expired_reason = None
        return self

    # -- checks -----------------------------------------------------------

    def _expire(self, reason: str, detail: str) -> None:
        self.expired_reason = reason
        raise WatchdogExpired(reason, detail)

    def check_wall(self) -> None:
        """Raise if the wall-clock budget is exhausted (sweep loops)."""
        if self.max_wall_s is None:
            return
        if self._wall_start is None:
            self.start()
        elapsed = self.clock() - self._wall_start
        if elapsed >= self.max_wall_s:
            self._expire(
                "wall-deadline",
                f"wall-clock budget exhausted "
                f"({elapsed:.3f}s >= {self.max_wall_s:g}s)",
            )

    def after_event(self, sim: Any) -> None:
        """Per-event hook called by ``Simulator.run`` after each step."""
        if self.max_sim_time is not None and sim.now > self.max_sim_time:
            self._expire(
                "sim-deadline",
                f"simulation clock {sim.now:g} passed the deadline "
                f"{self.max_sim_time:g}",
            )
        processed = sim.events_processed - self._base_events
        if self.max_events is not None and processed >= self.max_events:
            self._expire(
                "event-budget",
                f"processed {processed} events "
                f"(budget {self.max_events})",
            )
        if self.stall_events is not None:
            if self._last_now is None or sim.now > self._last_now:
                self._last_now = sim.now
                self._stalled = 0
            else:
                self._stalled += 1
                if self._stalled >= self.stall_events:
                    self._expire(
                        "no-progress",
                        f"{self._stalled} consecutive events without "
                        f"clock advance at t={sim.now:g}",
                    )
        self.check_wall()
