"""Multi-tenant service mode: open arrivals on a shared PRR pool.

The paper's closing claim is that PRTR beats FRTR "for versatility
purposes, multi-tasking applications, and hardware virtualization".
:mod:`repro.rtr.multitask` measures that claim closed-loop; this package
stresses it open-loop — the reconfigurable node run as a *service*:

* :mod:`repro.service.tenants` — tenant specifications (priority, task
  mix, SLO, rate limits) and the service configuration;
* :mod:`repro.service.arrivals` — seeded Poisson/bursty/diurnal arrival
  processes, lazily generated so horizons with millions of requests
  stay cheap;
* :mod:`repro.service.admission` — token-bucket rate limiting, bounded
  per-tenant queues, and explicit admit/queue/shed decisions;
* :mod:`repro.service.scheduler` — the preemptive scheduler
  time-sharing the :class:`~repro.rtr.multitask.PrrFabric` pool with
  checkpoint/evict/restore costs and priority aging;
* :mod:`repro.service.slo` — per-tenant p50/p99/p999 latency, Jain
  fairness, shed and SLO-violation rates as a canonical report;
* :mod:`repro.service.runner` — the journaled, kill-and-resume-safe
  harness behind ``repro serve``.

Determinism contract: one master seed drives per-tenant substreams via
:func:`repro.model.stochastic.resolve_rng`; same seed, same spec ->
byte-identical SLO report, under any worker count and across
kill-and-resume.  With admission disabled, preemption off, and a single
closed tenant the service reduces bit-identically to the multitask PRTR
executor — both run the same :class:`~repro.rtr.multitask.PrrFabric`.
"""

from .admission import AdmissionController, TokenBucket
from .arrivals import ARRIVAL_KINDS, arrival_times, request_stream
from .runner import ServeOutcome, crash_safe_serve, serve_payload
from .scheduler import Request, ServiceExecutor, ServiceResult, run_service
from .slo import jain_fairness, percentile, render_report, report_json, slo_report
from .tenants import (
    ServiceConfig,
    TaskMix,
    TenantSpec,
    default_tenants,
    load_tenants,
)

__all__ = [
    "ARRIVAL_KINDS",
    "AdmissionController",
    "Request",
    "ServeOutcome",
    "ServiceConfig",
    "ServiceExecutor",
    "ServiceResult",
    "TaskMix",
    "TenantSpec",
    "TokenBucket",
    "arrival_times",
    "crash_safe_serve",
    "default_tenants",
    "jain_fairness",
    "load_tenants",
    "percentile",
    "render_report",
    "report_json",
    "request_stream",
    "run_service",
    "serve_payload",
    "slo_report",
]
