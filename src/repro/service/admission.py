"""Admission control: token buckets, bounded queues, load shedding.

Every arrival gets exactly one explicit decision — ``admit`` (a PRR
grant is free right now), ``queue`` (admitted, waits its turn), or
``shed`` — and every decision is accounted into epoch-indexed counters
that travel with the run journal, so a post-mortem can reconstruct *when*
the service started pushing back, not just how often.

Shedding is graceful and ordered:

* ``brownout`` — the chaos-mode brownout controller has browned the
  tenant's tier out (only when a chaos spec arms it; see
  :mod:`repro.chaos.brownout`);
* ``power_cap`` — granting the arrival would push the node's projected
  power draw above :attr:`~repro.service.tenants.ServiceConfig
  .power_cap_w` (only when a cap is configured; the scheduler computes
  the projection from the :mod:`repro.power` model);
* ``rate_limit`` — the tenant's token bucket is empty (sustained rate
  above its contract);
* ``queue_full`` — the tenant's own bounded backlog is at capacity;
* ``overload`` — the *service-wide* backlog passed the high-water mark
  and a strictly higher-priority tenant has work pending: under
  overload the lowest-priority traffic is shed first, while the highest
  pending priority keeps being served.

The overload check takes the higher-priority-pending predicate as a
callable so the scheduler can answer it from an incrementally maintained
per-priority backlog census — O(distinct active priorities) per
arrival — instead of this module scanning every configured tenant.

With :attr:`~repro.service.tenants.ServiceConfig.admission` off the
controller is a pass-through (every arrival decides ``admit``/``queue``
purely on grant availability) — the reduction-identity path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..obs import metrics as obsm
from .tenants import ServiceConfig, TenantSpec

__all__ = ["AdmissionController", "Decision", "TokenBucket"]


@dataclass
class TokenBucket:
    """Sim-time token bucket with lazy refill.

    ``rate`` tokens arrive per simulated second up to ``capacity``;
    :meth:`try_take` refills from the elapsed simulation time and takes
    one token if available.  A zero rate disables the bucket (always
    allows).
    """

    rate: float
    capacity: float
    tokens: float = field(init=False)
    _last: float = field(init=False, default=0.0)

    def __post_init__(self) -> None:
        if self.rate < 0:
            raise ValueError(f"token rate must be >= 0: {self.rate}")
        if self.capacity < 1:
            raise ValueError(f"bucket capacity must be >= 1: {self.capacity}")
        self.tokens = self.capacity

    def try_take(self, now: float) -> bool:
        """Refill to ``now`` and consume one token if available."""
        if self.rate == 0:
            return True
        elapsed = max(now - self._last, 0.0)
        self._last = now
        self.tokens = min(self.capacity, self.tokens + elapsed * self.rate)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


@dataclass(frozen=True)
class Decision:
    """One admission outcome: the verdict and (for sheds) the reason."""

    verdict: str  # "admit" | "queue" | "shed"
    reason: str = ""


class AdmissionController:
    """Per-tenant token buckets plus service-wide overload shedding.

    The controller is pure bookkeeping over simulation state handed in
    by the scheduler (backlogs, grant availability) — it never touches
    the DES directly, which keeps decisions synchronous and free of
    event-ordering side effects.
    """

    def __init__(
        self, tenants: Sequence[TenantSpec], config: ServiceConfig
    ) -> None:
        self.config = config
        self.tenants = {t.name: t for t in tenants}
        self.buckets = {
            t.name: TokenBucket(rate=t.rate_limit, capacity=t.bucket)
            for t in tenants
            if t.rate_limit > 0
        }
        #: epoch index -> tenant -> decision/reason -> count
        self.epochs: dict[int, dict[str, dict[str, int]]] = {}

    def _account(self, now: float, tenant: str, key: str) -> None:
        """Bump the epoch-indexed decision counter for ``tenant``."""
        epoch = int(now // self.config.epoch)
        per_tenant = self.epochs.setdefault(epoch, {})
        counts = per_tenant.setdefault(tenant, {})
        counts[key] = counts.get(key, 0) + 1

    def decide(
        self,
        tenant: str,
        now: float,
        *,
        backlog_of: Callable[[str], int],
        total_backlog: int,
        grant_free: bool,
        higher_pending: Callable[[int], bool] | None = None,
        brownout_shed: bool = False,
        power_capped: bool = False,
    ) -> Decision:
        """Decide one arrival; accounts the decision and emits metrics.

        ``backlog_of`` reports a tenant's queued (admitted, not yet
        granted) requests; ``total_backlog`` is the service-wide sum;
        ``grant_free`` whether a PRR grant is available right now.
        ``higher_pending(priority)`` answers whether any strictly
        higher-priority request is queued (``None`` falls back to a
        ``backlog_of`` scan over all configured tenants);
        ``brownout_shed`` is the chaos brownout controller's verdict for
        this arrival's tier; ``power_capped`` the scheduler's verdict on
        whether granting this arrival would exceed the power budget.
        """
        spec = self.tenants[tenant]
        decision = self._decide(
            spec, now,
            backlog_of=backlog_of,
            total_backlog=total_backlog,
            grant_free=grant_free,
            higher_pending=higher_pending,
            brownout_shed=brownout_shed,
            power_capped=power_capped,
        )
        self._account(now, tenant, decision.verdict)
        obsm.counter("repro_service_decisions_total").inc(
            tenant=tenant, decision=decision.verdict
        )
        if decision.verdict == "shed":
            self._account(now, tenant, f"shed:{decision.reason}")
            obsm.counter("repro_service_shed_total").inc(
                tenant=tenant, reason=decision.reason
            )
        return decision

    def _decide(
        self,
        spec: TenantSpec,
        now: float,
        *,
        backlog_of: Callable[[str], int],
        total_backlog: int,
        grant_free: bool,
        higher_pending: Callable[[int], bool] | None = None,
        brownout_shed: bool = False,
        power_capped: bool = False,
    ) -> Decision:
        """The decision logic proper (no accounting side effects)."""
        if not self.config.admission:
            return Decision("admit" if grant_free else "queue")
        if brownout_shed:
            return Decision("shed", "brownout")
        if power_capped:
            return Decision("shed", "power_cap")
        bucket = self.buckets.get(spec.name)
        if bucket is not None and not bucket.try_take(now):
            return Decision("shed", "rate_limit")
        if backlog_of(spec.name) >= spec.queue_capacity:
            return Decision("shed", "queue_full")
        if total_backlog >= self.config.overload_backlog:
            if higher_pending is not None:
                blocked = higher_pending(spec.priority)
            else:
                blocked = any(
                    other.priority > spec.priority and backlog_of(name) > 0
                    for name, other in self.tenants.items()
                )
            if blocked:
                return Decision("shed", "overload")
        return Decision("admit" if grant_free else "queue")

    def shed_post_admission(
        self, tenant: str, now: float, reason: str
    ) -> None:
        """Account a post-admission shed (e.g. repeated config faults)."""
        self._account(now, tenant, f"shed:{reason}")
        obsm.counter("repro_service_shed_total").inc(
            tenant=tenant, reason=reason
        )

    def epochs_as_dict(self) -> dict[str, dict[str, dict[str, int]]]:
        """JSON-able epoch counters (string epoch keys, sorted)."""
        return {
            str(epoch): {
                tenant: dict(sorted(counts.items()))
                for tenant, counts in sorted(per_tenant.items())
            }
            for epoch, per_tenant in sorted(self.epochs.items())
        }
