"""Seeded open-workload arrival processes.

Three open arrival kinds drive the service's request streams (the
``closed`` kind replays a trace inside the scheduler and never touches
this module):

* **poisson** — homogeneous Poisson: i.i.d. exponential interarrivals
  at the tenant's mean rate;
* **bursty** — an on/off modulated Poisson process (a two-state MMPP):
  exponential on/off phases, arrivals only during on-phases at a rate
  scaled so the long-run mean equals the nominal rate;
* **diurnal** — a nonhomogeneous Poisson process with sinusoidal rate
  ``rate * (1 + sin(2*pi*t/period))``, realized by Lewis-Shedler
  thinning at the peak rate.

Everything is **lazy**: :func:`arrival_times` and
:func:`request_stream` are generators, so a horizon holding millions of
requests never materializes a list.  Determinism: each tenant gets a
private substream seeded from the master generator in tenant order (see
:func:`tenant_rng`), so adding a tenant at the end never perturbs the
streams of earlier tenants.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..model.stochastic import resolve_rng
from .tenants import TenantSpec

__all__ = [
    "ARRIVAL_KINDS",
    "Arrival",
    "arrival_times",
    "request_stream",
    "tenant_rng",
]

#: open arrival kinds this module generates
ARRIVAL_KINDS = ("poisson", "bursty", "diurnal")


@dataclass(frozen=True)
class Arrival:
    """One generated request: when it arrives and what it runs."""

    time: float
    module: str
    work: float


def tenant_rng(
    master: np.random.Generator | int | None, index: int
) -> np.random.Generator:
    """The private substream for the ``index``-th tenant.

    Seeds are drawn from the master stream in tenant order, so stream
    ``i`` depends only on the master seed and ``i`` — never on how many
    draws later tenants make.
    """
    rng = resolve_rng(master)
    seed = 0
    for _ in range(index + 1):
        seed = int(rng.integers(0, 2**63 - 1))
    return resolve_rng(seed)


def _poisson_times(
    rate: float, horizon: float, rng: np.random.Generator
) -> Iterator[float]:
    """Homogeneous Poisson arrival times on ``[0, horizon)``."""
    t = 0.0
    while True:
        t += float(rng.exponential(1.0 / rate))
        if t >= horizon:
            return
        yield t


def _bursty_times(
    spec: TenantSpec, horizon: float, rng: np.random.Generator
) -> Iterator[float]:
    """On/off modulated Poisson arrivals with long-run mean ``rate``.

    The on-phase rate is ``rate * (on + off) / on`` scaled further by
    ``burst_factor`` normalization: bursts are ``burst_factor`` times
    the nominal rate, and the duty cycle is adjusted so the long-run
    mean stays ``rate`` (phase lengths keep their configured means,
    only the burst height obeys ``burst_factor``).
    """
    on_rate = spec.rate * spec.burst_factor
    # Duty cycle that preserves the long-run mean at the given height:
    # mean = on_rate * on / (on + off)  =>  solve for the off mean.
    duty = min(1.0, 1.0 / spec.burst_factor)
    cycle = spec.burst_on / duty if duty > 0 else spec.burst_on
    off_mean = max(cycle - spec.burst_on, 0.0)
    t = 0.0
    while t < horizon:
        on_end = t + float(rng.exponential(spec.burst_on))
        while True:
            t += float(rng.exponential(1.0 / on_rate))
            if t >= min(on_end, horizon):
                break
            yield t
        t = max(t, on_end)
        if off_mean > 0:
            t += float(rng.exponential(off_mean))


def _diurnal_times(
    spec: TenantSpec, horizon: float, rng: np.random.Generator
) -> Iterator[float]:
    """Thinned nonhomogeneous Poisson with a sinusoidal daily profile."""
    peak = 2.0 * spec.rate
    t = 0.0
    while True:
        t += float(rng.exponential(1.0 / peak))
        if t >= horizon:
            return
        lam = spec.rate * (1.0 + math.sin(2.0 * math.pi * t / spec.period))
        if float(rng.random()) < lam / peak:
            yield t


def arrival_times(
    spec: TenantSpec, horizon: float, rng: np.random.Generator
) -> Iterator[float]:
    """Lazy, strictly increasing arrival times on ``[0, horizon)``."""
    if spec.arrival == "poisson":
        return _poisson_times(spec.rate, horizon, rng)
    if spec.arrival == "bursty":
        return _bursty_times(spec, horizon, rng)
    if spec.arrival == "diurnal":
        return _diurnal_times(spec, horizon, rng)
    raise ValueError(
        f"tenant {spec.name!r}: {spec.arrival!r} is not an open "
        f"arrival kind (expected one of {ARRIVAL_KINDS})"
    )


def _pick_task(
    spec: TenantSpec, rng: np.random.Generator
) -> tuple[str, float]:
    """Sample one (module, work) pair from the tenant's weighted mix."""
    total = sum(t.weight for t in spec.tasks)
    u = float(rng.random()) * total
    acc = 0.0
    for t in spec.tasks:
        acc += t.weight
        if u < acc:
            return t.module, t.time
    last = spec.tasks[-1]
    return last.module, last.time


def request_stream(
    spec: TenantSpec, horizon: float, rng: np.random.Generator
) -> Iterator[Arrival]:
    """Lazy stream of :class:`Arrival` records for one open tenant.

    The module draw immediately follows each time draw on the same
    substream, so the realization is a pure function of (seed, spec,
    horizon).
    """
    for t in arrival_times(spec, horizon, rng):
        module, work = _pick_task(spec, rng)
        yield Arrival(time=t, module=module, work=work)
