"""The journaled ``repro serve`` harness: crash-safe service runs.

One *serve run* is ``replications`` independent service realizations
(replication ``i`` seeds its simulation from ``seed + i``), walked
through :func:`repro.runtime.crashsafe.run_checkpointed` so each
completed realization is journaled atomically: kill the process at any
point, rerun with ``--resume``, and the final SLO reports are
byte-identical to an uninterrupted run — journaled realizations replay
from disk, the rest recompute from their private seeds.  ``workers > 1``
shards replications across fork workers with the same guarantee.

Each realization's journal payload is its full :func:`serve_payload`:
the SLO report, the admission decision epochs, and the
``service-accounting`` audit.  The merged audit across replications is
written to ``<run_dir>/invariants.json``.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from ..runtime.crashsafe import GridOutcome, run_checkpointed
from ..runtime.invariants import AuditReport, Violation, audit_service
from ..runtime.journal import JournalError, RunJournal, atomic_write_text
from ..runtime.watchdog import Watchdog
from .scheduler import ServiceResult, run_service
from .slo import slo_report
from .tenants import ServiceConfig, TenantSpec

__all__ = [
    "ServeOutcome",
    "crash_safe_serve",
    "serve_payload",
    "verify_resume_meta",
]


def _meta_diff(journaled: Any, requested: Any, path: str = "") -> list[str]:
    """Field-level differences between two journal meta trees.

    Returns human-readable ``path: journaled X, requested Y`` lines;
    an empty list means the trees are equal.  Lists of differing length
    are reported as a length mismatch (element diffs would be noise
    when a tenant was added or removed).
    """
    label = path or "<root>"
    if isinstance(journaled, Mapping) and isinstance(requested, Mapping):
        diffs = []
        for key in sorted(set(journaled) | set(requested), key=str):
            sub = f"{path}.{key}" if path else str(key)
            if key not in requested:
                diffs.append(
                    f"{sub}: journaled {journaled[key]!r}, absent from "
                    "the request"
                )
            elif key not in journaled:
                diffs.append(
                    f"{sub}: requested {requested[key]!r}, absent from "
                    "the journal"
                )
            else:
                diffs.extend(
                    _meta_diff(journaled[key], requested[key], sub)
                )
        return diffs
    if isinstance(journaled, list) and isinstance(requested, list):
        if len(journaled) != len(requested):
            return [
                f"{label}: journaled {len(journaled)} entries, "
                f"requested {len(requested)}"
            ]
        diffs = []
        for i, (a, b) in enumerate(zip(journaled, requested)):
            diffs.extend(_meta_diff(a, b, f"{path}[{i}]"))
        return diffs
    if journaled != requested:
        return [f"{label}: journaled {journaled!r}, requested {requested!r}"]
    return []


def verify_resume_meta(run_dir: str, meta: Mapping[str, Any]) -> None:
    """Fail a ``--resume`` up front when parameters drifted.

    Loads the journal in ``run_dir`` and compares its pinned meta with
    this invocation's, raising a :class:`~repro.runtime.journal.JournalError`
    that names the exact fields that differ (tenant file entries, config
    knobs, seed, replication count) — instead of the generic whole-meta
    mismatch the checkpoint engine would raise later.
    """
    journal = RunJournal.load(run_dir)
    if dict(journal.meta) == dict(meta):
        return
    diffs = _meta_diff(dict(journal.meta), dict(meta))
    shown = "; ".join(diffs[:6])
    more = len(diffs) - 6
    if more > 0:
        shown += f" (+{more} more)"
    raise JournalError(
        f"cannot resume {run_dir!r}: this invocation's parameters do "
        f"not match the journaled run — {shown}. Rerun with the "
        "original tenant file and flags, or point --run-dir at a "
        "fresh directory."
    )


def serve_payload(result: ServiceResult) -> dict[str, Any]:
    """Journal payload for one realization: report, epochs, audit."""
    return {
        "report": slo_report(result),
        "epochs": result.decision_epochs,
        "audit": audit_service(result).as_dict(),
    }


def _audit_from_payload(payload: Mapping[str, Any]) -> AuditReport:
    """Rehydrate the audit recorded inside a journaled payload."""
    report = AuditReport()
    report.checked = list(payload["audit"]["checked"])
    report.violations = [
        Violation(v["invariant"], v["message"])
        for v in payload["audit"]["violations"]
    ]
    return report


@dataclass
class ServeOutcome(GridOutcome):
    """A checkpointed serve run plus its merged accounting audit."""

    audit: AuditReport = field(default_factory=AuditReport)

    @property
    def reports(self) -> list[dict[str, Any]]:
        """The per-replication SLO reports, in replication order."""
        return [p["report"] for p in self.results]


def crash_safe_serve(
    run_dir: str,
    tenants: Sequence[TenantSpec],
    config: ServiceConfig,
    *,
    seed: int = 0,
    replications: int = 1,
    resume: bool = False,
    deadline_s: float | None = None,
    strict: bool | None = None,
    progress: Callable[[str], None] | None = None,
    workers: int = 1,
) -> ServeOutcome:
    """Run (or resume) a journaled multi-replication service run.

    The journal meta pins the full tenant mix, service configuration,
    seed and replication count, so a resume under different parameters
    is rejected instead of silently merging incompatible runs.
    """
    if replications < 1:
        raise ValueError(f"replications must be >= 1: {replications}")
    meta = {
        "kind": "serve",
        "tenants": [t.as_dict() for t in tenants],
        "config": config.as_dict(),
        "seed": int(seed),
        "replications": int(replications),
    }
    if resume:
        verify_resume_meta(run_dir, meta)
    watchdog = (
        Watchdog(max_wall_s=deadline_s) if deadline_s is not None else None
    )
    outcome = run_checkpointed(
        run_dir,
        list(range(replications)),
        lambda rep: serve_payload(
            run_service(tenants, config, seed=seed + rep)
        ),
        key_of=lambda rep: f"rep={rep}",
        meta=meta,
        resume=resume,
        watchdog=watchdog,
        progress=progress,
        workers=workers,
    )
    audit = AuditReport()
    for payload in outcome.results:
        audit.merge(_audit_from_payload(payload))
    atomic_write_text(
        os.path.join(run_dir, "invariants.json"),
        json.dumps(audit.as_dict(), indent=2) + "\n",
    )
    serve = ServeOutcome(
        results=outcome.results,
        interrupted=outcome.interrupted,
        resumed_points=outcome.resumed_points,
        computed_points=outcome.computed_points,
        journal=outcome.journal,
        merge_audit=outcome.merge_audit,
        audit=audit,
    )
    audit.raise_if_strict(strict)
    return serve
