"""Preemptive service scheduler time-sharing the PRR pool.

The scheduler runs the service as a DES on one reconfigurable node,
sharing the exact :class:`~repro.rtr.multitask.PrrFabric` machinery the
closed-loop multitask executor uses — residency, pinning, the ICAP
serialization, eviction under pressure.  On top of it, service mode adds:

* **grants** — at most ``active_slots`` requests hold execution grants
  at once; the rest wait in a priority queue ordered by *effective
  priority* (static tenant priority plus aging for time spent waiting,
  tie-broken by global arrival order, so identical runs order
  identically and no tenant starves);
* **preemption** — when a strictly higher-priority request waits and no
  grant is free, the lowest-priority running request is flagged; it
  checkpoints at its next quantum boundary (a modeled
  ``checkpoint_cost`` paid while the PRR is held), releases everything,
  and re-queues to restore later (``restore_cost`` on the next grant);
* **graceful degradation** — scheduled blade degradations retire PRR
  slots mid-run (:meth:`~repro.rtr.multitask.PrrFabric.retire_slot`),
  shrinking capacity without deadlock; repeated reconfiguration faults
  shed the request (reason ``fault``) instead of wedging a slot;
* **a watchdog on every run** — runaway or stalled schedules are cut
  off and reported as ``interrupted`` rather than hanging the process.

Reduction identity: with admission off, preemption off and a single
closed tenant, every code path that yields to the DES is the same
sequence the multitask PRTR executor produces — grants are immediate
(no waiters), no preemption flags are ever set, and the per-call body
is pin / ensure-resident / acquire / control / task / release / unpin.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, Sequence

from ..caching.base import ConfigCache
from ..caching.policies import LruPolicy
from ..faults.errors import ReconfigurationFault
from ..faults.injector import FaultInjector
from ..hardware.prr import uniform_prr_floorplan
from ..model.stochastic import resolve_rng
from ..obs import metrics as obsm
from ..rtr.multitask import PrrFabric
from ..rtr.runner import make_node
from ..runtime.watchdog import Watchdog, WatchdogExpired
from ..sim.engine import Delay
from ..sim.trace import Phase, Timeline
from .admission import AdmissionController
from .arrivals import request_stream, tenant_rng
from .tenants import ServiceConfig, TenantSpec

__all__ = [
    "Request",
    "ServiceExecutor",
    "ServiceResult",
    "TenantOutcome",
    "run_service",
]

#: slack under which a remaining-time balance counts as finished
_EPS = 1e-12


@dataclass
class Request:
    """One in-flight service request and its scheduling state."""

    tenant: str
    seq: int
    arrival: float
    module: str
    work: float
    priority: int
    remaining: float = field(init=False)
    #: set by the dispatcher: checkpoint at the next quantum boundary
    preempt_flag: bool = False
    #: true once checkpointed at least once (pays restore on regrant)
    preempted: bool = False
    ready_since: float = 0.0
    preemptions: int = 0

    def __post_init__(self) -> None:
        self.remaining = self.work


@dataclass
class TenantOutcome:
    """Per-tenant accounting over one service run."""

    name: str
    priority: int
    slo_latency: float
    arrived: int = 0
    #: admission verdicts: admit / queue / shed
    decisions: dict[str, int] = field(default_factory=dict)
    #: shed reasons: rate_limit / queue_full / overload / fault
    shed: dict[str, int] = field(default_factory=dict)
    completed: int = 0
    preemptions: int = 0
    configs: int = 0
    #: admitted requests still queued or running at run end
    in_flight: int = 0
    #: arrival-to-completion latency per completed request
    latencies: list[float] = field(default_factory=list)
    backlog_peak: int = 0

    @property
    def shed_total(self) -> int:
        """Requests shed across all reasons."""
        return sum(self.shed.values())


@dataclass
class ServiceResult:
    """Aggregate outcome of one service run."""

    tenants: list[TenantOutcome]
    makespan: float
    horizon: float
    timeline: Timeline
    fills: int
    cache_hits: int
    cache_misses: int
    retired: list[int]
    decision_epochs: dict[str, dict[str, dict[str, int]]]
    interrupted: str | None = None
    notes: dict[str, float] = field(default_factory=dict)

    @property
    def total_arrived(self) -> int:
        """Requests that arrived across all tenants."""
        return sum(t.arrived for t in self.tenants)

    @property
    def total_completed(self) -> int:
        """Requests that completed across all tenants."""
        return sum(t.completed for t in self.tenants)

    @property
    def total_shed(self) -> int:
        """Requests shed across all tenants and reasons."""
        return sum(t.shed_total for t in self.tenants)

    @property
    def total_in_flight(self) -> int:
        """Admitted requests still pending at run end."""
        return sum(t.in_flight for t in self.tenants)


class _Waiter:
    """A queued grant request plus its wakeup signal."""

    __slots__ = ("req", "signal")

    def __init__(self, req: Request, signal: Any) -> None:
        self.req = req
        self.signal = signal


class ServiceExecutor:
    """Run a tenant mix as an open service on one PRR node."""

    def __init__(
        self,
        tenants: Sequence[TenantSpec],
        config: ServiceConfig,
        *,
        seed: int = 0,
    ) -> None:
        if not tenants:
            raise ValueError("need at least one tenant")
        names = [t.name for t in tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names: {names}")
        self.tenants = list(tenants)
        self.config = config
        self.seed = seed
        floorplan = (
            uniform_prr_floorplan(config.prrs, 12) if config.prrs else None
        )
        injector = (
            FaultInjector(config.fault)
            if config.fault is not None and not config.fault.fault_free
            else None
        )
        self.node = make_node(floorplan, fault_injector=injector)
        self.sim = self.node.sim
        self.control_time = self.node.params.control_time
        self.timeline = Timeline()
        self.cache = ConfigCache(
            slots=self.node.floorplan.n_prrs, policy=LruPolicy()
        )
        self.fabric = PrrFabric(self.node, self.cache, self.timeline)
        self.admission = AdmissionController(tenants, config)
        self.stats = {
            t.name: TenantOutcome(
                name=t.name, priority=t.priority, slo_latency=t.slo_latency
            )
            for t in tenants
        }
        # -- grant state --------------------------------------------------
        self._granted = 0
        self._waiting: list[_Waiter] = []
        self._running: list[Request] = []
        self._backlog: dict[str, int] = {t.name: 0 for t in tenants}
        self._seq = 0
        self._boot: Any = None

    # -- grant machinery ---------------------------------------------------

    def _capacity(self) -> int:
        """Concurrent grants allowed right now (active PRR slots)."""
        return self.fabric.active_slots

    def _grant_free(self) -> bool:
        """Would a grant be issued immediately (no queueing)?"""
        return not self._waiting and self._granted < self._capacity()

    def _effective_priority(self, req: Request, now: float) -> float:
        """Static priority plus aging for time spent waiting."""
        return req.priority + self.config.aging_rate * (
            now - req.ready_since
        )

    def _acquire_grant(self, req: Request) -> Generator[Any, Any, None]:
        """Take a grant, waiting in the priority queue if none is free.

        The fast path returns without yielding so an uncontended
        request adds no DES events (the reduction-identity invariant).
        """
        if self._grant_free():
            self._granted += 1
            return
        req.ready_since = self.sim.now
        sig = self.sim.signal(name=f"grant:{req.tenant}#{req.seq}")
        self._waiting.append(_Waiter(req, sig))
        stats = self.stats[req.tenant]
        self._backlog[req.tenant] += 1
        stats.backlog_peak = max(
            stats.backlog_peak, self._backlog[req.tenant]
        )
        self._flag_preemption(req)
        yield sig

    def _release_grant(self) -> None:
        """Return a grant and hand it to the best waiter, if any."""
        self._granted -= 1
        self._dispatch()

    def _dispatch(self) -> None:
        """Grant waiting requests while capacity is free.

        Picks the maximum effective priority (aging included),
        tie-broken by global arrival order — a total, deterministic
        order.
        """
        now = self.sim.now
        while self._waiting and self._granted < self._capacity():
            best = min(
                self._waiting,
                key=lambda w: (
                    -self._effective_priority(w.req, now),
                    w.req.seq,
                ),
            )
            self._waiting.remove(best)
            self._backlog[best.req.tenant] -= 1
            self._granted += 1
            best.signal.succeed()

    def _flag_preemption(self, waiter: Request) -> None:
        """Mark the weakest running request for checkpointing.

        Only when preemption is on, no grant is free, and the waiter
        strictly outranks the weakest running request's *static*
        priority (running tasks do not age).
        """
        if not self.config.preemption or not self._running:
            return
        if self._granted < self._capacity():
            return
        victim = min(self._running, key=lambda r: (r.priority, r.seq))
        if victim.preempt_flag:
            return
        if self._effective_priority(waiter, self.sim.now) > victim.priority:
            victim.preempt_flag = True

    # -- request execution -------------------------------------------------

    def _run_granted(self, req: Request) -> Generator[Any, Any, str]:
        """Execute one granted request slice on the fabric.

        Returns ``"done"``, ``"preempted"`` (checkpointed at a quantum
        boundary) or ``"fault"`` (reconfiguration failed
        ``max_config_attempts`` times).
        """
        owner = f"{req.tenant}#{req.seq}"
        fabric = self.fabric
        fabric.pin(req.module)
        try:
            attempts = 0
            while True:
                try:
                    hit = yield from fabric.ensure_resident(
                        req.module, owner
                    )
                    break
                except ReconfigurationFault:
                    attempts += 1
                    if attempts >= self.config.max_config_attempts:
                        return "fault"
            if not hit:
                self.stats[req.tenant].configs += 1
            slot = self.cache.slot_of(req.module)
            yield from fabric.prr_mutexes[slot].acquire(owner)
            try:
                if req.preempted and self.config.restore_cost:
                    yield Delay(self.config.restore_cost)
                if self.control_time:
                    yield Delay(self.control_time)
                t0 = self.sim.now
                if not self.config.preemption:
                    yield Delay(req.remaining)
                    req.remaining = 0.0
                else:
                    while req.remaining > _EPS:
                        step = min(self.config.quantum, req.remaining)
                        yield Delay(step)
                        req.remaining -= step
                        if req.preempt_flag and req.remaining > _EPS:
                            break
                self.timeline.add(
                    Phase.TASK, t0, self.sim.now, task=req.module,
                    lane=f"prr{slot}", note=req.tenant,
                )
                if req.remaining > _EPS:
                    if self.config.checkpoint_cost:
                        yield Delay(self.config.checkpoint_cost)
                    return "preempted"
                return "done"
            finally:
                fabric.prr_mutexes[slot].release(owner)
        finally:
            fabric.unpin(req.module)

    def _lifecycle(self, req: Request) -> Generator[Any, Any, None]:
        """Grant / execute / re-queue loop for one admitted request."""
        while True:
            yield from self._acquire_grant(req)
            self._running.append(req)
            try:
                outcome = yield from self._run_granted(req)
            finally:
                self._running.remove(req)
            self._release_grant()
            if outcome == "done":
                self._complete(req)
                return
            if outcome == "fault":
                self._shed_admitted(req, "fault")
                return
            req.preempt_flag = False
            req.preempted = True
            req.preemptions += 1
            self.stats[req.tenant].preemptions += 1
            obsm.counter("repro_service_preemptions_total").inc(
                tenant=req.tenant
            )

    def _complete(self, req: Request) -> None:
        """Completion bookkeeping: latency, SLO inputs, metrics."""
        stats = self.stats[req.tenant]
        stats.completed += 1
        stats.in_flight -= 1
        latency = self.sim.now - req.arrival
        stats.latencies.append(latency)
        obsm.counter("repro_service_completions_total").inc(
            tenant=req.tenant
        )
        obsm.histogram("repro_service_latency_seconds").observe(
            latency, tenant=req.tenant
        )

    def _shed_admitted(self, req: Request, reason: str) -> None:
        """Shed a request that had already been admitted."""
        stats = self.stats[req.tenant]
        stats.in_flight -= 1
        stats.shed[reason] = stats.shed.get(reason, 0) + 1
        self.admission.shed_post_admission(req.tenant, self.sim.now, reason)

    # -- arrival sources ---------------------------------------------------

    def _admit(self, spec: TenantSpec, module: str, work: float) -> Request | None:
        """Run one arrival through admission; returns the admitted request.

        ``None`` means the arrival was shed (already accounted).
        """
        stats = self.stats[spec.name]
        stats.arrived += 1
        decision = self.admission.decide(
            spec.name,
            self.sim.now,
            backlog_of=lambda name: self._backlog[name],
            total_backlog=sum(self._backlog.values()),
            grant_free=self._grant_free(),
        )
        stats.decisions[decision.verdict] = (
            stats.decisions.get(decision.verdict, 0) + 1
        )
        if decision.verdict == "shed":
            stats.shed[decision.reason] = (
                stats.shed.get(decision.reason, 0) + 1
            )
            return None
        self._seq += 1
        stats.in_flight += 1
        return Request(
            tenant=spec.name,
            seq=self._seq,
            arrival=self.sim.now,
            module=module,
            work=work,
            priority=spec.priority,
        )

    def _open_source(
        self, spec: TenantSpec, rng: Any
    ) -> Generator[Any, Any, None]:
        """Generate one open tenant's arrivals until the horizon."""
        yield self._boot.done
        t0 = self.sim.now
        for arrival in request_stream(spec, self.config.horizon, rng):
            target = t0 + arrival.time
            if target > self.sim.now:
                yield Delay(target - self.sim.now)
            req = self._admit(spec, arrival.module, arrival.work)
            if req is None:
                continue
            self.sim.spawn(
                self._lifecycle(req), name=f"req:{req.tenant}#{req.seq}"
            )

    def _closed_source(self, spec: TenantSpec) -> Generator[Any, Any, None]:
        """Replay a closed tenant's trace, one call at a time.

        The next call is issued when the previous completes — the
        multitask closed loop, admission and grants permitting.
        """
        yield self._boot.done
        for call in spec.trace:  # type: ignore[union-attr]
            req = self._admit(spec, call.name, call.task.time)
            if req is None:
                continue
            yield from self._lifecycle(req)

    def _degrade_proc(
        self, delay: float, slot: int
    ) -> Generator[Any, Any, None]:
        """Retire one PRR slot ``delay`` seconds after service boot."""
        yield self._boot.done
        if delay:
            yield Delay(delay)
        yield from self.fabric.retire_slot(slot)

    def _startup(self) -> Generator[Any, Any, None]:
        """Initial full configuration loading the static design."""
        t0 = self.sim.now
        yield Delay(self.node.full_config_time())
        self.timeline.add(Phase.CONFIG, t0, self.sim.now,
                          note="initial full")

    # -- the run -----------------------------------------------------------

    def run(self) -> ServiceResult:
        """Execute the service to drain (or watchdog interruption)."""
        sim = self.sim
        start = sim.now
        self._boot = sim.spawn(self._startup(), name="startup")
        master = resolve_rng(self.seed)
        for index, spec in enumerate(self.tenants):
            if spec.arrival == "closed":
                sim.spawn(
                    self._closed_source(spec), name=f"src:{spec.name}"
                )
            else:
                sim.spawn(
                    self._open_source(spec, tenant_rng(master, index)),
                    name=f"src:{spec.name}",
                )
        for delay, slot in self.config.degrade_at:
            sim.spawn(
                self._degrade_proc(delay, slot),
                name=f"degrade:prr{slot}",
            )
        watchdog = Watchdog(
            max_events=self.config.max_events,
            stall_events=self.config.stall_events,
        ).start(sim)
        sim.watchdog = watchdog
        interrupted: str | None = None
        try:
            sim.run()
        except WatchdogExpired as exc:
            interrupted = str(exc)
        finally:
            sim.watchdog = None
        if interrupted is None:
            self.fabric.assert_no_overlap()
        for spec in self.tenants:
            obsm.gauge("repro_service_backlog_peak").set(
                self.stats[spec.name].backlog_peak, tenant=spec.name
            )
        return ServiceResult(
            tenants=[self.stats[t.name] for t in self.tenants],
            makespan=sim.now - start,
            horizon=self.config.horizon,
            timeline=self.timeline,
            fills=self.fabric.fills,
            cache_hits=self.cache.stats.hits,
            cache_misses=self.cache.stats.misses,
            retired=sorted(self.fabric.retired),
            decision_epochs=self.admission.epochs_as_dict(),
            interrupted=interrupted,
            notes={
                "t_config_full": self.node.full_config_time(),
                "hit_ratio": self.cache.stats.hit_ratio,
                "events": float(sim.events_processed),
            },
        )


def run_service(
    tenants: Sequence[TenantSpec],
    config: ServiceConfig,
    *,
    seed: int = 0,
) -> ServiceResult:
    """Run one service realization; audited by the caller."""
    return ServiceExecutor(tenants, config, seed=seed).run()
