"""Preemptive service scheduler time-sharing the PRR pool.

The scheduler runs the service as a DES on one reconfigurable node,
sharing the exact :class:`~repro.rtr.multitask.PrrFabric` machinery the
closed-loop multitask executor uses — residency, pinning, the ICAP
serialization, eviction under pressure.  On top of it, service mode adds:

* **grants** — at most ``active_slots`` requests hold execution grants
  at once; the rest wait in a priority queue ordered by *effective
  priority* (static tenant priority plus aging for time spent waiting,
  tie-broken by global arrival order, so identical runs order
  identically and no tenant starves);
* **preemption** — when a strictly higher-priority request waits and no
  grant is free, the lowest-priority running request is flagged; it
  checkpoints at its next quantum boundary (a modeled
  ``checkpoint_cost`` paid while the PRR is held), releases everything,
  and re-queues to restore later (``restore_cost`` on the next grant);
* **graceful degradation** — scheduled blade degradations retire PRR
  slots mid-run (:meth:`~repro.rtr.multitask.PrrFabric.retire_slot`),
  shrinking capacity without deadlock; repeated reconfiguration faults
  shed the request (reason ``fault``) instead of wedging a slot;
* **chaos resilience** (armed only by a non-inert
  :attr:`~repro.service.tenants.ServiceConfig.chaos` spec) — scripted
  failure-domain outages darken PRR slots and the configuration path
  mid-run; a granted task whose slot dies is *migrated*: the work since
  its last quantum boundary (its implicit checkpoint) is discarded, it
  re-queues, and it restores on a surviving slot paying
  ``restore_cost`` plus any reconfiguration — never silently lost.
  Per-domain circuit breakers fail configuration attempts fast while a
  domain is dark, and a hysteretic brownout controller sheds
  low-priority tiers and stretches quanta when the observed tail
  latency or shed rate crosses its thresholds (see :mod:`repro.chaos`);
* **a watchdog on every run** — runaway or stalled schedules are cut
  off and reported as ``interrupted`` rather than hanging the process.

The grant queue is a lazy heap: waiters are pushed with a *time-invariant
static rank* (``aging_rate * ready_since - priority``), which orders any
two waiters identically to comparing their aged effective priorities at
dispatch time — so dispatch is O(log waiters) with decisions identical
to the original full scan, and idle tenants cost nothing per tick.

Reduction identity: with admission off, preemption off and a single
closed tenant, every code path that yields to the DES is the same
sequence the multitask PRTR executor produces — grants are immediate
(no waiters), no preemption flags are ever set, and the per-call body
is pin / ensure-resident / acquire / control / task / release / unpin.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Generator, Sequence

from ..caching.base import ConfigCache
from ..caching.policies import LruPolicy
from ..chaos.breakers import CircuitBreaker
from ..chaos.brownout import BrownoutController
from ..faults.injector import FaultInjector
from ..hardware.domains import DomainTopology
from ..hardware.prr import uniform_prr_floorplan
from ..model.stochastic import resolve_rng
from ..obs import metrics as obsm
from ..power import current_model
from ..rtr.multitask import PrrFabric
from ..rtr.resilience import config_attempts
from ..rtr.runner import make_node
from ..runtime.watchdog import Watchdog, WatchdogExpired
from ..sim.engine import Delay
from ..sim.trace import Phase, Timeline
from .admission import AdmissionController
from .arrivals import request_stream, tenant_rng
from .tenants import ServiceConfig, TenantSpec

__all__ = [
    "Request",
    "ServiceExecutor",
    "ServiceResult",
    "TenantOutcome",
    "run_service",
]

#: slack under which a remaining-time balance counts as finished
_EPS = 1e-12


@dataclass
class Request:
    """One in-flight service request and its scheduling state."""

    tenant: str
    seq: int
    arrival: float
    module: str
    work: float
    priority: int
    remaining: float = field(init=False)
    #: set by the dispatcher: checkpoint at the next quantum boundary
    preempt_flag: bool = False
    #: true once checkpointed at least once (pays restore on regrant)
    preempted: bool = False
    ready_since: float = 0.0
    preemptions: int = 0
    #: checkpoint migrations survived (chaos mode)
    migrations: int = 0
    #: the PRR slot of the most recent grant (chaos migration wait)
    last_slot: int | None = None

    def __post_init__(self) -> None:
        self.remaining = self.work


@dataclass
class TenantOutcome:
    """Per-tenant accounting over one service run."""

    name: str
    priority: int
    slo_latency: float
    arrived: int = 0
    #: admission verdicts: admit / queue / shed
    decisions: dict[str, int] = field(default_factory=dict)
    #: shed reasons: rate_limit / queue_full / overload / fault /
    #: brownout / power_cap
    shed: dict[str, int] = field(default_factory=dict)
    completed: int = 0
    preemptions: int = 0
    #: checkpoint migrations off failed PRR slots (chaos mode)
    migrations: int = 0
    configs: int = 0
    #: admitted requests still queued or running at run end
    in_flight: int = 0
    #: arrival-to-completion latency per completed request
    latencies: list[float] = field(default_factory=list)
    backlog_peak: int = 0

    @property
    def shed_total(self) -> int:
        """Requests shed across all reasons."""
        return sum(self.shed.values())


@dataclass
class ServiceResult:
    """Aggregate outcome of one service run."""

    tenants: list[TenantOutcome]
    makespan: float
    horizon: float
    timeline: Timeline
    fills: int
    cache_hits: int
    cache_misses: int
    retired: list[int]
    decision_epochs: dict[str, dict[str, dict[str, int]]]
    interrupted: str | None = None
    notes: dict[str, float] = field(default_factory=dict)
    #: chaos-runtime logs (outages, breakers, brownout); None when unarmed
    chaos: dict | None = None

    @property
    def total_arrived(self) -> int:
        """Requests that arrived across all tenants."""
        return sum(t.arrived for t in self.tenants)

    @property
    def total_completed(self) -> int:
        """Requests that completed across all tenants."""
        return sum(t.completed for t in self.tenants)

    @property
    def total_shed(self) -> int:
        """Requests shed across all tenants and reasons."""
        return sum(t.shed_total for t in self.tenants)

    @property
    def total_in_flight(self) -> int:
        """Admitted requests still pending at run end."""
        return sum(t.in_flight for t in self.tenants)


class _Waiter:
    """A queued grant request plus its wakeup signal."""

    __slots__ = ("req", "signal")

    def __init__(self, req: Request, signal: Any) -> None:
        self.req = req
        self.signal = signal


class _ChaosRuntime:
    """The armed chaos machinery of one :class:`ServiceExecutor`.

    Owns the failure-domain topology, the per-domain circuit breakers,
    the optional brownout controller, and the per-slot outage state the
    scripted :meth:`outage_proc` processes drive.  Slot outages are
    refcounted so overlapping events compose, and a darkened slot only
    returns to rotation once its (state-lost) resident has actually been
    evicted — never with a stale configuration still resident.

    Created only for a non-inert spec; every hook in the executor is
    behind ``if self._chaos is not None``, so an unarmed run stays on
    the exact historical code path.
    """

    def __init__(self, executor: "ServiceExecutor", spec: Any) -> None:
        self.ex = executor
        self.spec = spec
        self.sim = executor.sim
        n_slots = executor.cache.slots
        self.topology = DomainTopology.build(n_slots, spec.blades)
        for event in spec.events:
            self.topology.domain(event.domain)  # fail fast on typos
        self.rng = resolve_rng(spec.seed)
        self.breakers: dict[str, CircuitBreaker] = {}
        if spec.breakers_enabled:
            self.breakers = {
                name: CircuitBreaker(
                    name,
                    threshold=spec.breaker_threshold,
                    cooldown=spec.breaker_cooldown,
                    probe_jitter=spec.breaker_probe_jitter,
                    rng=self.rng,
                )
                for name in sorted(self.topology.domains)
            }
        #: the breaker guarding the (single) configuration path
        self.config_breaker = self.breakers.get("icap0")
        self.brownout: BrownoutController | None = None
        if spec.brownout_enabled:
            self.brownout = BrownoutController(
                enter_p99=spec.brownout_enter_p99,
                exit_p99=spec.brownout_exit_p99,
                enter_shed=spec.brownout_enter_shed,
                exit_shed=spec.brownout_exit_shed,
                window=spec.brownout_window,
                min_samples=spec.brownout_min_samples,
                hold=spec.brownout_hold,
                max_shed_priority=spec.brownout_max_shed_priority,
                quantum_stretch=spec.brownout_quantum_stretch,
            )
        #: slot -> {"count", "evicted", "signal"} refcounted outage state
        self._slot_state: dict[int, dict[str, Any]] = {}
        #: nested config-blocking outages currently live
        self._config_block_level = 0
        self._config_signal: Any = None
        #: outage log: domain, failed_at, recovered_at, slots, blocks
        self.outages: list[dict[str, Any]] = []
        #: ``(slot, time)`` when a slot actually returned to rotation
        self.restorations: list[dict[str, Any]] = []

    # -- config-path blocking ---------------------------------------------

    @property
    def config_blocked(self) -> bool:
        """True while any live outage blocks the configuration path."""
        return self._config_block_level > 0

    def config_wait(self) -> Any:
        """The level signal fired when the configuration path returns."""
        if self._config_signal is None:
            self._config_signal = self.sim.signal(
                name="chaos-config-block"
            )
        return self._config_signal

    # -- slot outage state -------------------------------------------------

    def _slot_fail(self, slot: int) -> None:
        """One outage now covers ``slot``; darken it on the first."""
        st = self._slot_state.get(slot)
        if st is None:
            st = {"count": 0, "evicted": True, "signal": None}
            self._slot_state[slot] = st
        st["count"] += 1
        if st["count"] == 1:
            self.ex.fabric.block_slot(slot)
            if st["evicted"]:
                # No evictor still draining a previous outage: start one.
                st["evicted"] = False
                st["signal"] = self.sim.signal(
                    name=f"chaos-evicted:prr{slot}"
                )
                self.sim.spawn(
                    self._evict_slot(slot, st),
                    name=f"chaos-evict:prr{slot}",
                )

    def _slot_recover(self, slot: int) -> None:
        """One outage over ``slot`` ended; maybe return it to rotation."""
        st = self._slot_state[slot]
        st["count"] -= 1
        if st["count"] == 0:
            self._maybe_unblock(slot, st)

    def _maybe_unblock(self, slot: int, st: dict[str, Any]) -> None:
        """Unblock ``slot`` once recovered *and* drained of stale state."""
        if st["count"] == 0 and st["evicted"]:
            self.ex.fabric.unblock_slot(slot)
            self.restorations.append(
                {"slot": slot, "time": self.sim.now}
            )
            self.ex._dispatch()

    def _evict_slot(
        self, slot: int, st: dict[str, Any]
    ) -> Generator[Any, Any, None]:
        """Drain the darkened slot's resident (its state died with it).

        Mirrors :meth:`~repro.rtr.multitask.PrrFabric.retire_slot`'s
        victim loop: waits out an in-flight configuration, then waits
        for every pin to drop (granted requests migrate off the slot at
        their next quantum boundary), then evicts.  Fires the outage
        state's signal so migrated requests waiting to re-queue know the
        residency is gone.
        """
        fabric = self.ex.fabric
        cache = fabric.cache
        while True:
            victim = next(
                (
                    m
                    for m, s in list(cache._residents.items())
                    if s == slot
                ),
                None,
            )
            if victim is None:
                break
            if victim in fabric.configuring:
                yield fabric.configuring[victim]
                continue
            if victim in fabric.busy_modules:
                sig = self.sim.signal(name=f"chaos-unpin:prr{slot}")
                fabric._unpin_waiters.append(sig)
                yield sig
                continue
            cache.evict(victim)
            break
        st["evicted"] = True
        st["signal"].succeed()
        self._maybe_unblock(slot, st)

    def migration_wait(self, slot: int | None) -> Any:
        """What a migrated request should wait on before re-queueing.

        Returns the slot's eviction signal while its stale resident is
        still being drained (so the request cannot synchronously bounce
        back onto the dead residency), or ``None`` once the slot is
        clean.
        """
        if slot is None:
            return None
        st = self._slot_state.get(slot)
        if st is None or st["evicted"]:
            return None
        return st["signal"]

    # -- the scripted outage processes ------------------------------------

    def outage_proc(self, event: Any) -> Generator[Any, Any, None]:
        """Fail ``event.domain`` at its scripted time, recover later."""
        yield self.ex._boot.done
        if event.time:
            yield Delay(event.time)
        now = self.sim.now
        closure = self.topology.closure(event.domain)
        entry = {
            "domain": event.domain,
            "failed_at": now,
            "recovered_at": None,
            "slots": [],
            "blocks_config": self.topology.blocks_config(event.domain),
        }
        self.outages.append(entry)
        for name in closure:
            breaker = self.breakers.get(name)
            if breaker is not None:
                breaker.force_open(now)
        slots = [
            s
            for s in self.topology.slots_down(event.domain)
            if s not in self.ex.fabric.retired
        ]
        entry["slots"] = slots
        for slot in slots:
            self._slot_fail(slot)
        if entry["blocks_config"]:
            self._config_block_level += 1
        yield Delay(event.duration)
        now = self.sim.now
        if entry["blocks_config"]:
            self._config_block_level -= 1
            if self._config_block_level == 0 and (
                self._config_signal is not None
            ):
                sig, self._config_signal = self._config_signal, None
                sig.succeed()
        for slot in slots:
            self._slot_recover(slot)
        for name in closure:
            breaker = self.breakers.get(name)
            if breaker is not None:
                breaker.force_release(now)
        entry["recovered_at"] = now
        self.ex._dispatch()

    def as_dict(self) -> dict[str, Any]:
        """JSON-safe chaos logs for the :class:`ServiceResult`."""
        return {
            "outages": [dict(e) for e in self.outages],
            "restorations": [dict(r) for r in self.restorations],
            "breakers": {
                name: breaker.as_dict()
                for name, breaker in sorted(self.breakers.items())
                if breaker.transitions
            },
            "brownout": (
                None if self.brownout is None else self.brownout.as_dict()
            ),
        }


class ServiceExecutor:
    """Run a tenant mix as an open service on one PRR node."""

    def __init__(
        self,
        tenants: Sequence[TenantSpec],
        config: ServiceConfig,
        *,
        seed: int = 0,
    ) -> None:
        if not tenants:
            raise ValueError("need at least one tenant")
        names = [t.name for t in tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names: {names}")
        self.tenants = list(tenants)
        self.config = config
        self.seed = seed
        floorplan = (
            uniform_prr_floorplan(config.prrs, 12) if config.prrs else None
        )
        injector = (
            FaultInjector(config.fault)
            if config.fault is not None and not config.fault.fault_free
            else None
        )
        self.node = make_node(floorplan, fault_injector=injector)
        self.sim = self.node.sim
        self.control_time = self.node.params.control_time
        self.timeline = Timeline()
        self.cache = ConfigCache(
            slots=self.node.floorplan.n_prrs, policy=LruPolicy()
        )
        self.fabric = PrrFabric(self.node, self.cache, self.timeline)
        self.admission = AdmissionController(tenants, config)
        self.stats = {
            t.name: TenantOutcome(
                name=t.name, priority=t.priority, slo_latency=t.slo_latency
            )
            for t in tenants
        }
        # -- grant state --------------------------------------------------
        self._granted = 0
        #: min-heap of (static rank, seq, waiter) — see _static_rank
        self._waiting: list[tuple[float, int, _Waiter]] = []
        self._running: list[Request] = []
        self._backlog: dict[str, int] = {t.name: 0 for t in tenants}
        #: incrementally maintained census over the waiter heap, so
        #: admission decisions cost O(active tenants), not O(all tenants)
        self._backlog_total = 0
        self._backlog_by_priority: dict[int, int] = {}
        self._seq = 0
        self._boot: Any = None
        # -- chaos runtime (armed only for a non-inert spec) --------------
        self._chaos: _ChaosRuntime | None = None
        if config.chaos is not None and not config.chaos.inert:
            self._chaos = _ChaosRuntime(self, config.chaos)

    # -- grant machinery ---------------------------------------------------

    def _capacity(self) -> int:
        """Concurrent grants allowed right now (active PRR slots)."""
        return self.fabric.active_slots

    def _grant_free(self) -> bool:
        """Would a grant be issued immediately (no queueing)?"""
        return not self._waiting and self._granted < self._capacity()

    def _power_capped(self) -> bool:
        """Would admitting one more request breach the power budget?

        The projection is pessimistic-but-simple: the floorplan's static
        draw plus one dynamic-task increment per *granted* request,
        counting the candidate — clamped at the PRR count, because the
        fabric can never draw more than all PRRs busy and an arrival
        beyond that merely queues (its PRR is not powered on its behalf
        yet).  A cap at or above the all-busy draw is therefore inert.
        No cap configured — the default — means the check is inert and
        admission behaves exactly as before the power model existed.
        """
        cap = self.config.power_cap_w
        if cap is None:
            return False
        model = current_model()
        busy = min(self._granted + 1, self.node.floorplan.n_prrs)
        projected = (
            self.node.floorplan.static_power_w(model)
            + busy * model.dynamic_task_w
        )
        return projected > cap

    def _effective_priority(self, req: Request, now: float) -> float:
        """Static priority plus aging for time spent waiting."""
        return req.priority + self.config.aging_rate * (
            now - req.ready_since
        )

    def _static_rank(self, req: Request) -> float:
        """Heap key ordering waiters identically to aged priority.

        Effective priority at any dispatch instant ``t`` is
        ``p + aging_rate * (t - ready_since)``; the ``aging_rate * t``
        term is common to every waiter, so comparing
        ``aging_rate * ready_since - p`` (ascending) picks the same
        winner as comparing aged priorities (descending) — without
        recomputing anything per tick for idle waiters.
        """
        return (
            self.config.aging_rate * req.ready_since - req.priority
        )

    def _acquire_grant(self, req: Request) -> Generator[Any, Any, None]:
        """Take a grant, waiting in the priority queue if none is free.

        The fast path returns without yielding so an uncontended
        request adds no DES events (the reduction-identity invariant).
        """
        if self._grant_free():
            self._granted += 1
            return
        req.ready_since = self.sim.now
        sig = self.sim.signal(name=f"grant:{req.tenant}#{req.seq}")
        heapq.heappush(
            self._waiting,
            (self._static_rank(req), req.seq, _Waiter(req, sig)),
        )
        stats = self.stats[req.tenant]
        self._backlog[req.tenant] += 1
        self._backlog_total += 1
        self._backlog_by_priority[req.priority] = (
            self._backlog_by_priority.get(req.priority, 0) + 1
        )
        stats.backlog_peak = max(
            stats.backlog_peak, self._backlog[req.tenant]
        )
        self._flag_preemption(req)
        yield sig

    def _release_grant(self) -> None:
        """Return a grant and hand it to the best waiter, if any."""
        self._granted -= 1
        self._dispatch()

    def _dispatch(self) -> None:
        """Grant waiting requests while capacity is free.

        Pops the heap's best static rank — identical to picking the
        maximum effective priority (aging included) tie-broken by global
        arrival order, a total, deterministic order — in O(log waiters).
        """
        while self._waiting and self._granted < self._capacity():
            _, _, best = heapq.heappop(self._waiting)
            self._backlog[best.req.tenant] -= 1
            self._backlog_total -= 1
            pr = best.req.priority
            self._backlog_by_priority[pr] -= 1
            if not self._backlog_by_priority[pr]:
                del self._backlog_by_priority[pr]
            self._granted += 1
            best.signal.succeed()

    def _higher_pending(self, priority: int) -> bool:
        """Any waiter with strictly higher static priority queued?

        Answered from the incrementally maintained per-priority census:
        O(distinct queued priorities), independent of tenant count.
        """
        return any(p > priority for p in self._backlog_by_priority)

    def _flag_preemption(self, waiter: Request) -> None:
        """Mark the weakest running request for checkpointing.

        Only when preemption is on, no grant is free, and the waiter
        strictly outranks the weakest running request's *static*
        priority (running tasks do not age).
        """
        if not self.config.preemption or not self._running:
            return
        if self._granted < self._capacity():
            return
        victim = min(self._running, key=lambda r: (r.priority, r.seq))
        if victim.preempt_flag:
            return
        if self._effective_priority(waiter, self.sim.now) > victim.priority:
            victim.preempt_flag = True

    # -- request execution -------------------------------------------------

    def _quantum(self) -> float:
        """The current slice width (brownout stretches it under chaos)."""
        if self._chaos is not None and self._chaos.brownout is not None:
            return self.config.quantum * self._chaos.brownout.stretch()
        return self.config.quantum

    def _run_granted(self, req: Request) -> Generator[Any, Any, str]:
        """Execute one granted request slice on the fabric.

        Returns ``"done"``, ``"preempted"`` (checkpointed at a quantum
        boundary), ``"fault"`` (reconfiguration failed
        ``max_config_attempts`` times) or ``"migrated"`` (chaos mode:
        the request's PRR slot went dark, its state died with it, and it
        must restore its last checkpoint on a surviving slot).
        """
        owner = f"{req.tenant}#{req.seq}"
        fabric = self.fabric
        chaos = self._chaos
        fabric.pin(req.module)
        try:
            if chaos is not None:
                # A dark configuration path gates misses only: already
                # resident modules keep computing through an ICAP outage.
                while chaos.config_blocked and not self.cache.contains(
                    req.module
                ):
                    yield chaos.config_wait()
                ok, hit = yield from config_attempts(
                    self.sim,
                    lambda: fabric.ensure_resident(req.module, owner),
                    max_attempts=self.config.max_config_attempts,
                    backoff=chaos.spec.config_retry_backoff,
                    breaker=chaos.config_breaker,
                )
            else:
                ok, hit = yield from config_attempts(
                    self.sim,
                    lambda: fabric.ensure_resident(req.module, owner),
                    max_attempts=self.config.max_config_attempts,
                )
            if not ok:
                return "fault"
            if not hit:
                self.stats[req.tenant].configs += 1
            slot = self.cache.slot_of(req.module)
            req.last_slot = slot
            if chaos is not None and slot in fabric.blocked_slots:
                return "migrated"
            yield from fabric.prr_mutexes[slot].acquire(owner)
            try:
                if chaos is not None and slot in fabric.blocked_slots:
                    return "migrated"
                if req.preempted and self.config.restore_cost:
                    yield Delay(self.config.restore_cost)
                if self.control_time:
                    yield Delay(self.control_time)
                t0 = self.sim.now
                migrated = False
                if not self.config.preemption and chaos is None:
                    yield Delay(req.remaining)
                    req.remaining = 0.0
                else:
                    # Chaos mode slices even with preemption off: each
                    # completed quantum is the task's implicit
                    # checkpoint, so a slot loss costs at most one
                    # quantum of re-execution.
                    while req.remaining > _EPS:
                        step = min(self._quantum(), req.remaining)
                        yield Delay(step)
                        if chaos is not None and (
                            slot in fabric.blocked_slots
                        ):
                            migrated = True
                            break
                        req.remaining -= step
                        if req.preempt_flag and req.remaining > _EPS:
                            break
                self.timeline.add(
                    Phase.TASK, t0, self.sim.now, task=req.module,
                    lane=f"prr{slot}", note=req.tenant,
                )
                if migrated:
                    return "migrated"
                if req.remaining > _EPS:
                    if self.config.checkpoint_cost:
                        yield Delay(self.config.checkpoint_cost)
                    return "preempted"
                return "done"
            finally:
                fabric.prr_mutexes[slot].release(owner)
        finally:
            fabric.unpin(req.module)

    def _lifecycle(self, req: Request) -> Generator[Any, Any, None]:
        """Grant / execute / re-queue loop for one admitted request."""
        while True:
            yield from self._acquire_grant(req)
            self._running.append(req)
            try:
                outcome = yield from self._run_granted(req)
            finally:
                self._running.remove(req)
            self._release_grant()
            if outcome == "done":
                self._complete(req)
                return
            if outcome == "fault":
                self._shed_admitted(req, "fault")
                return
            if outcome == "migrated":
                # The slot died under the request: its state is gone,
                # progress reverts to the last quantum boundary, and it
                # re-queues to restore on a surviving slot (paying
                # restore_cost and any reconfiguration on regrant).
                req.preempt_flag = False
                req.preempted = True
                req.migrations += 1
                self.stats[req.tenant].migrations += 1
                obsm.counter("repro_chaos_migrations_total").inc(
                    tenant=req.tenant
                )
                sig = self._chaos.migration_wait(req.last_slot)
                if sig is not None:
                    # Wait for the dead slot's stale residency to drain
                    # so re-entry cannot synchronously land back on it.
                    yield sig
                else:
                    yield Delay(0.0)
                continue
            req.preempt_flag = False
            req.preempted = True
            req.preemptions += 1
            self.stats[req.tenant].preemptions += 1
            obsm.counter("repro_service_preemptions_total").inc(
                tenant=req.tenant
            )

    def _complete(self, req: Request) -> None:
        """Completion bookkeeping: latency, SLO inputs, metrics."""
        stats = self.stats[req.tenant]
        stats.completed += 1
        stats.in_flight -= 1
        latency = self.sim.now - req.arrival
        stats.latencies.append(latency)
        obsm.counter("repro_service_completions_total").inc(
            tenant=req.tenant
        )
        obsm.histogram("repro_service_latency_seconds").observe(
            latency, tenant=req.tenant
        )
        if self._chaos is not None and self._chaos.brownout is not None:
            self._chaos.brownout.observe_completion(self.sim.now, latency)

    def _shed_admitted(self, req: Request, reason: str) -> None:
        """Shed a request that had already been admitted."""
        stats = self.stats[req.tenant]
        stats.in_flight -= 1
        stats.shed[reason] = stats.shed.get(reason, 0) + 1
        self.admission.shed_post_admission(req.tenant, self.sim.now, reason)
        if self._chaos is not None and self._chaos.brownout is not None:
            self._chaos.brownout.observe_shed(self.sim.now)

    # -- arrival sources ---------------------------------------------------

    def _admit(self, spec: TenantSpec, module: str, work: float) -> Request | None:
        """Run one arrival through admission; returns the admitted request.

        ``None`` means the arrival was shed (already accounted).
        """
        stats = self.stats[spec.name]
        stats.arrived += 1
        brownout = (
            self._chaos.brownout if self._chaos is not None else None
        )
        decision = self.admission.decide(
            spec.name,
            self.sim.now,
            backlog_of=lambda name: self._backlog[name],
            total_backlog=self._backlog_total,
            grant_free=self._grant_free(),
            higher_pending=self._higher_pending,
            brownout_shed=(
                brownout is not None
                and brownout.should_shed(spec.priority)
            ),
            power_capped=self._power_capped(),
        )
        stats.decisions[decision.verdict] = (
            stats.decisions.get(decision.verdict, 0) + 1
        )
        if decision.verdict == "shed":
            stats.shed[decision.reason] = (
                stats.shed.get(decision.reason, 0) + 1
            )
            if brownout is not None:
                brownout.observe_shed(self.sim.now)
            return None
        self._seq += 1
        stats.in_flight += 1
        return Request(
            tenant=spec.name,
            seq=self._seq,
            arrival=self.sim.now,
            module=module,
            work=work,
            priority=spec.priority,
        )

    def _open_source(
        self, spec: TenantSpec, rng: Any
    ) -> Generator[Any, Any, None]:
        """Generate one open tenant's arrivals until the horizon."""
        yield self._boot.done
        t0 = self.sim.now
        for arrival in request_stream(spec, self.config.horizon, rng):
            target = t0 + arrival.time
            if target > self.sim.now:
                yield Delay(target - self.sim.now)
            req = self._admit(spec, arrival.module, arrival.work)
            if req is None:
                continue
            self.sim.spawn(
                self._lifecycle(req), name=f"req:{req.tenant}#{req.seq}"
            )

    def _closed_source(self, spec: TenantSpec) -> Generator[Any, Any, None]:
        """Replay a closed tenant's trace, one call at a time.

        The next call is issued when the previous completes — the
        multitask closed loop, admission and grants permitting.
        """
        yield self._boot.done
        for call in spec.trace:  # type: ignore[union-attr]
            req = self._admit(spec, call.name, call.task.time)
            if req is None:
                continue
            yield from self._lifecycle(req)

    def _degrade_proc(
        self, delay: float, slot: int
    ) -> Generator[Any, Any, None]:
        """Retire one PRR slot ``delay`` seconds after service boot."""
        yield self._boot.done
        if delay:
            yield Delay(delay)
        yield from self.fabric.retire_slot(slot)

    def _startup(self) -> Generator[Any, Any, None]:
        """Initial full configuration loading the static design."""
        t0 = self.sim.now
        yield Delay(self.node.full_config_time())
        self.timeline.add(Phase.CONFIG, t0, self.sim.now,
                          note="initial full")

    # -- the run -----------------------------------------------------------

    def run(self) -> ServiceResult:
        """Execute the service to drain (or watchdog interruption)."""
        sim = self.sim
        start = sim.now
        self._boot = sim.spawn(self._startup(), name="startup")
        master = resolve_rng(self.seed)
        for index, spec in enumerate(self.tenants):
            if spec.arrival == "closed":
                sim.spawn(
                    self._closed_source(spec), name=f"src:{spec.name}"
                )
            else:
                sim.spawn(
                    self._open_source(spec, tenant_rng(master, index)),
                    name=f"src:{spec.name}",
                )
        for delay, slot in self.config.degrade_at:
            sim.spawn(
                self._degrade_proc(delay, slot),
                name=f"degrade:prr{slot}",
            )
        if self._chaos is not None:
            for idx, event in enumerate(self._chaos.spec.events):
                sim.spawn(
                    self._chaos.outage_proc(event),
                    name=f"chaos:{event.domain}#{idx}",
                )
        watchdog = Watchdog(
            max_events=self.config.max_events,
            stall_events=self.config.stall_events,
        ).start(sim)
        sim.watchdog = watchdog
        interrupted: str | None = None
        try:
            sim.run()
        except WatchdogExpired as exc:
            interrupted = str(exc)
        finally:
            sim.watchdog = None
        if interrupted is None:
            self.fabric.assert_no_overlap()
        for spec in self.tenants:
            obsm.gauge("repro_service_backlog_peak").set(
                self.stats[spec.name].backlog_peak, tenant=spec.name
            )
        return ServiceResult(
            tenants=[self.stats[t.name] for t in self.tenants],
            makespan=sim.now - start,
            horizon=self.config.horizon,
            timeline=self.timeline,
            fills=self.fabric.fills,
            cache_hits=self.cache.stats.hits,
            cache_misses=self.cache.stats.misses,
            retired=sorted(self.fabric.retired),
            decision_epochs=self.admission.epochs_as_dict(),
            interrupted=interrupted,
            notes={
                "t_config_full": self.node.full_config_time(),
                "hit_ratio": self.cache.stats.hit_ratio,
                "events": float(sim.events_processed),
            },
            chaos=(
                None if self._chaos is None else self._chaos.as_dict()
            ),
        )


def run_service(
    tenants: Sequence[TenantSpec],
    config: ServiceConfig,
    *,
    seed: int = 0,
) -> ServiceResult:
    """Run one service realization; audited by the caller."""
    return ServiceExecutor(tenants, config, seed=seed).run()
