"""Per-tenant SLO reporting: latency percentiles, fairness, shed rates.

The report is the service's contract surface: for each tenant the
latency tail (p50/p99/p999 by the nearest-rank method, so a reported
percentile is always an actually observed latency), the shed rate, and
the SLO-violation rate — a violation being a request that either
completed later than the tenant's ``slo_latency`` or was shed outright.
Service-wide, Jain's fairness index over per-tenant completions captures
how evenly capacity was shared.

Everything here is pure arithmetic over a
:class:`~repro.service.scheduler.ServiceResult`; :func:`report_json`
renders the canonical byte form (sorted keys, fixed float formatting via
``repr``-stable Python floats) used by the determinism and
kill-and-resume tests.
"""

from __future__ import annotations

import json
import math
from typing import Any, Sequence

from .scheduler import ServiceResult, TenantOutcome

__all__ = [
    "jain_fairness",
    "percentile",
    "render_report",
    "report_json",
    "slo_report",
]


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of ``values`` (``q`` in [0, 100]).

    Returns ``nan`` for an empty sample — the caller decides how to
    render "no data", arithmetic never invents one.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile out of range: {q}")
    if not values:
        return math.nan
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


def jain_fairness(values: Sequence[float]) -> float:
    """Jain's fairness index ``(sum x)^2 / (n * sum x^2)``.

    1.0 is perfectly even, ``1/n`` maximally skewed.  Empty or all-zero
    allocations count as perfectly fair (nothing was allocated
    unevenly).
    """
    if not values:
        return 1.0
    total = sum(values)
    squares = sum(v * v for v in values)
    if squares == 0:
        return 1.0
    return (total * total) / (len(values) * squares)


def _tenant_report(outcome: TenantOutcome) -> dict[str, Any]:
    """The per-tenant slice of the SLO report."""
    lat = outcome.latencies
    late = sum(1 for v in lat if v > outcome.slo_latency)
    violations = late + outcome.shed_total
    arrived = outcome.arrived
    return {
        "priority": outcome.priority,
        "arrived": arrived,
        "completed": outcome.completed,
        "shed": dict(sorted(outcome.shed.items())),
        "shed_total": outcome.shed_total,
        "in_flight": outcome.in_flight,
        "decisions": dict(sorted(outcome.decisions.items())),
        "preemptions": outcome.preemptions,
        "migrations": outcome.migrations,
        "configs": outcome.configs,
        "backlog_peak": outcome.backlog_peak,
        # An empty sample serializes as null, not NaN: RFC 8259 has no
        # NaN token, so a zero-completion tenant must not poison the
        # canonical report JSON for strict parsers.
        "latency": {
            "p50": percentile(lat, 50.0) if lat else None,
            "p99": percentile(lat, 99.0) if lat else None,
            "p999": percentile(lat, 99.9) if lat else None,
            "mean": (sum(lat) / len(lat)) if lat else None,
            "max": max(lat) if lat else None,
        },
        "slo_latency": outcome.slo_latency,
        "slo_violations": violations,
        "slo_violation_rate": (violations / arrived) if arrived else 0.0,
        "shed_rate": (outcome.shed_total / arrived) if arrived else 0.0,
    }


def slo_report(result: ServiceResult) -> dict[str, Any]:
    """The full SLO report for one service run, as a plain dict."""
    return {
        "makespan": result.makespan,
        "horizon": result.horizon,
        "interrupted": result.interrupted,
        "fills": result.fills,
        "cache_hits": result.cache_hits,
        "cache_misses": result.cache_misses,
        "retired_slots": list(result.retired),
        "totals": {
            "arrived": result.total_arrived,
            "completed": result.total_completed,
            "shed": result.total_shed,
            "in_flight": result.total_in_flight,
        },
        "fairness_jain": jain_fairness(
            [float(t.completed) for t in result.tenants]
        ),
        "tenants": {t.name: _tenant_report(t) for t in result.tenants},
    }


def report_json(report: dict[str, Any]) -> str:
    """Canonical byte form of a report: sorted keys, no whitespace games.

    Strict RFC 8259 output: empty-sample statistics are ``None`` in the
    report (see :func:`slo_report`) and serialize as ``null``;
    ``allow_nan=False`` guarantees a non-finite float can never slip a
    bare ``NaN``/``Infinity`` token — invalid JSON — into the canonical
    bytes again.
    """
    return json.dumps(report, sort_keys=True, indent=2, allow_nan=False)


def _fmt(value: float | None) -> str:
    """Human cell: millisecond precision, dash for no-data.

    ``None`` (an empty-sample statistic from :func:`slo_report`) and
    ``nan`` (raw :func:`percentile` output) both mean "no data".
    """
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return "-"
    return f"{value:.4f}"


def render_report(report: dict[str, Any]) -> str:
    """Human-readable table view of :func:`slo_report` output."""
    lines = [
        f"service run: makespan={report['makespan']:.4f}s "
        f"horizon={report['horizon']:.1f}s "
        f"fills={report['fills']} "
        f"jain={report['fairness_jain']:.4f}"
        + (
            f"  [INTERRUPTED: {report['interrupted']}]"
            if report["interrupted"]
            else ""
        ),
        f"totals: arrived={report['totals']['arrived']} "
        f"completed={report['totals']['completed']} "
        f"shed={report['totals']['shed']} "
        f"in_flight={report['totals']['in_flight']}",
    ]
    if report["retired_slots"]:
        lines.append(f"retired PRR slots: {report['retired_slots']}")
    header = (
        f"{'tenant':<10} {'pri':>3} {'arrived':>8} {'done':>8} "
        f"{'shed':>6} {'p50':>9} {'p99':>9} {'p999':>9} "
        f"{'viol%':>7} {'shed%':>7}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    # Sort explicitly: a journal round trip alphabetizes dict keys, and
    # the rendering must not depend on which side it came from.
    ordered = sorted(
        report["tenants"].items(),
        key=lambda kv: (-kv[1]["priority"], kv[0]),
    )
    for name, t in ordered:
        lines.append(
            f"{name:<10} {t['priority']:>3} {t['arrived']:>8} "
            f"{t['completed']:>8} {t['shed_total']:>6} "
            f"{_fmt(t['latency']['p50']):>9} "
            f"{_fmt(t['latency']['p99']):>9} "
            f"{_fmt(t['latency']['p999']):>9} "
            f"{100.0 * t['slo_violation_rate']:>6.2f}% "
            f"{100.0 * t['shed_rate']:>6.2f}%"
        )
    return "\n".join(lines)
