"""Tenant specifications and the service-mode configuration.

A :class:`TenantSpec` is everything the service knows about one tenant:
how its requests arrive (open Poisson/bursty/diurnal streams or a closed
replayed trace), which hardware modules it calls (a weighted
:class:`TaskMix`), how important it is (``priority``, higher wins), what
latency it was promised (``slo_latency``), and how hard the admission
controller may push back (token-bucket ``rate_limit``/``bucket`` and the
bounded ``queue_capacity``).

:class:`ServiceConfig` holds the knobs that belong to the service as a
whole: the arrival horizon, preemption quantum and checkpoint/restore
costs (the preemptive-scheduling cost model), priority aging, the
overload high-water mark, scheduled blade degradations, and the fault
rates forwarded to :class:`~repro.faults.injector.FaultInjector`.

Tenant specs can be loaded from a JSON document (``repro serve
--tenants spec.json``); :func:`default_tenants` provides the built-in
gold/silver/bronze mix used when no spec file is given.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields
from typing import Any, Mapping, Sequence

from ..faults.injector import FaultConfig
from ..workloads.task import CallTrace

__all__ = [
    "ARRIVAL_KINDS",
    "ServiceConfig",
    "TaskMix",
    "TenantSpec",
    "default_tenants",
    "load_tenants",
    "tenant_from_dict",
]

#: supported arrival-process kinds (see :mod:`repro.service.arrivals`)
ARRIVAL_KINDS = ("poisson", "bursty", "diurnal", "closed")


@dataclass(frozen=True)
class TaskMix:
    """One weighted entry of a tenant's hardware-call mix."""

    module: str
    time: float
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.module:
            raise ValueError("task mix module name must be non-empty")
        if self.time <= 0:
            raise ValueError(f"task time must be > 0: {self.module}")
        if self.weight <= 0:
            raise ValueError(f"task weight must be > 0: {self.module}")


@dataclass(frozen=True)
class TenantSpec:
    """One tenant of the service: arrivals, mix, priority and limits.

    Attributes
    ----------
    name:
        Service-unique tenant identifier.
    priority:
        Scheduling priority; *higher* values are more important.  The
        scheduler ages waiting requests (see
        :attr:`ServiceConfig.aging_rate`) so low-priority tenants never
        starve outright.
    arrival:
        One of :data:`ARRIVAL_KINDS`.  Open kinds generate a seeded
        stream until the horizon; ``closed`` replays :attr:`trace`
        call-by-call (each request issued when the previous completes —
        the multitask reduction path).
    rate:
        Long-run mean arrival rate (requests per simulated second) for
        the open kinds.
    burst_factor, burst_on, burst_off:
        Bursty (on/off modulated Poisson) shape: mean on/off phase
        lengths in seconds; arrivals only occur during on-phases, at a
        rate scaled so the long-run mean stays :attr:`rate`.
    period:
        Diurnal cycle length in seconds (sinusoidal rate modulation).
    tasks:
        The weighted hardware-call mix sampled per request (open kinds).
    trace:
        The replayed :class:`~repro.workloads.task.CallTrace` (closed).
    slo_latency:
        Promised arrival-to-completion latency; completions slower than
        this count as SLO violations.
    rate_limit, bucket:
        Token-bucket admission limit: sustained tokens/second and burst
        capacity.  ``rate_limit == 0`` disables the bucket.
    queue_capacity:
        Bound on this tenant's backlog (queued, not-yet-running
        requests); arrivals beyond it are shed with reason
        ``queue_full``.
    """

    name: str
    priority: int = 0
    arrival: str = "poisson"
    rate: float = 1.0
    burst_factor: float = 8.0
    burst_on: float = 5.0
    burst_off: float = 20.0
    period: float = 50.0
    tasks: tuple[TaskMix, ...] = ()
    trace: CallTrace | None = None
    slo_latency: float = 1.0
    rate_limit: float = 0.0
    bucket: float = 1.0
    queue_capacity: int = 64

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if self.arrival not in ARRIVAL_KINDS:
            raise ValueError(
                f"unknown arrival kind {self.arrival!r}; "
                f"expected one of {ARRIVAL_KINDS}"
            )
        if self.arrival == "closed":
            if self.trace is None:
                raise ValueError(
                    f"closed tenant {self.name!r} needs a trace"
                )
        else:
            if not self.tasks:
                raise ValueError(
                    f"open tenant {self.name!r} needs a task mix"
                )
            if self.rate <= 0:
                raise ValueError(
                    f"tenant {self.name!r} rate must be > 0: {self.rate}"
                )
        for f in ("burst_factor", "burst_on", "burst_off", "period"):
            if getattr(self, f) <= 0:
                raise ValueError(f"tenant {self.name!r}: {f} must be > 0")
        if self.slo_latency <= 0:
            raise ValueError(
                f"tenant {self.name!r} slo_latency must be > 0"
            )
        if self.rate_limit < 0:
            raise ValueError(
                f"tenant {self.name!r} rate_limit must be >= 0"
            )
        if self.bucket < 1:
            raise ValueError(
                f"tenant {self.name!r} bucket must be >= 1"
            )
        if self.queue_capacity < 1:
            raise ValueError(
                f"tenant {self.name!r} queue_capacity must be >= 1"
            )

    def as_dict(self) -> dict[str, Any]:
        """JSON-able fingerprint (used as journal meta; trace summarized)."""
        out: dict[str, Any] = {
            "name": self.name,
            "priority": int(self.priority),
            "arrival": self.arrival,
            "rate": float(self.rate),
            "burst_factor": float(self.burst_factor),
            "burst_on": float(self.burst_on),
            "burst_off": float(self.burst_off),
            "period": float(self.period),
            "tasks": [
                [t.module, float(t.time), float(t.weight)]
                for t in self.tasks
            ],
            "slo_latency": float(self.slo_latency),
            "rate_limit": float(self.rate_limit),
            "bucket": float(self.bucket),
            "queue_capacity": int(self.queue_capacity),
        }
        if self.trace is not None:
            out["trace"] = [
                [c.name, float(c.task.time)] for c in self.trace
            ]
        return out


def tenant_from_dict(raw: Mapping[str, Any]) -> TenantSpec:
    """Build a :class:`TenantSpec` from one JSON object.

    Unknown keys raise (typos in a spec file must not silently become
    defaults).  A ``trace`` key (list of ``[module, time]`` pairs)
    builds a closed tenant.
    """
    known = {f.name for f in fields(TenantSpec)}
    unknown = set(raw) - known
    if unknown:
        raise ValueError(
            f"unknown tenant spec key(s): {sorted(unknown)}; "
            f"expected a subset of {sorted(known)}"
        )
    kwargs: dict[str, Any] = dict(raw)
    if "tasks" in kwargs:
        kwargs["tasks"] = tuple(
            TaskMix(*entry) for entry in kwargs["tasks"]
        )
    if "trace" in kwargs and kwargs["trace"] is not None:
        from ..workloads.task import HardwareTask

        calls = kwargs["trace"]
        kwargs["trace"] = CallTrace(
            [HardwareTask(m, float(t)) for m, t in calls],
            name=f"{raw.get('name', 'tenant')}-trace",
        )
    return TenantSpec(**kwargs)


def load_tenants(path: str) -> list[TenantSpec]:
    """Load tenant specs from a JSON file.

    The document is either a list of tenant objects or an object with a
    ``tenants`` list.  Duplicate names raise.
    """
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if isinstance(doc, Mapping):
        doc = doc.get("tenants")
    if not isinstance(doc, Sequence) or not doc:
        raise ValueError(
            f"{path}: expected a non-empty list of tenant objects "
            "(or {'tenants': [...]})"
        )
    tenants = [tenant_from_dict(entry) for entry in doc]
    names = [t.name for t in tenants]
    if len(set(names)) != len(names):
        raise ValueError(f"{path}: duplicate tenant names: {names}")
    return tenants


def default_tenants(task_time: float = 0.05) -> list[TenantSpec]:
    """The built-in gold/silver/bronze mix used without ``--tenants``.

    Three priority tiers over the quickstart module library; rates are
    sized so the combined offered load saturates a dual-PRR node
    (capacity is roughly ``n_prrs / task_time`` requests per second).
    """
    mix = (
        TaskMix("median", task_time, 2.0),
        TaskMix("sobel", task_time, 1.0),
        TaskMix("smoothing", task_time, 1.0),
    )
    return [
        TenantSpec(
            name="gold", priority=2, arrival="poisson", rate=10.0,
            tasks=mix, slo_latency=0.5, rate_limit=20.0, bucket=10,
            queue_capacity=64,
        ),
        TenantSpec(
            name="silver", priority=1, arrival="bursty", rate=8.0,
            tasks=mix, slo_latency=1.0, rate_limit=16.0, bucket=8,
            queue_capacity=48,
        ),
        TenantSpec(
            name="bronze", priority=0, arrival="diurnal", rate=12.0,
            tasks=mix, slo_latency=2.0, queue_capacity=32,
        ),
    ]


@dataclass(frozen=True)
class ServiceConfig:
    """Service-wide knobs (everything that is not per-tenant).

    Attributes
    ----------
    horizon:
        Simulated seconds of open arrivals, measured from service boot
        (the initial full configuration).  At the horizon arrivals stop
        and no new grants are issued; running work drains, queued work
        is reported as in-flight.
    admission:
        Master switch for the admission controller; off means every
        arrival is admitted (pass-through — the reduction path).
    preemption:
        Master switch for preemptive time-sharing.  Off means a granted
        request runs to completion in one slice.
    quantum:
        Preemption check interval: a running task may only be
        checkpointed at multiples of this slice.
    checkpoint_cost, restore_cost:
        Modeled cost of saving a preempted hardware task's state out of
        its PRR and of restoring it on the next grant (paid while the
        PRR is held, per the preemptive-scheduling cost model).
    aging_rate:
        Priority points a *waiting* request gains per simulated second;
        guarantees no tenant starves under sustained overload.
    overload_backlog:
        Total-backlog high-water mark; above it arrivals are shed
        lowest-priority-first (see
        :meth:`~repro.service.admission.AdmissionController.decide`).
    epoch:
        Width (simulated seconds) of the decision-accounting buckets
        journaled with every run.
    degrade_at:
        Scheduled blade degradations: ``(time, slot)`` pairs; at each
        time the PRR slot is retired via
        :meth:`~repro.rtr.multitask.PrrFabric.retire_slot`.
    fault:
        Optional fault rates forwarded to the node's
        :class:`~repro.faults.injector.FaultInjector`.
    max_config_attempts:
        Reconfiguration attempts per request before it is shed with
        reason ``fault``.
    prrs:
        PRR count of the node (uniform floorplan); ``0`` keeps the
        paper's dual-PRR layout.
    power_cap_w:
        Optional node power budget in watts.  When set, an arrival is
        shed with reason ``power_cap`` if granting it would push the
        projected draw — floorplan static power plus one dynamic-task
        increment per concurrently granted request, under the current
        :mod:`repro.power` model — above the cap.  ``None`` (default)
        disables the check entirely, leaving admission byte-identical
        to a power-unaware service.
    max_events, stall_events:
        Watchdog limits armed for every run (the no-deadlock guard).
    chaos:
        Optional :class:`~repro.chaos.spec.ChaosSpec`.  ``None`` — and
        any spec whose ``inert`` property is true — leaves the chaos
        runtime unarmed, keeping the run on the exact plain-serve code
        path.
    """

    horizon: float = 100.0
    admission: bool = True
    preemption: bool = True
    quantum: float = 0.05
    checkpoint_cost: float = 0.002
    restore_cost: float = 0.002
    aging_rate: float = 0.1
    overload_backlog: int = 64
    epoch: float = 10.0
    degrade_at: tuple[tuple[float, int], ...] = ()
    fault: FaultConfig | None = None
    max_config_attempts: int = 3
    prrs: int = 0
    power_cap_w: float | None = None
    max_events: int | None = None
    stall_events: int = field(default=1_000_000)
    #: a :class:`~repro.chaos.spec.ChaosSpec` or None (typed ``Any`` to
    #: keep :mod:`repro.chaos` importable on top of the service layer)
    chaos: Any = None

    def __post_init__(self) -> None:
        if self.horizon <= 0:
            raise ValueError("horizon must be > 0")
        if self.quantum <= 0:
            raise ValueError("quantum must be > 0")
        for f in ("checkpoint_cost", "restore_cost", "aging_rate"):
            if getattr(self, f) < 0:
                raise ValueError(f"{f} must be >= 0")
        if self.overload_backlog < 1:
            raise ValueError("overload_backlog must be >= 1")
        if self.epoch <= 0:
            raise ValueError("epoch must be > 0")
        for t, slot in self.degrade_at:
            if t < 0 or slot < 0:
                raise ValueError(
                    f"degrade_at entries must be (time>=0, slot>=0): "
                    f"({t}, {slot})"
                )
        if self.max_config_attempts < 1:
            raise ValueError("max_config_attempts must be >= 1")
        if self.prrs < 0:
            raise ValueError("prrs must be >= 0 (0 = dual-PRR default)")
        if self.power_cap_w is not None and self.power_cap_w <= 0:
            raise ValueError("power_cap_w must be > 0 (or None to disable)")
        if self.stall_events < 1:
            raise ValueError("stall_events must be >= 1")
        if self.chaos is not None and not hasattr(self.chaos, "as_dict"):
            raise ValueError(
                "chaos must be a ChaosSpec (or None): "
                f"{type(self.chaos).__name__}"
            )

    def as_dict(self) -> dict[str, Any]:
        """JSON-able fingerprint (journal meta).

        ``power_cap_w`` is emitted only when set, so journals written by
        power-unaware services remain resumable byte-for-byte.
        """
        out = {
            "horizon": float(self.horizon),
            "admission": bool(self.admission),
            "preemption": bool(self.preemption),
            "quantum": float(self.quantum),
            "checkpoint_cost": float(self.checkpoint_cost),
            "restore_cost": float(self.restore_cost),
            "aging_rate": float(self.aging_rate),
            "overload_backlog": int(self.overload_backlog),
            "epoch": float(self.epoch),
            "degrade_at": [[float(t), int(s)] for t, s in self.degrade_at],
            "fault": (
                None
                if self.fault is None
                else {
                    "transfer_ber": self.fault.transfer_ber,
                    "chunk_abort_rate": self.fault.chunk_abort_rate,
                    "port_abort_rate": self.fault.port_abort_rate,
                    "seu_rate": self.fault.seu_rate,
                    "seed": self.fault.seed,
                }
            ),
            "max_config_attempts": int(self.max_config_attempts),
            "prrs": int(self.prrs),
            "chaos": (
                None if self.chaos is None else self.chaos.as_dict()
            ),
        }
        if self.power_cap_w is not None:
            out["power_cap_w"] = float(self.power_cap_w)
        return out
