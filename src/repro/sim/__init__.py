"""Discrete-event simulation substrate.

The minimal deterministic DES kernel (:mod:`repro.sim.engine`), shared
resource primitives (:mod:`repro.sim.resources`) and timeline tracing
(:mod:`repro.sim.trace`) on which the hardware and executor models are
built.
"""

from .engine import (
    AllOf,
    Delay,
    EventSignal,
    Process,
    SimulationError,
    Simulator,
    WaitEvent,
)
from .resources import BandwidthChannel, Interval, MutexResource
from .trace import Phase, Span, Timeline

__all__ = [
    "AllOf",
    "BandwidthChannel",
    "Delay",
    "EventSignal",
    "Interval",
    "MutexResource",
    "Phase",
    "Process",
    "SimulationError",
    "Simulator",
    "Span",
    "Timeline",
    "WaitEvent",
]
