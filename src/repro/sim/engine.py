"""Discrete-event simulation (DES) engine.

The whole hardware model in :mod:`repro.hardware` and the reconfiguration
executors in :mod:`repro.rtr` are built on this small, deterministic DES
kernel.  It follows the classic event-list design:

* a :class:`Simulator` owns a monotonically advancing clock and a priority
  queue of :class:`Event` records;
* *processes* are plain Python generators that ``yield`` scheduling
  primitives (:class:`Delay`, :class:`WaitEvent`, :class:`AllOf`) and are
  resumed by the kernel when the corresponding condition is satisfied.

The engine is intentionally synchronous and single-threaded: determinism is
a hard requirement because the analytical model of the paper is exact, and
we validate the simulator against it to float precision.

Example
-------
>>> sim = Simulator()
>>> log = []
>>> def proc(sim):
...     yield Delay(5.0)
...     log.append(sim.now)
>>> _ = sim.spawn(proc(sim))
>>> sim.run()
>>> log
[5.0]
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Delay",
    "WaitEvent",
    "AllOf",
    "EventSignal",
    "Process",
    "Simulator",
    "SimulationError",
]


class SimulationError(RuntimeError):
    """Raised for scheduling violations (negative delays, dead kernels...)."""


@dataclass(frozen=True)
class Delay:
    """Yield from a process to suspend it for ``duration`` simulated time."""

    duration: float

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise SimulationError(f"negative delay: {self.duration!r}")


class EventSignal:
    """A one-shot level-triggered signal processes may wait on.

    Once :meth:`succeed` fires, all current and *future* waiters resume
    immediately (future waiters resume at their wait time, i.e. a wait on an
    already-fired signal is a no-op).  A payload value is delivered to each
    waiter as the value of the ``yield`` expression.
    """

    __slots__ = ("_sim", "_fired", "_value", "_waiters", "name")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self._sim = sim
        self._fired = False
        self._value: Any = None
        self._waiters: list["Process"] = []
        self.name = name

    @property
    def fired(self) -> bool:
        return self._fired

    @property
    def value(self) -> Any:
        if not self._fired:
            raise SimulationError(f"signal {self.name!r} has not fired")
        return self._value

    def succeed(self, value: Any = None) -> None:
        """Fire the signal, resuming every waiter at the current sim time."""
        if self._fired:
            raise SimulationError(f"signal {self.name!r} fired twice")
        self._fired = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            self._sim._schedule(self._sim.now, proc, value)

    def _add_waiter(self, proc: "Process") -> None:
        if self._fired:
            self._sim._schedule(self._sim.now, proc, self._value)
        else:
            self._waiters.append(proc)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "fired" if self._fired else "pending"
        return f"<EventSignal {self.name!r} {state}>"


@dataclass(frozen=True)
class WaitEvent:
    """Yield from a process to suspend it until ``signal`` fires."""

    signal: EventSignal


@dataclass(frozen=True)
class AllOf:
    """Yield from a process to wait until *all* signals have fired."""

    signals: tuple[EventSignal, ...]

    def __init__(self, signals: Iterable[EventSignal]) -> None:
        object.__setattr__(self, "signals", tuple(signals))


class Process:
    """A running generator coroutine inside a :class:`Simulator`.

    The generator yields :class:`Delay` / :class:`WaitEvent` / :class:`AllOf`
    instances (or another :class:`Process` to join it).  When the generator
    returns, :attr:`done` fires with the generator's return value.
    """

    __slots__ = ("sim", "gen", "done", "name", "_pending_join")

    def __init__(
        self,
        sim: "Simulator",
        gen: Generator[Any, Any, Any],
        name: str = "",
    ) -> None:
        self.sim = sim
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "proc")
        self.done = EventSignal(sim, name=f"done:{self.name}")

    @property
    def finished(self) -> bool:
        return self.done.fired

    @property
    def result(self) -> Any:
        return self.done.value

    def _step(self, send_value: Any) -> None:
        try:
            target = self.gen.send(send_value)
        except StopIteration as stop:
            self.done.succeed(stop.value)
            return
        self._dispatch(target)

    def _dispatch(self, target: Any) -> None:
        sim = self.sim
        if isinstance(target, Delay):
            sim._schedule(sim.now + target.duration, self, None)
        elif isinstance(target, WaitEvent):
            target.signal._add_waiter(self)
        elif isinstance(target, Process):
            target.done._add_waiter(self)
        elif isinstance(target, AllOf):
            self._wait_all(target.signals)
        elif isinstance(target, EventSignal):
            target._add_waiter(self)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported {target!r}"
            )

    def _wait_all(self, signals: tuple[EventSignal, ...]) -> None:
        pending = [s for s in signals if not s.fired]
        if not pending:
            self.sim._schedule(self.sim.now, self, None)
            return
        remaining = {"n": len(pending)}
        # Register a lightweight shim implementing the waiter protocol on
        # each pending signal; the last one to fire resumes the parent.
        parent = self

        class _Shim:
            __slots__ = ()

            def _step(self_inner, _value: Any) -> None:
                remaining["n"] -= 1
                if remaining["n"] == 0:
                    parent.sim._schedule(parent.sim.now, parent, None)

        shim = _Shim()
        for sig in pending:
            sig._waiters.append(shim)  # type: ignore[arg-type]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "done" if self.finished else "running"
        return f"<Process {self.name!r} {state}>"


class Event:
    """Internal event-queue record; ordered by ``(time, seq)``.

    Hot-path record: ``__slots__`` plus a hand-written ``__lt__`` keep the
    heap sifts free of the tuple churn a ``dataclass(order=True)``
    comparator would pay on every comparison, and instances are pooled by
    the owning :class:`Simulator` so a long run allocates O(heap depth)
    events, not O(events processed).
    """

    __slots__ = ("time", "seq", "proc", "value")

    def __init__(self, time: float, seq: int, proc: Any, value: Any) -> None:
        self.time = time
        self.seq = seq
        self.proc = proc
        self.value = value

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq


#: cap on the simulator's event free-list — bounds pool memory while still
#: covering any realistic heap depth in this codebase
_POOL_LIMIT = 1024


class Simulator:
    """Deterministic single-threaded discrete-event simulator.

    Attributes
    ----------
    now:
        Current simulation time.  Starts at ``0.0`` and never decreases.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: list[Event] = []
        #: zero-delay side queue: events scheduled at exactly ``now`` are
        #: drained FIFO without paying two O(log n) heap sifts each.  Any
        #: heap entry at the current time was inserted *before* the clock
        #: reached it, so its seq is smaller than every side-queue entry's
        #: and plain "heap first on time ties" preserves (time, seq) order.
        self._zero: deque[tuple[int, Any, Any]] = deque()
        self._next_seq = 0
        self._pool: list[Event] = []
        self._running = False
        self._event_count = 0
        #: optional cancellation hook (:class:`repro.runtime.watchdog.
        #: Watchdog`-shaped: ``after_event(sim)`` raising to cancel);
        #: duck-typed so the kernel stays dependency-free.  The
        #: :class:`repro.obs.profile.EventProfiler` rides the same slot
        #: (and chains any real watchdog behind it).
        self.watchdog: Any = None
        #: the process the most recent event was dispatched to — what a
        #: watchdog-slot hook (profiler) sees as "the event just run"
        self.last_process: Any = None

    # -- scheduling ------------------------------------------------------

    def _schedule(self, time: float, proc: Any, value: Any) -> None:
        now = self.now
        if time < now:
            raise SimulationError(
                f"cannot schedule in the past: {time} < now={self.now}"
            )
        seq = self._next_seq
        self._next_seq = seq + 1
        if time == now:
            self._zero.append((seq, proc, value))
            return
        pool = self._pool
        if pool:
            ev = pool.pop()
            ev.time = time
            ev.seq = seq
            ev.proc = proc
            ev.value = value
        else:
            ev = Event(time, seq, proc, value)
        heapq.heappush(self._queue, ev)

    def _pop(self) -> Optional[tuple[float, Any, Any]]:
        """The next ``(time, proc, value)`` in (time, seq) order, or None."""
        zero = self._zero
        queue = self._queue
        if zero:
            # Heap entries tied with ``now`` always precede side-queue
            # entries (smaller seq by construction — see __init__).
            if queue and queue[0].time == self.now:
                ev = heapq.heappop(queue)
            else:
                _seq, proc, value = zero.popleft()
                return (self.now, proc, value)
        elif queue:
            ev = heapq.heappop(queue)
        else:
            return None
        out = (ev.time, ev.proc, ev.value)
        ev.proc = None
        ev.value = None
        pool = self._pool
        if len(pool) < _POOL_LIMIT:
            pool.append(ev)
        return out

    def _peek_time(self) -> Optional[float]:
        """The timestamp of the next pending event, or None if drained."""
        if self._zero:
            return self.now
        if self._queue:
            return self._queue[0].time
        return None

    def spawn(
        self, gen: Generator[Any, Any, Any], name: str = ""
    ) -> Process:
        """Register a generator as a process starting at the current time."""
        proc = Process(self, gen, name=name)
        self._schedule(self.now, proc, None)
        return proc

    def signal(self, name: str = "") -> EventSignal:
        """Create a fresh :class:`EventSignal` bound to this simulator."""
        return EventSignal(self, name=name)

    def schedule_at(
        self, time: float, fn: Callable[[], None], name: str = "timer"
    ) -> Process:
        """Run ``fn`` as a one-shot process at absolute time ``time``."""
        if time < self.now:
            raise SimulationError(f"schedule_at past time {time} < {self.now}")

        def timer() -> Generator[Any, Any, None]:
            yield Delay(time - self.now)
            fn()

        return self.spawn(timer(), name=name)

    # -- execution -------------------------------------------------------

    def step(self) -> bool:
        """Process a single event.  Returns ``False`` if the queue is empty."""
        entry = self._pop()
        if entry is None:
            return False
        time, proc, value = entry
        if time < self.now:  # pragma: no cover - guarded at insert
            raise SimulationError("event queue time went backwards")
        self.now = time
        self._event_count += 1
        self.last_process = proc
        proc._step(value)
        return True

    def run(self, until: Optional[float] = None) -> float:
        """Run until the event queue drains (or ``until`` is reached).

        Returns the final simulation time.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        try:
            if until is None and self.watchdog is None:
                # Hot path: no deadline to poll and no per-event hook, so
                # drain without the peek/branch per event.
                while self.step():
                    pass
            else:
                while True:
                    t = self._peek_time()
                    if t is None:
                        break
                    if until is not None and t > until:
                        self.now = until
                        break
                    self.step()
                    if self.watchdog is not None:
                        self.watchdog.after_event(self)
        finally:
            self._running = False
        return self.now

    @property
    def events_processed(self) -> int:
        return self._event_count

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        queued = len(self._queue) + len(self._zero)
        return f"<Simulator now={self.now} queued={queued}>"
