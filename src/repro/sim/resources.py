"""Shared-resource primitives for the DES kernel.

Two resource archetypes cover every piece of hardware we model:

* :class:`MutexResource` — an exclusive-ownership device (a configuration
  port, a memory bank, a PRR).  Requests queue FIFO; holders release
  explicitly.  Acquisition/holding intervals are recorded for trace
  validation (no two holders may ever overlap).

* :class:`BandwidthChannel` — a store-and-forward channel moving *bytes* at
  a fixed rate with an optional fixed per-transfer overhead (an I/O link, a
  configuration interface).  Transfers on the same channel serialize; the
  dual-channel RapidArray link of the Cray XD1 is modeled as two independent
  channels (one per direction).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional

from .engine import Delay, EventSignal, SimulationError, Simulator

__all__ = ["MutexResource", "BandwidthChannel", "Interval"]


@dataclass(frozen=True)
class Interval:
    """A closed-open holding interval ``[start, end)`` on a resource."""

    start: float
    end: float
    owner: str

    def overlaps(self, other: "Interval") -> bool:
        return self.start < other.end and other.start < self.end


class MutexResource:
    """Exclusive resource with FIFO queueing and interval accounting."""

    def __init__(self, sim: Simulator, name: str) -> None:
        self.sim = sim
        self.name = name
        self._holder: Optional[str] = None
        self._acquired_at: float = 0.0
        self._waiters: list[tuple[EventSignal, str]] = []
        self.intervals: list[Interval] = []

    @property
    def busy(self) -> bool:
        return self._holder is not None

    @property
    def holder(self) -> Optional[str]:
        return self._holder

    def acquire(self, owner: str) -> Generator[Any, Any, None]:
        """Process helper: ``yield from resource.acquire("me")``."""
        if self._holder is None:
            self._grant(owner)
            return
        sig = self.sim.signal(name=f"acq:{self.name}:{owner}")
        self._waiters.append((sig, owner))
        yield sig

    def release(self, owner: str) -> None:
        if self._holder != owner:
            raise SimulationError(
                f"{owner!r} released {self.name!r} held by {self._holder!r}"
            )
        self.intervals.append(
            Interval(self._acquired_at, self.sim.now, owner)
        )
        self._holder = None
        if self._waiters:
            sig, next_owner = self._waiters.pop(0)
            self._grant(next_owner)
            sig.succeed()

    def _grant(self, owner: str) -> None:
        self._holder = owner
        self._acquired_at = self.sim.now

    def utilization(self, horizon: Optional[float] = None) -> float:
        """Fraction of ``[0, horizon]`` the resource was held."""
        horizon = self.sim.now if horizon is None else horizon
        if horizon <= 0:
            return 0.0
        held = sum(iv.end - iv.start for iv in self.intervals)
        if self._holder is not None:
            held += self.sim.now - self._acquired_at
        return held / horizon

    def assert_no_overlap(self) -> None:
        """Raise if any two recorded holding intervals overlap."""
        ivs = sorted(self.intervals, key=lambda iv: iv.start)
        for a, b in zip(ivs, ivs[1:]):
            if a.overlaps(b):
                raise SimulationError(
                    f"overlapping holds on {self.name!r}: {a} vs {b}"
                )


class BandwidthChannel:
    """Serializing byte channel: ``time = overhead + nbytes / rate``.

    Parameters
    ----------
    rate:
        Sustained throughput in bytes per unit time.
    overhead:
        Fixed latency added to every transfer (API call cost, DMA setup...).
    injector:
        Optional fault oracle (:class:`repro.faults.FaultInjector`-shaped:
        anything with ``transfer_corrupted(nbytes) -> bool``).  Consulted
        once per :meth:`transfer_ok` call; corrupted transfers still pay
        their full wire time — the bytes moved, they just arrived wrong.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        rate: float,
        overhead: float = 0.0,
        injector: Any | None = None,
    ) -> None:
        if rate <= 0:
            raise ValueError(f"channel rate must be positive: {rate}")
        if overhead < 0:
            raise ValueError(f"channel overhead must be >= 0: {overhead}")
        self.sim = sim
        self.name = name
        self.rate = rate
        self.overhead = overhead
        self.injector = injector
        self._mutex = MutexResource(sim, name=f"{name}.mutex")
        self.bytes_moved: float = 0.0
        self.transfer_count: int = 0
        self.corrupted_count: int = 0

    def transfer_time(self, nbytes: float) -> float:
        """Pure time model for a transfer of ``nbytes`` (no queueing)."""
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        return self.overhead + nbytes / self.rate

    def transfer(
        self, nbytes: float, owner: str
    ) -> Generator[Any, Any, float]:
        """Process helper: move ``nbytes``; returns completion time.

        Ignores fault injection — use :meth:`transfer_ok` for payloads
        whose integrity matters (bitstreams).
        """
        yield from self._mutex.acquire(owner)
        try:
            yield Delay(self.transfer_time(nbytes))
            self.bytes_moved += nbytes
            self.transfer_count += 1
        finally:
            self._mutex.release(owner)
        return self.sim.now

    def transfer_ok(
        self, nbytes: float, owner: str
    ) -> Generator[Any, Any, tuple[float, bool]]:
        """Like :meth:`transfer` but reports integrity.

        Returns ``(completion_time, ok)`` where ``ok`` is ``False`` when
        the channel's fault injector corrupted the payload in flight.
        Timing is identical to :meth:`transfer` in every case.
        """
        t = yield from self.transfer(nbytes, owner)
        ok = True
        if self.injector is not None and self.injector.transfer_corrupted(
            nbytes
        ):
            ok = False
            self.corrupted_count += 1
        return t, ok

    @property
    def intervals(self) -> list[Interval]:
        return self._mutex.intervals

    def utilization(self, horizon: Optional[float] = None) -> float:
        return self._mutex.utilization(horizon)

    def assert_no_overlap(self) -> None:
        self._mutex.assert_no_overlap()
