"""Timeline tracing for simulation runs.

Every executor in :mod:`repro.rtr` records what happened when as a list of
:class:`Span` records (phase name, task, lane, start, end).  The trace is
the simulated analogue of the paper's Figures 2-4 execution profiles and is
what :mod:`repro.analysis.validate` compares against the analytical model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

__all__ = ["Span", "Timeline", "Phase"]


class Phase:
    """Canonical phase names used across the executors (Fig. 2)."""

    SETUP = "setup"            # pre-fetch decision (T_decision)
    CONFIG = "config"          # full or partial (re)configuration
    CONTROL = "control"        # transfer of control (T_control)
    DATA_IN = "data_in"        # host -> FPGA input transfer
    COMPUTE = "compute"        # task computation on the fabric
    DATA_OUT = "data_out"      # FPGA -> host output transfer
    TASK = "task"              # aggregated T_task (data_in+compute+data_out)

    ALL = (SETUP, CONFIG, CONTROL, DATA_IN, COMPUTE, DATA_OUT, TASK)


@dataclass(frozen=True)
class Span:
    """One timed activity on a named lane of the timeline."""

    phase: str
    start: float
    end: float
    lane: str = "main"
    task: str = ""
    note: str = ""

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"span ends before it starts: {self!r}")

    @property
    def duration(self) -> float:
        return self.end - self.start

    def overlaps(self, other: "Span") -> bool:
        return self.start < other.end and other.start < self.end


@dataclass
class Timeline:
    """An append-only collection of :class:`Span` records.

    :class:`Span` itself is frozen, but the ``spans`` *list* is plain
    and therefore aliasable: ``Timeline(spans=shared_list)`` (or module
    callers holding a reference) can mutate a timeline behind its back.
    Use :meth:`merged` for a defensive copy and :meth:`freeze` to make
    a timeline reject further mutation through *this* object while
    decoupling it from any aliased list.
    """

    spans: list[Span] = field(default_factory=list)
    _frozen: bool = field(default=False, repr=False, compare=False)

    def add(
        self,
        phase: str,
        start: float,
        end: float,
        *,
        lane: str = "main",
        task: str = "",
        note: str = "",
    ) -> Span:
        if self._frozen:
            raise TypeError("cannot add spans to a frozen timeline")
        span = Span(phase, start, end, lane=lane, task=task, note=note)
        self.spans.append(span)
        return span

    # -- defensive copies --------------------------------------------------

    @property
    def frozen(self) -> bool:
        return self._frozen

    def freeze(self) -> "Timeline":
        """Make this timeline immutable (idempotent); returns ``self``.

        The span list is copied, so appends through a previously shared
        list no longer reach this timeline — the regression this guards
        is a caller mutating the list a finalized ``RunResult`` holds.
        """
        if not self._frozen:
            self.spans = list(self.spans)
            self._frozen = True
        return self

    def merged(self) -> "Timeline":
        """An independent, mutable copy (spans are shared — frozen)."""
        return Timeline(spans=list(self.spans))

    # -- queries ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self.spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self.spans)

    def by_phase(self, phase: str) -> list[Span]:
        return [s for s in self.spans if s.phase == phase]

    def by_lane(self, lane: str) -> list[Span]:
        return [s for s in self.spans if s.lane == lane]

    def by_task(self, task: str) -> list[Span]:
        return [s for s in self.spans if s.task == task]

    def lanes(self) -> list[str]:
        seen: dict[str, None] = {}
        for s in self.spans:
            seen.setdefault(s.lane, None)
        return list(seen)

    def total(self, phase: Optional[str] = None) -> float:
        """Total (summed, possibly overlapping) duration of a phase."""
        spans = self.spans if phase is None else self.by_phase(phase)
        return sum(s.duration for s in spans)

    def busy_time(self, lane: Optional[str] = None) -> float:
        """Union length of spans on a lane (overlaps counted once)."""
        spans = sorted(
            self.spans if lane is None else self.by_lane(lane),
            key=lambda s: s.start,
        )
        busy = 0.0
        cur_start: Optional[float] = None
        cur_end = 0.0
        for s in spans:
            if cur_start is None:
                cur_start, cur_end = s.start, s.end
            elif s.start <= cur_end:
                cur_end = max(cur_end, s.end)
            else:
                busy += cur_end - cur_start
                cur_start, cur_end = s.start, s.end
        if cur_start is not None:
            busy += cur_end - cur_start
        return busy

    @property
    def makespan(self) -> float:
        if not self.spans:
            return 0.0
        return max(s.end for s in self.spans) - min(s.start for s in self.spans)

    @property
    def end_time(self) -> float:
        return max((s.end for s in self.spans), default=0.0)

    def assert_lane_exclusive(self, lane: str) -> None:
        """Raise if two spans on ``lane`` overlap (exclusive-resource check)."""
        spans = sorted(self.by_lane(lane), key=lambda s: (s.start, s.end))
        for a, b in zip(spans, spans[1:]):
            # Touching endpoints (a.end == b.start) are fine.
            if a.overlaps(b):
                raise AssertionError(
                    f"overlapping spans on lane {lane!r}: {a} vs {b}"
                )

    # -- export ----------------------------------------------------------

    def to_rows(self) -> list[dict[str, object]]:
        """Plain-dict rows, convenient for CSV export or table rendering."""
        return [
            {
                "lane": s.lane,
                "phase": s.phase,
                "task": s.task,
                "start": s.start,
                "end": s.end,
                "duration": s.duration,
                "note": s.note,
            }
            for s in sorted(self.spans, key=lambda s: (s.start, s.lane))
        ]

    def gantt(self, width: int = 72, resolution: Optional[float] = None) -> str:
        """Render an ASCII Gantt chart, one row per lane.

        Each lane row shows blocks of the first letter of the phase name.
        Useful for eyeballing overlap structure (the paper's Fig. 3/4).
        """
        if not self.spans:
            return "(empty timeline)"
        t0 = min(s.start for s in self.spans)
        t1 = max(s.end for s in self.spans)
        horizon = max(t1 - t0, 1e-12)
        scale = (width - 1) / horizon
        lines = []
        label_w = max(len(lane) for lane in self.lanes()) + 1
        for lane in self.lanes():
            row = [" "] * width
            for s in self.by_lane(lane):
                a = int((s.start - t0) * scale)
                b = max(int((s.end - t0) * scale), a + 1)
                ch = (s.phase[:1] or "#").upper()
                for i in range(a, min(b, width)):
                    row[i] = ch
            lines.append(f"{lane:<{label_w}}|{''.join(row)}|")
        lines.append(
            f"{'':<{label_w}} t0={t0:.6g}  t1={t1:.6g}  "
            f"(1 col = {horizon / (width - 1):.3g})"
        )
        return "\n".join(lines)


def merge(timelines: Iterable[Timeline]) -> Timeline:
    """Combine several timelines into one independent timeline.

    The frozen :class:`Span` records are shared; the *list* is fresh, so
    mutating the merged timeline never corrupts its sources (and vice
    versa).
    """
    out = Timeline()
    for tl in timelines:
        out.spans.extend(tl.spans)
    return out
