"""Workloads: the hardware-function library, call traces and image kernels.

:mod:`repro.workloads.library` pins the paper's Table 1 core catalog and
the data-size -> task-time model; :mod:`repro.workloads.generators` builds
synthetic call traces with controllable locality;
:mod:`repro.workloads.image_ops` provides functional NumPy implementations
of the median/Sobel/smoothing cores.
"""

from .generators import (
    markov_trace,
    phased_trace,
    pipeline_trace,
    rng_from,
    uniform_trace,
    zipf_trace,
)
from .image_ops import (
    CORE_FUNCTIONS,
    apply_core,
    median_filter,
    smoothing_filter,
    sobel_filter,
    synthetic_image,
)
from .library import (
    STATIC_BLOCKS,
    TABLE1_CORES,
    CoreSpec,
    core_resources,
    library_tasks,
    task_for_data_size,
)
from .serialize import load_trace, save_trace, trace_from_json, trace_to_json
from .task import CallTrace, FunctionCall, HardwareTask

__all__ = [
    "CORE_FUNCTIONS",
    "CallTrace",
    "CoreSpec",
    "FunctionCall",
    "HardwareTask",
    "STATIC_BLOCKS",
    "TABLE1_CORES",
    "apply_core",
    "core_resources",
    "library_tasks",
    "load_trace",
    "markov_trace",
    "median_filter",
    "phased_trace",
    "pipeline_trace",
    "rng_from",
    "save_trace",
    "smoothing_filter",
    "sobel_filter",
    "synthetic_image",
    "task_for_data_size",
    "trace_from_json",
    "trace_to_json",
    "uniform_trace",
    "zipf_trace",
]
