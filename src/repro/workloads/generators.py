"""Synthetic call-trace generators.

The paper's analysis abstracts workloads into ``(n_calls, H)``; the
prefetch ablations need *real* traces with controllable locality instead.
Every generator takes an explicit ``numpy.random.Generator`` (or seed) —
determinism is non-negotiable for reproducible experiments.

Locality knobs map onto the paper's discussion:

* :func:`uniform_trace` — no locality at all (worst case for caching);
* :func:`zipf_trace` — skewed popularity (some functions dominate);
* :func:`markov_trace` — pairwise transition structure (what the
  association-rule-mining prefetcher of ref. [26] exploits);
* :func:`phased_trace` — program phases that reuse a small working set
  ("processing spatial locality", Section 2.1);
* :func:`pipeline_trace` — a fixed processing pipeline repeated per frame
  (the image workloads of Section 4.3).
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from .task import CallTrace, HardwareTask

__all__ = [
    "rng_from",
    "uniform_trace",
    "zipf_trace",
    "markov_trace",
    "phased_trace",
    "pipeline_trace",
]


def rng_from(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Accept a seed, a Generator, or None (fixed default seed)."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(0 if seed is None else seed)


def _check_library(library: Mapping[str, HardwareTask]) -> list[str]:
    names = list(library)
    if not names:
        raise ValueError("library must not be empty")
    return names


def uniform_trace(
    library: Mapping[str, HardwareTask],
    n_calls: int,
    seed: int | np.random.Generator | None = None,
) -> CallTrace:
    """Independent uniform draws over the library."""
    if n_calls <= 0:
        raise ValueError("n_calls must be >= 1")
    rng = rng_from(seed)
    names = _check_library(library)
    picks = rng.integers(0, len(names), size=n_calls)
    return CallTrace(
        (library[names[i]] for i in picks), name=f"uniform{n_calls}"
    )


def zipf_trace(
    library: Mapping[str, HardwareTask],
    n_calls: int,
    s: float = 1.2,
    seed: int | np.random.Generator | None = None,
) -> CallTrace:
    """Zipf-distributed popularity with exponent ``s`` (rank 1 hottest)."""
    if n_calls <= 0:
        raise ValueError("n_calls must be >= 1")
    if s <= 0:
        raise ValueError("zipf exponent must be > 0")
    rng = rng_from(seed)
    names = _check_library(library)
    ranks = np.arange(1, len(names) + 1, dtype=np.float64)
    probs = ranks**-s
    probs /= probs.sum()
    picks = rng.choice(len(names), size=n_calls, p=probs)
    return CallTrace(
        (library[names[i]] for i in picks), name=f"zipf{s:g}_{n_calls}"
    )


def markov_trace(
    library: Mapping[str, HardwareTask],
    n_calls: int,
    self_loop: float = 0.1,
    follow: float = 0.7,
    seed: int | np.random.Generator | None = None,
) -> CallTrace:
    """A first-order Markov chain with strong successor structure.

    From task ``i``: probability ``self_loop`` of repeating, ``follow`` of
    moving to ``i+1 (mod k)`` (its canonical successor), remainder spread
    uniformly.  High ``follow`` makes the next call highly predictable —
    the regime where a Markov/ARM prefetcher approaches ``H = 1``.
    """
    if n_calls <= 0:
        raise ValueError("n_calls must be >= 1")
    if self_loop < 0 or follow < 0 or self_loop + follow > 1:
        raise ValueError("need self_loop, follow >= 0 and sum <= 1")
    rng = rng_from(seed)
    names = _check_library(library)
    k = len(names)
    rest = (1.0 - self_loop - follow) / k
    # Row-stochastic transition matrix, vectorized construction.
    matrix = np.full((k, k), rest)
    matrix[np.arange(k), np.arange(k)] += self_loop
    matrix[np.arange(k), (np.arange(k) + 1) % k] += follow
    matrix /= matrix.sum(axis=1, keepdims=True)
    state = int(rng.integers(0, k))
    picks = np.empty(n_calls, dtype=np.int64)
    for i in range(n_calls):
        picks[i] = state
        state = int(rng.choice(k, p=matrix[state]))
    return CallTrace(
        (library[names[i]] for i in picks), name=f"markov_{n_calls}"
    )


def phased_trace(
    library: Mapping[str, HardwareTask],
    n_phases: int,
    phase_length: int,
    working_set: int,
    seed: int | np.random.Generator | None = None,
) -> CallTrace:
    """Phases of ``phase_length`` calls drawn from a small working set.

    Each phase picks ``working_set`` tasks and calls only those — the
    paging-style locality hardware-virtualization papers assume.  With a
    PRR count >= working set, steady-state phases are all hits.
    """
    if min(n_phases, phase_length, working_set) <= 0:
        raise ValueError("all shape parameters must be >= 1")
    rng = rng_from(seed)
    names = _check_library(library)
    if working_set > len(names):
        raise ValueError(
            f"working_set {working_set} exceeds library size {len(names)}"
        )
    tasks: list[HardwareTask] = []
    for _ in range(n_phases):
        members = rng.choice(len(names), size=working_set, replace=False)
        picks = rng.choice(members, size=phase_length)
        tasks.extend(library[names[i]] for i in picks)
    return CallTrace(tasks, name=f"phased_{n_phases}x{phase_length}")


def pipeline_trace(
    library: Mapping[str, HardwareTask],
    stage_names: Sequence[str],
    n_frames: int,
) -> CallTrace:
    """The Section 4.3 workload shape: a filter pipeline applied per frame.

    ``stage_names`` (e.g. ``["smoothing", "sobel", "median"]``) repeats
    ``n_frames`` times.  Deterministic — no RNG.
    """
    if n_frames <= 0:
        raise ValueError("n_frames must be >= 1")
    if not stage_names:
        raise ValueError("need at least one pipeline stage")
    missing = [n for n in stage_names if n not in library]
    if missing:
        raise KeyError(f"stages not in library: {missing}")
    tasks = [library[n] for _ in range(n_frames) for n in stage_names]
    return CallTrace(
        tasks, name=f"pipeline_{'-'.join(stage_names)}_x{n_frames}"
    )
