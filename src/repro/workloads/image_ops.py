"""Reference implementations of the paper's image-processing cores.

The Cray XD1 experiments execute three hardware filters (Table 1).  We
implement them functionally in NumPy so examples process real images and
tests can cross-check against ``scipy.ndimage``:

* :func:`median_filter` — 3x3 median (salt-and-pepper removal);
* :func:`sobel_filter` — gradient magnitude via the Sobel operator;
* :func:`smoothing_filter` — 3x3 box smoothing.

All filters take/return 2-D ``uint8`` arrays and use edge-repeating
boundary handling (numpy's "symmetric" = scipy.ndimage's "reflect") —
the natural line-buffer behaviour of a streaming hardware implementation.  Implementations are fully vectorized — a shifted-stack
trick instead of Python loops, per the repo's HPC guidelines.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "median_filter",
    "sobel_filter",
    "smoothing_filter",
    "apply_core",
    "CORE_FUNCTIONS",
    "synthetic_image",
]


def _check_image(image: np.ndarray) -> np.ndarray:
    arr = np.asarray(image)
    if arr.ndim != 2:
        raise ValueError(f"expected a 2-D image, got shape {arr.shape}")
    if arr.size == 0:
        raise ValueError("empty image")
    if arr.dtype != np.uint8:
        raise TypeError(f"expected uint8 pixels, got {arr.dtype}")
    return arr


def _neighborhood_stack(image: np.ndarray) -> np.ndarray:
    """Shape (9, H, W): each 3x3 neighbour plane of every pixel."""
    padded = np.pad(image, 1, mode="symmetric")
    h, w = image.shape
    planes = [
        padded[dy : dy + h, dx : dx + w]
        for dy in range(3)
        for dx in range(3)
    ]
    return np.stack(planes)


def median_filter(image: np.ndarray) -> np.ndarray:
    """3x3 median filter (matches ``scipy.ndimage.median_filter(size=3,
    mode='reflect')``)."""
    stack = _neighborhood_stack(_check_image(image))
    return np.median(stack, axis=0).astype(np.uint8)


def smoothing_filter(image: np.ndarray) -> np.ndarray:
    """3x3 box smoothing with round-half-away rounding.

    Hardware implementations sum the window and divide by 9 with a
    rounding adder; we reproduce that with integer arithmetic:
    ``(sum + 4) // 9``.
    """
    stack = _neighborhood_stack(_check_image(image)).astype(np.uint32)
    total = stack.sum(axis=0)
    return ((total + 4) // 9).astype(np.uint8)


_SOBEL_X = np.array([[-1, 0, 1], [-2, 0, 2], [-1, 0, 1]], dtype=np.int32)
_SOBEL_Y = _SOBEL_X.T


def sobel_filter(image: np.ndarray) -> np.ndarray:
    """Sobel gradient magnitude ``|gx| + |gy|``, saturated to uint8.

    The L1 magnitude (not Euclidean) is what small hardware cores
    implement — no multiplier-hungry square root.
    """
    stack = _neighborhood_stack(_check_image(image)).astype(np.int32)
    gx = np.tensordot(_SOBEL_X.ravel(), stack, axes=(0, 0))
    gy = np.tensordot(_SOBEL_Y.ravel(), stack, axes=(0, 0))
    mag = np.abs(gx) + np.abs(gy)
    return np.clip(mag, 0, 255).astype(np.uint8)


CORE_FUNCTIONS = {
    "median": median_filter,
    "sobel": sobel_filter,
    "smoothing": smoothing_filter,
}


def apply_core(name: str, image: np.ndarray) -> np.ndarray:
    """Dispatch by Table 1 core name."""
    try:
        fn = CORE_FUNCTIONS[name]
    except KeyError:
        raise KeyError(
            f"unknown core {name!r}; have {sorted(CORE_FUNCTIONS)}"
        ) from None
    return fn(image)


def synthetic_image(
    height: int = 256,
    width: int = 256,
    seed: int = 0,
    noise: float = 0.05,
) -> np.ndarray:
    """A test card: gradient + circles + salt-and-pepper noise.

    Gives the filters visible work to do (noise for the median, edges for
    the Sobel) without shipping binary image assets.
    """
    if height <= 0 or width <= 0:
        raise ValueError("image dimensions must be positive")
    if not 0 <= noise <= 1:
        raise ValueError("noise fraction must be in [0, 1]")
    rng = np.random.default_rng(seed)
    y, x = np.mgrid[0:height, 0:width]
    img = (x * 255.0 / max(width - 1, 1)).astype(np.float64)
    cy, cx = height / 2.0, width / 2.0
    r = np.hypot(y - cy, x - cx)
    for radius in (min(height, width) / 6.0, min(height, width) / 3.0):
        img = np.where(np.abs(r - radius) < 3.0, 255.0 - img, img)
    out = img.astype(np.uint8)
    if noise > 0:
        mask = rng.random((height, width)) < noise
        salt = rng.random((height, width)) < 0.5
        out = out.copy()
        out[mask & salt] = 255
        out[mask & ~salt] = 0
    return out
