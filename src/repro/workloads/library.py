"""The paper's hardware-function library (Table 1) plus a throughput model.

The study implements three image-processing cores as reconfigurable
modules, alongside the static infrastructure.  Table 1 publishes their
resource usage on the XC2VP50; we pin those numbers here and add the
first-order throughput model used to derive per-call task times:

    T_task(data) = data_in/BW + pixels/(freq * pixels_per_cycle) + data_out/BW

with BW the XD1's usable 1400 MB/s.  The paper varies ``T_task`` "by
changing the amount of data transferred to/from and processed by the
task" — :func:`task_for_data_size` is exactly that knob.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hardware.catalog import XD1_NODE, NodeParameters
from ..hardware.fpga import Resources
from .task import HardwareTask

__all__ = [
    "CoreSpec",
    "TABLE1_CORES",
    "STATIC_BLOCKS",
    "core_resources",
    "task_for_data_size",
    "library_tasks",
]


@dataclass(frozen=True)
class CoreSpec:
    """A hardware core: resource demand plus performance characteristics."""

    name: str
    luts: int
    ffs: int
    brams: int
    freq_hz: float
    #: pixels consumed per clock at steady state (stream throughput)
    pixels_per_cycle: float = 1.0
    #: bytes per input pixel (8-bit grayscale for the paper's filters)
    bytes_per_pixel: int = 1
    #: output bytes per input byte
    output_ratio: float = 1.0
    reconfigurable: bool = True

    def __post_init__(self) -> None:
        if self.freq_hz <= 0:
            raise ValueError("freq_hz must be positive")
        if self.pixels_per_cycle <= 0:
            raise ValueError("pixels_per_cycle must be positive")
        if self.bytes_per_pixel <= 0:
            raise ValueError("bytes_per_pixel must be positive")
        if self.output_ratio < 0:
            raise ValueError("output_ratio must be >= 0")

    @property
    def resources(self) -> Resources:
        return Resources(luts=self.luts, ffs=self.ffs, brams=self.brams)


#: The three reconfigurable cores of Table 1.
TABLE1_CORES: dict[str, CoreSpec] = {
    "median": CoreSpec(
        name="median", luts=3_141, ffs=3_270, brams=0, freq_hz=200e6
    ),
    "sobel": CoreSpec(
        name="sobel", luts=1_159, ffs=1_060, brams=0, freq_hz=200e6
    ),
    "smoothing": CoreSpec(
        name="smoothing", luts=2_053, ffs=1_601, brams=0, freq_hz=200e6
    ),
}

#: The static-region blocks of Table 1 (not reconfigured at run time).
STATIC_BLOCKS: dict[str, CoreSpec] = {
    "static_region": CoreSpec(
        name="static_region",
        luts=3_372,
        ffs=5_503,
        brams=25,
        freq_hz=200e6,
        reconfigurable=False,
    ),
    "pr_controller": CoreSpec(
        name="pr_controller",
        luts=418,
        ffs=432,
        brams=8,
        freq_hz=66e6,
        reconfigurable=False,
    ),
}


def core_resources(name: str) -> Resources:
    """Resource vector of any Table 1 entry (core or static block)."""
    spec = TABLE1_CORES.get(name) or STATIC_BLOCKS.get(name)
    if spec is None:
        raise KeyError(f"unknown core {name!r}")
    return spec.resources


def task_for_data_size(
    core: CoreSpec | str,
    data_bytes: float,
    params: NodeParameters = XD1_NODE,
    overlap_io: bool = False,
) -> HardwareTask:
    """Build a :class:`HardwareTask` for a core processing ``data_bytes``.

    ``T_task`` composes input transfer, streaming computation and output
    transfer.  With ``overlap_io=True`` the three stages pipeline and the
    slowest dominates (the paper's refs [30, 31] optimization); the default
    is the sequential sum, matching the paper's conservative folding of
    I/O into ``T_task``.
    """
    if isinstance(core, str):
        try:
            core = TABLE1_CORES[core]
        except KeyError:
            raise KeyError(f"unknown reconfigurable core {core!r}") from None
    if data_bytes <= 0:
        raise ValueError("data_bytes must be > 0")
    t_in = data_bytes / params.io_bandwidth
    pixels = data_bytes / core.bytes_per_pixel
    t_compute = pixels / (core.freq_hz * core.pixels_per_cycle)
    data_out = data_bytes * core.output_ratio
    t_out = data_out / params.io_bandwidth
    time = max(t_in, t_compute, t_out) if overlap_io else t_in + t_compute + t_out
    return HardwareTask(
        name=core.name,
        time=time,
        data_in_bytes=data_bytes,
        data_out_bytes=data_out,
        compute_time=t_compute,
    )


def library_tasks(
    data_bytes: float,
    params: NodeParameters = XD1_NODE,
    overlap_io: bool = False,
) -> dict[str, HardwareTask]:
    """All three Table 1 cores at a common data size."""
    return {
        name: task_for_data_size(spec, data_bytes, params, overlap_io)
        for name, spec in TABLE1_CORES.items()
    }
