"""Trace and library serialization (JSON).

Reproducibility plumbing: experiments can persist the exact call trace
they ran (e.g. alongside a CSV of results) and reload it bit-for-bit.
The format is a plain JSON object — stable, diffable, and free of any
Python-specific encoding:

```json
{
  "format": "repro-trace-v1",
  "name": "zipf1.2_4000",
  "tasks": {"median": {"time": 0.0198, "data_in_bytes": 0.0, ...}},
  "calls": ["median", "sobel", ...]
}
```
"""

from __future__ import annotations

import json
from typing import Any

from .task import CallTrace, HardwareTask

__all__ = ["trace_to_json", "trace_from_json", "save_trace", "load_trace"]

_FORMAT = "repro-trace-v1"


def trace_to_json(trace: CallTrace) -> str:
    """Serialize a trace (library + call sequence) to a JSON string."""
    tasks: dict[str, dict[str, float]] = {}
    for call in trace:
        t = call.task
        existing = tasks.get(t.name)
        record = {
            "time": t.time,
            "data_in_bytes": t.data_in_bytes,
            "data_out_bytes": t.data_out_bytes,
            "compute_time": t.compute_time,
        }
        if existing is not None and existing != record:
            raise ValueError(
                f"trace uses two different task definitions named "
                f"{t.name!r}; per-call task variants cannot round-trip "
                "through the v1 format"
            )
        tasks[t.name] = record
    doc = {
        "format": _FORMAT,
        "name": trace.name,
        "tasks": tasks,
        "calls": [c.name for c in trace],
    }
    return json.dumps(doc, indent=2, sort_keys=True)


def trace_from_json(text: str) -> CallTrace:
    """Inverse of :func:`trace_to_json`; validates the document."""
    try:
        doc: dict[str, Any] = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValueError(f"not valid JSON: {exc}") from None
    if doc.get("format") != _FORMAT:
        raise ValueError(
            f"unsupported trace format {doc.get('format')!r}; "
            f"expected {_FORMAT!r}"
        )
    try:
        tasks_doc = doc["tasks"]
        calls = doc["calls"]
        name = doc["name"]
    except KeyError as exc:
        raise ValueError(f"missing field {exc.args[0]!r}") from None
    library = {
        task_name: HardwareTask(
            name=task_name,
            time=float(spec["time"]),
            data_in_bytes=float(spec.get("data_in_bytes", 0.0)),
            data_out_bytes=float(spec.get("data_out_bytes", 0.0)),
            compute_time=float(spec.get("compute_time", 0.0)),
        )
        for task_name, spec in tasks_doc.items()
    }
    missing = [c for c in calls if c not in library]
    if missing:
        raise ValueError(f"calls reference undefined tasks: {missing[:5]}")
    return CallTrace([library[c] for c in calls], name=str(name))


def save_trace(trace: CallTrace, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(trace_to_json(trace))


def load_trace(path: str) -> CallTrace:
    with open(path, "r", encoding="utf-8") as fh:
        return trace_from_json(fh.read())
