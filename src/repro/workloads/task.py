"""Task and call-trace abstractions.

Section 3.1 of the paper: applications are built around a common hardware
library; each application issues *function calls* to hardware tasks, and
every task is fully characterized by its time requirement ``T_task``
(I/O + compute folded together).  A :class:`CallTrace` is the sequence of
calls an executor replays — the unit of workload throughout the repo.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

__all__ = ["HardwareTask", "FunctionCall", "CallTrace"]


@dataclass(frozen=True)
class HardwareTask:
    """One hardware function (core) from the application library.

    Attributes
    ----------
    name:
        Library-unique identifier (e.g. ``"median"``).
    time:
        The task time requirement ``T_task`` in seconds — the paper's
        single per-task characterization.  For tasks whose time varies
        with data size, build per-call times into the trace instead.
    data_in_bytes, data_out_bytes:
        Optional I/O volume split; executors that model link contention
        use these, the pure model does not.
    compute_time:
        Optional pure-computation component; when data volumes are given,
        ``time`` should equal data-in + compute + data-out at the nominal
        platform bandwidth (executors check this loosely).
    """

    name: str
    time: float
    data_in_bytes: float = 0.0
    data_out_bytes: float = 0.0
    compute_time: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("task name must be non-empty")
        if self.time <= 0:
            raise ValueError(f"task time must be > 0: {self.name} {self.time}")
        for f in ("data_in_bytes", "data_out_bytes", "compute_time"):
            if getattr(self, f) < 0:
                raise ValueError(f"{f} must be >= 0")

    def with_time(self, time: float) -> "HardwareTask":
        return HardwareTask(
            self.name,
            time,
            self.data_in_bytes,
            self.data_out_bytes,
            self.compute_time,
        )


@dataclass(frozen=True)
class FunctionCall:
    """One invocation of a hardware task in a trace."""

    task: HardwareTask
    #: call index within the trace (set by CallTrace)
    index: int = -1

    @property
    def name(self) -> str:
        return self.task.name


class CallTrace:
    """An ordered sequence of function calls over a finite task library."""

    def __init__(self, tasks: Iterable[HardwareTask], name: str = "trace") -> None:
        self.name = name
        self.calls: list[FunctionCall] = []
        for i, task in enumerate(tasks):
            self.calls.append(FunctionCall(task, index=i))
        if not self.calls:
            raise ValueError("a trace needs at least one call")

    # -- basic protocol ----------------------------------------------------

    def __len__(self) -> int:
        return len(self.calls)

    def __iter__(self) -> Iterator[FunctionCall]:
        return iter(self.calls)

    def __getitem__(self, i: int) -> FunctionCall:
        return self.calls[i]

    # -- statistics ----------------------------------------------------------

    @property
    def n_calls(self) -> int:
        return len(self.calls)

    def task_names(self) -> list[str]:
        """Distinct task names in first-appearance order."""
        seen: dict[str, None] = {}
        for c in self.calls:
            seen.setdefault(c.name, None)
        return list(seen)

    @property
    def n_distinct(self) -> int:
        return len(self.task_names())

    def mean_task_time(self) -> float:
        """The trace's average ``T_task`` (what the model consumes)."""
        return float(np.mean([c.task.time for c in self.calls]))

    def total_task_time(self) -> float:
        return float(sum(c.task.time for c in self.calls))

    def call_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for c in self.calls:
            counts[c.name] = counts.get(c.name, 0) + 1
        return counts

    def reuse_distance_histogram(self) -> dict[int, int]:
        """Histogram of stack reuse distances (cold misses excluded).

        The reuse distance of a call is the number of *distinct* tasks
        referenced since the previous call to the same task — the standard
        metric connecting a trace to cache hit ratios.
        """
        hist: dict[int, int] = {}
        stack: list[str] = []  # LRU stack, most recent last
        for c in self.calls:
            if c.name in stack:
                pos = stack.index(c.name)
                distance = len(stack) - pos - 1
                hist[distance] = hist.get(distance, 0) + 1
                stack.pop(pos)
            stack.append(c.name)
        return hist

    def cold_misses(self) -> int:
        return self.n_distinct

    # -- construction helpers -------------------------------------------------

    @staticmethod
    def from_names(
        names: Sequence[str],
        library: dict[str, HardwareTask],
        name: str = "trace",
    ) -> "CallTrace":
        try:
            tasks = [library[n] for n in names]
        except KeyError as exc:
            raise KeyError(f"task {exc.args[0]!r} not in library") from None
        return CallTrace(tasks, name=name)

    def repeat(self, times: int) -> "CallTrace":
        if times <= 0:
            raise ValueError("times must be >= 1")
        return CallTrace(
            [c.task for _ in range(times) for c in self.calls],
            name=f"{self.name}x{times}",
        )
