"""Unit tests for the Table 2 calibration (:mod:`repro.analysis.calibration`)."""

from __future__ import annotations

import pytest

from repro.analysis import (
    cross_validate,
    fit_icap_handshake,
    fit_vendor_api,
)
from repro.hardware import MB, MS, PUBLISHED_TABLE2, Table2Row


class TestFitVendorApi:
    def test_closes_on_full_row(self):
        api = fit_vendor_api()
        row = PUBLISHED_TABLE2["full"]
        wire = row.bitstream_bytes / (66 * MB)
        assert wire + api.time(row.bitstream_bytes) == pytest.approx(
            row.measured_time_s, rel=1e-12
        )

    def test_rejects_impossible_measurement(self):
        fake = Table2Row(
            layout="fake", bitstream_bytes=1_000_000,
            estimated_time_s=0.015, measured_time_s=0.001,
            estimated_x_prtr=1.0, measured_x_prtr=1.0,
        )
        with pytest.raises(ValueError, match="below the wire time"):
            fit_vendor_api(fake)

    def test_overhead_dominates_wire(self):
        """The Cray API overhead is ~45x the raw transfer: the paper's
        central observation about why FRTR is so expensive in practice."""
        api = fit_vendor_api()
        row = PUBLISHED_TABLE2["full"]
        wire = row.bitstream_bytes / (66 * MB)
        assert api.time(row.bitstream_bytes) > 40 * wire


class TestFitIcapHandshake:
    def test_closes_on_single_prr_row(self):
        t = fit_icap_handshake()
        row = PUBLISHED_TABLE2["single_prr"]
        first = t.chunk_bytes / (1600 * MB)
        assert first + t.drain_time(row.bitstream_bytes) == pytest.approx(
            row.measured_time_s, rel=1e-12
        )

    def test_handshake_positive_and_sub_millisecond(self):
        t = fit_icap_handshake()
        assert 0.0 < t.chunk_handshake < 1 * MS

    def test_rejects_impossible_measurement(self):
        fake = Table2Row(
            layout="fake", bitstream_bytes=660_000,
            estimated_time_s=0.01, measured_time_s=0.005,
            estimated_x_prtr=0.1, measured_x_prtr=0.1,
        )
        with pytest.raises(ValueError, match="cannot explain"):
            fit_icap_handshake(fake)


class TestCrossValidation:
    def test_dual_prr_predicted_within_tenth_percent(self):
        """The headline calibration result: the dual-PRR measured time is
        an out-of-sample *prediction* accurate to ~0.05%."""
        checks = cross_validate()
        assert len(checks) == 1
        check = checks[0]
        assert check.layout == "Dual PRR"
        assert check.rel_error < 1e-3

    def test_prediction_direction(self):
        check = cross_validate()[0]
        assert check.predicted_s == pytest.approx(
            check.published_s, rel=1e-3
        )
