"""Unit tests for table rendering and ASCII/CSV figure output."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    ascii_plot,
    format_value,
    render_comparison,
    render_table,
    series_to_csv,
    write_csv,
)


class TestFormatValue:
    def test_floats(self):
        assert format_value(3.14159, ".3g") == "3.14"

    def test_bools(self):
        assert format_value(True) == "yes"
        assert format_value(False) == "no"

    def test_strings(self):
        assert format_value("x") == "x"


class TestRenderTable:
    def test_alignment_and_header(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 100, "b": 0.125}]
        text = render_table(rows, title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert "-+-" in lines[2]
        assert len(lines) == 5

    def test_column_selection_and_order(self):
        rows = [{"a": 1, "b": 2, "c": 3}]
        text = render_table(rows, ["c", "a"])
        header = text.splitlines()[0]
        assert header.index("c") < header.index("a")
        assert "b" not in header

    def test_missing_cells_render_empty(self):
        rows = [{"a": 1}, {"a": 2, "b": 9}]
        text = render_table(rows, ["a", "b"])
        assert text  # no exception; row 1 has empty b

    def test_empty(self):
        assert "(empty)" in render_table([])
        assert render_table([], title="X").startswith("X")


class TestRenderComparison:
    def test_rel_err_column(self):
        rows = [{"quantity": "t", "paper": 10.0, "ours": 11.0}]
        text = render_comparison(rows)
        assert "rel_err_%" in text
        assert "10" in text and "11" in text

    def test_non_numeric_rows_pass_through(self):
        rows = [{"quantity": "layout", "paper": "dual", "ours": "dual"}]
        text = render_comparison(rows)
        assert "dual" in text


class TestAsciiPlot:
    def series(self):
        x = np.logspace(-2, 2, 50)
        return {"s1": (x, 1.0 / x), "s2": (x, x * 0.0 + 2.0)}

    def test_contains_legend_and_axes(self):
        text = ascii_plot(self.series(), title="T", xlabel="xt",
                          ylabel="sp")
        assert "legend:" in text
        assert "s1" in text and "s2" in text
        assert "xt" in text and "sp" in text
        assert text.startswith("T")

    def test_handles_empty(self):
        assert ascii_plot({}) == "(no series)"

    def test_nonfinite_filtered(self):
        x = np.array([1.0, 2.0, 3.0])
        y = np.array([np.nan, np.inf, 1.0])
        text = ascii_plot({"s": (x, y)}, logx=False)
        assert "legend" in text

    def test_all_nonfinite(self):
        x = np.array([1.0])
        y = np.array([np.nan])
        assert ascii_plot({"s": (x, y)}) == "(no finite data)"

    def test_log_requires_positive(self):
        x = np.array([-1.0, 1.0, 10.0])
        y = np.array([1.0, 2.0, 3.0])
        text = ascii_plot({"s": (x, y)}, logx=True)
        assert "legend" in text  # negative x silently dropped


class TestCsv:
    def test_long_format(self):
        text = series_to_csv({"a": ([1.0, 2.0], [3.0, 4.0])}, x_name="xt")
        lines = text.strip().splitlines()
        assert lines[0] == "series,xt,y"
        assert len(lines) == 3
        assert lines[1].startswith("a,1.0,")

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            series_to_csv({"a": ([1.0], [1.0, 2.0])})

    def test_write_csv_roundtrip(self, tmp_path):
        path = tmp_path / "out.csv"
        write_csv(str(path), "a,b\n1,2\n")
        assert path.read_text() == "a,b\n1,2\n"
