"""Unit tests for :mod:`repro.analysis.validate`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    ValidationReport,
    expected_prtr_pipeline_total,
    relative_error,
    validate_frtr,
    validate_prtr,
)
from repro.hardware import PUBLISHED_TABLE2
from repro.rtr import FrtrExecutor, PrtrExecutor, make_node
from repro.workloads import CallTrace, HardwareTask


class TestRelativeError:
    def test_basic(self):
        assert relative_error(1.1, 1.0) == pytest.approx(0.1)
        assert relative_error(0.9, 1.0) == pytest.approx(0.1)

    def test_zero_expected(self):
        assert relative_error(0.0, 0.0) == 0.0
        assert relative_error(1.0, 0.0) == np.inf


class TestPipelineFormula:
    def test_all_hits(self):
        """n hit stages: startup + n*(control + task + decision)."""
        total = expected_prtr_pipeline_total(
            [0.5] * 4, [True] * 4,
            t_frtr=2.0, t_prtr=0.3, t_control=0.1, t_decision=0.05,
        )
        expected = 0.05 + 2.0 + 4 * (0.1 + 0.55)
        assert total == pytest.approx(expected)

    def test_all_misses_config_dominates(self):
        """Tiny tasks: every stage (except the last) costs t_prtr."""
        total = expected_prtr_pipeline_total(
            [0.01] * 5, [False] * 5, t_frtr=2.0, t_prtr=0.5,
        )
        # First call's config ships with the full config; stages 0..3
        # overlap the next call's config: max(0.01, 0.5) = 0.5; the
        # last stage has no successor: 0.01.
        expected = 2.0 + 4 * 0.5 + 0.01
        assert total == pytest.approx(expected)

    def test_mixed_pattern(self):
        hits = [True, False, True]
        tasks = [1.0, 1.0, 1.0]
        total = expected_prtr_pipeline_total(
            tasks, hits, t_frtr=2.0, t_prtr=0.5,
        )
        # stage0: next (1) missed -> max(1, 0.5) = 1; stage1: next hit ->
        # 1; stage2: last -> 1.
        assert total == pytest.approx(2.0 + 3.0)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            expected_prtr_pipeline_total([1.0], [True, False],
                                         t_frtr=1.0, t_prtr=0.1)

    def test_empty_trace(self):
        with pytest.raises(ValueError):
            expected_prtr_pipeline_total([], [], t_frtr=1.0, t_prtr=0.1)


class TestValidateAgainstRuns:
    def make_trace(self, n=12, task_time=0.05):
        lib = {f"m{i}": HardwareTask(f"m{i}", task_time) for i in range(3)}
        return CallTrace(
            [lib[f"m{i % 3}"] for i in range(n)], name="v"
        )

    def test_frtr_report_ok(self):
        node = make_node()
        result = FrtrExecutor(node, control_time=1e-5).run(self.make_trace())
        rep = validate_frtr(
            result, t_frtr=node.full_config_time(), t_control=1e-5,
            t_task=0.05,
        )
        assert rep.ok()
        assert rep.mode == "frtr"

    def test_prtr_report_ok(self):
        node = make_node()
        result = PrtrExecutor(
            node,
            control_time=1e-5,
            bitstream_bytes=PUBLISHED_TABLE2["dual_prr"].bitstream_bytes,
        ).run(self.make_trace())
        rep = validate_prtr(
            result,
            t_frtr=result.notes["t_config_full"],
            t_prtr=result.notes["t_config_partial"],
            t_control=1e-5,
        )
        assert rep.pipeline_rel_error < 1e-9
        assert rep.ok(model_tol=0.25)

    def test_report_not_ok_when_totals_disagree(self):
        rep = ValidationReport(
            mode="prtr",
            measured_total=2.0,
            pipeline_total=1.0,
            model_total=1.0,
            pipeline_rel_error=1.0,
            model_rel_error=1.0,
        )
        assert not rep.ok()
