"""Unit tests for :mod:`repro.caching.base` (ConfigCache semantics)."""

from __future__ import annotations

import pytest

from repro.caching import CacheStats, ConfigCache, LruPolicy


def cache(slots: int = 2) -> ConfigCache:
    return ConfigCache(slots=slots, policy=LruPolicy())


class TestCacheStats:
    def test_ratios(self):
        s = CacheStats(hits=3, misses=1)
        assert s.accesses == 4
        assert s.hit_ratio == pytest.approx(0.75)
        assert s.miss_ratio == pytest.approx(0.25)

    def test_empty_cache_ratios(self):
        s = CacheStats()
        assert s.hit_ratio == 0.0
        assert s.miss_ratio == 0.0


class TestConfigCache:
    def test_needs_positive_slots(self):
        with pytest.raises(ValueError):
            ConfigCache(slots=0, policy=LruPolicy())

    def test_cold_lookup_misses(self):
        c = cache()
        assert not c.lookup("a")
        assert c.stats.misses == 1
        assert c.stats.cold_misses == 1

    def test_fill_then_hit(self):
        c = cache()
        c.fill("a")
        assert c.lookup("a")
        assert c.stats.hits == 1

    def test_fill_idempotent(self):
        c = cache()
        assert c.fill("a") is None
        assert c.fill("a") is None
        assert len(c.residents) == 1

    def test_eviction_when_full(self):
        c = cache(2)
        c.access("a")
        c.access("b")
        evicted_before = c.stats.evictions
        c.access("c")  # must evict LRU = a
        assert c.stats.evictions == evicted_before + 1
        assert not c.contains("a")
        assert c.contains("b") and c.contains("c")

    def test_slot_reuse_after_eviction(self):
        c = cache(2)
        c.fill("a")
        slot_a = c.slot_of("a")
        c.fill("b")
        c.fill("c")  # evicts a, takes its slot
        assert c.slot_of("c") == slot_a

    def test_contains_does_not_touch_stats(self):
        c = cache()
        c.fill("a")
        c.contains("a")
        c.contains("zzz")
        assert c.stats.accesses == 0

    def test_slot_of_missing(self):
        with pytest.raises(KeyError):
            cache().slot_of("ghost")

    def test_access_combines_lookup_fill(self):
        c = cache()
        assert not c.access("a")  # miss + fill
        assert c.access("a")      # hit
        assert c.stats.hits == 1 and c.stats.misses == 1

    def test_pinned_never_evicted(self):
        c = cache(2)
        c.access("a")
        c.access("b")
        c.policy.on_access("b")  # make a the LRU victim normally
        c.fill("c", pinned={"a"})
        assert c.contains("a")
        assert not c.contains("b")

    def test_all_pinned_raises(self):
        c = cache(1)
        c.fill("a")
        with pytest.raises(RuntimeError, match="pinned"):
            c.fill("b", pinned={"a"})

    def test_is_full(self):
        c = cache(2)
        assert not c.is_full
        c.fill("a")
        c.fill("b")
        assert c.is_full

    def test_reset_clears_everything(self):
        c = cache(2)
        c.access("a")
        c.access("b")
        c.access("c")
        c.reset()
        assert c.residents == []
        assert c.stats.accesses == 0
        assert not c.is_full

    def test_hit_ratio_cyclic_thrash(self):
        """3 modules on 2 LRU slots cycled -> 0 hits after the colds."""
        c = cache(2)
        for name in ["a", "b", "c"] * 20:
            c.access(name)
        assert c.stats.hits == 0
        assert c.stats.hit_ratio == 0.0

    def test_hit_ratio_working_set_fits(self):
        """2 modules on 2 slots -> only cold misses."""
        c = cache(2)
        for name in ["a", "b"] * 20:
            c.access(name)
        assert c.stats.misses == 2
        assert c.stats.cold_misses == 2
