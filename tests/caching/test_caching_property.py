"""Property-based tests of the caching substrate (hypothesis)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.caching import (
    BeladyPolicy,
    ConfigCache,
    FifoPolicy,
    LfuPolicy,
    LruPolicy,
    replay,
)
from repro.workloads import CallTrace, HardwareTask

names = st.sampled_from([f"m{i}" for i in range(6)])
traces = st.lists(names, min_size=1, max_size=200)
slots = st.integers(min_value=1, max_value=6)


def run(policy, refs, k):
    c = ConfigCache(slots=k, policy=policy)
    for r in refs:
        c.access(r)
    return c


@given(traces, slots)
def test_hit_ratio_in_unit_interval(refs, k):
    c = run(LruPolicy(), refs, k)
    assert 0.0 <= c.stats.hit_ratio <= 1.0
    assert c.stats.accesses == len(refs)


@given(traces, slots)
def test_residents_never_exceed_slots(refs, k):
    c = run(LruPolicy(), refs, k)
    assert len(c.residents) <= k


@given(traces)
def test_lru_with_full_capacity_only_cold_misses(refs):
    """Capacity >= #distinct items -> misses == distinct items."""
    k = len(set(refs))
    c = run(LruPolicy(), refs, k)
    assert c.stats.misses == k
    assert c.stats.cold_misses == k


@given(traces, slots)
@settings(max_examples=150)
def test_belady_dominates_online_policies(refs, k):
    """The offline-optimal policy never loses to LRU/FIFO/LFU."""
    belady = run(BeladyPolicy(refs), refs, k)
    for policy in (LruPolicy(), FifoPolicy(), LfuPolicy()):
        online = run(policy, refs, k)
        assert belady.stats.hits >= online.stats.hits


@given(traces, slots)
def test_evictions_consistent_with_misses(refs, k):
    """evictions == max(0, misses - slots_filled) for demand caching."""
    c = run(LruPolicy(), refs, k)
    filled = min(len(set(refs)), k)
    # Every miss after the cache fills evicts exactly once.
    assert c.stats.evictions == c.stats.misses - (
        c.stats.cold_misses
    ) + max(0, 0)
    assert c.stats.cold_misses <= k or not refs


@given(traces, slots)
def test_stack_property_larger_lru_never_worse(refs, k):
    """LRU inclusion property: a bigger LRU cache never hits less."""
    small = run(LruPolicy(), refs, k)
    big = run(LruPolicy(), refs, k + 1)
    assert big.stats.hits >= small.stats.hits


@given(traces, slots)
def test_replay_matches_direct_cache_when_no_prefetch(refs, k):
    lib = {n: HardwareTask(n, 1.0) for n in set(refs)}
    trace = CallTrace([lib[n] for n in refs])
    direct = run(LruPolicy(), refs, k)
    via_replay = replay(trace, ConfigCache(k, LruPolicy()))
    assert via_replay.stats.hits == direct.stats.hits
    assert via_replay.stats.misses == direct.stats.misses
