"""Unit tests for the hardware-paging model (ref [27] / Section 2.1)."""

from __future__ import annotations

import pytest

from repro.caching.paging import (
    PagedCache,
    PageTable,
    cooccurrence_counts,
    group_by_affinity,
    group_random,
    group_sequential,
    paged_hit_ratio,
)
from repro.workloads import CallTrace, HardwareTask, markov_trace


def lib(k: int = 12) -> dict[str, HardwareTask]:
    return {f"f{i:02d}": HardwareTask(f"f{i:02d}", 0.01) for i in range(k)}


def trace_of(names) -> CallTrace:
    library = {n: HardwareTask(n, 1.0) for n in set(names)}
    return CallTrace([library[n] for n in names], name="t")


class TestPageTable:
    def test_lookup(self):
        table = PageTable((("a", "b"), ("c",)))
        assert table.page_of("a") == 0
        assert table.page_of("c") == 1
        assert table.mates("b") == ("a", "b")
        assert table.n_pages == 2
        assert table.functions == ("a", "b", "c")

    def test_missing_function(self):
        with pytest.raises(KeyError):
            PageTable((("a",),)).page_of("z")

    def test_validation(self):
        with pytest.raises(ValueError):
            PageTable(())
        with pytest.raises(ValueError):
            PageTable(((),))
        with pytest.raises(ValueError):
            PageTable((("a",), ("a",)))


class TestPagedCache:
    def test_page_mates_ride_along(self):
        """A miss on 'a' makes its whole page resident -> 'b' hits."""
        table = PageTable((("a", "b"), ("c", "d")))
        cache = PagedCache(table, slots=1)
        assert not cache.access("a")
        assert cache.access("b")  # page mate: free hit
        assert not cache.access("c")  # other page evicts
        assert cache.access("d")

    def test_resident_functions(self):
        table = PageTable((("a", "b"), ("c", "d")))
        cache = PagedCache(table, slots=2)
        cache.access("a")
        assert sorted(cache.resident_functions()) == ["a", "b"]

    def test_reset(self):
        table = PageTable((("a",),))
        cache = PagedCache(table, slots=1)
        cache.access("a")
        cache.reset()
        assert cache.stats.accesses == 0
        assert cache.resident_functions() == []


class TestGroupings:
    def test_sequential_chunks(self):
        table = group_sequential(["a", "b", "c", "d", "e"], 2)
        assert table.pages == (("a", "b"), ("c", "d"), ("e",))

    def test_random_is_permutation(self):
        fns = [f"f{i}" for i in range(9)]
        table = group_random(fns, 3, seed=1)
        assert sorted(table.functions) == sorted(fns)

    def test_random_deterministic(self):
        fns = [f"f{i}" for i in range(9)]
        assert group_random(fns, 3, seed=2).pages == group_random(
            fns, 3, seed=2
        ).pages

    def test_validation(self):
        with pytest.raises(ValueError):
            group_sequential(["a"], 0)
        with pytest.raises(ValueError):
            group_sequential([], 2)
        with pytest.raises(ValueError):
            group_random(["a"], 0)
        with pytest.raises(ValueError):
            group_by_affinity(trace_of(["a", "b"]), 0)

    def test_cooccurrence_symmetric_counts(self):
        counts = cooccurrence_counts(
            trace_of(["a", "b", "a", "b"]), window=2
        )
        assert counts == {("a", "b"): 3}
        with pytest.raises(ValueError):
            cooccurrence_counts(trace_of(["a"]), window=1)

    def test_affinity_groups_pairs_together(self):
        """a/b always co-occur, c/d always co-occur: affinity pages must
        respect the pairs."""
        names = ["a", "b"] * 20 + ["c", "d"] * 20 + ["a", "b"] * 5
        table = group_by_affinity(trace_of(names), page_size=2)
        pages = {frozenset(p) for p in table.pages}
        assert frozenset(("a", "b")) in pages
        assert frozenset(("c", "d")) in pages

    def test_affinity_covers_unseen_functions(self):
        names = ["a", "b"] * 10
        table = group_by_affinity(
            trace_of(names), 2, functions=["a", "b", "zz"]
        )
        assert "zz" in table.functions


class TestPagedHitRatio:
    def test_affinity_beats_random_on_structured_trace(self):
        library = lib()
        train = markov_trace(library, 2500, self_loop=0.05,
                             follow=0.75, seed=1)
        test = markov_trace(library, 2500, self_loop=0.05,
                            follow=0.75, seed=2)
        fns = sorted(library)
        h_aff = paged_hit_ratio(
            test, group_by_affinity(train, 3, functions=fns), slots=2
        )
        h_rand = paged_hit_ratio(
            test, group_random(fns, 3, seed=5), slots=2
        )
        assert h_aff > h_rand + 0.1

    def test_paging_beats_unit_pages_on_local_trace(self):
        """page_size > 1 exploits locality a function-granular cache
        cannot (same slot count)."""
        names = (["a", "b", "c"] * 30) + (["d", "e", "f"] * 30)
        t = trace_of(names)
        unit = paged_hit_ratio(
            t, group_sequential(["a", "b", "c", "d", "e", "f"], 1),
            slots=2,
        )
        paged = paged_hit_ratio(
            t, group_sequential(["a", "b", "c", "d", "e", "f"], 3),
            slots=2,
        )
        assert paged > unit

    def test_hit_ratio_bounds(self):
        t = trace_of(["a", "b"] * 5)
        h = paged_hit_ratio(t, group_sequential(["a", "b"], 2), slots=1)
        assert 0.0 <= h <= 1.0
        assert h == pytest.approx(0.9)  # only the first access misses
