"""Unit tests for the replacement policies."""

from __future__ import annotations

import pytest

from repro.caching import (
    BeladyPolicy,
    ConfigCache,
    FifoPolicy,
    LfuPolicy,
    LruPolicy,
    RandomPolicy,
    make_policy,
)


def run_trace(policy, names, slots=2) -> ConfigCache:
    c = ConfigCache(slots=slots, policy=policy)
    for n in names:
        c.access(n)
    return c


class TestLru:
    def test_evicts_least_recent(self):
        c = run_trace(LruPolicy(), ["a", "b", "a", "c"])
        # b is least recently used when c arrives.
        assert c.contains("a") and c.contains("c") and not c.contains("b")

    def test_access_refreshes_recency(self):
        c = run_trace(LruPolicy(), ["a", "b", "a", "b", "a", "c"])
        assert not c.contains("b") or not c.contains("a")
        # b was used more recently than a? order: ...b,a,c -> evict b? No:
        # last uses: a at t4, b at t3 -> evict b.
        assert c.contains("a") and c.contains("c")


class TestFifo:
    def test_ignores_recency(self):
        # a inserted first; touching it again must NOT save it under FIFO.
        c = run_trace(FifoPolicy(), ["a", "b", "a", "c"])
        assert not c.contains("a")
        assert c.contains("b") and c.contains("c")


class TestLfu:
    def test_evicts_least_frequent(self):
        c = run_trace(LfuPolicy(), ["a", "a", "a", "b", "c"])
        assert c.contains("a")
        assert not c.contains("b")  # b has count 1, a has 3

    def test_tie_breaks_by_insertion(self):
        c = run_trace(LfuPolicy(), ["a", "b", "c"])
        # a and b both count 1; a inserted earlier -> evicted.
        assert not c.contains("a")


class TestRandom:
    def test_deterministic_with_seed(self):
        names = ["a", "b", "c", "d", "e"] * 10
        c1 = run_trace(RandomPolicy(seed=3), names)
        c2 = run_trace(RandomPolicy(seed=3), names)
        assert sorted(c1.residents) == sorted(c2.residents)
        assert c1.stats.hits == c2.stats.hits

    def test_reset_restores_stream(self):
        pol = RandomPolicy(seed=1)
        v1 = pol.victim(["a", "b", "c"])
        pol.reset()
        assert pol.victim(["a", "b", "c"]) == v1


class TestBelady:
    def test_textbook_example(self):
        """Classic MIN behaviour: evict the item used farthest ahead.

        For 2 slots on this trace the optimum is exactly 2 hits (both
        eviction branches at the 'c' reference lead to 2; verified by
        hand and by the exhaustive-comparison test below).
        """
        names = ["a", "b", "c", "a", "b", "d", "a", "b"]
        c = run_trace(BeladyPolicy(names), names, slots=2)
        assert c.stats.hits == 2

    def test_desync_detection(self):
        pol = BeladyPolicy(["a", "b"])
        c = ConfigCache(slots=2, policy=pol)
        c.access("a")
        with pytest.raises(RuntimeError, match="desync"):
            c.access("z")

    def test_next_use_binary_search(self):
        pol = BeladyPolicy(["a", "b", "a", "c", "a"])
        assert pol.next_use("a") == 0
        pol.on_access("a")  # advance past position 0
        assert pol.next_use("a") == 2
        assert pol.next_use("b") == 1
        assert pol.next_use("zzz") == 5  # never used again -> beyond end

    def test_optimal_beats_online_policies_exhaustively(self):
        """Belady >= LRU/FIFO/LFU on a batch of random traces."""
        import numpy as np

        rng = np.random.default_rng(0)
        for trial in range(30):
            k = int(rng.integers(3, 7))
            names = [f"m{int(i)}" for i in rng.integers(0, k, size=120)]
            slots = int(rng.integers(2, max(k, 3)))
            belady = run_trace(BeladyPolicy(names), names, slots=slots)
            for policy in (LruPolicy(), FifoPolicy(), LfuPolicy()):
                online = run_trace(policy, names, slots=slots)
                assert belady.stats.hits >= online.stats.hits, (
                    f"trial {trial}: Belady lost to {policy.name}"
                )


class TestFactory:
    def test_known_names(self):
        for name in ("lru", "lfu", "fifo", "random"):
            assert make_policy(name).name == name
        assert make_policy("belady", future=["a"]).name == "belady"

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown policy"):
            make_policy("clock")
