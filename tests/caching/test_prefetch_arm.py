"""Unit tests for the prefetchers and the ARM miner."""

from __future__ import annotations

import pytest

from repro.caching import (
    ArmPrefetcher,
    AssociationRule,
    MarkovPrefetcher,
    NonePrefetcher,
    OraclePrefetcher,
    SequentialPrefetcher,
    make_prefetcher,
)


class TestNone:
    def test_never_predicts(self):
        p = NonePrefetcher()
        p.observe("a")
        assert p.predict(5) == []


class TestOracle:
    def test_predicts_upcoming_distinct(self):
        p = OraclePrefetcher(["a", "b", "b", "c", "a"])
        p.observe("a")
        assert p.predict(1) == ["b"]
        assert p.predict(3) == ["b", "c", "a"]

    def test_end_of_trace_empty(self):
        p = OraclePrefetcher(["a"])
        p.observe("a")
        assert p.predict(2) == []

    def test_desync_detection(self):
        p = OraclePrefetcher(["a", "b"])
        p.observe("a")
        with pytest.raises(RuntimeError, match="desync"):
            p.observe("z")

    def test_reset(self):
        p = OraclePrefetcher(["a", "b"])
        p.observe("a")
        p.reset()
        assert p.predict(1) == ["a"]


class TestSequential:
    def test_predicts_successors_in_order(self):
        p = SequentialPrefetcher(["a", "b", "c"])
        p.observe("a")
        assert p.predict(2) == ["b", "c"]
        p.observe("c")
        assert p.predict(1) == ["a"]  # wraps

    def test_no_history_no_prediction(self):
        p = SequentialPrefetcher(["a", "b"])
        assert p.predict() == []

    def test_unknown_module_no_prediction(self):
        p = SequentialPrefetcher(["a", "b"])
        p.observe("zzz")
        assert p.predict() == []

    def test_validation(self):
        with pytest.raises(ValueError):
            SequentialPrefetcher([])


class TestMarkov:
    def test_learns_dominant_successor(self):
        p = MarkovPrefetcher()
        for nxt in ["b", "b", "b", "c"]:
            p.observe("a")
            p.observe(nxt)
        p.observe("a")
        assert p.predict(1) == ["b"]
        assert p.predict(2) == ["b", "c"]

    def test_no_history_no_prediction(self):
        assert MarkovPrefetcher().predict() == []

    def test_deterministic_tie_break(self):
        p = MarkovPrefetcher()
        for nxt in ["b", "c"]:  # one observation each
            p.observe("a")
            p.observe(nxt)
        p.observe("a")
        assert p.predict(1) == ["b"]  # first seen wins

    def test_reset(self):
        p = MarkovPrefetcher()
        p.observe("a")
        p.observe("b")
        p.reset()
        assert p.predict() == []


class TestArm:
    def test_mines_cooccurrence_rule(self):
        p = ArmPrefetcher(window=4, min_support=2, min_confidence=0.3)
        for _ in range(5):
            for m in ("load", "fft", "store"):
                p.observe(m)
        p.observe("load")
        predictions = p.predict(2)
        assert "fft" in predictions

    def test_rule_statistics_sane(self):
        p = ArmPrefetcher(window=3, min_support=1, min_confidence=0.1)
        for m in ("a", "b", "a", "b", "a", "b"):
            p.observe(m)
        rules = p.rules_for("a")
        assert rules, "expected at least one rule"
        for r in rules:
            assert 0.0 < r.confidence <= 1.0
            assert r.support >= 1
            assert r.antecedent == "a"

    def test_min_confidence_filters(self):
        strict = ArmPrefetcher(window=4, min_support=1, min_confidence=0.99)
        for m in ("a", "b", "a", "c", "a", "d"):
            strict.observe(m)
        # No consequent follows 'a' every single time.
        assert strict.rules_for("a") == []

    def test_all_rules_antecedents(self):
        p = ArmPrefetcher(window=3, min_support=1, min_confidence=0.1)
        for m in ("x", "y") * 4:
            p.observe(m)
        rules = p.all_rules()
        assert {r.antecedent for r in rules} <= {"x", "y"}

    def test_validation(self):
        with pytest.raises(ValueError):
            ArmPrefetcher(window=1)
        with pytest.raises(ValueError):
            ArmPrefetcher(min_support=0)
        with pytest.raises(ValueError):
            ArmPrefetcher(min_confidence=0.0)
        with pytest.raises(ValueError):
            AssociationRule("a", "b", support=1, confidence=2.0)
        with pytest.raises(ValueError):
            AssociationRule("a", "b", support=-1, confidence=0.5)

    def test_reset(self):
        p = ArmPrefetcher()
        for m in ("a", "b") * 5:
            p.observe(m)
        p.reset()
        assert p.predict() == []
        assert p.all_rules() == []


class TestFactory:
    def test_known_names(self):
        assert make_prefetcher("none").name == "none"
        assert make_prefetcher("markov").name == "markov"
        assert make_prefetcher("arm").name == "arm"
        assert make_prefetcher("oracle", future=["a"]).name == "oracle"
        assert make_prefetcher(
            "sequential", library_order=["a"]
        ).name == "sequential"

    def test_unknown(self):
        with pytest.raises(KeyError, match="unknown prefetcher"):
            make_prefetcher("psychic")
