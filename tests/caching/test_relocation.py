"""Unit + property tests for column allocation and defragmentation."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.caching.relocation import (
    AllocationError,
    ColumnAllocator,
    Span,
)


class TestSpan:
    def test_end(self):
        assert Span("m", 3, 4).end == 7

    def test_validation(self):
        with pytest.raises(ValueError):
            Span("m", -1, 2)
        with pytest.raises(ValueError):
            Span("m", 0, 0)


class TestBasicAllocation:
    def test_first_fit_packs_left(self):
        alloc = ColumnAllocator(20)
        a = alloc.allocate("a", 5)
        b = alloc.allocate("b", 5)
        assert (a.start, b.start) == (0, 5)

    def test_free_reopens_hole(self):
        alloc = ColumnAllocator(10)
        alloc.allocate("a", 4)
        alloc.allocate("b", 6)
        alloc.free("a")
        c = alloc.allocate("c", 3)
        assert c.start == 0

    def test_double_place_rejected(self):
        alloc = ColumnAllocator(10)
        alloc.allocate("a", 2)
        with pytest.raises(ValueError, match="already placed"):
            alloc.allocate("a", 2)

    def test_unknown_free(self):
        with pytest.raises(KeyError):
            ColumnAllocator(5).free("ghost")

    def test_capacity_failure(self):
        alloc = ColumnAllocator(10)
        alloc.allocate("a", 8)
        with pytest.raises(AllocationError) as exc:
            alloc.allocate("b", 5)
        assert exc.value.reason == "capacity"

    def test_oversized_module(self):
        with pytest.raises(AllocationError) as exc:
            ColumnAllocator(10).allocate("m", 11)
        assert exc.value.reason == "capacity"

    def test_validation(self):
        with pytest.raises(ValueError):
            ColumnAllocator(0)
        with pytest.raises(ValueError):
            ColumnAllocator(10, strategy="worst_fit")
        with pytest.raises(ValueError):
            ColumnAllocator(10).allocate("m", 0)


class TestFragmentation:
    def make_fragmented(self) -> ColumnAllocator:
        """[a:3][hole:3][c:3][hole:3][e:3] — 6 free, largest hole 3."""
        alloc = ColumnAllocator(15)
        for i, name in enumerate("abcde"):
            alloc.allocate(name, 3)
        alloc.free("b")
        alloc.free("d")
        return alloc

    def test_holes_reported(self):
        alloc = self.make_fragmented()
        assert alloc.holes() == [(3, 3), (9, 3)]
        assert alloc.largest_hole() == 3
        assert alloc.free_columns == 6

    def test_fragmentation_metric(self):
        alloc = self.make_fragmented()
        assert alloc.external_fragmentation() == pytest.approx(0.5)
        empty = ColumnAllocator(10)
        assert empty.external_fragmentation() == 0.0

    def test_fragmentation_failure_distinguished(self):
        alloc = self.make_fragmented()
        with pytest.raises(AllocationError) as exc:
            alloc.allocate("f", 5)  # 6 free but max hole is 3
        assert exc.value.reason == "fragmentation"

    def test_defragment_coalesces(self):
        alloc = self.make_fragmented()
        moved = alloc.defragment()
        assert moved == [("c", 3), ("e", 3)]
        assert alloc.largest_hole() == 6
        assert alloc.external_fragmentation() == 0.0
        assert alloc.relocated_columns == 6
        assert alloc.defrag_count == 1

    def test_defragment_idempotent(self):
        alloc = self.make_fragmented()
        alloc.defragment()
        assert alloc.defragment() == []
        assert alloc.defrag_count == 1

    def test_allocate_with_defrag(self):
        alloc = self.make_fragmented()
        span, traffic = alloc.allocate_with_defrag("f", 5)
        assert span.width == 5
        assert traffic == 6  # c and e moved

    def test_allocate_with_defrag_no_cost_when_fits(self):
        alloc = self.make_fragmented()
        span, traffic = alloc.allocate_with_defrag("f", 3)
        assert traffic == 0

    def test_allocate_with_defrag_capacity_still_fails(self):
        alloc = self.make_fragmented()
        with pytest.raises(AllocationError):
            alloc.allocate_with_defrag("f", 7)


class TestBestFit:
    def test_best_fit_prefers_tight_hole(self):
        alloc = ColumnAllocator(20, strategy="best_fit")
        alloc.allocate("a", 4)   # [0,4)
        alloc.allocate("b", 6)   # [4,10)
        alloc.allocate("c", 4)   # [10,14)  tail hole [14,20) width 6
        alloc.free("a")          # hole [0,4) width 4
        d = alloc.allocate("d", 3)
        assert d.start == 0  # tight 4-hole, not the 6-wide tail

    def test_first_fit_takes_leftmost(self):
        alloc = ColumnAllocator(20, strategy="first_fit")
        alloc.allocate("a", 4)
        alloc.free("a")
        alloc.allocate("b", 1)
        assert alloc.span_of("b").start == 0

    def test_best_fit_reduces_fragmentation_on_adversarial_mix(self):
        """A mixed-size workload where best-fit preserves a big hole that
        first-fit squanders."""
        def run(strategy: str) -> int:
            alloc = ColumnAllocator(16, strategy=strategy)
            alloc.allocate("a", 6)   # [0,6)
            alloc.allocate("b", 4)   # [6,10)
            alloc.allocate("c", 6)   # [10,16)
            alloc.free("b")          # 4-hole at 6
            alloc.free("c")          # 6-hole at 10
            alloc.allocate("d", 4)   # ff -> 6 (4-hole); bf -> same tight
            return alloc.largest_hole()

        assert run("best_fit") >= run("first_fit")


spans = st.lists(
    st.integers(min_value=1, max_value=6), min_size=1, max_size=15
)


@given(spans)
@settings(max_examples=150)
def test_property_no_overlaps_ever(widths):
    alloc = ColumnAllocator(40)
    placed = []
    for i, w in enumerate(widths):
        try:
            placed.append(alloc.allocate(f"m{i}", w))
        except AllocationError:
            break
    placed.sort(key=lambda s: s.start)
    for a, b in zip(placed, placed[1:]):
        assert a.end <= b.start
    assert all(s.end <= alloc.total_columns for s in placed)


@given(spans, st.sets(st.integers(min_value=0, max_value=14)))
@settings(max_examples=150)
def test_property_defrag_preserves_contents(widths, to_free):
    alloc = ColumnAllocator(60)
    for i, w in enumerate(widths):
        try:
            alloc.allocate(f"m{i}", w)
        except AllocationError:
            break
    for i in to_free:
        if f"m{i}" in alloc.residents:
            alloc.free(f"m{i}")
    before = {m: alloc.span_of(m).width for m in alloc.residents}
    used_before = alloc.used_columns
    alloc.defragment()
    after = {m: alloc.span_of(m).width for m in alloc.residents}
    assert before == after
    assert alloc.used_columns == used_before
    assert alloc.external_fragmentation() == 0.0
