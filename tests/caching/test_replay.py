"""Unit tests for :mod:`repro.caching.replay`."""

from __future__ import annotations

import pytest

from repro.caching import (
    BeladyPolicy,
    ConfigCache,
    LruPolicy,
    MarkovPrefetcher,
    NonePrefetcher,
    OraclePrefetcher,
    replay,
)
from repro.workloads import CallTrace, HardwareTask


def trace_of(names) -> CallTrace:
    lib = {n: HardwareTask(n, 1.0) for n in set(names)}
    return CallTrace([lib[n] for n in names], name="t")


class TestReplayBasics:
    def test_no_prefetch_matches_cache_alone(self):
        names = ["a", "b", "c"] * 10
        t = trace_of(names)
        result = replay(t, ConfigCache(2, LruPolicy()))
        # Cyclic thrash on 2 LRU slots: zero hits.
        assert result.hit_ratio == 0.0
        assert result.prefetches == 0

    def test_oracle_prefetch_reaches_near_one(self):
        names = ["a", "b", "c"] * 30
        t = trace_of(names)
        result = replay(
            t, ConfigCache(2, LruPolicy()), OraclePrefetcher(names)
        )
        # Only the first call can miss; everything else was staged.
        assert result.stats.misses <= 2
        assert result.prefetch_accuracy > 0.9

    def test_resets_inputs(self):
        names = ["a", "b"] * 5
        t = trace_of(names)
        cache = ConfigCache(2, LruPolicy())
        cache.access("junk")
        pf = MarkovPrefetcher()
        pf.observe("junk")
        result = replay(t, cache, pf)
        assert result.stats.accesses == len(names)
        assert not cache.contains("junk")

    def test_belady_with_prefetch_rejected(self):
        names = ["a", "b", "a"]
        t = trace_of(names)
        cache = ConfigCache(2, BeladyPolicy(names))
        with pytest.raises(ValueError, match="Belady"):
            replay(t, cache, MarkovPrefetcher())

    def test_belady_with_none_prefetcher_ok(self):
        names = ["a", "b", "c", "a", "b", "c"]
        t = trace_of(names)
        result = replay(t, ConfigCache(2, BeladyPolicy(names)))
        assert result.policy == "belady"
        assert 0.0 <= result.hit_ratio <= 1.0

    def test_prefetch_width_zero_disables(self):
        names = ["a", "b"] * 10
        t = trace_of(names)
        result = replay(
            t, ConfigCache(2, LruPolicy()), OraclePrefetcher(names),
            prefetch_width=0,
        )
        assert result.prefetches == 0

    def test_negative_width_rejected(self):
        t = trace_of(["a"])
        with pytest.raises(ValueError):
            replay(t, ConfigCache(1, LruPolicy()), prefetch_width=-1)


class TestReplayInvariants:
    def test_hit_plus_miss_equals_calls(self):
        names = ["a", "b", "c", "d"] * 25
        t = trace_of(names)
        result = replay(
            t, ConfigCache(2, LruPolicy()), MarkovPrefetcher()
        )
        assert result.stats.accesses == len(names)
        assert 0.0 <= result.hit_ratio <= 1.0

    def test_prefetch_never_decreases_hits_for_oracle(self):
        names = (["a", "b", "c"] * 20) + (["b", "a"] * 10)
        t = trace_of(names)
        base = replay(t, ConfigCache(2, LruPolicy()))
        boosted = replay(
            t, ConfigCache(2, LruPolicy()), OraclePrefetcher(names)
        )
        assert boosted.stats.hits >= base.stats.hits

    def test_useful_prefetches_bounded(self):
        names = ["a", "b", "c"] * 15
        t = trace_of(names)
        result = replay(
            t, ConfigCache(2, LruPolicy()), MarkovPrefetcher()
        )
        assert 0 <= result.useful_prefetches <= result.prefetches
        assert 0.0 <= result.prefetch_accuracy <= 1.0

    def test_single_slot_cache_replay(self):
        names = ["a", "b"] * 10
        t = trace_of(names)
        result = replay(t, ConfigCache(1, LruPolicy()))
        assert result.hit_ratio == 0.0  # alternating on one slot


class TestPrefetchAttribution:
    """The useful-prefetch bookkeeping around evictions."""

    def test_accuracy_is_zero_without_prefetches(self):
        result = replay(trace_of(["a", "a"]), ConfigCache(2, LruPolicy()))
        assert result.prefetches == 0
        assert result.prefetch_accuracy == 0.0

    def test_evicted_prefetch_loses_attribution(self):
        # Width-2 oracle on 2 LRU slots: "c" is staged at the first call
        # but evicted before its reference, so the call misses and the
        # stale marker must not count as useful.
        names = ["a", "b", "c", "a"]
        result = replay(
            trace_of(names), ConfigCache(2, LruPolicy()),
            OraclePrefetcher(names), prefetch_width=2,
        )
        assert result.prefetches == 3
        assert result.useful_prefetches == 2  # "b" and the refetched "a"
        assert result.stats.misses == 2  # cold "a" plus the evicted "c"
        assert result.prefetch_accuracy == pytest.approx(2 / 3)

    def test_single_slot_oracle_hits_through_displacement(self):
        # One slot: each prefetch displaces the module just used, which
        # is exactly right when the oracle knows the next reference.
        names = ["a", "b", "a"]
        result = replay(
            trace_of(names), ConfigCache(1, LruPolicy()),
            OraclePrefetcher(names), prefetch_width=1,
        )
        assert result.stats.hits == 2
        assert result.useful_prefetches == 2

    def test_wide_prefetch_fills_at_most_width_per_call(self):
        names = ["a", "b", "c", "d"] * 5
        result = replay(
            trace_of(names), ConfigCache(3, LruPolicy()),
            OraclePrefetcher(names), prefetch_width=2,
        )
        assert result.prefetches <= 2 * len(names)
        assert result.useful_prefetches <= result.prefetches

    def test_result_metadata(self):
        names = ["a", "b"]
        result = replay(
            trace_of(names), ConfigCache(2, LruPolicy()),
            MarkovPrefetcher(),
        )
        assert result.trace_name == "t"
        assert result.slots == 2
        assert result.policy == "lru"
        assert result.prefetcher == "markov"
