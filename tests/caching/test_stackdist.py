"""Tests for the stack-distance analysis, pinned against real replays."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.caching import ConfigCache, LruPolicy
from repro.caching.stackdist import (
    capacity_for_hit_ratio,
    lru_hit_ratio,
    lru_hit_ratios,
    miss_curve,
)
from repro.workloads import CallTrace, HardwareTask


def trace_of(names) -> CallTrace:
    lib = {n: HardwareTask(n, 1.0) for n in set(names)}
    return CallTrace([lib[n] for n in names], name="t")


def replay_hit_ratio(names, slots: int) -> float:
    cache = ConfigCache(slots=slots, policy=LruPolicy())
    for n in names:
        cache.access(n)
    return cache.stats.hit_ratio


class TestAgainstReplay:
    @pytest.mark.parametrize("slots", [1, 2, 3, 5])
    def test_cyclic_trace(self, slots):
        names = ["a", "b", "c"] * 20
        assert lru_hit_ratio(trace_of(names), slots) == pytest.approx(
            replay_hit_ratio(names, slots)
        )

    def test_hand_computed(self):
        # a b a b : reuses at distance 1 -> hit for k >= 2 only.
        names = ["a", "b", "a", "b"]
        t = trace_of(names)
        assert lru_hit_ratio(t, 1) == 0.0
        assert lru_hit_ratio(t, 2) == pytest.approx(0.5)

    def test_validation(self):
        t = trace_of(["a"])
        with pytest.raises(ValueError):
            lru_hit_ratio(t, 0)
        with pytest.raises(ValueError):
            lru_hit_ratios(t, 0)
        with pytest.raises(ValueError):
            capacity_for_hit_ratio(t, 1.5)


class TestCurveProperties:
    def test_monotone_in_capacity(self):
        names = ["a", "b", "c", "a", "d", "b", "a", "c"] * 5
        curve = lru_hit_ratios(trace_of(names), 8)
        assert all(curve[i] <= curve[i + 1] + 1e-15 for i in range(7))

    def test_saturates_at_compulsory_bound(self):
        names = ["a", "b", "c"] * 10
        t = trace_of(names)
        curve = lru_hit_ratios(t, 10)
        bound = 1.0 - t.n_distinct / t.n_calls
        assert curve[-1] == pytest.approx(bound)

    def test_miss_curve_complement(self):
        t = trace_of(["a", "b", "a"] * 4)
        hit = lru_hit_ratios(t, 4)
        miss = miss_curve(t, 4)
        assert all(abs(h + m - 1.0) < 1e-12 for h, m in zip(hit, miss))


class TestCapacityPlanner:
    def test_finds_minimum_capacity(self):
        names = ["a", "b", "c"] * 30
        t = trace_of(names)
        # distance-2 reuses: need 3 slots for ~100% of reuses.
        assert capacity_for_hit_ratio(t, 0.9) == 3
        assert capacity_for_hit_ratio(t, 0.0) == 1

    def test_unreachable_target(self):
        names = ["a", "b", "c", "d"]  # no reuse at all
        assert capacity_for_hit_ratio(trace_of(names), 0.5) is None


names_strategy = st.lists(
    st.sampled_from([f"m{i}" for i in range(6)]), min_size=1, max_size=150
)


@given(names_strategy, st.integers(min_value=1, max_value=7))
@settings(max_examples=150, deadline=None)
def test_property_stack_distance_theorem(names, slots):
    """The inclusion-property theorem: analytic == replayed, always."""
    analytic = lru_hit_ratio(trace_of(names), slots)
    replayed = replay_hit_ratio(names, slots)
    assert analytic == pytest.approx(replayed, abs=1e-12)
