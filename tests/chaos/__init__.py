"""Chaos-mode tests: topology, breakers, brownout, containment, resume."""
