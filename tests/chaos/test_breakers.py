"""Circuit-breaker FSM tests."""

from __future__ import annotations

import pytest

from repro.chaos import CircuitBreaker
from repro.model.stochastic import resolve_rng


class TestLifecycle:
    def test_opens_after_consecutive_failures(self):
        br = CircuitBreaker("icap0", threshold=3, cooldown=1.0)
        for t in (0.0, 0.1):
            br.record_failure(t)
            assert br.state == "closed"
        br.record_failure(0.2)
        assert br.state == "open"
        assert br.retry_at == pytest.approx(1.2)

    def test_success_resets_the_streak(self):
        br = CircuitBreaker("icap0", threshold=2)
        br.record_failure(0.0)
        br.record_success(0.1)
        br.record_failure(0.2)
        assert br.state == "closed"

    def test_half_open_probe_then_close(self):
        br = CircuitBreaker("icap0", threshold=1, cooldown=1.0)
        br.record_failure(0.0)
        assert br.state == "open"
        assert not br.allow(0.5)
        assert br.allow(1.0)  # the probe
        assert br.state == "half_open"
        br.record_success(1.1)
        assert br.state == "closed"

    def test_half_open_failure_reopens(self):
        br = CircuitBreaker("icap0", threshold=1, cooldown=1.0)
        br.record_failure(0.0)
        assert br.allow(1.0)
        br.record_failure(1.1)
        assert br.state == "open"
        assert br.retry_at == pytest.approx(2.1)

    def test_transitions_are_logged(self):
        br = CircuitBreaker("icap0", threshold=1, cooldown=1.0)
        br.record_failure(0.0)
        br.allow(1.0)
        br.record_success(1.5)
        assert [(a, b) for _, a, b in br.transitions] == [
            ("closed", "open"),
            ("open", "half_open"),
            ("half_open", "closed"),
        ]


class TestScriptedOutages:
    def test_hold_pins_the_breaker_open(self):
        br = CircuitBreaker("blade0", cooldown=0.1)
        br.force_open(1.0)
        assert br.state == "open" and br.held
        assert not br.allow(100.0)  # cooldown does not apply while held
        br.force_release(2.0)
        assert not br.allow(2.05)
        assert br.allow(2.1 + 1e-12)
        assert br.state == "half_open"

    def test_release_without_hold_is_a_no_op(self):
        br = CircuitBreaker("blade0")
        br.force_release(1.0)
        assert br.state == "closed" and br.transitions == []

    def test_probe_jitter_is_seeded(self):
        def delay(seed):
            br = CircuitBreaker(
                "icap0", threshold=1, cooldown=1.0,
                probe_jitter=0.5, rng=resolve_rng(seed),
            )
            br.record_failure(0.0)
            return br.retry_at

        assert delay(3) == delay(3)
        assert 1.0 <= delay(3) <= 1.5
        assert delay(3) != delay(4)

    def test_knob_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker("x", threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker("x", cooldown=-1.0)
        with pytest.raises(ValueError):
            CircuitBreaker("x", probe_jitter=-0.1)
